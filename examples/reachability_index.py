#!/usr/bin/env python
"""Build and query a 3-hop reachability index (Table 1's application).

A k-hop reachability query asks whether t is within k edges of s.
Answering from an index is O(1); building the index means running a
depth-limited BFS from every indexed source — a perfect concurrent-BFS
workload.  This example builds the index with iBFS and with the
sequential engine and compares build times, then runs sample queries.

Run:  python examples/reachability_index.py
"""

import numpy as np

from repro import (
    IBFS,
    IBFSConfig,
    SequentialConcurrentBFS,
    benchmark_graph,
    build_reachability_index,
)


def main() -> None:
    graph = benchmark_graph("OR")
    print(f"OR: {graph.num_vertices} vertices, {graph.num_edges} edges")

    rng = np.random.default_rng(3)
    sources = sorted(
        rng.choice(graph.num_vertices, 128, replace=False).tolist()
    )
    k = 3

    ibfs_index = build_reachability_index(
        graph, IBFS(graph, IBFSConfig(group_size=32)), sources, k=k
    )
    seq_index = build_reachability_index(
        graph, SequentialConcurrentBFS(graph), sources, k=k
    )

    print(f"\n{k}-hop index over {len(sources)} sources:")
    print(f"  iBFS build time      : {ibfs_index.build_seconds * 1e3:.3f} ms")
    print(f"  sequential build time: {seq_index.build_seconds * 1e3:.3f} ms")
    print(
        "  speedup              : "
        f"{seq_index.build_seconds / ibfs_index.build_seconds:.1f}x"
    )

    # Both indexes must answer identically.
    targets = rng.choice(graph.num_vertices, 5, replace=False)
    print("\nsample queries (source -> target within 3 hops?):")
    for s in sources[:3]:
        for t in targets:
            answer = ibfs_index.query(s, int(t))
            assert answer == seq_index.query(s, int(t))
            print(f"  {s:>5} -> {int(t):>5}: {'yes' if answer else 'no'}")


if __name__ == "__main__":
    main()
