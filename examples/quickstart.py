#!/usr/bin/env python
"""Quickstart: run concurrent BFS on a synthetic social graph.

Builds a Graph500-style Kronecker graph, runs 64 BFS instances
concurrently with the full iBFS pipeline (joint traversal + GroupBy +
bitwise status array), verifies one instance against the plain
reference BFS, and prints the performance counters the paper reports.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import IBFS, IBFSConfig, kronecker, reference_bfs


def main() -> None:
    # A power-law graph: 4096 vertices, ~130k directed edges.
    graph = kronecker(scale=12, edge_factor=16, seed=7)
    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges")

    # 64 concurrent BFS instances from distinct sources.
    rng = np.random.default_rng(1)
    sources = sorted(rng.choice(graph.num_vertices, 64, replace=False).tolist())

    engine = IBFS(graph, IBFSConfig(group_size=32, groupby=True))
    result = engine.run(sources)

    # Depths are exact BFS depths; check one instance against the oracle.
    check = sources[0]
    assert np.array_equal(result.depth_row(check), reference_bfs(graph, check))
    print(f"depth({check} -> {sources[-1]}) = {result.depth(check, sources[-1])}")
    print(f"vertices reached from {check}: {result.reached(check)}")

    print(f"\nsimulated runtime : {result.seconds * 1e3:.3f} ms")
    print(f"traversal rate    : {result.teps / 1e9:.2f} billion TEPS")
    print(f"sharing degree    : {result.sharing_degree:.1f} "
          f"(avg instances sharing each joint frontier)")
    print(f"groups executed   : {len(result.groups)}")
    print(f"load transactions : {result.counters.global_load_transactions:,}")
    print(f"early terminations: {result.counters.early_terminations:,}")


if __name__ == "__main__":
    main()
