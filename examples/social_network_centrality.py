#!/usr/bin/env python
"""Centrality analysis of a social network with concurrent BFS.

The paper's introduction motivates iBFS with betweenness and closeness
centrality — both are many-BFS workloads.  This example finds the most
central users of a scale-free "who-follows-whom" network.

Run:  python examples/social_network_centrality.py
"""

import numpy as np

from repro import IBFS, IBFSConfig, closeness_centrality
from repro.apps.betweenness import betweenness_centrality
from repro.graph.generators import scale_free


def main() -> None:
    # A preferential-attachment network: a few hub users, many leaves.
    graph = scale_free(2000, attach=4, seed=11)
    degrees = graph.out_degrees()
    print(
        f"network: {graph.num_vertices} users, {graph.num_edges} follow "
        f"edges, max degree {int(degrees.max())}"
    )

    # Closeness via iBFS over a sample of users.
    rng = np.random.default_rng(2)
    sample = sorted(rng.choice(graph.num_vertices, 256, replace=False).tolist())
    engine = IBFS(graph, IBFSConfig(group_size=64))
    closeness = closeness_centrality(graph, engine, sources=sample)
    top_closeness = sorted(closeness, key=closeness.get, reverse=True)[:5]
    print("\nmost central users by closeness (sampled):")
    for user in top_closeness:
        print(
            f"  user {user:>5}  closeness={closeness[user]:.4f}  "
            f"degree={int(degrees[user])}"
        )

    # Betweenness (source-sampled Brandes).
    bc = betweenness_centrality(graph, sources=sample, normalized=True)
    top_bc = np.argsort(-bc)[:5]
    print("\nmost central users by betweenness (sampled):")
    for user in top_bc:
        print(
            f"  user {int(user):>5}  betweenness={bc[user]:.6f}  "
            f"degree={int(degrees[user])}"
        )

    # Hubs should dominate both rankings in a preferential-attachment net.
    assert degrees[top_bc[0]] > np.median(degrees)


if __name__ == "__main__":
    main()
