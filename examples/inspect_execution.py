#!/usr/bin/env python
"""Inspect a simulated execution: trace, occupancy, energy, theory.

Shows the analysis surface around the engines — the per-level trace the
cost model prices, the kernel occupancy calculation that justifies the
256-thread CTA default, Green-Graph500-style energy efficiency, and an
empirical check of the paper's Lemma 1.

Run:  python examples/inspect_execution.py
"""

from repro import IBFS, IBFSConfig, KEPLER_K40, Device, benchmark_graph
from repro.gpusim.energy import energy_report
from repro.gpusim.occupancy import KernelConfig, occupancy
from repro.gpusim.trace import record_to_rows, summarize_record
from repro.core.bitwise import BitwiseTraversal
from repro.core.groupby import GroupByConfig, auto_tune_q, group_sources
from repro.core.theory import verify_lemma1


def main() -> None:
    graph = benchmark_graph("KG0")
    device = Device(KEPLER_K40)
    sources = list(range(0, 64, 2))

    # --- per-level trace ------------------------------------------------
    engine = BitwiseTraversal(graph, device)
    _, record, stats = engine.run_group(sources)
    print("per-level trace (one bitwise group of 32 instances):")
    print(f"{'lvl':>4}{'dir':>5}{'frontier':>10}{'loads':>8}{'stores':>8}"
          f"{'us':>8}")
    for row in record_to_rows(record, device.cost):
        print(
            f"{row['depth']:>4}{row['direction']:>5}"
            f"{row['frontier_size']:>10}{row['load_transactions']:>8}"
            f"{row['store_transactions']:>8}{row['seconds'] * 1e6:>8.2f}"
        )
    summary = summarize_record(record, device.cost)
    print(f"summary: {summary['levels']} levels "
          f"({summary['td_levels']} td / {summary['bu_levels']} bu), "
          f"{summary['total_transactions']} transactions, "
          f"{summary['seconds'] * 1e6:.1f} us\n")

    # --- occupancy -------------------------------------------------------
    for threads, regs in ((256, 32), (256, 128), (1024, 64)):
        report = occupancy(KEPLER_K40, KernelConfig(threads, regs))
        print(f"occupancy({threads} thr, {regs} regs): "
              f"{report.occupancy:.0%} (limited by {report.limiting_factor})")

    # --- energy ----------------------------------------------------------
    result = IBFS(graph, IBFSConfig(group_size=32)).run(
        sources, store_depths=False
    )
    report = energy_report(result, KEPLER_K40)
    print(f"\nenergy: {report['total_joules'] * 1e3:.2f} mJ total, "
          f"{report['average_watts']:.0f} W avg, "
          f"{report['teps_per_watt'] / 1e6:.1f} MTEPS/W")

    # --- theory ----------------------------------------------------------
    lemma = verify_lemma1(graph, sources[:16])
    print(f"\nLemma 1: SD={lemma.sharing_degree:.2f} vs measured "
          f"speedup={lemma.inspection_speedup:.2f} "
          f"(gap {lemma.relative_gap:.1%})")
    best_q = auto_tune_q(graph, sources, group_size=16)
    print(f"auto-tuned hub threshold q = {best_q} "
          f"(paper default: 128)")
    groups = group_sources(graph, sources, 16, GroupByConfig(q=best_q))
    print(f"GroupBy at q={best_q}: {len(groups)} groups")


if __name__ == "__main__":
    main()
