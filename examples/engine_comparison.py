#!/usr/bin/env python
"""Figure-15 style engine comparison on one benchmark graph.

Runs the paper's five configurations — sequential, naive concurrent,
joint traversal, bitwise, and bitwise+GroupBy — on the FB benchmark
stand-in and prints the traversal-rate ladder.

Run:  python examples/engine_comparison.py [GRAPH]
"""

import sys

import numpy as np

from repro import (
    IBFS,
    IBFSConfig,
    NaiveConcurrentBFS,
    SequentialConcurrentBFS,
    benchmark_graph,
)


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "FB"
    graph = benchmark_graph(name)
    print(f"{name}: {graph.num_vertices} vertices, {graph.num_edges} edges")

    rng = np.random.default_rng(42)
    sources = sorted(
        rng.choice(graph.num_vertices, 128, replace=False).tolist()
    )

    engines = {
        "sequential": SequentialConcurrentBFS(graph),
        "naive": NaiveConcurrentBFS(graph),
        "joint": IBFS(graph, IBFSConfig(group_size=32, mode="joint",
                                        groupby=False)),
        "bitwise": IBFS(graph, IBFSConfig(group_size=32, mode="bitwise",
                                          groupby=False)),
        "groupby": IBFS(graph, IBFSConfig(group_size=32, mode="bitwise",
                                          groupby=True)),
    }

    baseline = None
    print(f"\n{'engine':<12}{'GTEPS':>8}{'ms':>9}{'speedup':>9}")
    for label, engine in engines.items():
        result = engine.run(sources, store_depths=False)
        if baseline is None:
            baseline = result.seconds
        print(
            f"{label:<12}{result.teps / 1e9:>8.2f}"
            f"{result.seconds * 1e3:>9.3f}"
            f"{baseline / result.seconds:>8.2f}x"
        )


if __name__ == "__main__":
    main()
