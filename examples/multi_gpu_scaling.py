#!/usr/bin/env python
"""Scale concurrent BFS across a simulated GPU cluster (Figure 17).

Groups of BFS instances are independent, so a cluster only has to
balance their runtimes across devices.  This example runs a GroupBy
workload on one simulated K20, then schedules the resulting groups on
clusters of growing size and prints the speedup curve.

Run:  python examples/multi_gpu_scaling.py
"""

import numpy as np

from repro import IBFS, IBFSConfig, KEPLER_K20, Cluster, Device, benchmark_graph
from repro.gpusim.cluster import schedule_lpt, schedule_round_robin


def main() -> None:
    graph = benchmark_graph("FB")
    rng = np.random.default_rng(17)
    sources = sorted(
        rng.choice(graph.num_vertices, 672, replace=False).tolist()
    )

    engine = IBFS(
        graph,
        IBFSConfig(group_size=4, groupby=True),
        device=Device(KEPLER_K20),
    )
    result = engine.run(sources, store_depths=False)
    durations = result.group_times()
    print(
        f"workload: {len(sources)} BFS instances in {len(durations)} groups, "
        f"{result.seconds * 1e3:.2f} ms on one K20"
    )

    counts = (1, 2, 4, 8, 16, 32, 64, 112)
    lpt_curve = Cluster(1, KEPLER_K20, schedule_lpt).speedup_curve(
        durations, counts
    )
    rr_curve = Cluster(1, KEPLER_K20, schedule_round_robin).speedup_curve(
        durations, counts
    )

    print(f"\n{'GPUs':>5}{'LPT speedup':>13}{'round-robin':>13}")
    for count, lpt, rr in zip(counts, lpt_curve, rr_curve):
        print(f"{count:>5}{lpt:>12.1f}x{rr:>12.1f}x")

    makespan = Cluster(112, KEPLER_K20).run(durations)
    print(
        f"\non 112 GPUs: makespan {makespan.makespan * 1e6:.1f} us, "
        f"imbalance {makespan.imbalance:.2f}x"
    )


if __name__ == "__main__":
    main()
