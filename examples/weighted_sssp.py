#!/usr/bin/env python
"""Weighted shortest paths on the simulated device.

The paper places iBFS in the shortest-path family (SSSP/MSSP/APSP) and
notes the system can be configured for weighted graphs.  This example
attaches random weights to a Kronecker topology, runs delta-stepping on
the simulated GPU, cross-checks it against Dijkstra and Bellman-Ford,
and shows the delta parameter's work trade-off.

Run:  python examples/weighted_sssp.py
"""

import numpy as np

from repro import DeltaStepping, bellman_ford, dijkstra, kronecker
from repro.graph.weighted import with_random_weights


def main() -> None:
    topology = kronecker(scale=10, edge_factor=8, seed=19)
    graph = with_random_weights(topology, low=1.0, high=10.0, seed=20)
    print(
        f"graph: {graph.num_vertices} vertices, {graph.num_edges} weighted "
        f"edges (weights 1-10)"
    )

    source = int(topology.out_degrees().argmax())
    exact = dijkstra(graph, source)
    bf = bellman_ford(graph, source)
    assert np.allclose(exact, bf, equal_nan=True)

    print(f"\nsource {source}: reaches "
          f"{int(np.isfinite(exact).sum())} vertices, "
          f"max distance {np.nanmax(np.where(np.isfinite(exact), exact, np.nan)):.2f}")

    print(f"\n{'delta':>8}{'rounds':>9}{'relaxations':>13}{'ms':>9}")
    for delta in (0.5, 2.0, 5.5, 20.0, 1e9):
        engine = DeltaStepping(graph, delta=delta)
        result = engine.run(source)
        assert np.allclose(result.distances, exact)
        print(
            f"{delta:>8g}{result.record.counters.levels:>9}"
            f"{result.relaxations:>13,}{result.seconds * 1e3:>9.3f}"
        )
    print("\nall delta-stepping runs matched Dijkstra exactly")


if __name__ == "__main__":
    main()
