#!/usr/bin/env python
"""Traversal-based graph sampling (the paper's web-crawling motivation).

Compares three samplers — a breadth-first crawl (snowball), forest-fire
burning, and a random walk — on a scale-free network, and checks how
well each preserves the degree skew of the original.

Run:  python examples/graph_sampling.py
"""

import numpy as np

from repro.graph.generators import scale_free
from repro.graph.properties import degree_stats, gini_coefficient
from repro.graph.samplers import (
    forest_fire_sample,
    random_walk_sample,
    snowball_sample,
)


def main() -> None:
    graph = scale_free(4000, attach=4, seed=9)
    budget = 500
    print(
        f"original: {graph.num_vertices} vertices, {graph.num_edges} edges, "
        f"gini={gini_coefficient(graph):.3f}, "
        f"max degree={int(degree_stats(graph)['max'])}"
    )

    samplers = {
        "snowball (BFS crawl)": snowball_sample,
        "forest fire": forest_fire_sample,
        "random walk": random_walk_sample,
    }
    print(f"\nsamples of {budget} vertices:")
    print(f"{'sampler':<22}{'edges':>8}{'gini':>8}{'max deg':>9}")
    for name, sampler in samplers.items():
        sample = sampler(graph, budget=budget, rng_seed=11)
        stats = degree_stats(sample)
        print(
            f"{name:<22}{sample.num_edges:>8}"
            f"{gini_coefficient(sample):>8.3f}{int(stats['max']):>9}"
        )

    # The BFS crawl grabs whole neighborhoods, so it keeps hubs (the
    # "breadth-first crawling yields high-quality pages" observation).
    crawl = snowball_sample(graph, budget=budget, rng_seed=11)
    assert degree_stats(crawl)["max"] > 10


if __name__ == "__main__":
    main()
