"""Bitwise traversal engine (BSA, section 6)."""

import numpy as np
import pytest

from repro.graph.builders import from_edges
from repro.graph.generators import kronecker
from repro.bfs.reference import reference_bfs_multi
from repro.core.bitwise import BitwiseTraversal
from repro.core.joint import JointTraversal


@pytest.fixture(scope="module")
def kron():
    return kronecker(scale=8, edge_factor=8, seed=10)


class TestCorrectness:
    def test_matches_reference(self, kron):
        sources = [0, 5, 17, 200, 255]
        depths, _, _ = BitwiseTraversal(kron).run_group(sources)
        assert np.array_equal(depths, reference_bfs_multi(kron, sources))

    def test_multi_lane_group(self, kron):
        sources = list(range(70))  # needs 2 uint64 lanes
        depths, _, _ = BitwiseTraversal(kron).run_group(sources)
        assert np.array_equal(depths, reference_bfs_multi(kron, sources))

    def test_without_early_termination_same_depths(self, kron):
        sources = [1, 2, 3, 4]
        fast, _, _ = BitwiseTraversal(kron).run_group(sources)
        slow, _, _ = BitwiseTraversal(
            kron, early_termination=False
        ).run_group(sources)
        assert np.array_equal(fast, slow)

    def test_duplicate_sources_allowed_in_group(self, kron):
        # The engine itself tolerates duplicates (grouping layers reject
        # them); both rows must agree.
        depths, _, _ = BitwiseTraversal(kron).run_group([7, 7])
        assert np.array_equal(depths[0], depths[1])

    def test_directed_asymmetric_graph(self):
        g = from_edges([(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)])
        sources = [0, 2]
        depths, _, _ = BitwiseTraversal(g).run_group(sources)
        assert np.array_equal(depths, reference_bfs_multi(g, sources))


class TestEarlyTermination:
    def test_early_termination_reduces_inspections(self, kron):
        """The key advantage over MS-BFS (section 6): monotone bits allow
        bottom-up scans to stop early."""
        sources = list(range(32))
        _, rec_fast, _ = BitwiseTraversal(kron).run_group(sources)
        _, rec_slow, _ = BitwiseTraversal(
            kron, early_termination=False
        ).run_group(sources)
        assert (
            rec_fast.counters.bottom_up_inspections
            <= rec_slow.counters.bottom_up_inspections
        )
        assert rec_fast.counters.early_terminations > 0
        assert rec_slow.counters.early_terminations == 0

    def test_reset_per_level_adds_store_traffic(self, kron):
        sources = list(range(8))
        _, rec_ibfs, _ = BitwiseTraversal(kron).run_group(sources)
        _, rec_msbfs, _ = BitwiseTraversal(
            kron, early_termination=False, reset_per_level=True
        ).run_group(sources)
        assert (
            rec_msbfs.counters.global_store_transactions
            > rec_ibfs.counters.global_store_transactions
        )


class TestPhysicalVsLogicalWork:
    def test_one_thread_per_frontier_cuts_inspections(self, kron):
        """Bitwise inspection is one OR per (frontier, neighbor) pair for
        all instances, vs one per instance in the JSA engine."""
        sources = list(range(16))
        _, rec_joint, _ = JointTraversal(kron).run_group(sources)
        _, rec_bit, _ = BitwiseTraversal(kron).run_group(sources)
        assert rec_bit.counters.inspections < rec_joint.counters.inspections

    def test_logical_edges_preserved_for_teps(self, kron):
        """edges_traversed counts per-instance work so TEPS is comparable
        across engines; top-down logical edges match the JSA engine's."""
        sources = list(range(16))
        _, rec_joint, _ = JointTraversal(kron).run_group(sources)
        _, rec_bit, _ = BitwiseTraversal(kron).run_group(sources)
        # Early termination makes bitwise traverse fewer logical edges in
        # bottom-up, never more.
        assert (
            0 < rec_bit.counters.edges_traversed
            <= rec_joint.counters.edges_traversed
        )

    def test_atomics_counted_in_top_down(self, kron):
        _, record, _ = BitwiseTraversal(kron).run_group(list(range(8)))
        assert record.counters.atomic_operations > 0

    def test_per_instance_inspection_tallies(self, kron):
        sources = list(range(8))
        _, record, stats = BitwiseTraversal(kron).run_group(sources)
        assert len(stats.bottom_up_inspections) == len(sources)
        assert sum(stats.bottom_up_inspections) > 0
