"""Shortest-path engines: Dijkstra, Bellman-Ford, delta-stepping."""

import numpy as np
import pytest

from repro.errors import GraphError, TraversalError
from repro.graph.generators import kronecker, path
from repro.graph.weighted import (
    from_weighted_edges,
    with_random_weights,
    with_unit_weights,
)
from repro.bfs.reference import reference_bfs
from repro.bfs.sssp import (
    DeltaStepping,
    bellman_ford,
    concurrent_dijkstra,
    dijkstra,
)
from repro.apps.apsp import floyd_warshall


@pytest.fixture(scope="module")
def random_weighted():
    topo = kronecker(scale=7, edge_factor=6, seed=31)
    return with_random_weights(topo, low=1.0, high=9.0, seed=32)


class TestDijkstra:
    def test_hand_example(self):
        g = from_weighted_edges(
            [(0, 1, 4.0), (0, 2, 1.0), (2, 1, 2.0), (1, 3, 1.0), (2, 3, 5.0)]
        )
        dist = dijkstra(g, 0)
        assert dist.tolist() == [0.0, 3.0, 1.0, 4.0]

    def test_unreachable_is_inf(self):
        g = from_weighted_edges([(0, 1, 1.0)], num_vertices=3)
        dist = dijkstra(g, 0)
        assert dist[2] == np.inf

    def test_unit_weights_match_bfs(self):
        topo = kronecker(scale=7, edge_factor=6, seed=33)
        g = with_unit_weights(topo)
        depths = reference_bfs(topo, 5).astype(float)
        depths[depths < 0] = np.inf
        assert np.array_equal(dijkstra(g, 5), depths)

    def test_negative_weights_rejected(self):
        g = from_weighted_edges([(0, 1, -1.0)])
        with pytest.raises(GraphError):
            dijkstra(g, 0)

    def test_source_out_of_range(self, random_weighted):
        with pytest.raises(TraversalError):
            dijkstra(random_weighted, random_weighted.num_vertices)

    def test_concurrent_stacks_rows(self, random_weighted):
        dists = concurrent_dijkstra(random_weighted, [0, 1, 2])
        assert dists.shape == (3, random_weighted.num_vertices)
        assert np.array_equal(dists[1], dijkstra(random_weighted, 1))


class TestBellmanFord:
    def test_matches_dijkstra_on_nonnegative(self, random_weighted):
        for source in (0, 7, 50):
            assert np.allclose(
                bellman_ford(random_weighted, source),
                dijkstra(random_weighted, source),
            )

    def test_negative_edges_allowed(self):
        g = from_weighted_edges([(0, 1, 4.0), (0, 2, 5.0), (2, 1, -3.0)])
        dist = bellman_ford(g, 0)
        assert dist.tolist() == [0.0, 2.0, 5.0]

    def test_negative_cycle_detected(self):
        g = from_weighted_edges([(0, 1, 1.0), (1, 2, -2.0), (2, 1, 1.0)])
        with pytest.raises(GraphError, match="negative cycle"):
            bellman_ford(g, 0)

    def test_unreachable_negative_cycle_is_fine(self):
        g = from_weighted_edges(
            [(0, 1, 1.0), (2, 3, -2.0), (3, 2, 1.0)], num_vertices=4
        )
        dist = bellman_ford(g, 0)
        assert dist[1] == 1.0
        assert dist[2] == np.inf


class TestDeltaStepping:
    def test_matches_dijkstra(self, random_weighted):
        engine = DeltaStepping(random_weighted)
        for source in (0, 3, 99):
            result = engine.run(source)
            assert np.allclose(
                result.distances, dijkstra(random_weighted, source)
            )

    def test_delta_extremes_still_exact(self, random_weighted):
        tiny = DeltaStepping(random_weighted, delta=0.5).run(2)
        huge = DeltaStepping(random_weighted, delta=1e9).run(2)
        reference = dijkstra(random_weighted, 2)
        assert np.allclose(tiny.distances, reference)
        assert np.allclose(huge.distances, reference)

    def test_unit_weight_path(self):
        g = with_unit_weights(path(6))
        result = DeltaStepping(g, delta=1.0).run(0)
        assert result.distances.tolist() == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]

    def test_counters_and_timing(self, random_weighted):
        result = DeltaStepping(random_weighted).run(0)
        assert result.seconds > 0
        assert result.relaxations > 0
        assert result.reached > 1

    def test_invalid_delta(self, random_weighted):
        with pytest.raises(GraphError):
            DeltaStepping(random_weighted, delta=0.0)

    def test_negative_weights_rejected(self):
        g = from_weighted_edges([(0, 1, -1.0)])
        with pytest.raises(GraphError):
            DeltaStepping(g)

    def test_smaller_delta_means_more_rounds(self, random_weighted):
        fine = DeltaStepping(random_weighted, delta=0.5).run(0)
        coarse = DeltaStepping(random_weighted, delta=50.0).run(0)
        assert fine.record.counters.levels >= coarse.record.counters.levels


class TestFloydWarshall:
    def test_matches_dijkstra_row_by_row(self):
        topo = kronecker(scale=5, edge_factor=4, seed=35)
        g = with_random_weights(topo, seed=36)
        matrix = floyd_warshall(g)
        for source in range(0, g.num_vertices, 7):
            assert np.allclose(matrix[source], dijkstra(g, source))

    def test_negative_cycle_detected(self):
        g = from_weighted_edges([(0, 1, 1.0), (1, 0, -3.0)])
        with pytest.raises(GraphError, match="negative cycle"):
            floyd_warshall(g)

    def test_multi_edges_take_lightest(self):
        g = from_weighted_edges([(0, 1, 9.0), (0, 1, 2.0)])
        assert floyd_warshall(g)[0, 1] == 2.0

    def test_too_large_rejected(self):
        topo = kronecker(scale=12, edge_factor=1, seed=1)
        with pytest.raises(GraphError, match="too large"):
            floyd_warshall(with_unit_weights(topo))
