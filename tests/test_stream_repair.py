"""Incremental repair: cost model decisions and bit-identity to scratch."""

import numpy as np
import pytest

from repro.errors import StreamError
from repro.graph.builders import from_edge_arrays
from repro.graph.csr import VERTEX_DTYPE
from repro.graph.generators import kronecker
from repro.core.engine import IBFS, IBFSConfig
from repro.stream import (
    GraphOverlay,
    MutationBatch,
    NOOP,
    RECOMPUTE,
    REPAIR,
    RepairConfig,
    plan_repair,
    repair_depth_matrix,
)


def line_graph(n):
    src = np.arange(n - 1, dtype=VERTEX_DTYPE)
    return from_edge_arrays(src, src + 1, num_vertices=n)


def depths_for(graph, sources, max_depth=None):
    return IBFS(graph, IBFSConfig(group_size=len(sources))).run_group(
        sources, max_depth=max_depth
    ).depths


class TestPlanRepair:
    def test_empty_batch_is_noop(self):
        graph = kronecker(scale=5, edge_factor=4, seed=1)
        plan = plan_repair(MutationBatch.make(graph.num_vertices), graph)
        assert plan.decision == NOOP

    def test_deletes_force_recompute(self):
        graph = kronecker(scale=5, edge_factor=4, seed=1)
        batch = MutationBatch.make(
            graph.num_vertices, deletes=(np.array([0]), np.array([1]))
        )
        assert plan_repair(batch, graph).decision == RECOMPUTE

    def test_small_insert_batch_repairs(self):
        graph = kronecker(scale=7, edge_factor=8, seed=2)
        batch = MutationBatch.make(
            graph.num_vertices, inserts=(np.array([0]), np.array([1]))
        )
        plan = plan_repair(batch, graph)
        assert plan.decision == REPAIR
        assert 0 <= plan.seed_cost <= plan.budget

    def test_oversized_wavefront_recomputes(self):
        graph = kronecker(scale=6, edge_factor=6, seed=3)
        n = graph.num_vertices
        hubs = np.argsort(-graph.out_degrees())[:40].astype(VERTEX_DTYPE)
        batch = MutationBatch.make(
            n, inserts=(np.zeros_like(hubs), hubs)
        )
        plan = plan_repair(
            batch, graph, RepairConfig(max_seed_fraction=0.01)
        )
        assert plan.decision == RECOMPUTE
        assert plan.seed_cost > plan.budget

    def test_config_validation(self):
        with pytest.raises(StreamError):
            RepairConfig(max_seed_fraction=1.5)


class TestRepairBitIdentity:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_repair_matches_scratch(self, seed):
        base = kronecker(scale=7, edge_factor=6, seed=seed)
        n = base.num_vertices
        sources = list(range(0, 16))
        old = depths_for(base, sources)
        rng = np.random.default_rng(seed + 100)
        overlay = GraphOverlay(base)
        overlay.insert_edges(
            rng.integers(0, n, 12, dtype=VERTEX_DTYPE),
            rng.integers(0, n, 12, dtype=VERTEX_DTYPE),
        )
        new_graph, batch = overlay.commit()
        repaired, _ = repair_depth_matrix(new_graph, batch, old)
        scratch = depths_for(new_graph, sources)
        assert repaired.dtype == scratch.dtype == np.int32
        assert np.array_equal(repaired, scratch)

    @pytest.mark.parametrize("max_depth", [0, 1, 2, 5])
    def test_repair_matches_scratch_under_cap(self, max_depth):
        base = kronecker(scale=7, edge_factor=6, seed=4)
        n = base.num_vertices
        sources = list(range(8))
        old = depths_for(base, sources, max_depth=max_depth)
        rng = np.random.default_rng(7)
        overlay = GraphOverlay(base)
        overlay.insert_edges(
            rng.integers(0, n, 10, dtype=VERTEX_DTYPE),
            rng.integers(0, n, 10, dtype=VERTEX_DTYPE),
        )
        new_graph, batch = overlay.commit()
        repaired, _ = repair_depth_matrix(
            new_graph, batch, old, max_depth=max_depth
        )
        scratch = depths_for(new_graph, sources, max_depth=max_depth)
        assert np.array_equal(repaired, scratch)

    def test_insert_reconnects_unreachable_component(self):
        # 0 -> 1   2 -> 3 : vertex 2's component unreachable from 0
        graph = from_edge_arrays(
            np.asarray([0, 2], dtype=VERTEX_DTYPE),
            np.asarray([1, 3], dtype=VERTEX_DTYPE),
            num_vertices=4,
        )
        old = depths_for(graph, [0])
        assert old[0].tolist() == [0, 1, -1, -1]
        overlay = GraphOverlay(graph)
        overlay.insert_edges([1], [2])
        new_graph, batch = overlay.commit()
        repaired, rounds = repair_depth_matrix(new_graph, batch, old)
        assert repaired[0].tolist() == [0, 1, 2, 3]
        assert rounds >= 1

    def test_long_chain_propagation(self):
        # A shortcut at the head of a line graph rewrites every depth
        # downstream; the repair must walk the whole chain.
        n = 40
        graph = line_graph(n)
        old = depths_for(graph, [0, 1])
        overlay = GraphOverlay(graph)
        overlay.insert_edges([0], [20])
        new_graph, batch = overlay.commit()
        repaired, rounds = repair_depth_matrix(new_graph, batch, old)
        scratch = depths_for(new_graph, [0, 1])
        assert np.array_equal(repaired, scratch)
        assert rounds > 5  # genuinely propagated, not a one-hop patch

    def test_noop_insert_returns_equal_matrix(self):
        # Inserting an edge that creates no shorter path leaves depths
        # bit-identical (and must still return a fresh matrix).
        graph = line_graph(6)
        old = depths_for(graph, [0])
        overlay = GraphOverlay(graph)
        overlay.insert_edges([0], [1])  # duplicate of an existing edge
        new_graph, batch = overlay.commit()
        repaired, rounds = repair_depth_matrix(new_graph, batch, old)
        assert rounds == 0
        assert np.array_equal(repaired, old)
        assert repaired is not old

    def test_delete_batch_refused(self):
        graph = line_graph(4)
        old = depths_for(graph, [0])
        batch = MutationBatch.make(
            4, deletes=(np.array([0]), np.array([1]))
        )
        with pytest.raises(StreamError):
            repair_depth_matrix(graph, batch, old)

    def test_shape_mismatch_refused(self):
        graph = line_graph(4)
        batch = MutationBatch.make(
            4, inserts=(np.array([0]), np.array([2]))
        )
        with pytest.raises(StreamError):
            repair_depth_matrix(graph, batch, np.zeros((2, 9), np.int32))
