"""Micro-batcher: flush triggers, cohorts, coalescing, GroupBy formation."""

import pytest

from repro.errors import ServiceError
from repro.graph.generators import kronecker
from repro.service.batcher import MicroBatcher
from repro.service.request import PendingRequest, Request


@pytest.fixture(scope="module")
def graph():
    return kronecker(scale=8, edge_factor=8, seed=3)


def make_pending(request_id, source, arrival, max_depth=None):
    return PendingRequest(
        request_id=request_id,
        request=Request(source=source, max_depth=max_depth),
        arrival_time=arrival,
    )


class TestFlushTriggers:
    def test_size_ready_counts_requests(self, graph):
        batcher = MicroBatcher(graph, batch_size=3, flush_deadline=1.0)
        batcher.add(make_pending(0, 1, 0.0))
        batcher.add(make_pending(1, 2, 0.0))
        assert not batcher.size_ready()
        batcher.add(make_pending(2, 3, 0.0))
        assert batcher.size_ready()

    def test_repeat_sources_still_trigger_size_flush(self, graph):
        batcher = MicroBatcher(graph, batch_size=3, flush_deadline=1.0)
        for i in range(3):
            batcher.add(make_pending(i, 7, 0.0))
        assert batcher.size_ready()
        sources, batch = batcher.take_batch()
        assert sources == [7]
        assert len(batch) == 3
        assert len(batcher) == 0

    def test_deadline_is_oldest_arrival_plus_deadline(self, graph):
        batcher = MicroBatcher(graph, batch_size=8, flush_deadline=0.5)
        assert batcher.deadline_at() is None
        batcher.add(make_pending(0, 1, arrival=2.0))
        batcher.add(make_pending(1, 2, arrival=3.0))
        assert batcher.deadline_at() == pytest.approx(2.5)
        assert not batcher.deadline_ready(2.4)
        assert batcher.deadline_ready(2.5)

    def test_deadline_not_size(self, graph):
        """A partial pool flushes by deadline, never by size."""
        batcher = MicroBatcher(graph, batch_size=8, flush_deadline=0.5)
        batcher.add(make_pending(0, 1, 0.0))
        assert not batcher.size_ready()
        assert batcher.deadline_ready(0.5)


class TestCohorts:
    def test_mixed_depth_limits_do_not_batch_together(self, graph):
        batcher = MicroBatcher(graph, batch_size=2, flush_deadline=1.0)
        batcher.add(make_pending(0, 1, 0.0, max_depth=2))
        batcher.add(make_pending(1, 2, 0.0, max_depth=None))
        # Only one request matches the oldest's depth limit.
        assert not batcher.size_ready()
        sources, batch = batcher.take_batch()
        assert sources == [1]
        assert [p.request_id for p in batch] == [0]
        assert len(batcher) == 1  # the max_depth=None request remains


class TestBatchFormation:
    def test_batch_contains_oldest_request(self, graph):
        batcher = MicroBatcher(graph, batch_size=4, flush_deadline=1.0)
        for i, source in enumerate([30, 31, 32, 33, 34, 35]):
            batcher.add(make_pending(i, source, float(i)))
        sources, batch = batcher.take_batch()
        assert 30 in sources
        assert any(p.request_id == 0 for p in batch)
        assert len(sources) <= 4
        assert len(batcher) == 6 - len(batch)

    def test_fifo_formation_without_groupby(self, graph):
        batcher = MicroBatcher(
            graph, batch_size=2, flush_deadline=1.0, groupby=False
        )
        for i, source in enumerate([5, 9, 11]):
            batcher.add(make_pending(i, source, 0.0))
        sources, batch = batcher.take_batch()
        assert sources == [5, 9]
        assert len(batcher) == 1

    def test_groupby_batches_have_distinct_sources(self, graph):
        batcher = MicroBatcher(graph, batch_size=8, flush_deadline=1.0)
        for i in range(16):
            batcher.add(make_pending(i, i % 8, 0.0))
        sources, batch = batcher.take_batch()
        assert len(sources) == len(set(sources))
        # Every taken request's source is in the announced group.
        assert {p.source for p in batch} <= set(sources)

    def test_drop_removes_request(self, graph):
        batcher = MicroBatcher(graph, batch_size=8, flush_deadline=1.0)
        item = make_pending(0, 1, 0.0)
        batcher.add(item)
        batcher.drop(item)
        assert len(batcher) == 0
        assert batcher.deadline_at() is None


class TestValidation:
    def test_bad_parameters_rejected(self, graph):
        with pytest.raises(ServiceError):
            MicroBatcher(graph, batch_size=0, flush_deadline=1.0)
        with pytest.raises(ServiceError):
            MicroBatcher(graph, batch_size=4, flush_deadline=0.0)

    def test_take_batch_on_empty_raises(self, graph):
        batcher = MicroBatcher(graph, batch_size=4, flush_deadline=1.0)
        with pytest.raises(ServiceError):
            batcher.take_batch()
