"""CLI surface of the analytics layer: ``trace-report``, ``slo``,
``bench-diff``, and the ``serve --trace/--slo`` wiring that feeds
them."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.graph import kronecker, save_csr
from repro.obs import profile as obs_profile
from repro.obs import tracing

FIXTURES = str(Path(__file__).parent / "data")


@pytest.fixture(autouse=True)
def _isolate_obs():
    yield
    tracing.set_tracer(None)
    obs_profile.disable()


@pytest.fixture()
def saved_graph(tmp_path):
    graph = kronecker(scale=7, edge_factor=6, seed=61)
    path = tmp_path / "g.csr"
    save_csr(graph, str(path))
    return str(path)


@pytest.fixture()
def serve_trace(tmp_path, saved_graph):
    """A real trace file recorded through ``serve --trace --slo``."""
    trace = tmp_path / "serve.jsonl"
    rc = main([
        "serve", saved_graph, "--requests", "24", "--clients", "4",
        "--batch-size", "8", "--trace", str(trace), "--slo",
    ])
    assert rc == 0
    return str(trace)


# ----------------------------------------------------------------------
# serve --trace / --slo
# ----------------------------------------------------------------------
def test_serve_trace_writes_spans_and_prints_slo(
    tmp_path, saved_graph, capsys
):
    trace = tmp_path / "t.jsonl"
    rc = main([
        "serve", saved_graph, "--requests", "24", "--clients", "4",
        "--batch-size", "8", "--trace", str(trace), "--slo",
    ])
    out = capsys.readouterr().out
    assert rc == 0
    assert "slo               : 4 specs" in out
    assert "trace             :" in out
    records = [json.loads(line) for line in
               trace.read_text().splitlines() if line]
    kinds = {r.get("kind") for r in records}
    assert "span" in kinds and "metric" in kinds
    assert any(r.get("name") == "serve.batch" for r in records)


def test_serve_slo_with_churn(tmp_path, saved_graph, capsys):
    trace = tmp_path / "t.jsonl"
    rc = main([
        "serve", saved_graph, "--requests", "24", "--clients", "4",
        "--batch-size", "8", "--churn", "8", "--churn-inserts", "4",
        "--trace", str(trace), "--slo",
    ])
    assert rc == 0
    assert "slo               : 4 specs" in capsys.readouterr().out
    records = [json.loads(line) for line in
               trace.read_text().splitlines() if line]
    assert any(r.get("name") == "stream.mutate" for r in records)


# ----------------------------------------------------------------------
# trace-report
# ----------------------------------------------------------------------
def test_trace_report_renders_sections(serve_trace, capsys):
    rc = main(["trace-report", serve_trace])
    out = capsys.readouterr().out
    assert rc == 0
    assert "trace report" in out
    assert "top spans" in out
    assert "waves (" in out
    assert "substrate comparison" in out
    assert "serial" in out


def test_trace_report_is_deterministic_per_file(serve_trace, capsys):
    assert main(["trace-report", serve_trace]) == 0
    first = capsys.readouterr().out
    assert main(["trace-report", serve_trace]) == 0
    second = capsys.readouterr().out
    assert first == second


def test_trace_report_respects_limits(serve_trace, capsys):
    rc = main([
        "trace-report", serve_trace, "--top", "2",
        "--max-waves", "1", "--max-levels", "1",
    ])
    out = capsys.readouterr().out
    assert rc == 0
    assert "top spans (by self time, top 2)" in out
    assert "showing 1" in out


def test_trace_report_no_spans_errors(tmp_path, capsys):
    trace = tmp_path / "empty.jsonl"
    trace.write_text(json.dumps({"kind": "metric", "name": "x"}) + "\n")
    rc = main(["trace-report", str(trace)])
    assert rc == 1
    assert "no span records" in capsys.readouterr().err


# ----------------------------------------------------------------------
# slo
# ----------------------------------------------------------------------
def test_slo_replay_healthy_run(serve_trace, capsys):
    rc = main(["slo", serve_trace, "--check"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "slo report" in out
    assert "wave-p99-latency" in out
    assert "alerts (0)" in out


def test_slo_check_fails_on_seeded_breach(tmp_path, capsys):
    # One wave span lasting 10 simulated seconds: far past any latency
    # objective, so --check must exit nonzero.
    trace = tmp_path / "breach.jsonl"
    record = {
        "kind": "span", "name": "serve.batch", "span_id": "s1",
        "trace_id": "t", "parent_id": None, "start": 0.0, "end": 10.0,
        "process": "serve", "attrs": {}, "status": "ok",
    }
    trace.write_text(json.dumps(record) + "\n")
    rc = main(["slo", str(trace), "--check"])
    captured = capsys.readouterr()
    assert rc == 1
    assert "BREACHED" in captured.out
    assert "slo check failed" in captured.err


def test_slo_custom_specs_file(tmp_path, serve_trace, capsys):
    specs = tmp_path / "specs.json"
    specs.write_text(json.dumps([{
        "name": "generous", "signal": "wave_latency_seconds",
        "objective": 100.0, "reduce": "max", "window_seconds": 1e6,
    }]))
    rc = main(["slo", serve_trace, "--specs", str(specs), "--check"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "generous" in out
    assert "wave-p99-latency" not in out


# ----------------------------------------------------------------------
# bench-diff
# ----------------------------------------------------------------------
def test_bench_diff_flags_seeded_regression(capsys):
    rc = main([
        "bench-diff",
        f"{FIXTURES}/ledger_base.json",
        f"{FIXTURES}/ledger_regressed.json",
    ])
    captured = capsys.readouterr()
    assert rc == 1
    assert "REGRESSED" in captured.out
    assert "regression(s)" in captured.err


def test_bench_diff_self_is_clean(capsys):
    rc = main([
        "bench-diff",
        f"{FIXTURES}/ledger_base.json",
        f"{FIXTURES}/ledger_base.json",
    ])
    out = capsys.readouterr().out
    assert rc == 0
    assert "0 regressed" in out


def test_bench_diff_tolerance_silences_flags(capsys):
    rc = main([
        "bench-diff",
        f"{FIXTURES}/ledger_base.json",
        f"{FIXTURES}/ledger_regressed.json",
        "--tolerance", "2.0",
    ])
    assert rc == 0
    assert "0 regressed" in capsys.readouterr().out


def test_metrics_dump_still_reads_serve_trace(serve_trace, capsys):
    rc = main(["metrics-dump", serve_trace])
    out = capsys.readouterr().out
    assert rc == 0
    assert 'slo_burn_rate{slo="wave-p99-latency"}' in out
