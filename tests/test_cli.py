"""Command-line interface."""

import pytest

from repro.cli import main
from repro.graph.generators import kronecker
from repro.graph.io import load_csr, save_csr


@pytest.fixture
def saved_graph(tmp_path):
    graph = kronecker(scale=7, edge_factor=6, seed=61)
    target = tmp_path / "g.csr"
    save_csr(graph, target)
    return str(target), graph


class TestGenerate:
    def test_generates_and_saves(self, tmp_path, capsys):
        out = tmp_path / "k.csr"
        code = main([
            "generate", "--kind", "kronecker", "--scale", "7",
            "--edge-factor", "4", "--seed", "3", "--output", str(out),
        ])
        assert code == 0
        graph = load_csr(out)
        assert graph.num_vertices == 128
        assert "wrote kronecker graph" in capsys.readouterr().out

    def test_uniform_kind(self, tmp_path):
        out = tmp_path / "u.csr"
        assert main([
            "generate", "--kind", "uniform", "--scale", "6",
            "--edge-factor", "3", "--output", str(out),
        ]) == 0
        assert load_csr(out).num_vertices == 64


class TestInfo:
    def test_info_on_saved_graph(self, saved_graph, capsys):
        path, graph = saved_graph
        assert main(["info", path]) == 0
        out = capsys.readouterr().out
        assert f"vertices        : {graph.num_vertices}" in out
        assert "gini" in out

    def test_info_on_benchmark_name(self, capsys):
        assert main(["info", "PK"]) == 0
        assert "vertices" in capsys.readouterr().out


class TestRun:
    def test_run_prints_metrics(self, saved_graph, capsys):
        path, _ = saved_graph
        code = main(["run", path, "--sources", "16", "--group-size", "8"])
        assert code == 0
        out = capsys.readouterr().out
        assert "GTEPS" in out
        assert "sharing degree" in out

    def test_run_joint_no_groupby(self, saved_graph, capsys):
        path, _ = saved_graph
        assert main([
            "run", path, "--sources", "8", "--group-size", "4",
            "--mode", "joint", "--no-groupby",
        ]) == 0
        assert "ibfs-joint+random" in capsys.readouterr().out


class TestCompare:
    def test_ladder_has_all_engines(self, saved_graph, capsys):
        path, _ = saved_graph
        assert main([
            "compare", path, "--sources", "16", "--group-size", "8",
        ]) == 0
        out = capsys.readouterr().out
        for label in ("sequential", "naive", "joint", "bitwise", "groupby"):
            assert label in out


class TestGroups:
    def test_partition_printed(self, saved_graph, capsys):
        path, _ = saved_graph
        assert main([
            "groups", path, "--sources", "24", "--group-size", "8",
        ]) == 0
        out = capsys.readouterr().out
        assert "24 sources" in out
        assert "group   0" in out


class TestSSSPAndTopK:
    def test_sssp_verified(self, saved_graph, capsys):
        path, _ = saved_graph
        assert main(["sssp", path, "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "verified against Dijkstra: ok" in out

    def test_sssp_explicit_source(self, saved_graph, capsys):
        path, _ = saved_graph
        assert main(["sssp", path, "--source", "0"]) == 0
        assert "source            : 0" in capsys.readouterr().out

    def test_topk(self, capsys):
        assert main(["topk", "PK", "--k", "2"]) == 0
        out = capsys.readouterr().out
        assert "top-2 closeness" in out
        assert "closeness=" in out


class TestTraceAndMetricsDump:
    @pytest.fixture(autouse=True)
    def _reset_obs(self):
        yield
        from repro.obs import metrics, profile, tracing

        tracing.set_tracer(None)
        metrics.set_hub(None)
        profile.disable()

    def test_run_trace_writes_parented_spans(self, saved_graph, tmp_path,
                                             capsys):
        import json

        path, _ = saved_graph
        trace = tmp_path / "out.jsonl"
        assert main([
            "run", path, "--sources", "16", "--group-size", "8",
            "--trace", str(trace),
        ]) == 0
        assert f"trace             : {trace}" in capsys.readouterr().out
        records = [json.loads(line) for line in trace.read_text().splitlines()]
        spans = [r for r in records if r["kind"] == "span"]
        names = {s["name"] for s in spans}
        assert "run" in names
        assert "profile.level" in names
        roots = [s for s in spans if s["parent_id"] is None]
        assert [s["name"] for s in roots] == ["run"]

    def test_metrics_dump_renders_prometheus_text(self, saved_graph,
                                                  tmp_path, capsys):
        path, _ = saved_graph
        trace = tmp_path / "out.jsonl"
        assert main([
            "run", path, "--sources", "16", "--group-size", "8",
            "--workers", "2", "--trace", str(trace),
        ]) == 0
        capsys.readouterr()
        assert main(["metrics-dump", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "# TYPE exec_tasks_total counter" in out
        assert 'exec_task_wall_seconds_bucket{le="+Inf"}' in out
        assert "exec_task_wall_seconds_count" in out

    def test_metrics_dump_without_metrics_fails(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["metrics-dump", str(empty)]) == 1
        assert "no metric records" in capsys.readouterr().err


def test_missing_subcommand_exits():
    with pytest.raises(SystemExit):
        main([])
