"""Command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.graph.generators import kronecker
from repro.graph.io import load_csr, save_csr


@pytest.fixture
def saved_graph(tmp_path):
    graph = kronecker(scale=7, edge_factor=6, seed=61)
    target = tmp_path / "g.csr"
    save_csr(graph, target)
    return str(target), graph


class TestGenerate:
    def test_generates_and_saves(self, tmp_path, capsys):
        out = tmp_path / "k.csr"
        code = main([
            "generate", "--kind", "kronecker", "--scale", "7",
            "--edge-factor", "4", "--seed", "3", "--output", str(out),
        ])
        assert code == 0
        graph = load_csr(out)
        assert graph.num_vertices == 128
        assert "wrote kronecker graph" in capsys.readouterr().out

    def test_uniform_kind(self, tmp_path):
        out = tmp_path / "u.csr"
        assert main([
            "generate", "--kind", "uniform", "--scale", "6",
            "--edge-factor", "3", "--output", str(out),
        ]) == 0
        assert load_csr(out).num_vertices == 64


class TestInfo:
    def test_info_on_saved_graph(self, saved_graph, capsys):
        path, graph = saved_graph
        assert main(["info", path]) == 0
        out = capsys.readouterr().out
        assert f"vertices        : {graph.num_vertices}" in out
        assert "gini" in out

    def test_info_on_benchmark_name(self, capsys):
        assert main(["info", "PK"]) == 0
        assert "vertices" in capsys.readouterr().out


class TestRun:
    def test_run_prints_metrics(self, saved_graph, capsys):
        path, _ = saved_graph
        code = main(["run", path, "--sources", "16", "--group-size", "8"])
        assert code == 0
        out = capsys.readouterr().out
        assert "GTEPS" in out
        assert "sharing degree" in out

    def test_run_joint_no_groupby(self, saved_graph, capsys):
        path, _ = saved_graph
        assert main([
            "run", path, "--sources", "8", "--group-size", "4",
            "--mode", "joint", "--no-groupby",
        ]) == 0
        assert "ibfs-joint+random" in capsys.readouterr().out


class TestCompare:
    def test_ladder_has_all_engines(self, saved_graph, capsys):
        path, _ = saved_graph
        assert main([
            "compare", path, "--sources", "16", "--group-size", "8",
        ]) == 0
        out = capsys.readouterr().out
        for label in ("sequential", "naive", "joint", "bitwise", "groupby"):
            assert label in out


class TestGroups:
    def test_partition_printed(self, saved_graph, capsys):
        path, _ = saved_graph
        assert main([
            "groups", path, "--sources", "24", "--group-size", "8",
        ]) == 0
        out = capsys.readouterr().out
        assert "24 sources" in out
        assert "group   0" in out


class TestSSSPAndTopK:
    def test_sssp_verified(self, saved_graph, capsys):
        path, _ = saved_graph
        assert main(["sssp", path, "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "verified against Dijkstra: ok" in out

    def test_sssp_explicit_source(self, saved_graph, capsys):
        path, _ = saved_graph
        assert main(["sssp", path, "--source", "0"]) == 0
        assert "source            : 0" in capsys.readouterr().out

    def test_topk(self, capsys):
        assert main(["topk", "PK", "--k", "2"]) == 0
        out = capsys.readouterr().out
        assert "top-2 closeness" in out
        assert "closeness=" in out


def test_missing_subcommand_exits():
    with pytest.raises(SystemExit):
        main([])
