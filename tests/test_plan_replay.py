"""Record/replay bit-identity of traversal plans, end to end.

The planner's core contract: every run emits a
:class:`~repro.plan.RunPlan`, and replaying a recorded plan — directly
on an engine, through the process executor, or via the service layer's
plan cache — produces the same depths, the same simulated counters, and
the same per-level records, while skipping the heuristic evaluation
entirely.
"""

import numpy as np
import pytest

from repro.bfs import reference_bfs_multi
from repro.bfs.single import SingleBFS
from repro.core.bitwise import BitwiseTraversal
from repro.core.engine import IBFS, IBFSConfig
from repro.core.joint import JointTraversal
from repro.exec import ExecConfig, GroupExecutor
from repro.exec.shm import shared_memory_available
from repro.graph.generators import rmat, star
from repro.plan import (
    AdaptivePolicy,
    FixedPolicy,
    HeuristicPolicy,
    RunPlan,
)
from repro.service import BFSServer, Request, ServingConfig
from repro.service.cache import engine_cache_key

needs_shm = pytest.mark.skipif(
    not shared_memory_available(),
    reason="multiprocessing.shared_memory unavailable",
)

RNG = np.random.default_rng(31)


@pytest.fixture(scope="module")
def graph():
    return rmat(9, edge_factor=8, seed=3)


def group_of(graph, size, seed=0):
    rng = np.random.default_rng(seed)
    return rng.choice(graph.num_vertices, size=size, replace=False).tolist()


def assert_group_runs_equal(run_a, run_b):
    depths_a, record_a, stats_a = run_a
    depths_b, record_b, stats_b = run_b
    assert np.array_equal(depths_a, depths_b)
    assert record_a.counters.__dict__ == record_b.counters.__dict__
    assert record_a.levels == record_b.levels
    assert stats_a == stats_b  # GroupStats.plan is excluded from eq


# ----------------------------------------------------------------------
# Engines: record once, replay bit-identically
# ----------------------------------------------------------------------
class TestEngineReplay:
    def test_bitwise_replay(self, graph):
        engine = BitwiseTraversal(graph)
        group = group_of(graph, 32, seed=1)
        recorded = engine.run_group(group)
        plan = recorded[2].plan
        assert isinstance(plan, RunPlan)
        assert len(plan) == len(recorded[1].levels)
        replayed = engine.run_group(group, plan=plan)
        assert_group_runs_equal(recorded, replayed)
        # A replayed run re-records the same plan.
        assert replayed[2].plan == plan

    def test_bitwise_replay_json_round_trip(self, graph):
        engine = BitwiseTraversal(graph)
        group = group_of(graph, 16, seed=2)
        recorded = engine.run_group(group)
        plan = RunPlan.from_json(recorded[2].plan.to_json())
        replayed = engine.run_group(group, plan=plan)
        assert_group_runs_equal(recorded, replayed)

    def test_bitwise_replay_on_fresh_engine(self, graph):
        """A plan replays on an engine that never ran the heuristics —
        including one built over a planner that never goes bottom-up
        (the reverse CSR is built lazily for the replay)."""
        group = group_of(graph, 32, seed=3)
        recorded = BitwiseTraversal(graph).run_group(group)
        fresh = BitwiseTraversal(graph, planner=FixedPolicy(direction="td"))
        replayed = fresh.run_group(group, plan=recorded[2].plan)
        assert_group_runs_equal(recorded, replayed)

    def test_joint_replay(self, graph):
        engine = JointTraversal(graph)
        group = group_of(graph, 16, seed=4)
        recorded = engine.run_group(group)
        replayed = engine.run_group(group, plan=recorded[2].plan)
        assert_group_runs_equal(recorded, replayed)

    def test_single_replay(self, graph):
        engine = SingleBFS(graph)
        source = int(group_of(graph, 1, seed=5)[0])
        recorded = engine.run(source)
        assert recorded.plan is not None and len(recorded.plan) > 0
        replayed = engine.run(source, plan=recorded.plan)
        assert np.array_equal(recorded.depths, replayed.depths)
        assert (
            recorded.record.counters.__dict__
            == replayed.record.counters.__dict__
        )
        assert recorded.seconds == replayed.seconds
        assert replayed.plan == recorded.plan

    def test_ibfs_plans_property(self, graph):
        engine = IBFS(graph, IBFSConfig(group_size=16))
        sources = group_of(graph, 40, seed=6)
        result = engine.run(sources)
        plans = result.plans
        assert len(plans) == len(result.groups)
        assert all(isinstance(p, RunPlan) for p in plans)

    def test_ibfs_run_group_replay(self, graph):
        engine = IBFS(graph, IBFSConfig(group_size=16))
        group = group_of(graph, 16, seed=7)
        recorded = engine.run_group(group)
        replayed = engine.run_group(
            group, plan=recorded.groups[0].plan
        )
        assert np.array_equal(recorded.depths, replayed.depths)
        assert recorded.counters.__dict__ == replayed.counters.__dict__
        assert recorded.seconds == replayed.seconds


# ----------------------------------------------------------------------
# Cost-only knobs: full snapshots and kernel variants
# ----------------------------------------------------------------------
class TestCostOnlyKnobs:
    @pytest.mark.parametrize("make_graph", [lambda: rmat(8, 8, seed=5),
                                            lambda: star(200)])
    def test_full_snapshot_bit_identical(self, make_graph):
        g = make_graph()
        group = group_of(g, 32, seed=8)
        dirty = BitwiseTraversal(g).run_group(group)
        full = BitwiseTraversal(
            g, planner=HeuristicPolicy(snapshot="full")
        ).run_group(group)
        assert_group_runs_equal(dirty, full)

    def test_generic_kernel_bit_identical(self, graph):
        group = group_of(graph, 32, seed=9)
        auto = BitwiseTraversal(graph).run_group(group)
        generic = BitwiseTraversal(
            graph, planner=HeuristicPolicy(kernel="generic")
        ).run_group(group)
        assert_group_runs_equal(auto, generic)

    def test_adaptive_policy_depths_correct(self, graph):
        group = group_of(graph, 32, seed=10)
        depths, _, stats = BitwiseTraversal(
            graph, planner=AdaptivePolicy()
        ).run_group(group)
        assert np.array_equal(depths, reference_bfs_multi(graph, group))
        assert stats.plan.policy == "adaptive"


# ----------------------------------------------------------------------
# Through the process executor
# ----------------------------------------------------------------------
class TestExecutorReplay:
    def test_inprocess_replay(self, graph):
        group = group_of(graph, 16, seed=11)
        with GroupExecutor(
            graph,
            IBFSConfig(group_size=16),
            exec_config=ExecConfig(num_workers=0),
        ) as executor:
            recorded = executor.run_group(group)
            plan = recorded.groups[0].plan
            assert isinstance(plan, RunPlan)
            replayed = executor.run_group(group, plan=plan)
        assert np.array_equal(recorded.depths, replayed.depths)
        assert recorded.counters.__dict__ == replayed.counters.__dict__
        assert replayed.groups[0].plan == plan

    @needs_shm
    def test_worker_replay(self, graph):
        group = group_of(graph, 16, seed=12)
        serial = IBFS(graph, IBFSConfig(group_size=16)).run_group(group)
        plan = serial.groups[0].plan
        with GroupExecutor(
            graph,
            IBFSConfig(group_size=16),
            exec_config=ExecConfig(num_workers=2),
        ) as executor:
            results = executor.map_groups(
                [(group, None), (group, None, plan)]
            )
        for result in results:
            assert np.array_equal(result.depths, serial.depths)
            assert result.counters.__dict__ == serial.counters.__dict__
            # The plan ships back with the worker's GroupStats.
            assert result.groups[0].plan == plan


# ----------------------------------------------------------------------
# Through the service layer's plan cache
# ----------------------------------------------------------------------
class TestServicePlanCache:
    def make_server(self, graph, **serving_kwargs):
        serving = ServingConfig(
            batch_size=4,
            cache_capacity=0,  # force every request through traversal
            plan_cache_capacity=64,
            **serving_kwargs,
        )
        return BFSServer(
            graph, serving, engine_config=IBFSConfig(group_size=4)
        )

    def test_repeat_batches_hit_plan_cache(self, graph):
        server = self.make_server(graph)
        sources = group_of(graph, 4, seed=13)
        for _ in range(2):
            for source in sources:
                server.submit(Request(source=int(source)))
            server.drain()
        assert server.plan_cache.hits >= 1
        assert len(server.plan_cache) >= 1
        snapshot = server.metrics_snapshot()
        assert snapshot["plan_cache"]["hits"] == server.plan_cache.hits

    def test_replayed_batch_answers_identically(self, graph):
        server = self.make_server(graph)
        source = int(group_of(graph, 1, seed=14)[0])
        a = server.submit(Request(source=source, kind="closeness"))
        first = {r.request_id: r for r in server.drain()}
        b = server.submit(Request(source=source, kind="closeness"))
        second = {r.request_id: r for r in server.drain()}
        assert server.plan_cache.hits >= 1
        assert second[b].cached is False  # re-traversed, not result-cached
        assert first[a].status == second[b].status == "ok"
        assert first[a].value == second[b].value

    def test_plan_cache_capacity_zero_disables(self, graph):
        serving = ServingConfig(
            batch_size=4, cache_capacity=0, plan_cache_capacity=0
        )
        server = BFSServer(
            graph, serving, engine_config=IBFSConfig(group_size=4)
        )
        source = int(group_of(graph, 1, seed=15)[0])
        for _ in range(2):
            server.submit(Request(source=source))
            server.drain()
        assert server.plan_cache.hits == 0
        assert len(server.plan_cache) == 0

    def test_engine_key_carries_policy_name(self):
        config = IBFSConfig(group_size=8)
        base = engine_cache_key(config)
        heuristic = engine_cache_key(config, "heuristic")
        adaptive = engine_cache_key(config, "adaptive")
        assert base != heuristic
        assert heuristic != adaptive
        assert heuristic.endswith("-polheuristic")

    def test_servers_with_different_policies_do_not_share_keys(self, graph):
        plain = BFSServer(graph, engine_config=IBFSConfig(group_size=4))
        adaptive = BFSServer(
            graph,
            engine_config=IBFSConfig(group_size=4),
            planner=AdaptivePolicy(),
        )
        assert plain._engine_key != adaptive._engine_key
