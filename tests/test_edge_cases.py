"""Edge-case sweep across subsystems."""

import numpy as np
import pytest

from repro.errors import GroupingError, TraversalError
from repro.graph.builders import from_edges
from repro.graph.csr import empty_graph
from repro.graph.generators import kronecker, path
from repro.gpusim.cluster import Cluster
from repro.gpusim.config import KEPLER_K40
from repro.gpusim.counters import RunRecord
from repro.gpusim.device import Device
from repro.gpusim.energy import EnergyModel
from repro.gpusim.timing import CostModel, teps
from repro.gpusim.trace import summarize_record
from repro.bfs.naive import NaiveConcurrentBFS
from repro.bfs.reference import reference_bfs_multi
from repro.baselines import MSBFS, SpMMBC
from repro.core.engine import IBFS, IBFSConfig
from repro.core.groupby import GroupByConfig, group_sources


class TestDegenerateGraphs:
    def test_single_vertex_graph(self):
        g = empty_graph(1)
        result = IBFS(g, IBFSConfig(group_size=1)).run([0])
        assert result.depth(0, 0) == 0
        assert result.reached(0) == 1

    def test_single_self_loop(self):
        g = from_edges([(0, 0)])
        result = IBFS(g, IBFSConfig(group_size=1)).run([0])
        assert result.depth_row(0).tolist() == [0]

    def test_all_isolated_vertices(self):
        g = empty_graph(6)
        sources = [0, 3, 5]
        result = IBFS(g, IBFSConfig(group_size=2)).run(sources)
        assert np.array_equal(
            result.depths, reference_bfs_multi(g, sources)
        )

    def test_two_vertex_cycle(self):
        g = from_edges([(0, 1), (1, 0)])
        result = IBFS(g, IBFSConfig(group_size=2)).run([0, 1])
        assert result.depth(0, 1) == 1
        assert result.depth(1, 0) == 1


class TestEngineOptionCombos:
    @pytest.fixture(scope="class")
    def kron(self):
        return kronecker(scale=7, edge_factor=6, seed=191)

    def test_max_depth_with_groupby_and_cluster(self, kron):
        engine = IBFS(kron, IBFSConfig(group_size=8, groupby=True))
        result = engine.run(
            list(range(24)), max_depth=2, cluster=Cluster(3)
        )
        assert result.depths.max() <= 2
        assert result.seconds > 0

    def test_naive_with_max_depth(self, kron):
        result = NaiveConcurrentBFS(kron).run(list(range(8)), max_depth=1)
        assert result.depths.max() <= 1

    def test_msbfs_store_depths_false(self, kron):
        result = MSBFS(kron, group_size=4).run(
            list(range(8)), store_depths=False
        )
        assert result.depths is None
        assert result.teps > 0

    def test_spmm_on_disconnected(self):
        g = from_edges([(0, 1), (3, 4)], num_vertices=6, undirected=True)
        result = SpMMBC(g, group_size=3).run([0, 2, 3])
        assert np.array_equal(
            result.depths, reference_bfs_multi(g, [0, 2, 3])
        )

    def test_group_size_one_equals_sequential_depths(self, kron):
        sources = [1, 2, 3]
        one = IBFS(kron, IBFSConfig(group_size=1, groupby=False)).run(sources)
        assert np.array_equal(one.depths, reference_bfs_multi(kron, sources))


class TestGroupByEdgeCases:
    def test_more_group_size_than_sources(self):
        g = path(10)
        groups = group_sources(g, [0, 5], 64)
        assert groups == [[0, 5]] or groups == [[5, 0]]

    def test_single_source(self):
        g = path(10)
        assert group_sources(g, [3], 4) == [[3]]

    def test_p_sequence_ordering_enforced(self):
        with pytest.raises(GroupingError):
            GroupByConfig(p_sequence=(64, 4, 16))


class TestCostModelEdges:
    def test_teps_helper(self):
        assert teps(0, 1.0) == 0.0
        assert teps(10, 0.0) == 0.0

    def test_overlapped_with_empty_kernels(self):
        cost = CostModel(KEPLER_K40)
        assert cost.overlapped_time([[], []]) > 0  # launch waves only

    def test_serial_time_empty(self):
        cost = CostModel(KEPLER_K40)
        assert cost.serial_time([]) == 0.0

    def test_summarize_empty_record(self):
        summary = summarize_record(RunRecord(), CostModel(KEPLER_K40))
        assert summary["levels"] == 0
        assert summary["peak_frontier"] == 0

    def test_energy_custom_parameters(self):
        from repro.gpusim.counters import ProfilerCounters

        model = EnergyModel(
            dram_joules_per_byte=1.0,
            instruction_joules=0.0,
            atomic_joules=0.0,
            static_watts=0.0,
        )
        counters = ProfilerCounters(global_load_transactions=2)
        expected = 2 * KEPLER_K40.transaction_bytes
        assert model.total_energy(counters, KEPLER_K40, 1.0) == expected


class TestDeviceEdges:
    def test_zero_vertex_graph_capacity(self):
        g = empty_graph(0)
        device = Device()
        # Zero vertices -> zero per-instance storage; the engine layer
        # never runs on it (no sources exist), but the rule must not
        # divide by zero.
        assert device.max_group_size(g) == 0 or device.max_group_size(g) > 0

    def test_run_requires_sources(self):
        g = path(4)
        with pytest.raises(TraversalError):
            IBFS(g, IBFSConfig(group_size=2)).run([])
