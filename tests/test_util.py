"""Vectorized gather helpers."""

import numpy as np

from repro.graph.builders import from_edges
from repro.util import exclusive_cumsum, expand_ranges, gather_neighbors


def test_exclusive_cumsum():
    values = np.asarray([3, 1, 4])
    assert exclusive_cumsum(values).tolist() == [0, 3, 4]


def test_exclusive_cumsum_empty():
    assert exclusive_cumsum(np.asarray([], dtype=np.int64)).size == 0


def test_expand_ranges():
    starts = np.asarray([10, 20])
    widths = np.asarray([3, 2])
    assert expand_ranges(starts, widths).tolist() == [10, 11, 12, 20, 21]


def test_expand_ranges_with_zero_width():
    starts = np.asarray([5, 9, 100])
    widths = np.asarray([2, 0, 1])
    assert expand_ranges(starts, widths).tolist() == [5, 6, 100]


def test_expand_ranges_all_empty():
    assert expand_ranges(np.asarray([1, 2]), np.asarray([0, 0])).size == 0


def test_gather_neighbors_matches_per_vertex_lists():
    g = from_edges([(0, 1), (0, 2), (2, 0), (2, 1), (2, 2)], num_vertices=3)
    sources, neighbors = gather_neighbors(g, np.asarray([0, 2]))
    assert sources.tolist() == [0, 0, 2, 2, 2]
    assert neighbors.tolist() == [1, 2, 0, 1, 2]


def test_gather_neighbors_empty_frontier():
    g = from_edges([(0, 1)])
    sources, neighbors = gather_neighbors(g, np.asarray([], dtype=np.int64))
    assert sources.size == 0
    assert neighbors.size == 0
