"""Device configuration presets and validation."""

import pytest

from repro.errors import SimulationError
from repro.gpusim.config import KEPLER_K20, KEPLER_K40, XEON_CPU, DeviceConfig


def test_k40_preset_matches_paper_hardware():
    assert KEPLER_K40.cores == 2880
    assert KEPLER_K40.global_memory_bytes == 12 * 1024**3
    assert KEPLER_K40.warp_size == 32
    assert KEPLER_K40.is_gpu


def test_k20_is_smaller_than_k40():
    assert KEPLER_K20.cores < KEPLER_K40.cores
    assert KEPLER_K20.global_memory_bytes < KEPLER_K40.global_memory_bytes
    assert KEPLER_K20.memory_bandwidth < KEPLER_K40.memory_bandwidth


def test_cpu_preset_differs_in_kind():
    assert not XEON_CPU.is_gpu
    assert XEON_CPU.warp_size == 1
    assert XEON_CPU.context_switch_overhead_s > 0
    assert XEON_CPU.max_resident_threads < KEPLER_K40.max_resident_threads


def test_entries_per_transaction():
    assert KEPLER_K40.entries_per_transaction == 16  # 128 B / 8 B entries


def test_with_memory_returns_modified_copy():
    small = KEPLER_K40.with_memory(1024)
    assert small.global_memory_bytes == 1024
    assert small.cores == KEPLER_K40.cores
    assert KEPLER_K40.global_memory_bytes == 12 * 1024**3


def _cfg(**overrides):
    base = dict(
        name="test",
        is_gpu=True,
        num_sms=1,
        cores=32,
        clock_hz=1e9,
        warp_size=32,
        cta_size=128,
        max_resident_threads=1024,
        global_memory_bytes=1 << 30,
        memory_bandwidth=1e11,
        memory_latency_s=1e-7,
        transaction_bytes=128,
        instruction_throughput=1e12,
        atomic_throughput=1e10,
        kernel_launch_overhead_s=1e-7,
        level_sync_overhead_s=1e-8,
        hyperq_queues=4,
        context_switch_overhead_s=0.0,
    )
    base.update(overrides)
    return DeviceConfig(**base)


@pytest.mark.parametrize(
    "field,value",
    [
        ("warp_size", 0),
        ("transaction_bytes", -1),
        ("memory_bandwidth", 0.0),
        ("clock_hz", -1.0),
        ("max_resident_threads", 0),
    ],
)
def test_invalid_configs_rejected(field, value):
    with pytest.raises(SimulationError):
        _cfg(**{field: value})
