"""Shortest-path reconstruction from depth arrays."""

import numpy as np
import pytest

from repro.errors import TraversalError
from repro.graph.builders import from_edges
from repro.graph.generators import kronecker, path, star
from repro.bfs.reference import reference_bfs
from repro.bfs.paths import all_shortest_path_counts, extract_path, path_length
from repro.core.engine import IBFS, IBFSConfig


@pytest.fixture(scope="module")
def kron():
    return kronecker(scale=7, edge_factor=8, seed=101)


class TestExtractPath:
    def test_path_graph(self):
        g = path(6)
        depths = reference_bfs(g, 0)
        assert extract_path(g, 0, depths, 5) == [0, 1, 2, 3, 4, 5]

    def test_star_two_hops(self):
        g = star(6)
        depths = reference_bfs(g, 1)
        walk = extract_path(g, 1, depths, 4)
        assert walk == [1, 0, 4]

    def test_source_to_itself(self, kron):
        depths = reference_bfs(kron, 3)
        assert extract_path(kron, 3, depths, 3) == [3]

    def test_path_is_valid_and_shortest(self, kron):
        source = int(kron.out_degrees().argmax())
        depths = reference_bfs(kron, source)
        targets = np.flatnonzero(depths >= 2)[:10]
        for target in targets:
            walk = extract_path(kron, source, depths, int(target))
            assert walk[0] == source
            assert walk[-1] == target
            assert len(walk) == depths[target] + 1
            for u, v in zip(walk, walk[1:]):
                assert kron.has_edge(u, v)

    def test_engine_depths_work_too(self, kron):
        source = int(kron.out_degrees().argmax())
        result = IBFS(kron, IBFSConfig(group_size=4)).run([source])
        depths = result.depth_row(source)
        reachable = np.flatnonzero(depths == 2)
        if reachable.size:
            walk = extract_path(kron, source, depths, int(reachable[0]))
            assert len(walk) == 3

    def test_unreachable_target(self):
        g = from_edges([(0, 1)], num_vertices=3)
        depths = reference_bfs(g, 0)
        with pytest.raises(TraversalError, match="unreachable"):
            extract_path(g, 0, depths, 2)

    def test_wrong_source(self):
        g = path(4)
        depths = reference_bfs(g, 0)
        with pytest.raises(TraversalError, match="not a depth array"):
            extract_path(g, 1, depths, 3)

    def test_corrupt_depths_detected(self):
        g = path(4)
        depths = reference_bfs(g, 0)
        depths[2] = 5
        with pytest.raises(TraversalError):
            extract_path(g, 0, depths, 2)

    def test_target_out_of_range(self):
        g = path(3)
        with pytest.raises(TraversalError, match="out of range"):
            extract_path(g, 0, reference_bfs(g, 0), 99)


class TestPathLength:
    def test_matches_depth(self, kron):
        depths = reference_bfs(kron, 0)
        assert path_length(kron, 0, depths, 0) == 0
        some = int(np.flatnonzero(depths > 0)[0])
        assert path_length(kron, 0, depths, some) == depths[some]

    def test_unreachable_is_minus_one(self):
        g = from_edges([(0, 1)], num_vertices=3)
        assert path_length(g, 0, reference_bfs(g, 0), 2) == -1


class TestPathCounts:
    def test_diamond_has_two_paths(self):
        # 0 -> 1 -> 3 and 0 -> 2 -> 3.
        g = from_edges([(0, 1), (0, 2), (1, 3), (2, 3)])
        sigma = all_shortest_path_counts(g, 0)
        assert sigma.tolist() == [1.0, 1.0, 1.0, 2.0]

    def test_path_graph_single_paths(self):
        sigma = all_shortest_path_counts(path(5), 0)
        assert sigma.tolist() == [1.0] * 5

    def test_unreachable_has_zero_paths(self):
        g = from_edges([(0, 1)], num_vertices=3)
        assert all_shortest_path_counts(g, 0)[2] == 0.0
