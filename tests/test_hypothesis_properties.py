"""Property-based tests (hypothesis) on core invariants.

Random graphs and random source sets probe:

* every engine equals the oracle depth-for-depth;
* CSR structural invariants survive building and reversal;
* GroupBy always produces a partition;
* sharing degree is bounded by [1, N];
* BSA bits are monotone under traversal semantics.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph.builders import from_edge_arrays
from repro.graph.csr import VERTEX_DTYPE
from repro.bfs.reference import reference_bfs_multi
from repro.core.bitwise import BitwiseTraversal
from repro.core.engine import IBFS, IBFSConfig
from repro.core.groupby import GroupByConfig, group_sources
from repro.core.joint import JointTraversal

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def random_graphs(draw, max_vertices=40, max_edges=120):
    """Arbitrary directed graph with self-loops and multi-edges allowed."""
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    src = draw(
        st.lists(st.integers(0, n - 1), min_size=m, max_size=m)
    )
    dst = draw(
        st.lists(st.integers(0, n - 1), min_size=m, max_size=m)
    )
    undirected = draw(st.booleans())
    graph = from_edge_arrays(
        np.asarray(src, dtype=VERTEX_DTYPE),
        np.asarray(dst, dtype=VERTEX_DTYPE),
        num_vertices=n,
        undirected=undirected,
    )
    return graph


@st.composite
def graphs_with_sources(draw, max_sources=8):
    graph = draw(random_graphs())
    n = graph.num_vertices
    k = draw(st.integers(min_value=1, max_value=min(max_sources, n)))
    sources = draw(
        st.lists(
            st.integers(0, n - 1), min_size=k, max_size=k, unique=True
        )
    )
    return graph, sources


@SETTINGS
@given(graphs_with_sources())
def test_bitwise_matches_reference(case):
    graph, sources = case
    depths, _, _ = BitwiseTraversal(graph).run_group(sources)
    assert np.array_equal(depths, reference_bfs_multi(graph, sources))


@SETTINGS
@given(graphs_with_sources())
def test_joint_matches_reference(case):
    graph, sources = case
    depths, _, _ = JointTraversal(graph).run_group(sources)
    assert np.array_equal(depths, reference_bfs_multi(graph, sources))


@SETTINGS
@given(graphs_with_sources())
def test_full_ibfs_matches_reference(case):
    graph, sources = case
    result = IBFS(graph, IBFSConfig(group_size=4)).run(sources)
    assert np.array_equal(result.depths, reference_bfs_multi(graph, sources))


@SETTINGS
@given(random_graphs())
def test_csr_invariants(graph):
    assert graph.row_offsets[0] == 0
    assert graph.row_offsets[-1] == graph.num_edges
    assert (np.diff(graph.row_offsets) >= 0).all()
    assert int(graph.out_degrees().sum()) == graph.num_edges


@SETTINGS
@given(random_graphs())
def test_reverse_is_involution(graph):
    rev = graph.reverse()
    assert rev.num_edges == graph.num_edges
    src, dst = graph.edge_array()
    rsrc, rdst = rev.edge_array()
    fwd = sorted(zip(src.tolist(), dst.tolist()))
    bwd = sorted(zip(rdst.tolist(), rsrc.tolist()))
    assert fwd == bwd


@SETTINGS
@given(graphs_with_sources())
def test_groupby_is_partition(case):
    graph, sources = case
    groups = group_sources(graph, sources, 3, GroupByConfig(q=2))
    flat = sorted(s for g in groups for s in g)
    assert flat == sorted(sources)
    assert all(1 <= len(g) <= 3 for g in groups)


@SETTINGS
@given(graphs_with_sources())
def test_sharing_degree_bounds(case):
    graph, sources = case
    _, _, stats = BitwiseTraversal(graph).run_group(sources)
    if stats.sharing_degree:
        assert 1.0 <= stats.sharing_degree <= len(sources) + 1e-9
        assert stats.sharing_ratio <= 1.0 + 1e-9


@SETTINGS
@given(graphs_with_sources())
def test_early_termination_never_increases_work(case):
    graph, sources = case
    _, fast, _ = BitwiseTraversal(graph).run_group(sources)
    _, slow, _ = BitwiseTraversal(
        graph, early_termination=False
    ).run_group(sources)
    assert (
        fast.counters.bottom_up_inspections
        <= slow.counters.bottom_up_inspections
    )


@SETTINGS
@given(graphs_with_sources())
def test_depth_limited_prefix_consistency(case):
    """Depths computed with max_depth=k agree with the unlimited run on
    every vertex within k, and mark everything else unvisited."""
    graph, sources = case
    engine = IBFS(graph, IBFSConfig(group_size=4))
    full = engine.run(sources).depths
    limited = engine.run(sources, max_depth=2).depths
    within = (full >= 0) & (full <= 2)
    assert np.array_equal(limited[within], full[within])
    assert (limited[~within] == -1).all()
