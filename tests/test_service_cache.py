"""LRU result cache: hit/miss accounting, eviction order, fingerprints."""

import numpy as np
import pytest

from repro.errors import ServiceError
from repro.graph.generators import kronecker
from repro.core.engine import IBFSConfig
from repro.service.cache import ResultCache, engine_cache_key, graph_cache_id


def row(n):
    return np.full(4, n, dtype=np.int32)


class TestHitMiss:
    def test_miss_then_hit(self):
        cache = ResultCache(capacity=4)
        key = cache.key("g", 1, "e", None)
        assert cache.get(key) is None
        cache.put(key, row(1))
        got = cache.get(key)
        assert got is not None and got[0] == 1
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_rate == pytest.approx(0.5)

    def test_distinct_keys_do_not_alias(self):
        cache = ResultCache(capacity=8)
        cache.put(cache.key("g", 1, "e", None), row(1))
        assert cache.get(cache.key("g", 2, "e", None)) is None
        assert cache.get(cache.key("g2", 1, "e", None)) is None
        assert cache.get(cache.key("g", 1, "e2", None)) is None
        assert cache.get(cache.key("g", 1, "e", 3)) is None

    def test_hit_rate_zero_before_lookups(self):
        assert ResultCache(capacity=4).hit_rate == 0.0


class TestEviction:
    def test_lru_eviction_order(self):
        cache = ResultCache(capacity=2)
        a, b, c = (ResultCache.key("g", i, "e", None) for i in (1, 2, 3))
        cache.put(a, row(1))
        cache.put(b, row(2))
        cache.get(a)  # refresh a: b is now least recently used
        cache.put(c, row(3))
        assert cache.get(b) is None  # evicted
        assert cache.get(a) is not None
        assert cache.get(c) is not None
        assert cache.evictions == 1
        assert len(cache) == 2

    def test_put_refreshes_recency(self):
        cache = ResultCache(capacity=2)
        a, b, c = (ResultCache.key("g", i, "e", None) for i in (1, 2, 3))
        cache.put(a, row(1))
        cache.put(b, row(2))
        cache.put(a, row(10))  # refresh via put
        cache.put(c, row(3))
        assert cache.get(b) is None
        assert cache.get(a)[0] == 10

    def test_zero_capacity_disables_caching(self):
        cache = ResultCache(capacity=0)
        key = cache.key("g", 1, "e", None)
        cache.put(key, row(1))
        assert cache.get(key) is None
        assert len(cache) == 0
        assert cache.misses == 1

    def test_negative_capacity_rejected(self):
        with pytest.raises(ServiceError):
            ResultCache(capacity=-1)


class TestFingerprints:
    def test_graph_id_is_content_stable(self):
        a = kronecker(scale=6, edge_factor=4, seed=9)
        b = kronecker(scale=6, edge_factor=4, seed=9)
        c = kronecker(scale=6, edge_factor=4, seed=10)
        assert graph_cache_id(a) == graph_cache_id(b)
        assert graph_cache_id(a) != graph_cache_id(c)

    def test_engine_key_tracks_config(self):
        base = engine_cache_key(IBFSConfig())
        assert engine_cache_key(IBFSConfig()) == base
        assert engine_cache_key(IBFSConfig(mode="joint")) != base
        assert engine_cache_key(IBFSConfig(group_size=16)) != base
        assert engine_cache_key(IBFSConfig(early_termination=False)) != base

    def test_stats_payload(self):
        cache = ResultCache(capacity=2)
        key = cache.key("g", 1, "e", None)
        cache.get(key)
        cache.put(key, row(1))
        cache.get(key)
        stats = cache.stats()
        assert stats == {
            "capacity": 2,
            "entries": 1,
            "hits": 1,
            "misses": 1,
            "evictions": 0,
            "invalidations": 0,
            "hit_rate": 0.5,
        }
