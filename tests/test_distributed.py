"""Distributed iBFS front-end."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.graph.generators import kronecker
from repro.gpusim.config import KEPLER_K20
from repro.bfs.reference import reference_bfs_multi
from repro.core.distributed import DistributedIBFS
from repro.core.engine import IBFSConfig


@pytest.fixture(scope="module")
def kron():
    return kronecker(scale=8, edge_factor=8, seed=161)


@pytest.fixture(scope="module")
def engine(kron):
    return DistributedIBFS(
        kron, num_devices=4, config=IBFSConfig(group_size=8)
    )


class TestConstruction:
    def test_invalid_device_count(self, kron):
        with pytest.raises(SimulationError):
            DistributedIBFS(kron, 0)

    def test_graph_must_fit(self, kron):
        tiny = KEPLER_K20.with_memory(16)
        with pytest.raises(SimulationError, match="does not fit"):
            DistributedIBFS(kron, 2, device_config=tiny)


class TestRun:
    def test_depths_exact(self, kron, engine):
        sources = list(range(0, 64, 2))
        result = engine.run(sources, store_depths=True)
        assert np.array_equal(
            result.local.depths, reference_bfs_multi(kron, sources)
        )

    def test_makespan_bounds(self, kron, engine):
        sources = list(range(64))
        result = engine.run(sources)
        serial = float(result.device_times.sum())
        assert result.makespan <= serial
        assert result.makespan >= serial / engine.num_devices - 1e-15

    def test_speedup_and_efficiency(self, kron, engine):
        sources = list(range(64))
        result = engine.run(sources)
        assert 1.0 <= result.speedup <= engine.num_devices
        assert 0 < result.efficiency <= 1.0
        assert result.imbalance >= 1.0

    def test_assignment_covers_all_groups(self, kron, engine):
        sources = list(range(64))
        result = engine.run(sources)
        assigned = [
            g
            for device in range(result.num_devices)
            for g in result.groups_on_device(device)
        ]
        assert sorted(assigned) == list(range(len(result.local.groups)))

    def test_groups_on_device_bounds(self, kron, engine):
        result = engine.run(list(range(16)))
        with pytest.raises(SimulationError):
            result.groups_on_device(99)

    def test_teps_uses_makespan(self, kron, engine):
        sources = list(range(64))
        result = engine.run(sources)
        assert result.teps == pytest.approx(
            result.local.counters.edges_traversed / result.makespan
        )
        assert result.teps > result.local.teps  # parallel speedup


class TestStrongScaling:
    def test_monotone_speedup(self, kron):
        engine = DistributedIBFS(
            kron, num_devices=1, config=IBFSConfig(group_size=4)
        )
        sources = list(range(128))
        results = engine.strong_scaling(sources, [1, 2, 4, 8])
        speedups = [r.speedup for r in results]
        assert speedups[0] == pytest.approx(1.0)
        assert all(b >= a - 1e-12 for a, b in zip(speedups, speedups[1:]))
        assert speedups[-1] > 4.0
