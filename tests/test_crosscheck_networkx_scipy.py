"""Cross-validation against networkx and scipy.

Everything in this repository is implemented from scratch; these tests
check the core algorithms against two independent, widely-used
implementations — BFS depths, weighted shortest paths, connected
components, betweenness, closeness, and shortest-path counts.
"""

import networkx as nx
import numpy as np
import pytest
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import (
    bellman_ford as scipy_bellman_ford,
    connected_components as scipy_components,
    dijkstra as scipy_dijkstra,
    shortest_path as scipy_shortest_path,
)

from repro.graph.builders import from_edges, simplify, to_undirected
from repro.graph.generators import kronecker, scale_free, uniform_random
from repro.graph.properties import connected_components
from repro.graph.weighted import with_random_weights
from repro.bfs.reference import reference_bfs
from repro.bfs.sssp import bellman_ford, dijkstra
from repro.bfs.paths import all_shortest_path_counts
from repro.core.engine import IBFS, IBFSConfig
from repro.apps.betweenness import betweenness_centrality
from repro.apps.closeness import closeness_centrality
from repro.apps.components import connected_components_concurrent


def _to_nx(graph, directed=True):
    g = nx.DiGraph() if directed else nx.Graph()
    g.add_nodes_from(range(graph.num_vertices))
    g.add_edges_from(graph.edges())
    return g


def _to_scipy(graph, weights=None):
    """Sparse adjacency with parallel edges collapsed to the *minimum*
    weight (csr_matrix construction would otherwise sum duplicates,
    which no shortest-path semantics wants)."""
    src, dst = graph.edge_array()
    data = weights if weights is not None else np.ones(src.size)
    n = graph.num_vertices
    dense_key = src * n + dst
    order = np.argsort(dense_key, kind="stable")
    key_sorted = dense_key[order]
    data_sorted = data[order]
    boundaries = np.flatnonzero(
        np.concatenate([[True], key_sorted[1:] != key_sorted[:-1]])
    )
    min_data = np.minimum.reduceat(data_sorted, boundaries)
    unique_keys = key_sorted[boundaries]
    return csr_matrix(
        (min_data, (unique_keys // n, unique_keys % n)), shape=(n, n)
    )


@pytest.fixture(scope="module")
def kron():
    return kronecker(scale=7, edge_factor=6, seed=151)


@pytest.fixture(scope="module")
def weighted(kron):
    return with_random_weights(kron, low=1.0, high=5.0, seed=152)


class TestBFSDepths:
    def test_reference_matches_networkx(self, kron):
        nxg = _to_nx(kron)
        for source in (0, 9, 77):
            ours = reference_bfs(kron, source)
            theirs = nx.single_source_shortest_path_length(nxg, source)
            for v in range(kron.num_vertices):
                expected = theirs.get(v, -1)
                assert ours[v] == expected, (source, v)

    def test_engine_matches_scipy_unweighted(self, kron):
        matrix = _to_scipy(kron)
        sources = [3, 40, 90]
        result = IBFS(kron, IBFSConfig(group_size=4)).run(sources)
        scipy_dist = scipy_shortest_path(
            matrix, method="D", unweighted=True, indices=sources
        )
        for row, s in enumerate(sources):
            ours = result.depth_row(s).astype(float)
            ours[ours < 0] = np.inf
            assert np.array_equal(ours, scipy_dist[row])


class TestWeightedPaths:
    def test_dijkstra_matches_scipy(self, kron, weighted):
        matrix = _to_scipy(kron, weighted.weights)
        for source in (0, 25, 60):
            ours = dijkstra(weighted, source)
            theirs = scipy_dijkstra(matrix, indices=source)
            assert np.allclose(ours, theirs, equal_nan=True)

    def test_bellman_ford_matches_scipy(self, kron, weighted):
        matrix = _to_scipy(kron, weighted.weights)
        ours = bellman_ford(weighted, 5)
        theirs = scipy_bellman_ford(matrix, indices=5)
        assert np.allclose(ours, theirs, equal_nan=True)


class TestComponents:
    def test_labels_match_scipy(self):
        graph = uniform_random(150, 2, seed=153)
        matrix = _to_scipy(graph)
        count, scipy_labels = scipy_components(matrix, connection="weak")
        ours = connected_components(graph)
        # Same partition (label values differ; compare partition shape).
        assert np.unique(ours).size == count
        for label in np.unique(scipy_labels):
            members = np.flatnonzero(scipy_labels == label)
            assert np.unique(ours[members]).size == 1

    def test_concurrent_labels_match_scipy(self):
        graph = from_edges(
            [(0, 1), (2, 3), (3, 4), (6, 7)], num_vertices=9, undirected=True
        )
        matrix = _to_scipy(graph)
        count, _ = scipy_components(matrix, connection="weak")
        ours = connected_components_concurrent(graph, batch_size=3)
        assert np.unique(ours).size == count


class TestCentrality:
    def test_betweenness_matches_networkx(self):
        # networkx's DiGraph collapses parallel edges, so compare on the
        # simplified graph (standard simple-graph betweenness).
        graph = simplify(scale_free(120, 3, seed=154))
        nxg = _to_nx(graph)
        ours = betweenness_centrality(graph, normalized=True)
        theirs = nx.betweenness_centrality(nxg, normalized=True)
        for v in range(graph.num_vertices):
            assert ours[v] == pytest.approx(theirs[v], abs=1e-9)

    def test_closeness_matches_networkx(self, kron):
        # networkx's closeness uses incoming distances on digraphs with
        # the Wasserman-Faust improvement; compare on the reverse graph.
        engine = IBFS(kron, IBFSConfig(group_size=16))
        sample = list(range(0, 64, 4))
        ours = closeness_centrality(kron, engine, sources=sample)
        nxg = _to_nx(kron.reverse())
        for v in sample:
            theirs = nx.closeness_centrality(
                nxg, u=v, wf_improved=True
            )
            assert ours[v] == pytest.approx(theirs, abs=1e-9)

    def test_path_counts_match_networkx(self):
        graph = to_undirected(from_edges(
            [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (1, 4)]
        ))
        sigma = all_shortest_path_counts(graph, 0)
        nxg = _to_nx(graph)
        for target in range(1, 5):
            paths = list(
                nx.all_shortest_paths(nxg, 0, target)
            )
            assert sigma[target] == len(paths)
