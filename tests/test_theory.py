"""Empirical checks of the paper's sharing theory (section 5.1)."""

import pytest

from repro.errors import GroupingError
from repro.graph.generators import kronecker, scale_free
from repro.core.groupby import GroupByConfig, group_sources, random_groups
from repro.core.theory import (
    early_sharing_predicts_speedup,
    early_sharing_rank,
    verify_lemma1,
)


@pytest.fixture(scope="module")
def kron():
    return kronecker(scale=8, edge_factor=8, seed=81)


class TestLemma1:
    def test_sd_tracks_inspection_speedup(self, kron):
        """Lemma 1: SD equals the expected joint-over-sequential speedup
        (inspection-counted); measured gap should be small."""
        report = verify_lemma1(kron, list(range(16)))
        assert report.sharing_degree > 1.0
        assert report.inspection_speedup > 1.0
        assert report.relative_gap < 0.35

    def test_single_instance_group_has_sd_one(self, kron):
        source = int(kron.out_degrees().argmax())  # guaranteed non-isolated
        report = verify_lemma1(kron, [source])
        assert report.sharing_degree == pytest.approx(1.0, rel=0.01)
        assert report.inspection_speedup == pytest.approx(1.0, rel=0.01)

    def test_higher_sd_means_higher_speedup(self, kron):
        # A hub-sharing group vs a random group: SD ordering must match
        # inspection-speedup ordering (the lemma's content).
        hub_groups = group_sources(
            kron, list(range(64)), 8, GroupByConfig(q=32)
        )
        reports = [verify_lemma1(kron, g) for g in hub_groups[:4]]
        sds = [r.sharing_degree for r in reports]
        speedups = [r.inspection_speedup for r in reports]
        best_sd = sds.index(max(sds))
        best_speedup = speedups.index(max(speedups))
        assert (
            best_sd == best_speedup
            or abs(sds[best_sd] - sds[best_speedup]) / sds[best_sd] < 0.1
        )

    def test_empty_group_rejected(self, kron):
        with pytest.raises(GroupingError):
            verify_lemma1(kron, [])


class TestTheorem1:
    def test_early_sharing_ranks_groups(self, kron):
        groups = random_groups(list(range(96)), 12, seed=5)
        correlation = early_sharing_predicts_speedup(kron, groups)
        assert correlation > 0.3

    def test_strong_signal_on_scale_free(self):
        graph = scale_free(500, 4, seed=82)
        grouped = group_sources(graph, list(range(72)), 12, GroupByConfig(q=16))
        randoms = random_groups(list(range(72, 144)), 12, seed=6)
        pairs = early_sharing_rank(graph, [*grouped[:3], *randoms[:3]])
        assert len(pairs) == 6
        assert all(overall >= 1.0 for _, overall in pairs)

    def test_needs_two_groups(self, kron):
        with pytest.raises(GroupingError):
            early_sharing_predicts_speedup(kron, [[0, 1]])
