"""Unit tests of the planner's typed decisions and run plans."""

import pickle

import pytest

from repro.errors import TraversalError
from repro.plan import (
    Direction,
    KERNEL_VARIANTS,
    LevelDecision,
    RunPlan,
    SNAPSHOT_STRATEGIES,
    VECTOR_WIDTHS,
)

TD = Direction.TOP_DOWN
BU = Direction.BOTTOM_UP


def decision(**kwargs):
    kwargs.setdefault("directions", (TD, TD, BU))
    return LevelDecision(**kwargs)


class TestLevelDecision:
    def test_defaults(self):
        d = decision()
        assert d.kernel == "auto"
        assert d.vector_width == 1
        assert d.snapshot == "dirty"
        assert d.early_termination is True

    def test_counts(self):
        d = decision()
        assert d.num_instances == 3
        assert d.top_down == 2
        assert d.bottom_up == 1

    def test_rejects_empty_directions(self):
        with pytest.raises(TraversalError):
            LevelDecision(directions=())

    def test_rejects_non_direction_entries(self):
        with pytest.raises(TraversalError):
            LevelDecision(directions=("td", "bu"))

    @pytest.mark.parametrize("width", [0, 3, 8, -1])
    def test_rejects_bad_vector_width(self, width):
        with pytest.raises(TraversalError):
            decision(vector_width=width)

    def test_rejects_bad_kernel(self):
        with pytest.raises(TraversalError):
            decision(kernel="warp")

    def test_rejects_bad_snapshot(self):
        with pytest.raises(TraversalError):
            decision(snapshot="incremental")

    @pytest.mark.parametrize("kernel", KERNEL_VARIANTS)
    @pytest.mark.parametrize("width", VECTOR_WIDTHS)
    @pytest.mark.parametrize("snapshot", SNAPSHOT_STRATEGIES)
    def test_accepts_full_matrix(self, kernel, width, snapshot):
        d = decision(kernel=kernel, vector_width=width, snapshot=snapshot)
        assert d.kernel == kernel

    def test_dict_round_trip(self):
        d = decision(
            kernel="generic",
            vector_width=4,
            snapshot="full",
            early_termination=False,
        )
        assert LevelDecision.from_dict(d.to_dict()) == d

    def test_from_dict_rejects_malformed(self):
        with pytest.raises(TraversalError):
            LevelDecision.from_dict({"directions": ["sideways"]})
        with pytest.raises(TraversalError):
            LevelDecision.from_dict({})

    def test_from_dict_rejects_unknown_kernel_with_typed_error(self):
        # Payloads are how plans from newer hosts arrive; an unknown
        # variant must fail with the constructor's exact message, not
        # slip through to engine dispatch.
        payload = decision().to_dict()
        payload["kernel"] = "warp"
        with pytest.raises(TraversalError, match="kernel must be one of"):
            LevelDecision.from_dict(payload)
        try:
            decision(kernel="warp")
        except TraversalError as exc:
            constructor_message = str(exc)
        with pytest.raises(TraversalError) as info:
            LevelDecision.from_dict(payload)
        assert str(info.value) == constructor_message

    def test_native_dict_round_trip(self):
        d = decision(kernel="native", snapshot="full")
        assert LevelDecision.from_dict(d.to_dict()) == d


class TestRunPlan:
    def make_plan(self):
        plan = RunPlan(policy="heuristic", engine="bitwise", group_size=3)
        plan.append(decision())
        plan.append(decision(directions=(BU, BU, BU), vector_width=2))
        return plan

    def test_len_and_iter(self):
        plan = self.make_plan()
        assert len(plan) == 2
        assert [d.bottom_up for d in plan] == [1, 3]

    def test_append_validates_instance_count(self):
        plan = RunPlan(policy="p", engine="e", group_size=2)
        with pytest.raises(TraversalError):
            plan.append(decision())  # 3 instances into a 2-wide plan

    def test_needs_bottom_up(self):
        td_only = RunPlan(policy="p", engine="e", group_size=1)
        td_only.append(LevelDecision(directions=(TD,)))
        assert not td_only.needs_bottom_up
        assert self.make_plan().needs_bottom_up

    def make_native_plan(self):
        # The shape a native-host recording produces: every decision
        # names the compiled variant explicitly.
        plan = RunPlan(policy="adaptive", engine="bitwise", group_size=3)
        plan.append(decision(kernel="native"))
        plan.append(decision(directions=(BU, BU, BU), kernel="native"))
        return plan

    def test_json_round_trip(self):
        plan = self.make_plan()
        assert RunPlan.from_json(plan.to_json()) == plan

    def test_pickle_round_trip(self):
        plan = self.make_plan()
        assert pickle.loads(pickle.dumps(plan)) == plan

    def test_native_json_round_trip(self):
        plan = self.make_native_plan()
        restored = RunPlan.from_json(plan.to_json())
        assert restored == plan
        assert all(d.kernel == "native" for d in restored)

    def test_native_pickle_round_trip(self):
        plan = self.make_native_plan()
        assert pickle.loads(pickle.dumps(plan)) == plan

    def test_from_json_rejects_malformed(self):
        with pytest.raises(TraversalError):
            RunPlan.from_json("not json at all {")
        with pytest.raises(TraversalError):
            RunPlan.from_json('{"engine": "bitwise"}')
