"""The unified bench ledger: schema, legacy conversion, diffing."""

import json
from pathlib import Path

import pytest

from repro.errors import ObservabilityError
from repro.obs.ledger import (
    HIGHER_IS_BETTER,
    LEDGER_SCHEMA,
    LOWER_IS_BETTER,
    Ledger,
    LedgerEntry,
    MetricPoint,
    diff_ledgers,
    direction_for,
    load_ledger,
    render_diff,
    save_ledger,
)

FIXTURES = str(Path(__file__).parent / "data")
REPO_ROOT = str(Path(__file__).parent.parent)


def make_ledger(**metrics):
    return Ledger(
        benchmark="t",
        mode="quick",
        entries=[LedgerEntry(
            name="e",
            metrics={k: MetricPoint(value=v, direction=direction_for(k))
                     for k, v in metrics.items()},
        )],
    )


class TestDirections:
    @pytest.mark.parametrize("name", [
        "throughput_teps", "speedup", "cache_hit_rate", "hits", "qps",
    ])
    def test_higher_is_better(self, name):
        assert direction_for(name) == HIGHER_IS_BETTER

    @pytest.mark.parametrize("name", [
        "run_seconds", "overhead", "nbytes", "rounds", "latency_p99",
    ])
    def test_lower_is_better(self, name):
        assert direction_for(name) == LOWER_IS_BETTER


class TestSchema:
    def test_round_trip(self, tmp_path):
        ledger = Ledger(
            benchmark="serve",
            mode="full",
            meta={"repeats": 3},
            entries=[LedgerEntry(
                name="a",
                metrics={"run_seconds": MetricPoint(0.5, unit="s")},
                attrs={"batch_size": 32},
            )],
        )
        path = tmp_path / "ledger.json"
        save_ledger(ledger, str(path))
        loaded = load_ledger(str(path))
        assert loaded.to_dict() == ledger.to_dict()
        assert loaded.entry("a").metrics["run_seconds"].unit == "s"
        assert loaded.entry("missing") is None

    def test_from_dict_rejects_wrong_schema(self):
        with pytest.raises(ObservabilityError, match="not a bench ledger"):
            Ledger.from_dict({"schema": "v0", "entries": []})

    def test_from_dict_rejects_duplicate_names(self):
        payload = {
            "schema": LEDGER_SCHEMA,
            "entries": [{"name": "a"}, {"name": "a"}],
        }
        with pytest.raises(ObservabilityError, match="unique"):
            Ledger.from_dict(payload)


class TestLegacyConversion:
    def test_numeric_leaves_become_metrics(self):
        payload = {
            "benchmark": "serve",
            "mode": "quick",
            "repeats": 3,
            "results": [{
                "name": "batch32",
                "run_seconds": 0.5,
                "throughput_teps": 1e6,
                "engine": "bitwise",
                "cache": {"hits": 10, "misses": 2},
                "depths": [1, 2, 3],
                "converged": True,
            }],
        }
        ledger = Ledger.from_legacy(payload)
        assert ledger.benchmark == "serve"
        assert ledger.meta == {
            "benchmark": "serve", "mode": "quick", "repeats": 3,
        }
        (entry,) = ledger.entries
        assert entry.name == "batch32"
        assert entry.metrics["run_seconds"].value == 0.5
        assert entry.metrics["run_seconds"].direction == LOWER_IS_BETTER
        assert entry.metrics["throughput_teps"].direction == HIGHER_IS_BETTER
        # Nested dicts flatten by dotted path.
        assert entry.metrics["cache.hits"].value == 10.0
        # Non-numerics (and bools, and lists) land in attrs.
        assert entry.attrs["engine"] == "bitwise"
        assert entry.attrs["converged"] is True
        assert entry.attrs["depths"] == [1, 2, 3]

    def test_nameless_entries_use_discriminator_then_position(self):
        payload = {"results": [
            {"insert_fraction": 0.5, "seconds": 1.0},
            {"seconds": 2.0},
        ]}
        ledger = Ledger.from_legacy(payload)
        assert [e.name for e in ledger.entries] == [
            "insert_fraction=0.5", "entry-1",
        ]

    def test_duplicate_names_deduped(self):
        payload = {"results": [
            {"name": "a", "seconds": 1.0},
            {"name": "a", "seconds": 2.0},
        ]}
        ledger = Ledger.from_legacy(payload)
        assert [e.name for e in ledger.entries] == ["a", "a#2"]

    def test_missing_results_rejected(self):
        with pytest.raises(ObservabilityError, match="results"):
            Ledger.from_legacy({"results": "nope"})

    def test_load_ledger_sniffs_legacy(self, tmp_path):
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps({
            "benchmark": "old", "results": [{"name": "x", "seconds": 1.0}],
        }))
        ledger = load_ledger(str(path))
        assert ledger.benchmark == "old"
        assert ledger.entry("x").metrics["seconds"].value == 1.0

    def test_repo_bench_obs_loads_as_ledger(self):
        ledger = load_ledger(f"{REPO_ROOT}/BENCH_obs.json")
        assert ledger.benchmark == "obs_overhead"
        names = [e.name for e in ledger.entries]
        assert len(names) == len(set(names)) and names
        for entry in ledger.entries:
            assert "overhead" in entry.metrics


class TestDiff:
    def test_regression_flags_by_direction(self):
        old = make_ledger(run_seconds=1.0, throughput_teps=100.0)
        new = make_ledger(run_seconds=1.5, throughput_teps=50.0)
        diff = diff_ledgers(old, new, tolerance=0.05)
        flagged = {(d.metric, d.regressed) for d in diff.deltas}
        assert ("run_seconds", True) in flagged
        assert ("throughput_teps", True) in flagged

    def test_improvement_flags_by_direction(self):
        old = make_ledger(run_seconds=1.0, throughput_teps=100.0)
        new = make_ledger(run_seconds=0.5, throughput_teps=200.0)
        diff = diff_ledgers(old, new, tolerance=0.05)
        assert not diff.regressions
        assert {d.metric for d in diff.improvements} == {
            "run_seconds", "throughput_teps",
        }

    def test_within_tolerance_is_quiet(self):
        old = make_ledger(run_seconds=1.0)
        new = make_ledger(run_seconds=1.04)
        diff = diff_ledgers(old, new, tolerance=0.05)
        assert not diff.regressions and not diff.improvements

    def test_zero_old_uses_absolute_change(self):
        old = make_ledger(run_seconds=0.0)
        new = make_ledger(run_seconds=0.04)
        assert not diff_ledgers(old, new, tolerance=0.05).regressions
        worse = make_ledger(run_seconds=0.2)
        assert diff_ledgers(old, worse, tolerance=0.05).regressions

    def test_unmatched_entries_reported_not_diffed(self):
        old = Ledger(benchmark="t", entries=[LedgerEntry(name="gone")])
        new = Ledger(benchmark="t", entries=[LedgerEntry(name="added")])
        diff = diff_ledgers(old, new)
        assert diff.deltas == []
        assert diff.only_old == ["gone"]
        assert diff.only_new == ["added"]

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ObservabilityError, match="tolerance"):
            diff_ledgers(make_ledger(), make_ledger(), tolerance=-0.1)

    def test_self_diff_is_clean(self):
        ledger = load_ledger(f"{REPO_ROOT}/BENCH_obs.json")
        diff = diff_ledgers(ledger, ledger)
        assert diff.deltas and not diff.regressions
        assert not diff.improvements

    def test_seeded_regression_fixtures_flag(self):
        """The committed fixture pair CI gates on: the regressed side
        must flag run_seconds and teps on the batched entry only."""
        old = load_ledger(f"{FIXTURES}/ledger_base.json")
        new = load_ledger(f"{FIXTURES}/ledger_regressed.json")
        diff = diff_ledgers(old, new, tolerance=0.05)
        regressed = {(d.entry, d.metric) for d in diff.regressions}
        assert regressed == {
            ("serve-kron7-batch32", "run_seconds"),
            ("serve-kron7-batch32", "throughput_teps"),
        }

    def test_render_diff_deterministic_and_flagging(self):
        old = load_ledger(f"{FIXTURES}/ledger_base.json")
        new = load_ledger(f"{FIXTURES}/ledger_regressed.json")
        diff = diff_ledgers(old, new)
        text = render_diff(diff, old_label="base", new_label="candidate")
        assert text == render_diff(diff, "base", "candidate")
        assert "base -> candidate" in text
        assert "REGRESSED" in text
        assert "2 regressed" in text
