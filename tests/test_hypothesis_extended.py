"""Property-based tests over the extension modules.

Covers the oracle-free BFS validator, weighted shortest paths, the
connected-components app, and trace export — all on
hypothesis-generated random graphs.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph.builders import from_edge_arrays
from repro.graph.csr import VERTEX_DTYPE
from repro.graph.properties import connected_components
from repro.graph.weighted import WeightedCSRGraph
from repro.bfs.reference import reference_bfs
from repro.bfs.sssp import DeltaStepping, bellman_ford, dijkstra
from repro.bfs.validate import is_valid_bfs, validate_depths
from repro.core.engine import IBFS, IBFSConfig
from repro.apps.components import connected_components_concurrent

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def random_graphs(draw, max_vertices=30, max_edges=90):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    return from_edge_arrays(
        np.asarray(src, dtype=VERTEX_DTYPE),
        np.asarray(dst, dtype=VERTEX_DTYPE),
        num_vertices=n,
        undirected=draw(st.booleans()),
    )


@st.composite
def weighted_graphs(draw):
    graph = draw(random_graphs())
    weights = draw(
        st.lists(
            st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
            min_size=graph.num_edges,
            max_size=graph.num_edges,
        )
    )
    return WeightedCSRGraph(graph, np.asarray(weights))


@SETTINGS
@given(random_graphs(), st.integers(0, 10**6))
def test_engine_output_passes_local_validation(graph, seed):
    source = seed % graph.num_vertices
    result = IBFS(graph, IBFSConfig(group_size=4)).run([source])
    validate_depths(graph, source, result.depth_row(source))


@SETTINGS
@given(random_graphs(), st.integers(0, 10**6))
def test_reference_passes_and_corruption_fails(graph, seed):
    source = seed % graph.num_vertices
    depths = reference_bfs(graph, source)
    assert is_valid_bfs(graph, source, depths)
    reached = np.flatnonzero(depths >= 1)
    if reached.size:
        corrupted = depths.copy()
        corrupted[reached[0]] = int(depths.max()) + 2
        assert not is_valid_bfs(graph, source, corrupted)


@SETTINGS
@given(weighted_graphs(), st.integers(0, 10**6))
def test_sssp_engines_agree(wgraph, seed):
    source = seed % wgraph.num_vertices
    exact = dijkstra(wgraph, source)
    assert np.allclose(bellman_ford(wgraph, source), exact, equal_nan=True)
    stepped = DeltaStepping(wgraph).run(source)
    assert np.allclose(stepped.distances, exact, equal_nan=True)


@SETTINGS
@given(weighted_graphs(), st.integers(0, 10**6))
def test_sssp_distances_bounded_by_hops_times_max_weight(wgraph, seed):
    """d(v) <= BFS_depth(v) * max_weight — the triangle-count bound."""
    source = seed % wgraph.num_vertices
    dist = dijkstra(wgraph, source)
    hops = reference_bfs(wgraph.graph, source)
    max_w = wgraph.weights.max() if wgraph.num_edges else 0.0
    reached = hops >= 0
    assert np.all(dist[reached] <= hops[reached] * max_w + 1e-9)
    assert np.all(np.isinf(dist[~reached]))


@SETTINGS
@given(random_graphs())
def test_concurrent_components_match_sequential(graph):
    expected = connected_components(graph)
    got = connected_components_concurrent(graph, batch_size=4)
    assert np.array_equal(got, expected)


@SETTINGS
@given(random_graphs(), st.integers(0, 10**6))
def test_depth_monotone_under_edge_addition(graph, seed):
    """Adding an edge never increases any BFS depth."""
    rng = np.random.default_rng(seed)
    source = int(rng.integers(graph.num_vertices))
    before = reference_bfs(graph, source)
    u = int(rng.integers(graph.num_vertices))
    v = int(rng.integers(graph.num_vertices))
    src, dst = graph.edge_array()
    bigger = from_edge_arrays(
        np.append(src, u), np.append(dst, v), num_vertices=graph.num_vertices
    )
    after = reference_bfs(bigger, source)
    reached_before = before >= 0
    assert np.all(after[reached_before] <= before[reached_before])
    assert np.all(after[reached_before] >= 0)
