"""Engines under non-default direction policies stay exact.

The engines' monotone-visited semantics must be direction-agnostic:
never switching, always switching at the first opportunity, and
switching back and forth (non-sticky) all have to yield oracle depths.
"""

import numpy as np
import pytest

from repro.graph.generators import grid_2d, kronecker, uniform_random
from repro.bfs.direction import DirectionPolicy
from repro.bfs.reference import reference_bfs_multi
from repro.bfs.single import SingleBFS
from repro.core.bitwise import BitwiseTraversal
from repro.core.joint import JointTraversal

POLICIES = {
    "default": DirectionPolicy(),
    "td-only": DirectionPolicy(allow_bottom_up=False),
    "eager-bu": DirectionPolicy(alpha=1e9),
    # alpha must be positive (planner validation); a tiny alpha keeps
    # the switch rule unsatisfiable on any finite graph.
    "reluctant-bu": DirectionPolicy(alpha=1e-12),
    "non-sticky": DirectionPolicy(sticky=False),
    "non-sticky-eager": DirectionPolicy(alpha=1e9, sticky=False, beta=2.0),
}

GRAPHS = {
    "kron": kronecker(scale=7, edge_factor=8, seed=141),
    "uniform": uniform_random(200, 4, seed=142),
    "grid": grid_2d(9, 9),
}


@pytest.mark.parametrize("policy_name", POLICIES)
@pytest.mark.parametrize("graph_name", GRAPHS)
def test_single_bfs_exact_under_policy(policy_name, graph_name):
    graph = GRAPHS[graph_name]
    policy = POLICIES[policy_name]
    engine = SingleBFS(graph, policy=policy)
    sources = [0, graph.num_vertices // 2]
    got = np.stack([engine.run(s).depths for s in sources])
    assert np.array_equal(got, reference_bfs_multi(graph, sources))


@pytest.mark.parametrize("policy_name", POLICIES)
def test_bitwise_exact_under_policy(policy_name):
    graph = GRAPHS["kron"]
    policy = POLICIES[policy_name]
    sources = list(range(0, 24, 3))
    depths, _, _ = BitwiseTraversal(graph, policy=policy).run_group(sources)
    assert np.array_equal(depths, reference_bfs_multi(graph, sources))


@pytest.mark.parametrize("policy_name", POLICIES)
def test_joint_exact_under_policy(policy_name):
    graph = GRAPHS["kron"]
    policy = POLICIES[policy_name]
    sources = list(range(0, 24, 3))
    depths, _, _ = JointTraversal(graph, policy=policy).run_group(sources)
    assert np.array_equal(depths, reference_bfs_multi(graph, sources))


def test_eager_switch_actually_goes_bottom_up():
    graph = GRAPHS["kron"]
    source = int(graph.out_degrees().argmax())  # non-isolated source
    result = SingleBFS(graph, policy=DirectionPolicy(alpha=1e9)).run(source)
    directions = [lv.direction for lv in result.record.levels]
    assert directions[0] == "td"
    assert directions[1] == "bu"  # switched right after level 0


def test_reluctant_switch_defers_bottom_up():
    graph = GRAPHS["kron"]
    source = int(graph.out_degrees().argmax())
    result = SingleBFS(graph, policy=DirectionPolicy(alpha=1e-12)).run(source)
    directions = [lv.direction for lv in result.record.levels]
    # A tiny alpha defers the switch until the unexplored edge mass is
    # exhausted: every level that still has edges to explore runs
    # top-down, so a switch (if any) comes strictly later than the
    # eager policy's level-1 switch and is final (sticky).
    assert directions[0] == "td"
    first_bu = next((i for i, d in enumerate(directions) if d == "bu"), None)
    if first_bu is not None:
        assert first_bu >= 2
        assert all(d == "bu" for d in directions[first_bu:])


def test_grid_runs_many_more_levels_than_kron():
    """High-diameter grids produce long level chains — the regime
    contrast section 9 draws against road-network systems."""
    grid_levels = len(SingleBFS(GRAPHS["grid"]).run(0).record.levels)
    kron_source = int(GRAPHS["kron"].out_degrees().argmax())
    kron_levels = len(SingleBFS(GRAPHS["kron"]).run(kron_source).record.levels)
    assert grid_levels > 2 * kron_levels
