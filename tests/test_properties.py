"""Graph statistics: degrees, components, diameter, skew."""

import numpy as np
import pytest

from repro.graph.builders import from_edges
from repro.graph.generators import kronecker, path, star, uniform_random
from repro.graph.properties import (
    approximate_diameter,
    connected_components,
    degree_histogram,
    degree_stats,
    gini_coefficient,
    is_connected,
    largest_component,
)
from repro.graph.csr import empty_graph


class TestDegreeStats:
    def test_histogram(self):
        g = from_edges([(0, 1), (0, 2), (1, 2)], num_vertices=4)
        # vertices 2 and 3 have outdegree 0, vertex 1 has 1, vertex 0 has 2
        assert degree_histogram(g).tolist() == [2, 1, 1]

    def test_histogram_empty_graph(self):
        assert degree_histogram(empty_graph(0)).tolist() == [0]

    def test_stats_fields(self):
        g = star(9)
        stats = degree_stats(g)
        assert stats["max"] == 9
        assert stats["mean"] == pytest.approx(18 / 10)
        assert stats["skew"] > 0

    def test_stats_empty(self):
        assert degree_stats(empty_graph(0))["mean"] == 0.0

    def test_constant_degrees_have_zero_skew(self):
        g = path(2)
        assert degree_stats(g)["skew"] == 0.0


class TestGini:
    def test_uniform_is_low(self):
        g = uniform_random(300, 8, seed=1, undirected=False)
        assert gini_coefficient(g) == pytest.approx(0.0, abs=1e-9)

    def test_star_is_high(self):
        # Undirected star of 100 leaves: hub degree 100, leaves degree 1;
        # half of all edge endpoints belong to one vertex.
        assert gini_coefficient(star(100)) > 0.45

    def test_empty_is_zero(self):
        assert gini_coefficient(empty_graph(3)) == 0.0


class TestComponents:
    def test_single_component(self):
        g = path(6)
        assert is_connected(g)
        assert np.unique(connected_components(g)).size == 1

    def test_two_components_and_isolated(self):
        g = from_edges([(0, 1), (3, 4)], num_vertices=6, undirected=True)
        labels = connected_components(g)
        assert labels[0] == labels[1]
        assert labels[3] == labels[4]
        assert labels[0] != labels[3]
        assert labels[5] == 5
        assert not is_connected(g)

    def test_directed_edges_count_as_weak_links(self):
        g = from_edges([(0, 1), (2, 1)], num_vertices=3)
        assert is_connected(g)

    def test_largest_component(self):
        g = from_edges([(0, 1), (1, 2), (4, 5)], num_vertices=6, undirected=True)
        assert largest_component(g).tolist() == [0, 1, 2]

    def test_empty_graph_is_connected(self):
        assert is_connected(empty_graph(0))


class TestDiameter:
    def test_path_diameter(self):
        assert approximate_diameter(path(10), num_probes=4, seed=1) == 9

    def test_star_diameter(self):
        assert approximate_diameter(star(20), num_probes=4, seed=1) == 2

    def test_small_world_is_small(self):
        g = kronecker(scale=9, edge_factor=8, seed=3)
        assert approximate_diameter(g, num_probes=2, seed=1) <= 10
