"""Cross-engine consistency: JSA and BSA engines are two executions of
the same abstract traversal, so every algorithmic statistic — per-level
joint-queue sizes, sharing degrees, per-instance bottom-up inspection
tallies — must agree exactly.  Only the hardware accounting differs.
"""

import numpy as np
import pytest

from repro.graph.generators import grid_2d, kronecker, uniform_random
from repro.core.bitwise import BitwiseTraversal
from repro.core.joint import JointTraversal

GRAPHS = {
    "kron": kronecker(scale=7, edge_factor=8, seed=251),
    "uniform": uniform_random(200, 4, seed=252),
    "grid": grid_2d(8, 8),
}


@pytest.fixture(scope="module", params=sorted(GRAPHS))
def engine_pair(request):
    graph = GRAPHS[request.param]
    sources = list(range(12))
    joint = JointTraversal(graph).run_group(sources)
    bitwise = BitwiseTraversal(graph).run_group(sources)
    return joint, bitwise


def test_depths_identical(engine_pair):
    (jd, _, _), (bd, _, _) = engine_pair
    assert np.array_equal(jd, bd)


def test_jfq_sizes_identical(engine_pair):
    (_, _, js), (_, _, bs) = engine_pair
    assert js.jfq_sizes == bs.jfq_sizes


def test_sharing_statistics_identical(engine_pair):
    (_, _, js), (_, _, bs) = engine_pair
    assert js.sharing_degree == pytest.approx(bs.sharing_degree)
    assert js.per_level_sharing == pytest.approx(bs.per_level_sharing)
    assert js.td_sharing == bs.td_sharing
    assert js.bu_sharing == bs.bu_sharing


def test_bottom_up_tallies_identical(engine_pair):
    """Both engines attribute per-instance bottom-up inspections as the
    first-parent scan position of each (vertex, instance) pair — the
    joint engine via explicit pair probing, the bitwise engine via
    pending-bit tallies.  They must agree element-for-element."""
    (_, _, js), (_, _, bs) = engine_pair
    assert js.bottom_up_inspections == bs.bottom_up_inspections


def test_logical_workload_identical(engine_pair):
    """edges_traversed counts per-instance logical edges in both."""
    (_, jr, _), (_, br, _) = engine_pair
    assert jr.counters.edges_traversed == br.counters.edges_traversed


def test_hardware_accounting_differs(engine_pair):
    """The point of the bitwise design: same algorithm, less traffic."""
    (_, jr, _), (_, br, _) = engine_pair
    assert (
        br.counters.global_load_transactions
        < jr.counters.global_load_transactions
    )
    assert br.counters.inspections <= jr.counters.inspections
