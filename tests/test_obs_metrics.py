"""Metrics facade: counters, gauges, fixed-bucket histograms, the hub."""

import math

import pytest

from repro.errors import ObservabilityError
from repro.obs import metrics as obs_metrics
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsHub,
    percentile,
)


@pytest.fixture(autouse=True)
def _isolate_module_hub():
    yield
    obs_metrics.set_hub(None)


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 50) == 0.0

    def test_single_value(self):
        assert percentile([7.0], 99) == 7.0

    def test_linear_interpolation(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 50) == 2.5
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0

    def test_presorted_matches_unsorted(self):
        values = [5.0, 1.0, 3.0, 2.0, 4.0]
        assert percentile(sorted(values), 90, presorted=True) == percentile(
            values, 90
        )

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestCounterGauge:
    def test_counter_accumulates(self):
        c = Counter("requests_total")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_is_monotone(self):
        with pytest.raises(ObservabilityError):
            Counter("x").inc(-1)

    def test_gauge_sets_and_moves(self):
        g = Gauge("depth")
        g.set(4)
        g.inc(-1)
        assert g.value == 3.0

    def test_records_are_jsonl_shaped(self):
        c = Counter("n", help="things", labels={"site": "a"})
        c.inc(2)
        record = c.record()
        assert record == {
            "kind": "metric", "type": "counter", "name": "n",
            "help": "things", "labels": {"site": "a"}, "value": 2.0,
        }


class TestHistogram:
    def test_bucket_counts_follow_le_semantics(self):
        h = Histogram("lat", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.0, 1.5, 3.0, 100.0):
            h.observe(v)
        # le=1: {0.5, 1.0}; le=2: {1.5}; le=4: {3.0}; +Inf: {100.0}
        assert h.bucket_counts == [2, 1, 1, 1]
        assert h.cumulative_counts() == [2, 3, 4, 5]
        assert h.count == 5
        assert h.sum == pytest.approx(106.0)

    def test_inf_bucket_auto_appended(self):
        h = Histogram("lat", buckets=(1.0, 2.0))
        assert h.bounds[-1] == math.inf
        assert len(h.bounds) == 3

    def test_bounds_must_ascend(self):
        with pytest.raises(ObservabilityError):
            Histogram("bad", buckets=(2.0, 1.0))
        with pytest.raises(ObservabilityError):
            Histogram("empty", buckets=())

    def test_quantiles_are_exact_over_samples(self):
        h = Histogram("lat", buckets=(10.0,))
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.quantile(50) == percentile([1.0, 2.0, 3.0, 4.0], 50)
        qs = h.quantiles((50.0, 100.0))
        assert qs[50.0] == 2.5
        assert qs[100.0] == 4.0
        assert h.mean == 2.5
        assert h.max == 4.0

    def test_max_samples_bounds_reservoir_not_counts(self):
        h = Histogram("lat", buckets=(10.0,), max_samples=2)
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        assert len(h.samples) == 2
        assert h.count == 3

    def test_record_serializes_inf_bound(self):
        h = Histogram("lat", buckets=(1.0,))
        h.observe(0.5)
        record = h.record()
        assert record["bounds"] == [1.0, "+Inf"]
        assert record["cumulative_counts"] == [1, 1]

    def test_default_buckets_end_at_inf(self):
        assert DEFAULT_LATENCY_BUCKETS[-1] == math.inf
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)


class TestMetricsHub:
    def test_get_or_create_returns_same_instance(self):
        hub = MetricsHub()
        assert hub.counter("a") is hub.counter("a")
        assert hub.histogram("h") is hub.histogram("h")

    def test_type_conflict_raises(self):
        hub = MetricsHub()
        hub.counter("a")
        with pytest.raises(ObservabilityError, match="already registered"):
            hub.gauge("a")

    def test_histogram_bounds_conflict_raises(self):
        hub = MetricsHub()
        hub.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ObservabilityError, match="bucket bounds"):
            hub.histogram("h", buckets=(1.0, 4.0))

    def test_labels_distinguish_series(self):
        hub = MetricsHub()
        a = hub.counter("n", labels={"site": "a"})
        b = hub.counter("n", labels={"site": "b"})
        assert a is not b
        assert len(hub) == 2

    def test_register_adopts_external_metric(self):
        hub = MetricsHub()
        h = Histogram("serving_latency_seconds")
        assert hub.register(h) is h
        assert hub.register(h) is h  # idempotent for the same object
        with pytest.raises(ObservabilityError):
            hub.register(Histogram("serving_latency_seconds"))

    def test_records_cover_all_metrics(self):
        hub = MetricsHub()
        hub.counter("a").inc()
        hub.gauge("b").set(2)
        names = {r["name"] for r in hub.records()}
        assert names == {"a", "b"}

    def test_module_hub_reset(self):
        hub = obs_metrics.get_hub()
        hub.counter("x").inc()
        fresh = obs_metrics.set_hub(None)
        assert fresh is obs_metrics.get_hub()
        assert fresh.get("x") is None
