"""CSRGraph pickling: cheap, cache-preserving round trips."""

import pickle

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.generators import kronecker
from repro.service.cache import graph_cache_id


@pytest.fixture(scope="module")
def graph():
    return kronecker(scale=7, edge_factor=8, seed=31)


class TestToFromArrays:
    def test_round_trip(self, graph):
        restored = CSRGraph.from_arrays(**graph.to_arrays())
        assert np.array_equal(restored.row_offsets, graph.row_offsets)
        assert np.array_equal(restored.col_indices, graph.col_indices)
        assert restored.num_vertices == graph.num_vertices
        assert restored.num_edges == graph.num_edges

    def test_payload_carries_caches(self, graph):
        graph.out_degrees()
        fingerprint = graph_cache_id(graph)
        payload = graph.to_arrays()
        assert np.array_equal(payload["out_degrees"], graph.out_degrees())
        assert payload["cache_id"] == fingerprint

    def test_from_arrays_skips_validation_but_is_faithful(self, graph):
        restored = CSRGraph.from_arrays(
            graph.row_offsets, graph.col_indices
        )
        assert restored._out_degrees is None
        assert np.array_equal(restored.out_degrees(), graph.out_degrees())


class TestPickle:
    def test_round_trip_structure(self, graph):
        clone = pickle.loads(pickle.dumps(graph))
        assert np.array_equal(clone.row_offsets, graph.row_offsets)
        assert np.array_equal(clone.col_indices, graph.col_indices)

    def test_caches_survive_pickling(self, graph):
        graph.out_degrees()
        fingerprint = graph_cache_id(graph)
        clone = pickle.loads(pickle.dumps(graph))
        # The caches arrive pre-installed: no O(|E|) recompute and no
        # re-hashing on the receiving side.
        assert clone._out_degrees is not None
        assert np.array_equal(clone._out_degrees, graph.out_degrees())
        assert clone._cache_id == fingerprint
        assert graph_cache_id(clone) == fingerprint

    def test_unpickled_graph_traverses_identically(self, graph):
        from repro.bfs.reference import reference_bfs

        clone = pickle.loads(pickle.dumps(graph))
        assert np.array_equal(
            reference_bfs(clone, 0), reference_bfs(graph, 0)
        )

    def test_pickle_excludes_reverse_csr(self, graph):
        graph.reverse()  # force the lazy build on the original
        clone = pickle.loads(pickle.dumps(graph))
        assert clone._reverse is None  # rebuilt lazily where needed
