"""Property tests pinning the SLO window math and critical-path
determinism against brute-force oracles.

The oracle recomputes everything from scratch on every evaluation —
keep *all* samples, filter by ``timestamp > now - window``, reduce
with an independent implementation — so the engine's incremental
eviction and shared-window re-filtering can't drift from the spec.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.analyze import build_forest, critical_path
from repro.obs.slo import (
    SLOEngine,
    SLOSpec,
    RollingWindow,
    reduce_samples,
)

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
#: Monotone sample streams: positive time gaps, bounded finite values.
SAMPLE_STREAMS = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=10.0,
                  allow_nan=False, allow_infinity=False),
        st.floats(min_value=0.0, max_value=100.0,
                  allow_nan=False, allow_infinity=False),
    ),
    min_size=1,
    max_size=40,
)

WINDOWS = st.floats(min_value=0.5, max_value=20.0,
                    allow_nan=False, allow_infinity=False)

REDUCERS = st.sampled_from(["p50", "p90", "p95", "p99", "mean", "max"])


def _timestamps(stream):
    """Cumulative (timestamp, value) pairs from (gap, value) pairs."""
    now = 0.0
    out = []
    for gap, value in stream:
        now += gap
        out.append((now, value))
    return out


def _oracle_reduce(values, reduce):
    if not values:
        return 0.0
    if reduce in ("mean", "rate"):
        return sum(values) / len(values)
    if reduce == "max":
        return max(values)
    q = float(reduce[1:])
    return float(np.percentile(values, q, method="linear"))


def _oracle_window(samples, now, window):
    return [v for ts, v in samples if ts > now - window]


# ----------------------------------------------------------------------
# Rolling windows
# ----------------------------------------------------------------------
@given(stream=SAMPLE_STREAMS, window=WINDOWS)
@settings(max_examples=100, deadline=None)
def test_window_matches_bruteforce_at_every_instant(stream, window):
    samples = _timestamps(stream)
    rolling = RollingWindow(window)
    for index, (ts, value) in enumerate(samples):
        rolling.observe(ts, value)
        assert rolling.values(ts) == _oracle_window(
            samples[: index + 1], ts, window
        )
    # And after the stream went quiet.
    last = samples[-1][0]
    for extra in (0.1, window / 2, window, 2 * window):
        probe = RollingWindow(window)
        for ts, value in samples:
            probe.observe(ts, value)
        assert probe.values(last + extra) == _oracle_window(
            samples, last + extra, window
        )


@given(stream=SAMPLE_STREAMS, reduce=REDUCERS)
@settings(max_examples=100, deadline=None)
def test_reduce_matches_numpy_oracle(stream, reduce):
    values = [v for _, v in stream]
    got = reduce_samples(values, reduce)
    want = _oracle_reduce(values, reduce)
    assert got == pytest.approx(want, rel=1e-9, abs=1e-12)


# ----------------------------------------------------------------------
# Burn rates and alert edges
# ----------------------------------------------------------------------
@given(
    stream=SAMPLE_STREAMS,
    window=WINDOWS,
    reduce=REDUCERS,
    objective=st.floats(min_value=0.1, max_value=50.0,
                        allow_nan=False, allow_infinity=False),
    min_samples=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=100, deadline=None)
def test_engine_burn_and_alerts_match_oracle(
    stream, window, reduce, objective, min_samples
):
    spec = SLOSpec(
        name="prop", signal="sig", objective=objective, reduce=reduce,
        window_seconds=window, min_samples=min_samples,
    )
    engine = SLOEngine(specs=[spec])
    samples = _timestamps(stream)

    oracle_breached = False
    oracle_alerts = []
    for index, (ts, value) in enumerate(samples):
        engine.observe("sig", value, ts)
        (status,) = engine.evaluate(ts)

        live = _oracle_window(samples[: index + 1], ts, window)
        want_value = _oracle_reduce(live, reduce)
        want_burn = want_value / objective
        assert status.value == pytest.approx(want_value, rel=1e-9,
                                             abs=1e-12)
        assert status.burn == pytest.approx(want_burn, rel=1e-9,
                                            abs=1e-12)
        assert status.samples == len(live)

        want_breached = (
            len(live) >= min_samples and want_burn >= 1.0
        )
        # Floating division can land exactly on the threshold; compare
        # state only when the oracle is decisively on one side.
        if not math.isclose(want_burn, 1.0, rel_tol=1e-9):
            assert status.breached == want_breached
        if status.breached != oracle_breached:
            oracle_breached = status.breached
            oracle_alerts.append(
                "breach" if status.breached else "resolve"
            )
    assert [a.kind for a in engine.alerts] == oracle_alerts
    # Alerts strictly alternate, starting with a breach.
    for i, alert in enumerate(engine.alerts):
        assert alert.kind == ("breach" if i % 2 == 0 else "resolve")


# ----------------------------------------------------------------------
# Critical-path determinism on random span trees
# ----------------------------------------------------------------------
@st.composite
def span_trees(draw):
    """A random span forest as records: each span picks a parent among
    earlier spans (or roots), with a start inside the parent and a
    duration fitting within it — a well-nested single-process trace."""
    count = draw(st.integers(min_value=1, max_value=25))
    records = []
    spans = []  # (span_id, start, end)
    for i in range(count):
        sid = f"s{i}"
        if spans and draw(st.booleans()):
            parent_id, p_start, p_end = spans[draw(
                st.integers(min_value=0, max_value=len(spans) - 1)
            )]
            start = draw(st.floats(min_value=p_start, max_value=p_end,
                                   allow_nan=False))
            end = draw(st.floats(min_value=start, max_value=p_end,
                                 allow_nan=False))
        else:
            parent_id = None
            start = draw(st.floats(min_value=0.0, max_value=100.0,
                                   allow_nan=False))
            end = start + draw(st.floats(min_value=0.0, max_value=50.0,
                                         allow_nan=False))
        spans.append((sid, start, end))
        records.append({
            "kind": "span", "name": f"n{i % 5}", "span_id": sid,
            "parent_id": parent_id, "start": start, "end": end,
            "process": "main", "attrs": {}, "status": "ok",
        })
    return records


@given(records=span_trees())
@settings(max_examples=100, deadline=None)
def test_critical_path_telescopes_and_is_deterministic(records):
    roots = build_forest(records)
    for root in roots:
        first = critical_path(root)
        # Telescoping: step charges sum to the root duration (children
        # are nested within parents by construction, so no clamping).
        assert sum(s.step_seconds for s in first) == pytest.approx(
            root.duration, abs=1e-9
        )
        # Path is strictly descending through the tree.
        assert [s.depth for s in first] == list(range(len(first)))
        # Determinism: rebuilding the forest from scratch yields the
        # identical path (same span ids, same charges).
        rebuilt = critical_path(build_forest(records)[
            [r.span_id for r in build_forest(records)].index(root.span_id)
        ])
        assert [(s.span_id, s.step_seconds) for s in rebuilt] == [
            (s.span_id, s.step_seconds) for s in first
        ]
