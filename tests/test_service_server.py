"""BFSServer: admission control, timeouts, retries, caching, metrics."""

import numpy as np
import pytest

from repro.errors import QueueFullError, ServiceError, TraversalError
from repro.graph.generators import kronecker
from repro.bfs.reference import reference_bfs
from repro.service import (
    BFSServer,
    InProcessClient,
    Request,
    ServingConfig,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_TIMEOUT,
)
from repro.apps.closeness import closeness_centrality
from repro.core.engine import IBFS, IBFSConfig


@pytest.fixture(scope="module")
def graph():
    return kronecker(scale=8, edge_factor=8, seed=3)


class TestRequestValidation:
    def test_bad_kind_rejected(self):
        with pytest.raises(ServiceError, match="unknown request kind"):
            Request(source=0, kind="pagerank")

    def test_reachability_needs_target(self):
        with pytest.raises(ServiceError, match="target"):
            Request(source=0, kind="reachability")

    def test_closeness_rejects_depth_limit(self):
        with pytest.raises(ServiceError, match="full traversal"):
            Request(source=0, kind="closeness", max_depth=2)

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(ServiceError, match="timeout"):
            Request(source=0, timeout=0.0)

    def test_out_of_range_source_rejected(self, graph):
        server = BFSServer(graph)
        with pytest.raises(ServiceError, match="out of range"):
            server.submit(Request(source=graph.num_vertices))

    def test_nonmonotone_arrivals_rejected(self, graph):
        server = BFSServer(graph)
        server.submit(Request(source=0), arrival_time=1.0)
        with pytest.raises(ServiceError, match="before the server clock"):
            server.submit(Request(source=1), arrival_time=0.5)


class TestBackpressure:
    def test_queue_full_sheds_with_typed_error(self, graph):
        server = BFSServer(
            graph,
            ServingConfig(
                batch_size=64, flush_deadline=10.0, queue_capacity=3,
                cache_capacity=0,
            ),
        )
        for source in (1, 2, 3):
            server.submit(Request(source=source), arrival_time=0.0)
        with pytest.raises(QueueFullError):
            server.submit(Request(source=4), arrival_time=0.0)
        assert server.metrics.shed == 1
        # The queued requests are still served on drain.
        responses = server.drain()
        assert sorted(r.request.source for r in responses) == [1, 2, 3]
        assert all(r.ok for r in responses)

    def test_cache_hits_bypass_the_full_queue(self, graph):
        server = BFSServer(
            graph,
            ServingConfig(batch_size=64, flush_deadline=10.0, queue_capacity=2),
        )
        server.submit(Request(source=1), arrival_time=0.0)
        server.drain()  # source 1 is now cached
        server.submit(Request(source=5), arrival_time=20.0)
        server.submit(Request(source=6), arrival_time=20.0)  # queue full
        hit = server.submit(Request(source=1), arrival_time=20.0)
        responses = {r.request_id: r for r in server.take_completed()}
        assert responses[hit].cached
        with pytest.raises(QueueFullError):
            server.submit(Request(source=7), arrival_time=20.0)


class TestTimeouts:
    def test_timeout_while_queued(self, graph):
        server = BFSServer(
            graph,
            ServingConfig(batch_size=8, flush_deadline=1.0, cache_capacity=0),
        )
        server.submit(Request(source=1, timeout=1e-4), arrival_time=0.0)
        # Advancing past the deadline (well before the 1 s flush) expires
        # the request in the queue.
        server.advance_to(0.5)
        responses = server.take_completed()
        assert len(responses) == 1
        assert responses[0].status == STATUS_TIMEOUT
        assert responses[0].latency == pytest.approx(1e-4)
        assert server.metrics.timeouts == 1

    def test_timeout_during_execution(self, graph):
        server = BFSServer(
            graph,
            ServingConfig(batch_size=2, flush_deadline=1.0, cache_capacity=0),
        )
        # Batch flushes on size at t=0; the kernel takes microseconds,
        # longer than the 1 ns budget of the first request.
        server.submit(Request(source=1, timeout=1e-9), arrival_time=0.0)
        server.submit(Request(source=2), arrival_time=0.0)
        responses = {r.request.source: r for r in server.drain()}
        assert responses[1].status == STATUS_TIMEOUT
        assert responses[1].batch_id >= 0  # it did execute
        assert responses[2].status == STATUS_OK
        assert server.metrics.timeouts == 1

    def test_default_timeout_applies(self, graph):
        server = BFSServer(
            graph,
            ServingConfig(
                batch_size=8, flush_deadline=1.0, cache_capacity=0,
                default_timeout=1e-4,
            ),
        )
        server.submit(Request(source=1), arrival_time=0.0)
        server.advance_to(1.0)
        assert server.take_completed()[0].status == STATUS_TIMEOUT


class TestRetries:
    def test_retry_once_then_succeed(self, graph):
        calls = []

        def flaky(sources):
            calls.append(list(sources))
            if len(calls) == 1:
                raise TraversalError("injected kernel failure")

        server = BFSServer(
            graph,
            ServingConfig(batch_size=2, flush_deadline=1.0, cache_capacity=0),
            fault_injector=flaky,
        )
        server.submit(Request(source=1), arrival_time=0.0)
        server.submit(Request(source=2), arrival_time=0.0)
        responses = server.drain()
        assert len(calls) == 2
        assert all(r.status == STATUS_OK for r in responses)
        assert all(r.attempts == 2 for r in responses)
        assert server.metrics.retries == 2
        assert server.metrics.failures == 0

    def test_persistent_failure_exhausts_attempts(self, graph):
        def always_fail(sources):
            raise TraversalError("injected kernel failure")

        server = BFSServer(
            graph,
            ServingConfig(batch_size=2, flush_deadline=1.0, cache_capacity=0),
            fault_injector=always_fail,
        )
        server.submit(Request(source=1), arrival_time=0.0)
        server.submit(Request(source=2), arrival_time=0.0)
        responses = server.drain()
        assert all(r.status == STATUS_FAILED for r in responses)
        assert all(r.attempts == 2 for r in responses)
        assert all("injected" in r.error for r in responses)
        assert server.metrics.failures == 2
        assert server.metrics.retries == 2


class TestCachingAndAnswers:
    def test_repeat_source_served_from_cache(self, graph):
        server = BFSServer(graph, ServingConfig(batch_size=4))
        client = InProcessClient(server)
        first = client.bfs(3)
        second = client.bfs(3)
        assert not first.cached and second.cached
        assert second.value == first.value
        assert second.latency <= first.latency
        assert server.metrics.cache_hits == 1
        # Only the first request launched a batch.
        assert len(server.metrics.batches) == 1

    def test_bfs_value_matches_reference(self, graph):
        client = InProcessClient(BFSServer(graph))
        depths = reference_bfs(graph, 5)
        assert client.bfs(5).value == np.count_nonzero(depths >= 0)

    def test_reachability_matches_reference(self, graph):
        client = InProcessClient(BFSServer(graph))
        depths = reference_bfs(graph, 0)
        reachable = int(np.argmax(depths))  # some reachable vertex
        unreachable = np.where(depths < 0)[0]
        assert client.reachable(0, reachable)
        if unreachable.size:
            assert not client.reachable(0, int(unreachable[0]))

    def test_khop_reachability_respects_depth_limit(self, graph):
        client = InProcessClient(BFSServer(graph))
        depths = reference_bfs(graph, 0)
        far = np.where(depths >= 2)[0]
        if far.size:
            assert not client.reachable(0, int(far[0]), k=1)
            assert client.reachable(0, int(far[0]), k=int(depths[far[0]]))

    def test_closeness_matches_app(self, graph):
        client = InProcessClient(BFSServer(graph))
        engine = IBFS(graph, IBFSConfig(group_size=8))
        expected = closeness_centrality(graph, engine, sources=[7])[7]
        assert client.closeness(7) == pytest.approx(expected)

    def test_return_depths(self, graph):
        server = BFSServer(graph, ServingConfig(return_depths=True))
        response = InProcessClient(server).bfs(4)
        assert response.depths is not None
        assert np.array_equal(response.depths, reference_bfs(graph, 4))


class TestMetricsAndDevices:
    def test_snapshot_shape(self, graph):
        server = BFSServer(graph, ServingConfig(batch_size=4))
        client = InProcessClient(server)
        client.bfs(1)
        client.bfs(1)
        snap = server.metrics_snapshot()
        assert snap["requests"]["submitted"] == 2
        assert snap["requests"]["completed"] == 2
        assert snap["requests"]["cache_hits"] == 1
        assert snap["cache"]["hits"] == 1
        assert snap["batches"]["count"] == 1
        assert 0 < snap["batches"]["mean_occupancy"] <= 1
        assert snap["latency_seconds"]["p99"] >= snap["latency_seconds"]["p50"]
        assert snap["requests_per_second"] > 0
        import json

        json.dumps(snap)  # must be JSON-serializable

    def test_batch_size_clamped_by_device_capacity(self, graph):
        server = BFSServer(graph, ServingConfig(batch_size=10**9))
        assert server.batch_size <= server.engine.effective_group_size()

    def test_multiple_devices_overlap_batches(self, graph):
        sources = list(range(16))

        def run(num_devices):
            server = BFSServer(
                graph,
                ServingConfig(
                    batch_size=4, flush_deadline=1e-6, cache_capacity=0,
                    num_devices=num_devices,
                ),
            )
            for s in sources:
                server.submit(Request(source=s), arrival_time=0.0)
            server.drain()
            return server.clock

        assert run(4) < run(1)
