"""The shared substrate bit-identity matrix.

One parametrized suite replaces the per-package copies of the
"matches serial" loop: every registered substrate × planner policy ×
mutation must produce depths bit-identical to the serial engine (and
identical traversal counters for the whole-graph placements — the
partitioned substrate's counters price communication, so only its
depths are contractual).  Plus the registry/capability surface:
spec validation, engine-key namespacing, the epoch-swap hook, and
executor-backed serving under the churn loadgen.
"""

import numpy as np
import pytest

from repro.errors import (
    ExclusiveSubstrateError,
    ServiceError,
    SubstrateCapabilityError,
    SubstrateError,
    UnknownSubstrateError,
    UnsupportedMutationError,
)
from repro.graph.generators import kronecker
from repro.core.engine import IBFS, IBFSConfig
from repro.plan import make_policy
from repro.runtime import (
    CAPABILITY_FLAGS,
    SUBSTRATES,
    SUBSTRATE_NAMES,
    SubstrateSpec,
    engine_key,
    make_substrate,
)
from repro.service.cache import engine_cache_key

CONFIG = IBFSConfig(group_size=8)
SOURCES = list(range(0, 48, 2))
PLANNERS = [None, "td-only"]


@pytest.fixture(scope="module")
def graph():
    return kronecker(scale=7, edge_factor=8, seed=9)


def spec_for(kind: str) -> SubstrateSpec:
    return SubstrateSpec(
        kind=kind,
        workers=2 if kind == "executor" else 0,
        partitions=2 if kind == "partitioned" else 0,
    )


def build(kind: str, graph, planner_name=None, mutate=False):
    planner = make_policy(planner_name) if planner_name else None
    spec = spec_for(kind)
    if mutate and kind != "stream":
        # The mutation axis wraps the substrate in the epoch-swapping
        # stream substrate with the requested kind as its delegate.
        spec = SubstrateSpec.from_flags(
            kind=kind,
            workers=spec.workers,
            partitions=spec.partitions,
            churn=True,
        )
    return make_substrate(spec, graph, engine_config=CONFIG, planner=planner)


# ----------------------------------------------------------------------
# The bit-identity matrix
# ----------------------------------------------------------------------
class TestBitIdentityMatrix:
    @pytest.mark.parametrize("mutate", [False, True])
    @pytest.mark.parametrize("planner_name", PLANNERS)
    @pytest.mark.parametrize("kind", SUBSTRATE_NAMES)
    def test_matches_serial(self, graph, kind, planner_name, mutate):
        substrate = build(kind, graph, planner_name, mutate)
        try:
            ref_graph = graph
            if mutate:
                # Fold one insert batch into a new epoch; the substrate
                # must swap and stay bit-identical to serial over the
                # *new* graph.
                substrate.overlay.insert_edges(
                    np.array([0, 1]), np.array([100, 90])
                )
                snap = substrate.publish()
                assert snap.epoch == 1
                ref_graph = snap.graph
            planner = make_policy(planner_name) if planner_name else None
            expected = IBFS(ref_graph, CONFIG, planner=planner).run(
                SOURCES, store_depths=True
            )
            # Two runs per cell: identity and repeat-determinism.
            for _ in range(2):
                result = substrate.run(SOURCES, store_depths=True)
                assert np.array_equal(result.depths, expected.depths)
                assert result.depths.dtype == expected.depths.dtype
                assert result.sources == expected.sources
                if not substrate.supports_partitions:
                    # Whole-graph placements replicate the traversal
                    # exactly; partitioned counters price communication.
                    assert (
                        result.counters.__dict__
                        == expected.counters.__dict__
                    )
                    assert result.seconds == expected.seconds
        finally:
            substrate.close()

    @pytest.mark.parametrize("kind", SUBSTRATE_NAMES)
    def test_run_group_matches_serial(self, graph, kind):
        substrate = build(kind, graph)
        try:
            group = IBFS(graph, CONFIG).make_groups(SOURCES)[0]
            expected = IBFS(graph, CONFIG).run_group(group)
            result = substrate.run_group(group)
            assert np.array_equal(result.depths, expected.depths)
        finally:
            substrate.close()


# ----------------------------------------------------------------------
# Registry and capability surface
# ----------------------------------------------------------------------
class TestRegistry:
    def test_registry_matches_names(self):
        assert tuple(sorted(SUBSTRATES)) == tuple(sorted(SUBSTRATE_NAMES))

    def test_capability_flags(self):
        caps = {k: cls.capabilities() for k, cls in SUBSTRATES.items()}
        for flags in caps.values():
            assert tuple(flags) == CAPABILITY_FLAGS
        assert caps["serial"]["supports_mutation"]
        assert caps["executor"]["supports_executor"]
        assert caps["partitioned"]["supports_partitions"]
        assert caps["stream"]["supports_mutation"]
        assert not caps["serial"]["supports_executor"]
        assert not caps["executor"]["supports_partitions"]

    def test_unknown_kind_rejected(self):
        with pytest.raises(UnknownSubstrateError):
            SubstrateSpec(kind="quantum")

    def test_exclusive_spec_rejected(self):
        with pytest.raises(ExclusiveSubstrateError):
            SubstrateSpec(workers=2, partitions=2)
        with pytest.raises(ExclusiveSubstrateError):
            SubstrateSpec(kind="executor", partitions=2)
        with pytest.raises(ExclusiveSubstrateError):
            SubstrateSpec(kind="partitioned", workers=2)

    def test_exclusive_error_is_service_error(self):
        # The pre-registry consumers caught ServiceError with this
        # message; the typed capability error must keep both.
        err = ExclusiveSubstrateError()
        assert isinstance(err, ServiceError)
        assert isinstance(err, SubstrateCapabilityError)
        assert "mutually exclusive" in str(err)

    def test_from_flags_derivation(self):
        assert SubstrateSpec.from_flags().kind == "serial"
        assert SubstrateSpec.from_flags(workers=2).kind == "executor"
        assert SubstrateSpec.from_flags(partitions=2).kind == "partitioned"
        assert SubstrateSpec.from_flags(churn=True).kind == "stream"
        wrapped = SubstrateSpec.from_flags(workers=2, churn=True)
        assert wrapped.kind == "stream"
        assert wrapped.inner_kind == "executor"

    def test_invalid_flags_rejected(self):
        with pytest.raises(SubstrateError):
            SubstrateSpec(workers=-1)
        with pytest.raises(SubstrateError):
            SubstrateSpec(layout="3d")

    def test_caller_owned_executor_loses_mutation(self, graph):
        from repro.exec import ExecConfig, GroupExecutor

        with GroupExecutor(
            graph, CONFIG, exec_config=ExecConfig(num_workers=0)
        ) as executor:
            substrate = make_substrate(
                SubstrateSpec(kind="executor"),
                graph,
                engine_config=CONFIG,
                executor=executor,
            )
            assert not substrate.supports_mutation
            with pytest.raises(UnsupportedMutationError):
                substrate.on_epoch_published(None)
            substrate.close()  # must NOT close the caller's executor
            assert executor.run([0]) is not None

    def test_stream_refuses_caller_owned_executor(self, graph):
        class FakeExecutor:  # the refusal must not touch its attrs
            pass

        with pytest.raises(UnsupportedMutationError):
            make_substrate(
                SubstrateSpec(kind="stream"), graph, executor=FakeExecutor()
            )

    def test_partitioned_refuses_executor_object(self, graph):
        class FakeExecutor:
            pass

        with pytest.raises(ExclusiveSubstrateError):
            make_substrate(
                SubstrateSpec(kind="partitioned", partitions=2),
                graph,
                executor=FakeExecutor(),
            )


# ----------------------------------------------------------------------
# Engine-key derivation
# ----------------------------------------------------------------------
class TestEngineKey:
    def test_matches_legacy_cache_key(self):
        assert engine_key(CONFIG, "heuristic") == engine_cache_key(
            CONFIG, "heuristic"
        )
        assert engine_key(CONFIG) == engine_cache_key(CONFIG)

    def test_partitioned_suffix_namespaces(self, graph):
        serial = make_substrate(
            SubstrateSpec(), graph, engine_config=CONFIG
        )
        part = make_substrate(
            SubstrateSpec(kind="partitioned", partitions=2),
            graph,
            engine_config=CONFIG,
        )
        try:
            assert serial.engine_key != part.engine_key
            assert part.engine_key.startswith(serial.engine_key)
            assert "+dist-1dx2" in part.engine_key
        finally:
            serial.close()
            part.close()

    def test_spec_key_resolves_default_planner(self):
        spec = SubstrateSpec()
        assert spec.engine_key(CONFIG).endswith("-polheuristic")
        planner = make_policy("td-only")
        assert spec.engine_key(CONFIG, planner).endswith(
            f"-pol{planner.name}"
        )


# ----------------------------------------------------------------------
# Epoch swap-on-mutate through the serving layer
# ----------------------------------------------------------------------
class TestServingUnderChurn:
    SERVING_KW = dict(
        batch_size=8, cache_capacity=64, return_depths=True
    )

    @pytest.mark.parametrize("kind", ["serial", "executor", "partitioned"])
    def test_post_mutation_depths_correct(self, graph, kind):
        from repro.service import Request, ServingConfig
        from repro.stream import ChurnConfig, DynamicBFSServer, run_churn_loop
        from repro.service.loadgen import WorkloadConfig

        spec = SubstrateSpec.from_flags(
            kind=kind,
            workers=2 if kind == "executor" else 0,
            partitions=2 if kind == "partitioned" else 0,
            churn=True,
        )
        server = DynamicBFSServer(
            graph, ServingConfig(**self.SERVING_KW), substrate=spec
        )
        try:
            result, records = run_churn_loop(
                server,
                WorkloadConfig(num_requests=48, num_clients=8, seed=3),
                ChurnConfig(mutate_every=16, inserts_per_batch=8, seed=4),
            )
            assert result.completed == 48
            assert any(r.decision != "noop" for r in records)
            assert server.epochs.current_epoch >= 1
            # The acceptance check: a fresh request served after the
            # swaps must carry depths for the *mutated* graph.
            rid = server.submit(Request(source=0, kind="bfs"))
            response = next(
                r for r in server.drain() if r.request_id == rid
            )
            expected = IBFS(server.graph, CONFIG).run_group([0])
            assert np.array_equal(response.depths, expected.depths[0])
        finally:
            server.close()

    def test_dynamic_server_refuses_caller_owned_executor(self, graph):
        from repro.service import ServingConfig
        from repro.stream import DynamicBFSServer

        class FakeExecutor:
            pass

        with pytest.raises(ServiceError):
            DynamicBFSServer(
                graph,
                ServingConfig(**self.SERVING_KW),
                executor=FakeExecutor(),
            )

    def test_server_metrics_name_substrate(self, graph):
        from repro.service import BFSServer, ServingConfig

        server = BFSServer(
            graph,
            ServingConfig(batch_size=8),
            substrate=SubstrateSpec(kind="partitioned", partitions=2),
        )
        try:
            payload = server.metrics_snapshot()
            assert payload["substrate"]["kind"] == "partitioned"
            caps = payload["substrate"]["capabilities"]
            assert caps["supports_partitions"]
        finally:
            server.close()
