"""Executor-backed BFSServer: wave dispatch bit-identity and guards."""

import numpy as np
import pytest

from repro.errors import ServiceError, TraversalError
from repro.graph.generators import kronecker
from repro.core.engine import IBFSConfig
from repro.service import BFSServer, Request, ServingConfig
from repro.exec import ExecConfig, GroupExecutor
from repro.exec.shm import shared_memory_available

needs_shm = pytest.mark.skipif(
    not shared_memory_available(),
    reason="multiprocessing.shared_memory unavailable",
)

CONFIG = IBFSConfig(group_size=8)
SERVING = ServingConfig(batch_size=8, num_devices=3, return_depths=True)


@pytest.fixture(scope="module")
def graph():
    return kronecker(scale=8, edge_factor=8, seed=23)


@pytest.fixture(scope="module")
def requests(graph):
    rng = np.random.default_rng(5)
    return [
        Request(source=int(s), kind="bfs")
        for s in rng.integers(0, graph.num_vertices, 60)
    ]


def serve_all(graph, requests, executor=None, fault=None):
    server = BFSServer(
        graph,
        serving=SERVING,
        engine_config=CONFIG,
        executor=executor,
        fault_injector=fault,
    )
    t = 0.0
    for request in requests:
        server.submit(request, arrival_time=t)
        t += 1e-6
    responses = server.drain()
    return responses, server.metrics_snapshot()


def assert_same_metrics(plain_metrics, backed_metrics):
    """Everything except the substrate section (which names the
    placement and so legitimately differs) must be bit-identical."""
    plain_sub = plain_metrics.pop("substrate")
    backed_sub = backed_metrics.pop("substrate")
    assert plain_sub["kind"] == "serial"
    assert backed_sub["kind"] == "executor"
    assert plain_metrics == backed_metrics


def assert_same_responses(plain, backed):
    assert len(plain) == len(backed)
    for a, b in zip(plain, backed):
        assert a.request_id == b.request_id
        assert a.status == b.status
        assert a.value == b.value
        assert a.latency == b.latency
        assert a.batch_id == b.batch_id
        assert a.attempts == b.attempts
        assert (a.depths is None) == (b.depths is None)
        if a.depths is not None:
            assert np.array_equal(a.depths, b.depths)


@needs_shm
class TestWaveDispatch:
    def test_bit_identical_to_inline_path(self, graph, requests):
        plain, plain_metrics = serve_all(graph, requests)
        with GroupExecutor(
            graph, CONFIG, exec_config=ExecConfig(num_workers=2)
        ) as executor:
            backed, backed_metrics = serve_all(
                graph, requests, executor=executor
            )
        assert_same_responses(plain, backed)
        assert_same_metrics(plain_metrics, backed_metrics)

    def test_bit_identical_through_injected_faults(self, graph, requests):
        def make_chaos():
            state = {"n": 0}

            def chaos(sources):
                state["n"] += 1
                if state["n"] in (2, 5):
                    raise TraversalError("injected chaos")

            return chaos

        plain, plain_metrics = serve_all(graph, requests, fault=make_chaos())
        with GroupExecutor(
            graph, CONFIG, exec_config=ExecConfig(num_workers=2)
        ) as executor:
            backed, backed_metrics = serve_all(
                graph, requests, executor=executor, fault=make_chaos()
            )
        assert_same_responses(plain, backed)
        assert_same_metrics(plain_metrics, backed_metrics)
        assert plain_metrics["requests"]["retries"] > 0

    def test_single_device_reduces_to_serial_waves(self, graph, requests):
        serving = ServingConfig(batch_size=8, num_devices=1)
        with GroupExecutor(
            graph, CONFIG, exec_config=ExecConfig(num_workers=2)
        ) as executor:
            server = BFSServer(
                graph, serving=serving, engine_config=CONFIG,
                executor=executor,
            )
            plain = BFSServer(graph, serving=serving, engine_config=CONFIG)
            for request in requests[:20]:
                server.submit(request)
                plain.submit(request)
            assert_same_responses(plain.drain(), server.drain())

    def test_inprocess_executor_also_identical(self, graph, requests):
        # num_workers=0 exercises the wave path without a pool.
        plain, plain_metrics = serve_all(graph, requests)
        with GroupExecutor(
            graph, CONFIG, exec_config=ExecConfig(num_workers=0)
        ) as executor:
            backed, backed_metrics = serve_all(
                graph, requests, executor=executor
            )
        assert_same_responses(plain, backed)
        assert_same_metrics(plain_metrics, backed_metrics)


class TestExecutorGuards:
    def test_mismatched_graph_rejected(self, graph):
        other = kronecker(scale=7, edge_factor=8, seed=99)
        executor = GroupExecutor(
            other, CONFIG, exec_config=ExecConfig(num_workers=0)
        )
        with pytest.raises(ServiceError, match="graph does not match"):
            BFSServer(graph, serving=SERVING, engine_config=CONFIG,
                      executor=executor)

    def test_mismatched_engine_config_rejected(self, graph):
        executor = GroupExecutor(
            graph,
            IBFSConfig(group_size=4),
            exec_config=ExecConfig(num_workers=0),
        )
        with pytest.raises(ServiceError, match="engine config"):
            BFSServer(graph, serving=SERVING, engine_config=CONFIG,
                      executor=executor)


@needs_shm
class TestCLIWorkers:
    def test_run_with_workers_prints_backend(self, capsys):
        from repro.cli import main

        assert main([
            "run", "PK", "--sources", "16", "--group-size", "8",
            "--workers", "2", "--scheduler", "lpt",
        ]) == 0
        out = capsys.readouterr().out
        assert "exec backend" in out
        assert "2 workers, lpt" in out

    def test_serve_with_workers(self, capsys):
        from repro.cli import main

        assert main([
            "serve", "PK", "--requests", "64", "--batch-size", "8",
            "--workers", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "exec backend" in out

    def test_run_without_workers_unchanged(self, capsys):
        from repro.cli import main

        assert main([
            "run", "PK", "--sources", "16", "--group-size", "8",
        ]) == 0
        assert "exec backend" not in capsys.readouterr().out
