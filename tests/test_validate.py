"""Graph500-style oracle-free BFS validation."""

import numpy as np
import pytest

from repro.errors import TraversalError
from repro.graph.builders import from_edges
from repro.graph.generators import kronecker, path
from repro.bfs.reference import reference_bfs
from repro.bfs.validate import is_valid_bfs, validate_depths


@pytest.fixture(scope="module")
def kron():
    return kronecker(scale=7, edge_factor=6, seed=41)


class TestAcceptsCorrectOutput:
    def test_reference_depths_validate(self, kron):
        for source in (0, 17, 100):
            validate_depths(kron, source, reference_bfs(kron, source))

    def test_disconnected_graph(self):
        g = from_edges([(0, 1), (3, 4)], num_vertices=6, undirected=True)
        validate_depths(g, 0, reference_bfs(g, 0))

    def test_every_engine_output_validates(self, kron):
        from repro.core.engine import IBFS, IBFSConfig

        sources = [0, 5, 9]
        result = IBFS(kron, IBFSConfig(group_size=4)).run(sources)
        for s in sources:
            validate_depths(kron, s, result.depth_row(s))


class TestRejectsCorruption:
    @pytest.fixture
    def line(self):
        return path(6)

    def test_wrong_source_depth(self, line):
        depths = reference_bfs(line, 0)
        depths[0] = 1
        assert not is_valid_bfs(line, 0, depths)

    def test_skipped_level(self, line):
        depths = reference_bfs(line, 0)
        depths[3] = 5  # edge 2-3 would span two levels
        with pytest.raises(TraversalError, match="spans"):
            validate_depths(line, 0, depths)

    def test_false_unreachable(self, line):
        depths = reference_bfs(line, 0)
        depths[5] = -1  # vertex 4 is reached, so 5 cannot be unreached
        with pytest.raises(TraversalError, match="unreached"):
            validate_depths(line, 0, depths)

    def test_orphan_vertex(self):
        g = from_edges([(0, 1)], num_vertices=3)
        depths = np.asarray([0, 1, 2], dtype=np.int32)  # 2 has no parent
        with pytest.raises(TraversalError, match="no"):
            validate_depths(g, 0, depths)

    def test_depth_zero_elsewhere(self, line):
        depths = reference_bfs(line, 0)
        depths[2] = 0
        assert not is_valid_bfs(line, 0, depths)

    def test_shape_mismatch(self, line):
        with pytest.raises(TraversalError, match="shape"):
            validate_depths(line, 0, np.zeros(3, dtype=np.int32))

    def test_source_out_of_range(self, line):
        with pytest.raises(TraversalError, match="out of range"):
            validate_depths(line, 99, np.zeros(6, dtype=np.int32))

    def test_too_shallow_depth_is_not_detected_locally(self, line):
        """A depth *smaller* than true distance passes local edge checks
        only if a parent exists — validate that rule 3 catches it."""
        depths = reference_bfs(line, 0)
        depths[4] = 2  # no in-neighbor at depth 1 exists for vertex 4
        assert not is_valid_bfs(line, 0, depths)
