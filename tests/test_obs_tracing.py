"""Span tracing: explicit clocks, nesting, propagation, ingestion."""

import pytest

from repro.errors import ObservabilityError
from repro.obs import tracing
from repro.obs.tracing import Span, Tracer


class FakeClock:
    """Deterministic monotonic clock advancing 1s per tick."""

    def __init__(self, start: float = 100.0, step: float = 1.0) -> None:
        self.t = start
        self.step = step

    def __call__(self) -> float:
        now = self.t
        self.t += self.step
        return now


@pytest.fixture(autouse=True)
def _isolate_module_tracer():
    yield
    tracing.set_tracer(None)


@pytest.fixture
def tracer():
    return Tracer(process="t", clock=FakeClock(), enabled=True)


class TestSpanLifecycle:
    def test_span_timings_come_from_the_clock(self, tracer):
        with tracer.span("work") as span:
            pass
        assert span.start == 100.0
        assert span.end == 101.0
        assert span.duration == 1.0
        assert span.status == "ok"

    def test_ids_are_deterministic(self, tracer):
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        ids = [s.span_id for s in tracer.finished]
        assert ids == ["t-1", "t-2"]
        assert all(s.trace_id == "trace-t" for s in tracer.finished)

    def test_nesting_sets_parent(self, tracer):
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        # Inner finishes first.
        assert [s.name for s in tracer.finished] == ["inner", "outer"]

    def test_exception_marks_error_and_propagates(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("boom") as span:
                raise ValueError("no")
        assert span.status == "error"
        assert span.end is not None

    def test_attrs_captured(self, tracer):
        with tracer.span("work", depth=3, mode="bitwise") as span:
            pass
        assert span.attrs == {"depth": 3, "mode": "bitwise"}

    def test_duration_zero_while_open(self, tracer):
        span = tracer.start_span("open")
        assert span.duration == 0.0
        tracer.finish_span(span)
        assert span.duration > 0.0


class TestDetachedAndExplicitParents:
    def test_detached_spans_overlap_without_nesting(self, tracer):
        a = tracer.start_span("dispatch", detached=True, task_id=0)
        b = tracer.start_span("dispatch", detached=True, task_id=1)
        # Neither is on the stack, so a regular span has no parent.
        with tracer.span("other") as other:
            pass
        assert other.parent_id is None
        tracer.finish_span(b, status="ok")
        tracer.finish_span(a, status="error")
        by_name = {s.attrs.get("task_id"): s for s in tracer.finished
                   if s.name == "dispatch"}
        assert by_name[0].status == "error"
        assert by_name[1].status == "ok"

    def test_explicit_parent_overrides_stack(self, tracer):
        foreign = ("trace-other", "remote-7")
        with tracer.span("outer"):
            with tracer.span("child", parent=foreign) as child:
                pass
        assert child.trace_id == "trace-other"
        assert child.parent_id == "remote-7"

    def test_current_context_is_innermost(self, tracer):
        assert tracer.current_context() is None
        with tracer.span("outer") as outer:
            assert tracer.current_context() == outer.context
            with tracer.span("inner") as inner:
                assert tracer.current_context() == (tracer.trace_id,
                                                    inner.span_id)

    def test_out_of_order_close_pops_descendants(self, tracer):
        outer = tracer.start_span("outer")
        tracer.start_span("inner")
        tracer.finish_span(outer)
        assert tracer.current_context() is None


class TestIngestAndExport:
    def test_roundtrip_through_dicts(self, tracer):
        with tracer.span("work", depth=1):
            pass
        record = tracer.export_dicts()[0]
        clone = Span.from_dict(record)
        assert clone.to_dict() == record

    def test_from_dict_rejects_non_spans(self):
        with pytest.raises(ObservabilityError):
            Span.from_dict({"kind": "metric", "name": "x"})

    def test_ingest_merges_worker_spans(self, tracer):
        worker = Tracer(process="worker-0", clock=FakeClock(5.0),
                        trace_id=tracer.trace_id)
        with tracer.span("dispatch") as dispatch:
            ctx = dispatch.context
        with worker.span("task", parent=ctx):
            pass
        shipped = [s.to_dict() for s in worker.drain()]
        tracer.ingest(shipped)
        task = [s for s in tracer.finished if s.name == "task"][0]
        assert task.parent_id == dispatch.span_id
        assert task.trace_id == tracer.trace_id
        assert task.process == "worker-0"

    def test_drain_empties_buffer(self, tracer):
        with tracer.span("a"):
            pass
        assert len(tracer.drain()) == 1
        assert tracer.finished == []
        assert tracer.export_dicts() == []

    def test_id_prefix_keeps_process_tag(self):
        t = Tracer(process="worker-0", id_prefix="worker-0.123")
        with t.span("task") as span:
            pass
        assert span.span_id == "worker-0.123-1"
        assert span.process == "worker-0"


class TestModuleTracer:
    def test_default_is_disabled(self):
        tracer = tracing.get_tracer()
        assert not tracer.enabled
        with tracer.span("ignored") as span:
            assert span is None
        assert tracer.start_span("ignored") is None
        assert tracer.finished == []

    def test_configure_installs_enabled_tracer(self):
        tracer = tracing.configure(process="cli", clock=FakeClock())
        assert tracing.get_tracer() is tracer
        assert tracing.tracing_enabled()
        with tracer.span("work"):
            pass
        assert len(tracer.finished) == 1

    def test_set_tracer_none_restores_disabled(self):
        tracing.configure(process="cli")
        tracing.set_tracer(None)
        assert not tracing.tracing_enabled()

    def test_disabled_ingest_is_a_noop(self):
        tracer = tracing.get_tracer()
        assert tracer.ingest([{"kind": "span", "name": "x",
                               "trace_id": "t", "span_id": "s",
                               "parent_id": None, "start": 0.0}]) == []
