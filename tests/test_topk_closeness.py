"""Top-k closeness with level-bound pruning."""

import pytest

from repro.errors import TraversalError
from repro.graph.builders import from_edges
from repro.graph.generators import kronecker, path, star
from repro.apps.topk_closeness import (
    exact_closeness_ranking,
    top_k_closeness,
)


class TestExactness:
    def test_matches_exhaustive_ranking_on_kron(self):
        graph = kronecker(scale=6, edge_factor=6, seed=121)
        exact = exact_closeness_ranking(graph)[:5]
        pruned = top_k_closeness(graph, 5)
        assert [v for v, _ in pruned] == [v for v, _ in exact]
        for (_, a), (_, b) in zip(pruned, exact):
            assert a == pytest.approx(b)

    def test_star_hub_is_top(self):
        result = top_k_closeness(star(12), 1)
        assert result[0][0] == 0
        assert result[0][1] == pytest.approx(1.0)

    def test_path_center_is_top(self):
        result = top_k_closeness(path(9), 2)
        assert result[0][0] == 4  # exact center

    def test_scores_sorted_descending(self):
        graph = kronecker(scale=6, edge_factor=4, seed=122)
        result = top_k_closeness(graph, 8)
        scores = [s for _, s in result]
        assert scores == sorted(scores, reverse=True)


class TestCandidatesAndPruning:
    def test_candidate_subset_respected(self):
        graph = star(10)
        result = top_k_closeness(graph, 3, candidates=[2, 3, 4])
        assert {v for v, _ in result} <= {2, 3, 4}

    def test_k_clamped_to_candidates(self):
        graph = path(5)
        assert len(top_k_closeness(graph, 10, candidates=[0, 1])) == 2

    def test_deeper_pruning_level_same_answer(self):
        graph = kronecker(scale=6, edge_factor=6, seed=123)
        shallow = top_k_closeness(graph, 4, prune_after_level=1)
        deep = top_k_closeness(graph, 4, prune_after_level=4)
        assert [v for v, _ in shallow] == [v for v, _ in deep]

    def test_disconnected_graph(self):
        graph = from_edges([(0, 1), (1, 2)], num_vertices=5, undirected=True)
        result = top_k_closeness(graph, 2)
        assert result[0][0] == 1  # middle of the only component


class TestValidation:
    def test_invalid_k(self):
        with pytest.raises(TraversalError):
            top_k_closeness(path(3), 0)

    def test_invalid_prune_level(self):
        with pytest.raises(TraversalError):
            top_k_closeness(path(3), 1, prune_after_level=0)

    def test_candidate_out_of_range(self):
        with pytest.raises(TraversalError):
            top_k_closeness(path(3), 1, candidates=[99])
