"""Differential property tests for the partitioned engine.

Companion of ``test_hypothesis_differential.py``: on arbitrary random
graphs, every (partition count, layout, wire format) combination of
:class:`repro.dist.engine.PartitionedEngine` must produce the depth
matrix of the serial :class:`repro.core.engine.IBFS` bit-for-bit — the
decomposition and the exchange change only communication, never depths.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph.builders import from_edge_arrays
from repro.graph.csr import VERTEX_DTYPE
from repro.core.engine import IBFS, IBFSConfig
from repro.dist.engine import DistConfig, PartitionedEngine

SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

PARTITION_COUNTS = (1, 2, 4)
LAYOUTS = ("1d", "2d")
FORMATS = ("auto", "dense", "sparse")


@st.composite
def cases(draw, max_vertices=24, max_edges=70, max_sources=6):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    graph = from_edge_arrays(
        np.asarray(src, dtype=VERTEX_DTYPE),
        np.asarray(dst, dtype=VERTEX_DTYPE),
        num_vertices=n,
        undirected=draw(st.booleans()),
    )
    k = draw(st.integers(min_value=1, max_value=min(max_sources, n)))
    group = draw(
        st.lists(st.integers(0, n - 1), min_size=k, max_size=k, unique=True)
    )
    return graph, group


@SETTINGS
@given(cases())
def test_all_partitionings_match_serial(case):
    graph, group = case
    expected = IBFS(
        graph, IBFSConfig(group_size=len(group))
    ).run_group(group)
    for num_partitions in PARTITION_COUNTS:
        for layout in LAYOUTS:
            engine = PartitionedEngine(
                graph,
                DistConfig(
                    num_partitions=num_partitions,
                    layout=layout,
                    group_size=len(group),
                ),
            )
            result = engine.run_group(group)
            assert np.array_equal(result.depths, expected.depths), (
                num_partitions,
                layout,
            )


@SETTINGS
@given(cases(), st.sampled_from(FORMATS))
def test_wire_formats_match_serial(case, fmt):
    graph, group = case
    expected = IBFS(
        graph, IBFSConfig(group_size=len(group))
    ).run_group(group)
    engine = PartitionedEngine(
        graph,
        DistConfig(
            num_partitions=2,
            layout="2d",
            exchange=fmt,
            group_size=len(group),
        ),
    )
    result = engine.run_group(group)
    assert np.array_equal(result.depths, expected.depths), fmt


@SETTINGS
@given(cases())
def test_replay_is_bit_identical(case):
    graph, group = case
    engine = PartitionedEngine(
        graph,
        DistConfig(num_partitions=2, group_size=len(group)),
    )
    first = engine.run_group(group)
    original = [
        (t.fmt, t.nbytes, t.messages) for t in engine.last_stats.levels
    ]
    replay = engine.run_group(group, plan=first.groups[0].plan)
    assert np.array_equal(replay.depths, first.depths)
    assert original == [
        (t.fmt, t.nbytes, t.messages) for t in engine.last_stats.levels
    ]


@SETTINGS
@given(cases())
def test_balance_modes_match(case):
    graph, group = case
    results = []
    for balance in ("edges", "vertices"):
        engine = PartitionedEngine(
            graph,
            DistConfig(
                num_partitions=3, balance=balance, group_size=len(group)
            ),
        )
        results.append(engine.run_group(group).depths)
    assert np.array_equal(results[0], results[1])
