"""Programmatic q tuning (the figure-8 sweep as an API)."""

import pytest

from repro.errors import GroupingError
from repro.graph.generators import kronecker, star, uniform_random
from repro.core.groupby import GroupByConfig, auto_tune_q, group_sources
from repro.core.joint import JointTraversal


@pytest.fixture(scope="module")
def kron():
    return kronecker(scale=8, edge_factor=8, seed=181)


class TestAutoTuneQ:
    def test_returns_a_candidate(self, kron):
        q = auto_tune_q(kron, list(range(48)), group_size=16)
        assert q in (4, 16, 64, 128, 256, 1024)

    def test_custom_candidates(self, kron):
        q = auto_tune_q(
            kron, list(range(32)), group_size=16, candidates=(8, 32)
        )
        assert q in (8, 32)

    def test_invalid_arguments(self, kron):
        with pytest.raises(GroupingError):
            auto_tune_q(kron, [0, 1], group_size=0)
        with pytest.raises(GroupingError):
            auto_tune_q(kron, [0, 1], group_size=4, candidates=())

    def test_deterministic(self, kron):
        sources = list(range(48))
        assert auto_tune_q(kron, sources, 16) == auto_tune_q(
            kron, sources, 16
        )

    def test_tuned_q_not_worse_than_extreme(self, kron):
        """The tuned q's grouping shares at least as much overall as a
        hopeless extreme threshold (q larger than the max degree)."""
        sources = list(range(48))
        tuned = auto_tune_q(kron, sources, 16)
        engine = JointTraversal(kron)

        def overall_sd(q):
            groups = group_sources(kron, sources, 16, GroupByConfig(q=q))
            total = 0.0
            weight = 0
            for members in groups:
                _, _, stats = engine.run_group(members)
                total += stats.sharing_degree * len(members)
                weight += len(members)
            return total / weight

        hopeless_q = int(kron.out_degrees().max()) + 1
        assert overall_sd(tuned) >= overall_sd(hopeless_q) * 0.9

    def test_star_graph_prefers_reachable_threshold(self):
        # All leaves share one hub of degree ~n; any q below that degree
        # should be chosen over one above it.
        g = star(300)
        q = auto_tune_q(
            g, list(range(1, 41)), group_size=8, candidates=(16, 100000)
        )
        assert q == 16

    def test_uniform_graph_runs(self):
        g = uniform_random(256, 4, seed=182)
        q = auto_tune_q(g, list(range(32)), group_size=8)
        assert isinstance(q, int)
