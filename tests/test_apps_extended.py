"""APSP front-ends and concurrent connected components."""

import numpy as np
import pytest

from repro.graph.builders import from_edges
from repro.graph.generators import kronecker, path, star
from repro.graph.properties import connected_components
from repro.bfs.reference import reference_bfs_multi
from repro.core.engine import IBFS, IBFSConfig
from repro.apps.apsp import (
    apsp_unweighted,
    eccentricities,
    exact_diameter,
)
from repro.apps.components import (
    component_sizes,
    connected_components_concurrent,
)


@pytest.fixture(scope="module")
def small_kron():
    return kronecker(scale=6, edge_factor=5, seed=51)


@pytest.fixture(scope="module")
def engine(small_kron):
    return IBFS(small_kron, IBFSConfig(group_size=16))


class TestAPSP:
    def test_matches_reference(self, small_kron, engine):
        matrix = apsp_unweighted(small_kron, engine)
        expected = reference_bfs_multi(
            small_kron, range(small_kron.num_vertices)
        )
        assert np.array_equal(matrix, expected)

    def test_diagonal_is_zero(self, small_kron, engine):
        matrix = apsp_unweighted(small_kron, engine)
        assert (np.diag(matrix) == 0).all()

    def test_path_eccentricities(self):
        g = path(5)
        engine = IBFS(g, IBFSConfig(group_size=5))
        assert eccentricities(g, engine).tolist() == [4, 3, 2, 3, 4]

    def test_exact_diameter(self):
        g = path(7)
        engine = IBFS(g, IBFSConfig(group_size=7))
        assert exact_diameter(g, engine) == 6

    def test_star_diameter(self):
        g = star(12)
        engine = IBFS(g, IBFSConfig(group_size=13))
        assert exact_diameter(g, engine) == 2

    def test_isolated_vertices_have_ecc_zero(self):
        g = from_edges([(0, 1)], num_vertices=3, undirected=True)
        engine = IBFS(g, IBFSConfig(group_size=3))
        assert eccentricities(g, engine).tolist() == [1, 1, 0]


class TestConnectedComponents:
    def test_matches_reference_labels(self, small_kron):
        expected = connected_components(small_kron)
        got = connected_components_concurrent(small_kron, batch_size=8)
        assert np.array_equal(got, expected)

    def test_multi_component_graph(self):
        g = from_edges(
            [(0, 1), (1, 2), (4, 5), (7, 8), (8, 9)],
            num_vertices=10,
            undirected=True,
        )
        labels = connected_components_concurrent(g, batch_size=4)
        assert np.array_equal(labels, connected_components(g))
        sizes = component_sizes(labels)
        assert sizes == {0: 3, 3: 1, 4: 2, 6: 1, 7: 3}

    def test_directed_graph_uses_weak_connectivity(self):
        g = from_edges([(0, 1), (2, 1)], num_vertices=3)
        labels = connected_components_concurrent(g, batch_size=2)
        assert labels.tolist() == [0, 0, 0]

    def test_empty_graph(self):
        from repro.graph.csr import empty_graph

        labels = connected_components_concurrent(empty_graph(0))
        assert labels.size == 0

    def test_all_isolated(self):
        from repro.graph.csr import empty_graph

        labels = connected_components_concurrent(empty_graph(5), batch_size=2)
        assert labels.tolist() == [0, 1, 2, 3, 4]

    def test_batch_size_does_not_change_labels(self, small_kron):
        a = connected_components_concurrent(small_kron, batch_size=2)
        b = connected_components_concurrent(small_kron, batch_size=32)
        assert np.array_equal(a, b)
