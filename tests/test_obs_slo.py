"""SLO engine: specs, rolling windows, burn rates, alert edges.

The precision bar from the issue: a seeded breach produces *exactly*
the expected alert events — breaches alert once on the rising edge,
resolves once on the falling edge, steady states stay silent — and
the server wiring surfaces them in ``metrics_snapshot()["slo"]``.
"""

import pytest

from repro.errors import ObservabilityError
from repro.obs import tracing
from repro.obs import profile as obs_profile
from repro.obs.metrics import MetricsHub
from repro.obs.slo import (
    SIGNAL_CACHE_STALENESS,
    SIGNAL_ERROR_RATE,
    SIGNAL_QUEUE_DEPTH,
    SIGNAL_WAVE_LATENCY,
    RollingWindow,
    SLOEngine,
    SLOSpec,
    default_slos,
    load_slo_specs,
    reduce_samples,
    render_slo_report,
    replay_trace,
)
from repro.service import (
    BFSServer,
    ServingConfig,
    WorkloadConfig,
    run_closed_loop,
)
from repro.stream import ChurnConfig, DynamicBFSServer, run_churn_loop


@pytest.fixture(autouse=True)
def _isolate_obs():
    yield
    tracing.set_tracer(None)
    obs_profile.disable()


# ----------------------------------------------------------------------
# Specs
# ----------------------------------------------------------------------
class TestSLOSpec:
    def test_valid_spec_round_trips(self):
        spec = SLOSpec(
            name="lat", signal=SIGNAL_WAVE_LATENCY, objective=1e-3,
            reduce="p95", window_seconds=10.0, min_samples=3,
        )
        assert SLOSpec.from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize("kwargs,match", [
        (dict(name=""), "needs a name"),
        (dict(objective=0.0), "objective"),
        (dict(reduce="median"), "reducer"),
        (dict(window_seconds=0.0), "window_seconds"),
        (dict(burn_threshold=0.0), "burn_threshold"),
        (dict(min_samples=0), "min_samples"),
    ])
    def test_validation(self, kwargs, match):
        base = dict(name="x", signal="s", objective=1.0)
        base.update(kwargs)
        with pytest.raises(ObservabilityError, match=match):
            SLOSpec(**base)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ObservabilityError, match="unknown SLO spec"):
            SLOSpec.from_dict(
                {"name": "x", "signal": "s", "objective": 1.0,
                 "threshold": 2.0}
            )

    def test_default_slos_cover_all_signals(self):
        signals = {s.signal for s in default_slos()}
        assert signals == {
            SIGNAL_WAVE_LATENCY, SIGNAL_ERROR_RATE,
            SIGNAL_QUEUE_DEPTH, SIGNAL_CACHE_STALENESS,
        }

    def test_load_slo_specs_list_and_wrapped(self, tmp_path):
        import json

        payload = [
            {"name": "a", "signal": "s", "objective": 1.0},
            {"name": "b", "signal": "t", "objective": 2.0, "reduce": "max"},
        ]
        flat = tmp_path / "flat.json"
        flat.write_text(json.dumps(payload))
        wrapped = tmp_path / "wrapped.json"
        wrapped.write_text(json.dumps({"slos": payload}))
        assert load_slo_specs(str(flat)) == load_slo_specs(str(wrapped))
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps("nope"))
        with pytest.raises(ObservabilityError, match="list of specs"):
            load_slo_specs(str(bad))


class TestReduceSamples:
    def test_reducers(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert reduce_samples(values, "mean") == pytest.approx(2.5)
        assert reduce_samples(values, "rate") == pytest.approx(2.5)
        assert reduce_samples(values, "max") == pytest.approx(4.0)
        assert reduce_samples(values, "p50") == pytest.approx(2.5)
        assert reduce_samples([], "p99") == 0.0

    def test_unknown_reducer(self):
        with pytest.raises(ObservabilityError, match="unknown SLO reducer"):
            reduce_samples([1.0], "median")


class TestRollingWindow:
    def test_evicts_expired_prefix(self):
        window = RollingWindow(10.0)
        for ts in (0.0, 5.0, 12.0):
            window.observe(ts, ts)
        assert window.values(now=14.0) == [5.0, 12.0]
        # Eviction is in place: the expired sample is gone for good.
        assert len(window) == 2

    def test_boundary_sample_exactly_at_cutoff_drops(self):
        window = RollingWindow(10.0)
        window.observe(0.0, 1.0)
        assert window.values(now=10.0) == []

    def test_out_of_order_rejected(self):
        window = RollingWindow(10.0)
        window.observe(5.0, 1.0)
        with pytest.raises(ObservabilityError, match="time order"):
            window.observe(4.0, 1.0)


# ----------------------------------------------------------------------
# Engine: burn rates and alert edges
# ----------------------------------------------------------------------
def _latency_spec(**kwargs):
    base = dict(
        name="lat", signal=SIGNAL_WAVE_LATENCY, objective=1.0,
        reduce="max", window_seconds=10.0,
    )
    base.update(kwargs)
    return SLOSpec(**base)


class TestSLOEngine:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ObservabilityError, match="duplicate"):
            SLOEngine(specs=[_latency_spec(), _latency_spec()])

    def test_unwatched_signal_dropped(self):
        engine = SLOEngine(specs=[_latency_spec()])
        engine.observe("unwatched", 99.0, timestamp=0.0)
        (status,) = engine.evaluate(0.0)
        assert status.samples == 0 and not status.breached

    def test_breach_and_resolve_alert_exactly_once(self):
        engine = SLOEngine(specs=[_latency_spec()])
        engine.observe(SIGNAL_WAVE_LATENCY, 2.0, timestamp=0.0)
        (status,) = engine.evaluate(0.0)
        assert status.breached and status.burn == pytest.approx(2.0)
        # Steady-state breach: further evaluations add no alerts.
        engine.evaluate(1.0)
        engine.evaluate(2.0)
        assert [a.kind for a in engine.alerts] == ["breach"]
        # Window slides past the bad sample -> resolve edge, once.
        engine.evaluate(11.0)
        engine.evaluate(12.0)
        assert [a.kind for a in engine.alerts] == ["breach", "resolve"]
        breach, resolve = engine.alerts
        assert breach.slo == "lat" and breach.time == 0.0
        assert resolve.time == 11.0 and resolve.value == 0.0

    def test_min_samples_guards_cold_start(self):
        engine = SLOEngine(specs=[_latency_spec(min_samples=3)])
        engine.observe(SIGNAL_WAVE_LATENCY, 5.0, timestamp=0.0)
        engine.observe(SIGNAL_WAVE_LATENCY, 5.0, timestamp=1.0)
        (status,) = engine.evaluate(1.0)
        assert not status.breached and status.burn > 1.0
        engine.observe(SIGNAL_WAVE_LATENCY, 5.0, timestamp=2.0)
        (status,) = engine.evaluate(2.0)
        assert status.breached

    def test_shared_signal_specs_refilter_to_own_window(self):
        short = _latency_spec(name="short", window_seconds=5.0)
        long = _latency_spec(name="long", window_seconds=100.0)
        engine = SLOEngine(specs=[short, long])
        engine.observe(SIGNAL_WAVE_LATENCY, 9.0, timestamp=0.0)
        engine.observe(SIGNAL_WAVE_LATENCY, 0.5, timestamp=8.0)
        by_name = {s.spec.name: s for s in engine.evaluate(10.0)}
        # The old bad sample is outside short's window but inside long's.
        assert by_name["short"].value == pytest.approx(0.5)
        assert not by_name["short"].breached
        assert by_name["long"].value == pytest.approx(9.0)
        assert by_name["long"].breached

    def test_hub_mirrors_alerts_and_burn(self):
        hub = MetricsHub()
        engine = SLOEngine(specs=[_latency_spec()], hub=hub)
        engine.observe(SIGNAL_WAVE_LATENCY, 2.0, timestamp=0.0)
        engine.evaluate(0.0)
        engine.evaluate(11.0)
        counter_breach = hub.counter(
            "slo_alerts_total", labels={"slo": "lat", "kind": "breach"}
        )
        counter_resolve = hub.counter(
            "slo_alerts_total", labels={"slo": "lat", "kind": "resolve"}
        )
        assert counter_breach.value == 1.0
        assert counter_resolve.value == 1.0
        burn = hub.gauge("slo_burn_rate", labels={"slo": "lat"})
        assert burn.value == pytest.approx(0.0)  # last evaluation

    def test_snapshot_shape(self):
        engine = SLOEngine(specs=[_latency_spec()])
        engine.observe(SIGNAL_WAVE_LATENCY, 2.0, timestamp=0.0)
        engine.evaluate(0.0)
        snap = engine.snapshot()
        assert [s["name"] for s in snap["specs"]] == ["lat"]
        assert snap["status"][0]["breached"] is True
        assert [a["kind"] for a in snap["alerts"]] == ["breach"]

    def test_render_report_lists_state_and_alerts(self):
        engine = SLOEngine(specs=[_latency_spec()])
        engine.observe(SIGNAL_WAVE_LATENCY, 2.0, timestamp=0.0)
        engine.evaluate(0.0)
        report = render_slo_report(engine)
        assert "BREACHED" in report
        assert "alerts (1)" in report


# ----------------------------------------------------------------------
# Trace replay
# ----------------------------------------------------------------------
def _wave_record(sid, start, end, status="ok", queue_depth=None):
    attrs = {}
    if queue_depth is not None:
        attrs["queue_depth"] = queue_depth
    return {
        "kind": "span", "name": "serve.batch", "span_id": sid,
        "parent_id": None, "start": start, "end": end,
        "process": "serve", "attrs": attrs, "status": status,
    }


class TestReplayTrace:
    def test_replays_latency_errors_and_depth(self):
        spec_lat = SLOSpec(
            name="lat", signal=SIGNAL_WAVE_LATENCY, objective=1.0,
            reduce="max", window_seconds=100.0,
        )
        spec_err = SLOSpec(
            name="err", signal=SIGNAL_ERROR_RATE, objective=0.5,
            reduce="rate", window_seconds=100.0,
        )
        spec_depth = SLOSpec(
            name="depth", signal=SIGNAL_QUEUE_DEPTH, objective=10.0,
            reduce="max", window_seconds=100.0,
        )
        engine = SLOEngine(specs=[spec_lat, spec_err, spec_depth])
        records = [
            _wave_record("s1", 0.0, 0.5, queue_depth=2),
            _wave_record("s2", 1.0, 3.0, status="error", queue_depth=20),
        ]
        statuses = {
            s.spec.name: s for s in replay_trace(records, engine)
        }
        assert statuses["lat"].value == pytest.approx(2.0)
        assert statuses["lat"].breached
        assert statuses["err"].value == pytest.approx(0.5)
        assert statuses["depth"].value == pytest.approx(20.0)
        kinds = [(a.slo, a.kind) for a in engine.alerts]
        assert ("lat", "breach") in kinds and ("depth", "breach") in kinds

    def test_replays_cache_staleness_from_mutate_spans(self):
        spec = SLOSpec(
            name="stale", signal=SIGNAL_CACHE_STALENESS, objective=0.5,
            reduce="mean", window_seconds=100.0,
        )
        engine = SLOEngine(specs=[spec])
        records = [{
            "kind": "span", "name": "stream.mutate", "span_id": "m1",
            "parent_id": None, "start": 0.0, "end": 1.0,
            "process": "serve", "attrs": {"cache_staleness": 0.9},
            "status": "ok",
        }]
        (status,) = replay_trace(records, engine)
        assert status.value == pytest.approx(0.9)
        assert status.breached

    def test_sim_seconds_attr_preferred_over_wall_duration(self):
        """Serve spans carry their simulated cost; wall-clock span
        bounds must not leak into the latency signal when present."""
        engine = SLOEngine(specs=[_latency_spec()])
        record = _wave_record("s1", 0.0, 50.0)  # huge wall duration
        record["attrs"]["sim_seconds"] = 0.25
        (status,) = replay_trace([record], engine)
        assert status.value == pytest.approx(0.25)
        assert not status.breached

    def test_open_spans_skipped(self):
        engine = SLOEngine(specs=[_latency_spec()])
        record = _wave_record("s1", 0.0, 0.5)
        record["end"] = None
        assert replay_trace([record], engine) == []


# ----------------------------------------------------------------------
# Server wiring
# ----------------------------------------------------------------------
def test_bfs_server_feeds_engine_and_snapshots(kron_graph):
    hub = MetricsHub()
    engine = SLOEngine(hub=hub)
    server = BFSServer(kron_graph, ServingConfig(batch_size=8), slo=engine)
    try:
        run_closed_loop(server, WorkloadConfig(
            num_requests=24, num_clients=4, seed=3,
        ))
        snap = server.metrics_snapshot()
    finally:
        server.close()
    slo = snap["slo"]
    by_name = {s["name"]: s for s in slo["status"]}
    # The healthy defaults never breach on a healthy run...
    assert not any(s["breached"] for s in slo["status"])
    assert slo["alerts"] == []
    # ...but the signals did flow.
    assert by_name["wave-p99-latency"]["samples"] > 0
    assert by_name["queue-depth"]["samples"] > 0
    assert by_name["error-rate"]["samples"] > 0


def test_seeded_breach_emits_exact_alerts(kron_graph):
    """A latency objective below any possible wave cost breaches on the
    first committed wave and never resolves: exactly one alert."""
    spec = SLOSpec(
        name="impossible-latency", signal=SIGNAL_WAVE_LATENCY,
        objective=1e-12, reduce="p99", window_seconds=1e9,
    )
    engine = SLOEngine(specs=[spec])
    server = BFSServer(kron_graph, ServingConfig(batch_size=8), slo=engine)
    try:
        run_closed_loop(server, WorkloadConfig(
            num_requests=24, num_clients=4, seed=3,
        ))
        snap = server.metrics_snapshot()
    finally:
        server.close()
    alerts = snap["slo"]["alerts"]
    assert len(alerts) == 1
    (alert,) = alerts
    assert alert["kind"] == "breach"
    assert alert["slo"] == "impossible-latency"
    assert alert["signal"] == SIGNAL_WAVE_LATENCY
    assert alert["burn"] > 1.0
    assert snap["slo"]["status"][0]["breached"] is True


def test_churn_staleness_breach_in_snapshot(kron_graph):
    """Delete churn forces full recompute (every cached row dropped,
    none repaired), so mean staleness pins at 1.0 and the staleness
    objective breaches exactly once."""
    spec = SLOSpec(
        name="staleness", signal=SIGNAL_CACHE_STALENESS, objective=0.5,
        reduce="mean", window_seconds=1e9,
    )
    engine = SLOEngine(specs=[spec])
    server = DynamicBFSServer(
        kron_graph, ServingConfig(batch_size=8), slo=engine
    )
    try:
        result, _ = run_churn_loop(
            server,
            WorkloadConfig(num_requests=48, num_clients=4, seed=3),
            ChurnConfig(mutate_every=8, inserts_per_batch=0,
                        deletes_per_batch=2, seed=7),
        )
        snap = server.metrics_snapshot()
    finally:
        server.close()
    (status,) = snap["slo"]["status"]
    assert status["breached"] is True
    assert status["value"] == pytest.approx(1.0)
    alerts = snap["slo"]["alerts"]
    assert [a["kind"] for a in alerts] == ["breach"]
    assert alerts[0]["slo"] == "staleness"


def test_insert_only_churn_stays_healthy(kron_graph):
    """Insert churn repairs rows instead of dropping them: staleness
    stays at 0.0 and the default objective never breaches."""
    engine = SLOEngine()
    server = DynamicBFSServer(
        kron_graph, ServingConfig(batch_size=8), slo=engine
    )
    try:
        run_churn_loop(
            server,
            WorkloadConfig(num_requests=48, num_clients=4, seed=3),
            ChurnConfig(mutate_every=8, inserts_per_batch=4, seed=7),
        )
        snap = server.metrics_snapshot()
    finally:
        server.close()
    by_name = {s["name"]: s for s in snap["slo"]["status"]}
    stale = by_name["cache-staleness"]
    assert stale["samples"] > 0
    assert not stale["breached"]
