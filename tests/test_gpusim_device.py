"""Device wrapper: capacity rule and thread accounting."""

import pytest

from repro.errors import CapacityError
from repro.graph.generators import kronecker
from repro.gpusim.config import KEPLER_K40
from repro.gpusim.device import Device


@pytest.fixture
def device():
    return Device()


@pytest.fixture
def graph():
    return kronecker(scale=8, edge_factor=4, seed=1)


def test_default_device_is_k40(device):
    assert device.config is KEPLER_K40
    assert "K40" in repr(device)


def test_graph_fits(device, graph):
    assert device.fits(graph)


def test_huge_graph_does_not_fit(graph):
    tiny = Device(KEPLER_K40.with_memory(16))
    assert not tiny.fits(graph)


class TestMaxGroupSize:
    def test_large_memory_allows_many_instances(self, device, graph):
        assert device.max_group_size(graph) > 1024

    def test_bitwise_statuses_allow_8x_more(self, device, graph):
        jsa = device.max_group_size(graph, status_bytes_per_instance=1.0)
        bsa = device.max_group_size(graph, status_bytes_per_instance=0.125)
        assert bsa == pytest.approx(8 * jsa, rel=0.01)

    def test_requested_within_limit_is_returned(self, device, graph):
        assert device.max_group_size(graph, requested=128) == 128

    def test_requested_beyond_limit_raises(self, graph):
        # Leave room for the graph plus a handful of instances only.
        budget = graph.memory_bytes() + graph.num_vertices * 12
        small = Device(KEPLER_K40.with_memory(budget))
        with pytest.raises(CapacityError):
            small.max_group_size(graph, requested=1024)

    def test_no_room_at_all(self, graph):
        tiny = Device(KEPLER_K40.with_memory(graph.memory_bytes()))
        assert tiny.max_group_size(graph) == 0


class TestThreadAccounting:
    def test_warps_for(self, device):
        assert device.warps_for(1) == 1
        assert device.warps_for(32) == 1
        assert device.warps_for(33) == 2

    def test_ctas_for(self, device):
        assert device.ctas_for(256) == 1
        assert device.ctas_for(257) == 2
