"""Comparator systems: MS-BFS, B40C, SpMM-BC, CPU-iBFS."""

import numpy as np
import pytest

from repro.baselines import B40C, CPUiBFS, MSBFS, SpMMBC
from repro.graph.generators import kronecker
from repro.bfs.reference import reference_bfs_multi
from repro.core.engine import IBFS, IBFSConfig


@pytest.fixture(scope="module")
def kron():
    return kronecker(scale=8, edge_factor=8, seed=13)


@pytest.fixture(scope="module")
def sources():
    return list(range(0, 48, 3))


class TestCorrectness:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda g: MSBFS(g, group_size=8),
            lambda g: B40C(g),
            lambda g: SpMMBC(g, group_size=8),
            lambda g: CPUiBFS(g),
        ],
        ids=["ms-bfs", "b40c", "spmm-bc", "cpu-ibfs"],
    )
    def test_all_baselines_match_reference(self, kron, sources, factory):
        result = factory(kron).run(sources)
        assert np.array_equal(result.depths, reference_bfs_multi(kron, sources))


class TestMSBFS:
    def test_no_early_termination(self, kron, sources):
        result = MSBFS(kron).run(sources, store_depths=False)
        assert result.counters.early_terminations == 0

    def test_engine_name(self, kron, sources):
        assert MSBFS(kron).run(sources[:2]).engine == "ms-bfs"

    def test_slower_than_gpu_ibfs(self, kron, sources):
        """Figure 22: GPU iBFS beats MS-BFS across all graphs."""
        msbfs = MSBFS(kron, group_size=16).run(sources, store_depths=False)
        ibfs = IBFS(kron, IBFSConfig(group_size=16)).run(
            sources, store_depths=False
        )
        assert ibfs.seconds < msbfs.seconds


class TestB40C:
    def test_top_down_only(self, kron, sources):
        result = B40C(kron).run(sources, store_depths=False)
        assert result.counters.early_terminations == 0
        assert result.counters.bottom_up_inspections == 0

    def test_one_kernel_per_source(self, kron, sources):
        result = B40C(kron).run(sources, store_depths=False)
        assert result.counters.kernel_launches == len(sources)

    def test_slowest_gpu_system(self, kron, sources):
        """Figure 22 ordering: B40C trails concurrent GPU engines."""
        b40c = B40C(kron).run(sources, store_depths=False)
        spmm = SpMMBC(kron, group_size=16).run(sources, store_depths=False)
        ibfs = IBFS(kron, IBFSConfig(group_size=16)).run(
            sources, store_depths=False
        )
        assert ibfs.seconds < b40c.seconds
        assert spmm.seconds < b40c.seconds


class TestSpMMBC:
    def test_no_bottom_up(self, kron, sources):
        result = SpMMBC(kron).run(sources, store_depths=False)
        assert result.counters.bottom_up_inspections == 0

    def test_slower_than_ibfs(self, kron, sources):
        spmm = SpMMBC(kron, group_size=16).run(sources, store_depths=False)
        ibfs = IBFS(kron, IBFSConfig(group_size=16)).run(
            sources, store_depths=False
        )
        assert ibfs.seconds < spmm.seconds


class TestCPUiBFS:
    def test_gpu_beats_cpu(self, kron, sources):
        """Section 7: GPU-based iBFS runs ~2x faster than the CPU port."""
        cpu = CPUiBFS(kron).run(sources, store_depths=False)
        gpu = IBFS(kron, IBFSConfig(group_size=64)).run(
            sources, store_depths=False
        )
        assert gpu.seconds < cpu.seconds

    def test_cpu_ibfs_beats_msbfs(self, kron, sources):
        """Figure 22: CPU iBFS outperforms MS-BFS (early termination +
        GroupBy)."""
        cpu = CPUiBFS(kron).run(sources, store_depths=False)
        msbfs = MSBFS(kron, group_size=64).run(sources, store_depths=False)
        assert cpu.seconds < msbfs.seconds
