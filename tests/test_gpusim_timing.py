"""Cost model: level pricing, kernel time, and Hyper-Q overlap."""

import pytest

from repro.errors import SimulationError
from repro.gpusim.config import KEPLER_K40, XEON_CPU
from repro.gpusim.counters import LevelRecord
from repro.gpusim.timing import CostModel, teps


@pytest.fixture
def cost():
    return CostModel(KEPLER_K40)


def _level(loads=0, stores=0, atomics=0, instructions=0, threads=0):
    return LevelRecord(
        depth=0,
        direction="td",
        load_transactions=loads,
        store_transactions=stores,
        atomics=atomics,
        instructions=instructions,
        threads=threads,
    )


class TestLevelTime:
    def test_bandwidth_bound(self, cost):
        level = _level(loads=1_000_000)
        expected = 1_000_000 * 128 / KEPLER_K40.memory_bandwidth
        assert cost.level_time(level) == pytest.approx(
            expected + KEPLER_K40.level_sync_overhead_s
        )

    def test_compute_bound(self, cost):
        level = _level(loads=1, instructions=10**10)
        expected = 10**10 / KEPLER_K40.instruction_throughput
        assert cost.level_time(level) == pytest.approx(
            expected + KEPLER_K40.level_sync_overhead_s
        )

    def test_atomic_bound(self, cost):
        level = _level(atomics=10**10)
        assert cost.level_time(level) >= 10**10 / KEPLER_K40.atomic_throughput

    def test_latency_floor_applies_with_any_traffic(self, cost):
        level = _level(loads=1)
        assert cost.level_time(level) >= KEPLER_K40.memory_latency_s

    def test_empty_level_costs_only_sync(self, cost):
        assert cost.level_time(_level()) == pytest.approx(
            KEPLER_K40.level_sync_overhead_s
        )

    def test_oversubscription_scales_compute(self, cost):
        level = _level(instructions=10**10)
        slow = cost.level_time(level, oversubscription=2.0)
        fast = cost.level_time(level, oversubscription=1.0)
        assert slow == pytest.approx(2 * fast - KEPLER_K40.level_sync_overhead_s)

    def test_invalid_oversubscription(self, cost):
        with pytest.raises(SimulationError):
            cost.level_time(_level(), oversubscription=0.5)

    def test_cpu_pays_context_switches(self):
        cpu = CostModel(XEON_CPU)
        quiet = cpu.level_time(_level(loads=1))
        busy = cpu.level_time(_level(loads=1, threads=16))
        assert busy > quiet


class TestKernelTime:
    def test_includes_launch_overhead(self, cost):
        assert cost.kernel_time([]) == KEPLER_K40.kernel_launch_overhead_s

    def test_sums_levels(self, cost):
        levels = [_level(loads=100), _level(loads=200)]
        total = cost.kernel_time(levels)
        assert total == pytest.approx(
            KEPLER_K40.kernel_launch_overhead_s
            + cost.level_time(levels[0])
            + cost.level_time(levels[1])
        )

    def test_serial_time_adds_kernels(self, cost):
        runs = [[_level(loads=100)], [_level(loads=100)]]
        assert cost.serial_time(runs) == pytest.approx(
            2 * cost.kernel_time(runs[0])
        )


class TestOverlap:
    def test_empty(self, cost):
        assert cost.overlapped_time([]) == 0.0

    def test_memory_bound_kernels_do_not_speed_up(self, cost):
        # Two bandwidth-bound kernels sharing the bus take as long
        # overlapped as sequentially (minus overheads): the naive
        # concurrent-BFS observation.
        kernel = [_level(loads=10**6), _level(loads=10**6)]
        seq = cost.serial_time([kernel, kernel])
        overlapped = cost.overlapped_time([kernel, kernel])
        assert overlapped == pytest.approx(seq, rel=0.05)

    def test_launch_overheads_overlap(self, cost):
        kernels = [[_level(loads=10)] for _ in range(32)]
        overlapped = cost.overlapped_time(kernels)
        # 32 kernels fit one Hyper-Q wave: one launch overhead, not 32.
        assert overlapped < cost.serial_time(kernels)

    def test_thread_oversubscription_penalizes(self, cost):
        light = [[_level(instructions=10**8, threads=1000)] for _ in range(4)]
        heavy = [
            [_level(instructions=10**8, threads=KEPLER_K40.max_resident_threads)]
            for _ in range(4)
        ]
        assert cost.overlapped_time(heavy) > cost.overlapped_time(light)

    def test_different_kernel_lengths(self, cost):
        kernels = [[_level(loads=10)], [_level(loads=10), _level(loads=10)]]
        assert cost.overlapped_time(kernels) > 0


class TestTeps:
    def test_basic(self):
        assert teps(100, 2.0) == 50.0

    def test_zero_time(self):
        assert teps(100, 0.0) == 0.0
