"""Differential property tests: every engine option combination must
produce identical depth matrices on arbitrary graphs.

The options under test change *how* the traversal executes (vector
loads, direction granularity, early termination, per-level resets, the
JSA vs BSA representation) but never *what* it computes.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph.builders import from_edge_arrays
from repro.graph.csr import VERTEX_DTYPE
from repro.bfs.bidirectional import bidirectional_distance
from repro.bfs.reference import reference_bfs, reference_bfs_multi
from repro.core.bitwise import BitwiseTraversal
from repro.core.joint import JointTraversal

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def cases(draw, max_vertices=28, max_edges=80, max_sources=6):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    graph = from_edge_arrays(
        np.asarray(src, dtype=VERTEX_DTYPE),
        np.asarray(dst, dtype=VERTEX_DTYPE),
        num_vertices=n,
        undirected=draw(st.booleans()),
    )
    k = draw(st.integers(min_value=1, max_value=min(max_sources, n)))
    sources = draw(
        st.lists(st.integers(0, n - 1), min_size=k, max_size=k, unique=True)
    )
    return graph, sources


ENGINE_VARIANTS = [
    dict(),
    dict(early_termination=False),
    dict(reset_per_level=True, early_termination=False),
    dict(vector_width=4),
    dict(direction_mode="per-group"),
    dict(direction_mode="per-group", vector_width=2),
    dict(thread_per_instance=True),
]


@SETTINGS
@given(cases())
def test_all_bitwise_variants_agree(case):
    graph, sources = case
    expected = reference_bfs_multi(graph, sources)
    for options in ENGINE_VARIANTS:
        depths, _, _ = BitwiseTraversal(graph, **options).run_group(sources)
        assert np.array_equal(depths, expected), options


@SETTINGS
@given(cases())
def test_joint_and_bitwise_agree(case):
    graph, sources = case
    joint, _, _ = JointTraversal(graph).run_group(sources)
    bitwise, _, _ = BitwiseTraversal(graph).run_group(sources)
    assert np.array_equal(joint, bitwise)


@SETTINGS
@given(cases(), st.integers(0, 10**6))
def test_bidirectional_matches_reference(case, seed):
    graph, sources = case
    rng = np.random.default_rng(seed)
    s = sources[0]
    t = int(rng.integers(graph.num_vertices))
    expected = int(reference_bfs(graph, s)[t])
    assert bidirectional_distance(graph, s, t).distance == expected


@SETTINGS
@given(cases())
def test_sharing_stats_consistent_across_variants(case):
    """Queue-derived sharing statistics depend only on the traversal's
    frontier structure, not on the execution options."""
    graph, sources = case
    _, _, plain = BitwiseTraversal(graph).run_group(sources)
    _, _, vectored = BitwiseTraversal(
        graph, vector_width=4
    ).run_group(sources)
    assert plain.jfq_sizes == vectored.jfq_sizes
    assert plain.sharing_degree == vectored.sharing_degree
