"""CSRGraph structure, validation, and neighborhood access."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.csr import CSRGraph, empty_graph
from repro.graph.builders import from_edges


@pytest.fixture
def triangle():
    return from_edges([(0, 1), (1, 2), (2, 0)])


class TestConstruction:
    def test_basic_shape(self, triangle):
        assert triangle.num_vertices == 3
        assert triangle.num_edges == 3
        assert len(triangle) == 3

    def test_average_degree(self, triangle):
        assert triangle.average_degree == pytest.approx(1.0)

    def test_empty_graph(self):
        g = empty_graph(5)
        assert g.num_vertices == 5
        assert g.num_edges == 0
        assert g.average_degree == 0.0

    def test_zero_vertex_graph(self):
        g = empty_graph(0)
        assert g.num_vertices == 0
        assert g.average_degree == 0.0

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(GraphError):
            empty_graph(-1)

    def test_repr_mentions_sizes(self, triangle):
        assert "num_vertices=3" in repr(triangle)
        assert "num_edges=3" in repr(triangle)


class TestValidation:
    def test_offsets_must_start_at_zero(self):
        with pytest.raises(GraphError, match="start at 0"):
            CSRGraph(np.asarray([1, 2]), np.asarray([0, 0]))

    def test_offsets_must_end_at_edge_count(self):
        with pytest.raises(GraphError, match="end at"):
            CSRGraph(np.asarray([0, 5]), np.asarray([0]))

    def test_offsets_must_be_monotone(self):
        with pytest.raises(GraphError, match="non-decreasing"):
            CSRGraph(np.asarray([0, 2, 1, 3]), np.asarray([0, 1, 2]))

    def test_edge_targets_must_be_in_range(self):
        with pytest.raises(GraphError, match="out of range"):
            CSRGraph(np.asarray([0, 1]), np.asarray([7]))

    def test_negative_targets_rejected(self):
        with pytest.raises(GraphError, match="out of range"):
            CSRGraph(np.asarray([0, 1]), np.asarray([-1]))

    def test_offsets_must_be_one_dimensional(self):
        with pytest.raises(GraphError):
            CSRGraph(np.zeros((2, 2)), np.asarray([0]))


class TestNeighbors:
    def test_neighbors_in_insertion_order(self):
        g = from_edges([(0, 3), (0, 1), (0, 2)])
        assert g.neighbors(0).tolist() == [3, 1, 2]

    def test_out_degree(self, triangle):
        assert triangle.out_degree(0) == 1
        assert triangle.out_degrees().tolist() == [1, 1, 1]

    def test_vertex_out_of_range(self, triangle):
        with pytest.raises(GraphError):
            triangle.neighbors(3)
        with pytest.raises(GraphError):
            triangle.out_degree(-1)

    def test_edges_iterator(self, triangle):
        assert sorted(triangle.edges()) == [(0, 1), (1, 2), (2, 0)]

    def test_edge_array_round_trip(self, triangle):
        src, dst = triangle.edge_array()
        assert sorted(zip(src.tolist(), dst.tolist())) == sorted(triangle.edges())

    def test_has_edge(self, triangle):
        assert triangle.has_edge(0, 1)
        assert not triangle.has_edge(1, 0)


class TestReverse:
    def test_reverse_swaps_edges(self, triangle):
        rev = triangle.reverse()
        assert sorted(rev.edges()) == [(0, 2), (1, 0), (2, 1)]

    def test_reverse_of_reverse_is_original_object(self, triangle):
        assert triangle.reverse().reverse() is triangle

    def test_in_neighbors(self, triangle):
        assert triangle.in_neighbors(1).tolist() == [0]
        assert triangle.in_degree(1) == 1

    def test_reverse_preserves_multiplicity(self):
        g = from_edges([(0, 1), (0, 1)])
        assert g.reverse().out_degree(1) == 2


class TestPredicatesAndCopies:
    def test_is_symmetric_true_for_undirected(self):
        g = from_edges([(0, 1), (1, 2)], undirected=True)
        assert g.is_symmetric()

    def test_is_symmetric_false_for_directed(self, triangle):
        assert not triangle.is_symmetric()

    def test_copy_is_independent(self, triangle):
        clone = triangle.copy()
        assert clone == triangle
        clone.col_indices[0] = 2
        assert clone != triangle

    def test_equality_against_other_types(self, triangle):
        assert triangle != "not a graph"

    def test_memory_bytes_counts_both_arrays(self, triangle):
        assert triangle.memory_bytes() == 8 * (4 + 3)
