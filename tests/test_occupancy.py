"""CUDA occupancy calculation."""

import pytest

from repro.errors import SimulationError
from repro.gpusim.config import KEPLER_K40, XEON_CPU
from repro.gpusim.occupancy import (
    MAX_WARPS_PER_SM,
    KernelConfig,
    best_cta_size,
    occupancy,
)


class TestKernelConfig:
    def test_invalid_threads(self):
        with pytest.raises(SimulationError):
            KernelConfig(0)

    def test_invalid_registers(self):
        with pytest.raises(SimulationError):
            KernelConfig(256, registers_per_thread=0)
        with pytest.raises(SimulationError):
            KernelConfig(256, registers_per_thread=300)

    def test_invalid_shared_memory(self):
        with pytest.raises(SimulationError):
            KernelConfig(256, shared_memory_per_cta=-1)


class TestOccupancy:
    def test_full_occupancy_at_default_config(self):
        report = occupancy(KEPLER_K40, KernelConfig(256, 32))
        assert report.occupancy == pytest.approx(1.0)
        assert report.warps_per_sm == MAX_WARPS_PER_SM
        assert report.resident_threads == KEPLER_K40.max_resident_threads

    def test_register_pressure_limits(self):
        light = occupancy(KEPLER_K40, KernelConfig(256, 32))
        heavy = occupancy(KEPLER_K40, KernelConfig(256, 128))
        assert heavy.occupancy < light.occupancy
        assert heavy.limiting_factor == "registers"

    def test_shared_memory_limits(self):
        report = occupancy(
            KEPLER_K40, KernelConfig(64, 32, shared_memory_per_cta=24 * 1024)
        )
        assert report.limiting_factor == "shared memory"
        assert report.ctas_per_sm == 2

    def test_small_ctas_hit_cta_slot_limit(self):
        report = occupancy(KEPLER_K40, KernelConfig(32, 16))
        assert report.limiting_factor == "cta slots"
        assert report.ctas_per_sm == 16
        assert report.occupancy < 1.0

    def test_oversized_cta_rejected(self):
        with pytest.raises(SimulationError, match="warp"):
            occupancy(KEPLER_K40, KernelConfig(4096))

    def test_cpu_rejected(self):
        with pytest.raises(SimulationError, match="GPU"):
            occupancy(XEON_CPU, KernelConfig(64))

    def test_impossible_shared_memory_gives_zero(self):
        report = occupancy(
            KEPLER_K40, KernelConfig(64, 32, shared_memory_per_cta=10**6)
        )
        assert report.ctas_per_sm == 0
        assert report.occupancy == 0.0


class TestBestCtaSize:
    def test_paper_default_is_optimal(self):
        # "typically 256 threads" per CTA achieves full occupancy at the
        # default register budget; larger tied sizes win ties, so 1024
        # only beats 256 if occupancy ties — assert 256 is among optima.
        best = best_cta_size(KEPLER_K40, registers_per_thread=32)
        report_best = occupancy(KEPLER_K40, KernelConfig(best, 32))
        report_256 = occupancy(KEPLER_K40, KernelConfig(256, 32))
        assert report_256.occupancy == pytest.approx(report_best.occupancy)

    def test_register_heavy_kernels_prefer_other_sizes(self):
        best = best_cta_size(KEPLER_K40, registers_per_thread=200)
        assert best is not None
        report = occupancy(KEPLER_K40, KernelConfig(best, 200))
        assert report.occupancy > 0
