"""Trace analytics: forests, critical paths, wave attribution.

The acceptance bar from the issue, pinned as tests:

* ``render_trace_report`` is byte-identical across two fresh serve
  runs under a deterministic tracer clock;
* every wave's additive components sum to within 1% of the wave
  duration on all four substrates (serial, executor, partitioned,
  stream);
* critical-path step seconds telescope to exactly the root duration.
"""

import pytest

from repro import IBFSConfig
from repro.errors import ObservabilityError
from repro.exec import ExecConfig, GroupExecutor
from repro.obs import profile as obs_profile
from repro.obs import tracing
from repro.obs.analyze import (
    SpanNode,
    aggregate_spans,
    analyze_waves,
    build_forest,
    categorize,
    compare_substrates,
    critical_path,
    detect_substrate,
    level_waterfall,
    render_trace_report,
    wave_attribution,
)
from repro.obs.tracing import Tracer
from repro.service import (
    BFSServer,
    ServingConfig,
    WorkloadConfig,
    run_closed_loop,
)
from repro.stream import ChurnConfig, DynamicBFSServer, run_churn_loop


class FakeClock:
    def __init__(self, start=100.0, step=1.0):
        self.now = start
        self.step = step

    def __call__(self):
        current = self.now
        self.now += self.step
        return current


@pytest.fixture(autouse=True)
def _isolate_obs():
    yield
    tracing.set_tracer(None)
    obs_profile.disable()


def span(name, sid, parent=None, start=0.0, end=1.0, process="serve",
         attrs=None, status="ok"):
    return {
        "kind": "span",
        "name": name,
        "trace_id": "trace-t",
        "span_id": sid,
        "parent_id": parent,
        "start": start,
        "end": end,
        "process": process,
        "attrs": attrs or {},
        "status": status,
    }


# ----------------------------------------------------------------------
# Synthetic forests
# ----------------------------------------------------------------------
class TestBuildForest:
    def test_links_children_and_sorts(self):
        records = [
            span("root", "s1", start=0.0, end=10.0),
            span("late", "s3", parent="s1", start=5.0, end=8.0),
            span("early", "s2", parent="s1", start=1.0, end=4.0),
        ]
        roots = build_forest(records)
        assert len(roots) == 1
        assert [c.name for c in roots[0].children] == ["early", "late"]

    def test_ignores_non_span_records(self):
        records = [
            {"kind": "metric", "name": "x", "value": 1},
            span("root", "s1"),
        ]
        assert len(build_forest(records)) == 1

    def test_orphan_roots_its_own_tree(self):
        records = [span("orphan", "s9", parent="missing")]
        roots = build_forest(records)
        assert len(roots) == 1 and roots[0].name == "orphan"

    def test_duplicate_span_id_rejected(self):
        records = [span("a", "s1"), span("b", "s1")]
        with pytest.raises(ObservabilityError, match="duplicate span id"):
            build_forest(records)

    def test_self_seconds_excludes_overlapping_children(self):
        records = [
            span("exec.run", "s1", start=0.0, end=10.0),
            span("exec.dispatch", "s2", parent="s1", start=0.0, end=9.0),
            span("exec.collect", "s3", parent="s1", start=9.0, end=10.0),
        ]
        (root,) = build_forest(records)
        # Only the non-overlapping child is subtracted.
        assert root.self_seconds() == pytest.approx(9.0)

    def test_cross_process_child_absorbed(self):
        records = [
            span("serve.batch", "s1", start=0.0, end=4.0),
            span("worker.task", "s2", parent="s1", start=0.0, end=3.0,
                 process="worker-0"),
        ]
        (root,) = build_forest(records)
        assert root.self_seconds() == pytest.approx(4.0)


class TestCategorize:
    @pytest.mark.parametrize("name,expected", [
        ("serve.batch", "batching"),
        ("serve.wave", "batching"),
        ("exec.dispatch", "dispatch"),
        ("exchange.level", "exchange"),
        ("dist.run_group", "exchange"),
        ("profile.kernels.expand", "kernel"),
        ("profile.level", "level"),
        ("profile.engine.bitwise", "engine"),
        ("stream.mutate", "stream"),
        ("sim.kernel", "sim"),
        ("run", "run"),
        ("mystery.span", "other"),
    ])
    def test_rules(self, name, expected):
        assert categorize(name) == expected


class TestCriticalPath:
    def _tree(self):
        records = [
            span("root", "s1", start=0.0, end=10.0),
            span("fast", "s2", parent="s1", start=0.0, end=3.0),
            span("slow", "s3", parent="s1", start=3.0, end=9.0),
            span("leaf", "s4", parent="s3", start=3.0, end=7.0),
        ]
        (root,) = build_forest(records)
        return root

    def test_follows_longest_child(self):
        steps = critical_path(self._tree())
        assert [s.name for s in steps] == ["root", "slow", "leaf"]

    def test_steps_telescope_to_root_duration(self):
        root = self._tree()
        steps = critical_path(root)
        assert sum(s.step_seconds for s in steps) == pytest.approx(
            root.duration
        )

    def test_deterministic_tie_break_by_start(self):
        records = [
            span("root", "s1", start=0.0, end=10.0),
            span("b", "s3", parent="s1", start=5.0, end=8.0),
            span("a", "s2", parent="s1", start=1.0, end=4.0),
        ]
        (root,) = build_forest(records)
        steps = critical_path(root)
        # Equal durations: the earlier-starting child wins.
        assert [s.name for s in steps] == ["root", "a"]

    def test_skew_clamps_to_zero(self):
        records = [
            span("root", "s1", start=0.0, end=2.0),
            span("child", "s2", parent="s1", start=0.0, end=5.0),
        ]
        (root,) = build_forest(records)
        steps = critical_path(root)
        assert steps[0].step_seconds == 0.0


class TestWaveAttributionSynthetic:
    def test_components_sum_to_wave_duration(self):
        records = [
            span("serve.batch", "w1", start=0.0, end=10.0),
            span("profile.engine.bitwise", "e1", parent="w1",
                 start=1.0, end=9.0),
            span("profile.level", "l1", parent="e1", start=1.0, end=5.0,
                 attrs={"depth": 0}),
            span("profile.level", "l2", parent="e1", start=5.0, end=9.0,
                 attrs={"depth": 1}),
        ]
        (root,) = build_forest(records)
        wave = wave_attribution(root)
        assert wave.component_total == pytest.approx(wave.seconds)
        assert wave.components == {
            "batching": 2.0, "engine": 0.0, "level": 8.0,
        } or wave.components.get("level") == pytest.approx(8.0)

    def test_substrate_detection(self):
        serial = build_forest([span("serve.batch", "w1")])[0]
        assert detect_substrate(serial, trace_has_stream=False) == "serial"
        assert detect_substrate(serial, trace_has_stream=True) == "stream"
        executor = build_forest([span("serve.wave", "w2")])[0]
        assert detect_substrate(executor, False) == "executor"
        part = build_forest([
            span("serve.batch", "w3", start=0.0, end=4.0),
            span("dist.run_group", "d1", parent="w3", start=0.0, end=3.0),
        ])[0]
        assert detect_substrate(part, True) == "partitioned"

    def test_level_waterfall_orders_by_depth(self):
        records = [
            span("serve.batch", "w1", start=0.0, end=10.0),
            span("profile.level", "l2", parent="w1", start=5.0, end=9.0,
                 attrs={"depth": 1}),
            span("profile.level", "l1", parent="w1", start=1.0, end=5.0,
                 attrs={"depth": 0}),
            span("profile.kernels.expand", "k1", parent="l1",
                 start=1.0, end=3.0),
        ]
        (root,) = build_forest(records)
        rows = level_waterfall(root)
        assert [r.depth for r in rows] == [0, 1]
        assert rows[0].kernel_seconds == pytest.approx(2.0)

    def test_compare_substrates_rolls_up(self):
        records = [
            span("serve.batch", "w1", start=0.0, end=4.0),
            span("serve.batch", "w2", start=4.0, end=10.0),
        ]
        waves = analyze_waves(records)
        (summary,) = compare_substrates(waves)
        assert summary.substrate == "serial"
        assert summary.waves == 2
        assert summary.total_seconds == pytest.approx(10.0)
        assert summary.mean_seconds == pytest.approx(5.0)


class TestAggregateSpans:
    def test_rollup_and_order(self):
        records = [
            span("root", "s1", start=0.0, end=10.0),
            span("work", "s2", parent="s1", start=0.0, end=6.0),
            span("work", "s3", parent="s1", start=6.0, end=9.0),
        ]
        aggs = aggregate_spans(records)
        assert [a.name for a in aggs] == ["work", "root"]
        work = aggs[0]
        assert work.count == 2
        assert work.total_seconds == pytest.approx(9.0)
        assert work.self_seconds == pytest.approx(9.0)
        assert work.max_seconds == pytest.approx(6.0)
        assert work.mean_seconds == pytest.approx(4.5)
        root = aggs[1]
        assert root.self_seconds == pytest.approx(1.0)


# ----------------------------------------------------------------------
# Real traces, all four substrates
# ----------------------------------------------------------------------
def _install_tracer():
    tracer = Tracer(process="serve", clock=FakeClock(), enabled=True)
    tracing.set_tracer(tracer)
    obs_profile.configure(enabled=True, sample_every=1)
    return tracer


def _trace_serial(graph):
    _install_tracer()
    server = BFSServer(graph, ServingConfig(batch_size=8))
    try:
        run_closed_loop(server, WorkloadConfig(
            num_requests=24, num_clients=4, seed=3,
        ))
    finally:
        server.close()
    return tracing.get_tracer().export_dicts()


def _trace_executor(graph):
    _install_tracer()
    serving = ServingConfig(batch_size=8)
    executor = GroupExecutor(
        graph,
        IBFSConfig(group_size=serving.batch_size),
        exec_config=ExecConfig(num_workers=0),
    )
    server = BFSServer(graph, serving, executor=executor)
    try:
        run_closed_loop(server, WorkloadConfig(
            num_requests=24, num_clients=4, seed=3,
        ))
    finally:
        server.close()
        executor.close()
    return tracing.get_tracer().export_dicts()


def _trace_partitioned(graph):
    _install_tracer()
    server = BFSServer(graph, ServingConfig(batch_size=8, partitions=2))
    try:
        run_closed_loop(server, WorkloadConfig(
            num_requests=24, num_clients=4, seed=3,
        ))
    finally:
        server.close()
    return tracing.get_tracer().export_dicts()


def _trace_stream(graph):
    _install_tracer()
    server = DynamicBFSServer(graph, ServingConfig(batch_size=8))
    try:
        run_churn_loop(
            server,
            WorkloadConfig(num_requests=24, num_clients=4, seed=3),
            ChurnConfig(mutate_every=8, inserts_per_batch=4, seed=7),
        )
    finally:
        server.close()
    return tracing.get_tracer().export_dicts()


SUBSTRATES = {
    "serial": _trace_serial,
    "executor": _trace_executor,
    "partitioned": _trace_partitioned,
    "stream": _trace_stream,
}


@pytest.mark.parametrize("substrate", sorted(SUBSTRATES))
def test_wave_components_additive_on_substrate(kron_graph, substrate):
    """Per-wave component buckets sum to within 1% of the wave
    duration — the additivity bar from the issue, on every substrate."""
    records = SUBSTRATES[substrate](kron_graph)
    waves = analyze_waves(records)
    assert waves, f"no waves recorded on {substrate}"
    assert all(w.substrate == substrate for w in waves)
    for wave in waves:
        assert wave.seconds > 0.0
        assert wave.component_total == pytest.approx(
            wave.seconds, rel=0.01
        )


def test_wave_critical_path_telescopes_on_real_trace(kron_graph):
    records = _trace_serial(kron_graph)
    for wave in analyze_waves(records):
        assert sum(s.step_seconds for s in wave.path) == pytest.approx(
            wave.seconds
        )


def test_partitioned_waves_carry_exchange_levels(kron_graph):
    records = _trace_partitioned(kron_graph)
    forest = build_forest(records)
    wave_nodes = [
        n for root in forest for n in root.walk()
        if n.name == "serve.batch"
    ]
    rows = [r for w in wave_nodes for r in level_waterfall(w)]
    assert any(r.source == "exchange" for r in rows)


def test_render_trace_report_byte_identical_across_runs(kron_graph):
    """Two fresh runs under the deterministic clock render the exact
    same report — the reproducibility bar from the issue."""
    first = render_trace_report(_trace_serial(kron_graph))
    tracing.set_tracer(None)
    obs_profile.disable()
    second = render_trace_report(_trace_serial(kron_graph))
    assert first == second
    assert first.encode("utf-8") == second.encode("utf-8")


def test_render_trace_report_sections(kron_graph):
    report = render_trace_report(_trace_serial(kron_graph))
    assert "trace report" in report
    assert "top spans" in report
    assert "substrate comparison" in report
    assert "serial" in report


def test_walk_is_depth_first_deterministic():
    records = [
        span("root", "s1", start=0.0, end=10.0),
        span("a", "s2", parent="s1", start=1.0, end=4.0),
        span("a.child", "s3", parent="s2", start=2.0, end=3.0),
        span("b", "s4", parent="s1", start=5.0, end=6.0),
    ]
    (root,) = build_forest(records)
    assert [n.name for n in root.walk()] == ["root", "a", "a.child", "b"]


def test_open_span_duration_falls_back_to_zero():
    node = SpanNode({
        "kind": "span", "name": "open", "span_id": "s1",
        "parent_id": None, "start": 5.0, "end": None,
    })
    assert node.duration == 0.0
