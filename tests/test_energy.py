"""Energy accounting (Green Graph500-style TEPS/W)."""

import pytest

from repro.errors import SimulationError
from repro.graph.generators import kronecker
from repro.gpusim.config import KEPLER_K40
from repro.gpusim.counters import ProfilerCounters
from repro.gpusim.energy import EnergyModel, energy_report
from repro.core.engine import IBFS, IBFSConfig
from repro.bfs.sequential import SequentialConcurrentBFS


@pytest.fixture(scope="module")
def run():
    graph = kronecker(scale=8, edge_factor=8, seed=111)
    sources = list(range(32))
    return IBFS(graph, IBFSConfig(group_size=32)).run(
        sources, store_depths=False
    )


class TestEnergyModel:
    def test_dynamic_energy_scales_with_traffic(self):
        model = EnergyModel()
        light = ProfilerCounters(global_load_transactions=100)
        heavy = ProfilerCounters(global_load_transactions=1000)
        assert model.dynamic_energy(heavy, KEPLER_K40) == pytest.approx(
            10 * model.dynamic_energy(light, KEPLER_K40)
        )

    def test_total_adds_static_draw(self):
        model = EnergyModel(static_watts=50.0)
        counters = ProfilerCounters()
        assert model.total_energy(counters, KEPLER_K40, 2.0) == pytest.approx(
            100.0
        )

    def test_negative_parameters_rejected(self):
        with pytest.raises(SimulationError):
            EnergyModel(static_watts=-1.0)

    def test_negative_seconds_rejected(self):
        with pytest.raises(SimulationError):
            EnergyModel().total_energy(ProfilerCounters(), KEPLER_K40, -1.0)

    def test_teps_per_watt_zero_cases(self):
        model = EnergyModel()
        assert model.teps_per_watt(ProfilerCounters(), KEPLER_K40, 0.0) == 0.0


class TestEnergyReport:
    def test_report_fields(self, run):
        report = energy_report(run, KEPLER_K40)
        assert report["total_joules"] > 0
        assert report["total_joules"] == pytest.approx(
            report["dynamic_joules"] + report["static_joules"]
        )
        assert report["average_watts"] > 0
        assert report["teps_per_watt"] > 0

    def test_ibfs_more_efficient_than_sequential(self):
        """Fewer transactions and less time -> better TEPS/W: the Green
        Graph500 angle on the paper's result."""
        graph = kronecker(scale=8, edge_factor=8, seed=112)
        sources = list(range(32))
        seq = SequentialConcurrentBFS(graph).run(sources, store_depths=False)
        ibfs = IBFS(graph, IBFSConfig(group_size=32)).run(
            sources, store_depths=False
        )
        seq_eff = energy_report(seq, KEPLER_K40)["teps_per_watt"]
        ibfs_eff = energy_report(ibfs, KEPLER_K40)["teps_per_watt"]
        assert ibfs_eff > seq_eff
