"""Cross-process span propagation and worker last-words.

The executor ships a span context inside each task message; the worker
parents its ``worker.task`` (and profile) spans onto it and ships them
back with the reply.  These tests pin the two hard guarantees:

* **exactly-once under retry** — a task that fails and retries leaves
  exactly one ``worker.task`` span per *attempt*, each parented to that
  attempt's own ``exec.dispatch`` span, and a straggler reply from a
  superseded attempt contributes nothing;
* **last words survive the worker** — the exception text, worker-side
  traceback, and in-flight task id of every failed attempt land in
  ``ExecStats.last_words`` and in the ``--fail-fast`` error message.
"""

import pytest

from repro.errors import ExecutorError
from repro.graph.generators import kronecker
from repro.core.engine import IBFSConfig
from repro.exec import (
    ExecConfig,
    FaultPlan,
    FaultPolicy,
    GroupExecutor,
)
from repro.exec.shm import shared_memory_available
from repro.obs import tracing

needs_shm = pytest.mark.skipif(
    not shared_memory_available(),
    reason="multiprocessing.shared_memory unavailable",
)


@pytest.fixture(autouse=True)
def _isolate_tracer():
    yield
    tracing.set_tracer(None)


@pytest.fixture(scope="module")
def graph():
    return kronecker(scale=7, edge_factor=8, seed=9)


def run_traced(graph, sources=32, **exec_kwargs):
    tracer = tracing.configure(process="cli")
    with GroupExecutor(
        graph,
        IBFSConfig(group_size=8),
        exec_config=ExecConfig(num_workers=2, **exec_kwargs),
    ) as executor:
        result = executor.run(list(range(sources)), store_depths=True)
        stats = executor.last_stats
    return tracer, result, stats


def spans_by_name(tracer, name):
    return [s for s in tracer.finished if s.name == name]


@needs_shm
class TestSpanPropagation:
    def test_worker_spans_parent_onto_dispatch(self, graph):
        tracer, _, _ = run_traced(graph)
        dispatches = {s.span_id: s for s in
                      spans_by_name(tracer, "exec.dispatch")}
        tasks = spans_by_name(tracer, "worker.task")
        assert tasks
        for task in tasks:
            assert task.parent_id in dispatches
            parent = dispatches[task.parent_id]
            assert parent.attrs["task_id"] == task.attrs["task_id"]
            assert parent.attrs["attempt"] == task.attrs["attempt"]
            assert task.trace_id == tracer.trace_id
            assert task.process.startswith("worker-")

    def test_one_dispatch_span_per_attempt(self, graph):
        tracer, _, stats = run_traced(graph)
        dispatches = spans_by_name(tracer, "exec.dispatch")
        keys = [(s.attrs["task_id"], s.attrs["attempt"]) for s in dispatches]
        assert len(keys) == len(set(keys))
        assert len(dispatches) == stats.tasks + stats.retries

    def test_retried_task_span_appears_exactly_once_per_attempt(self, graph):
        # Task 0 errors on its first attempt; the retry must produce a
        # fresh dispatch+task span pair, and the failed attempt keeps
        # its own error-status pair — no duplicates, no orphans.
        tracer, _, stats = run_traced(
            graph, fault_plan=FaultPlan(error={0: 1})
        )
        assert stats.retries == 1
        task0 = [s for s in spans_by_name(tracer, "worker.task")
                 if s.attrs["task_id"] == 0]
        by_attempt = {s.attrs["attempt"]: s for s in task0}
        assert sorted(by_attempt) == [0, 1]
        assert len(task0) == 2  # exactly once per attempt
        assert by_attempt[0].status == "error"
        assert by_attempt[1].status == "ok"

        dispatch0 = {s.attrs["attempt"]: s for s in
                     spans_by_name(tracer, "exec.dispatch")
                     if s.attrs["task_id"] == 0}
        assert by_attempt[1].parent_id == dispatch0[1].span_id
        assert by_attempt[0].parent_id == dispatch0[0].span_id
        assert dispatch0[0].status == "error"
        assert dispatch0[1].status == "ok"

    def test_crashed_attempt_leaves_no_worker_span(self, graph):
        # A crash (os._exit) can ship nothing back; its dispatch span
        # closes with error status and the retry's spans arrive alone.
        tracer, _, stats = run_traced(
            graph, fault_plan=FaultPlan(crash={1: 1})
        )
        assert stats.crashes == 1
        task1 = [s for s in spans_by_name(tracer, "worker.task")
                 if s.attrs["task_id"] == 1]
        assert len(task1) == 1
        assert task1[0].attrs["attempt"] == 1
        dispatch1 = [s for s in spans_by_name(tracer, "exec.dispatch")
                     if s.attrs["task_id"] == 1]
        assert {s.status for s in dispatch1} == {"error", "ok"}

    def test_exec_run_span_wraps_the_pool(self, graph):
        tracer, _, _ = run_traced(graph)
        runs = spans_by_name(tracer, "exec.run")
        assert len(runs) == 1
        assert runs[0].attrs["backend"] == "process"

    def test_untraced_run_ships_no_spans(self, graph):
        with GroupExecutor(
            graph,
            IBFSConfig(group_size=8),
            exec_config=ExecConfig(num_workers=2),
        ) as executor:
            executor.run(list(range(16)), store_depths=False)
        assert tracing.get_tracer().finished == []


@needs_shm
class TestLastWords:
    def test_error_last_words_carry_worker_traceback(self, graph):
        _, _, stats = run_traced(graph, fault_plan=FaultPlan(error={0: 1}))
        words = [w for w in stats.last_words if w["kind"] == "task_error"]
        assert len(words) == 1
        record = words[0]
        assert record["task_id"] == 0
        assert record["attempt"] == 0
        assert "injected fault" in record["error"]
        assert "Traceback" in record["traceback"]
        assert "TraversalError" in record["traceback"]

    def test_crash_last_words_report_exitcode(self, graph):
        _, _, stats = run_traced(graph, fault_plan=FaultPlan(crash={1: 1}))
        words = [w for w in stats.last_words if w["kind"] == "crash"]
        assert len(words) == 1
        assert words[0]["task_id"] == 1
        assert "exitcode" in words[0]["error"]

    def test_last_words_serialize_in_stats_dict(self, graph):
        _, _, stats = run_traced(graph, fault_plan=FaultPlan(error={2: 1}))
        payload = stats.to_dict()
        assert payload["last_words"]
        assert payload["last_words"][0]["kind"] == "task_error"

    def test_fail_fast_error_embeds_worker_traceback(self, graph):
        with GroupExecutor(
            graph,
            IBFSConfig(group_size=8),
            exec_config=ExecConfig(
                num_workers=2,
                fault_plan=FaultPlan(error={0: 99}),
                faults=FaultPolicy(fail_fast=True),
            ),
        ) as executor:
            with pytest.raises(ExecutorError) as excinfo:
                executor.run(list(range(16)), store_depths=False)
        message = str(excinfo.value)
        assert "injected fault" in message
        assert "worker traceback" in message
        assert "TraversalError" in message
