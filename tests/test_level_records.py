"""Per-level record invariants on real engine runs.

Every engine emits one LevelRecord per traversal level; these tests pin
the structural invariants the cost model relies on — records exist for
every counted level, busy levels carry traffic, directions are legal,
thread demand matches the execution model.
"""

import numpy as np
import pytest

from repro.graph.generators import kronecker
from repro.bfs.single import SingleBFS
from repro.core.bitwise import BitwiseTraversal
from repro.core.joint import JointTraversal


@pytest.fixture(scope="module")
def kron():
    return kronecker(scale=8, edge_factor=8, seed=241)


@pytest.fixture(scope="module")
def bitwise_run(kron):
    engine = BitwiseTraversal(kron)
    return engine.run_group(list(range(16)))


@pytest.fixture(scope="module")
def joint_run(kron):
    engine = JointTraversal(kron)
    return engine.run_group(list(range(16)))


@pytest.fixture(scope="module")
def single_run(kron):
    return SingleBFS(kron).run(int(kron.out_degrees().argmax()))


class TestStructure:
    def test_one_record_per_level(self, bitwise_run, joint_run, single_run):
        for run in (bitwise_run[1], joint_run[1], single_run.record):
            assert len(run.levels) == run.counters.levels

    def test_depth_fields_sequential(self, bitwise_run):
        _, record, _ = bitwise_run
        assert [lv.depth for lv in record.levels] == list(
            range(len(record.levels))
        )

    def test_directions_are_legal(self, bitwise_run, joint_run):
        for run in (bitwise_run[1], joint_run[1]):
            assert all(lv.direction in ("td", "bu") for lv in run.levels)

    def test_level_sums_match_counters(self, bitwise_run):
        _, record, _ = bitwise_run
        assert (
            sum(lv.load_transactions for lv in record.levels)
            == record.counters.global_load_transactions
        )
        assert (
            sum(lv.store_transactions for lv in record.levels)
            == record.counters.global_store_transactions
        )
        assert (
            sum(lv.atomics for lv in record.levels)
            == record.counters.atomic_operations
        )
        assert (
            sum(lv.instructions for lv in record.levels)
            == record.counters.instructions
        )


class TestTrafficInvariants:
    def test_busy_levels_carry_traffic(self, bitwise_run):
        _, record, _ = bitwise_run
        for lv in record.levels:
            if lv.frontier_size > 0:
                assert lv.load_transactions > 0
                assert lv.instructions > 0

    def test_thread_demand_bitwise_is_frontier_size(self, bitwise_run):
        """One thread per frontier (the bitwise design's thread win)."""
        _, record, _ = bitwise_run
        for lv in record.levels:
            if lv.frontier_size:
                assert lv.threads == lv.frontier_size

    def test_thread_demand_joint_is_frontier_times_group(self, joint_run):
        """N contiguous threads per frontier in the JSA engine."""
        _, record, _ = joint_run
        for lv in record.levels:
            if lv.frontier_size:
                assert lv.threads == lv.frontier_size * 16

    def test_joint_traffic_exceeds_bitwise(self, joint_run, bitwise_run):
        joint_total = joint_run[1].total_transactions
        bitwise_total = bitwise_run[1].total_transactions
        assert bitwise_total < joint_total

    def test_atomics_only_in_bitwise_top_down(self, bitwise_run, joint_run):
        _, record, _ = bitwise_run
        td_atomics = sum(
            lv.atomics for lv in record.levels if lv.direction == "td"
        )
        bu_atomics = sum(
            lv.atomics for lv in record.levels if lv.direction == "bu"
        )
        assert td_atomics > 0
        # Bottom-up merges tree-wise without atomics (section 6 summary);
        # mixed levels are labeled "td", so pure-bu levels carry none.
        assert bu_atomics == 0
        # The JSA engine does not use atomics at all.
        assert joint_run[1].counters.atomic_operations == 0


class TestSingleEngineRecords:
    def test_single_bfs_directions_switch_once(self, single_run):
        directions = [lv.direction for lv in single_run.record.levels]
        # Sticky policy: once bottom-up, always bottom-up.
        if "bu" in directions:
            first_bu = directions.index("bu")
            assert all(d == "bu" for d in directions[first_bu:])

    def test_frontier_sizes_match_depth_histogram(self, kron, single_run):
        depths = single_run.depths
        for lv in single_run.record.levels:
            if lv.direction == "td":
                expected = int(np.count_nonzero(depths == lv.depth))
                assert lv.frontier_size == expected
