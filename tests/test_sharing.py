"""Sharing degree / ratio math (section 5.1)."""

import numpy as np
import pytest

from repro.errors import GroupingError
from repro.core.sharing import (
    SharingObserver,
    pairwise_sharing,
    sharing_degree,
    sharing_ratio,
)


class TestSharingDegree:
    def test_no_sharing(self):
        # Two instances, disjoint frontiers at each level.
        assert sharing_degree([2, 2], [2, 2]) == 1.0

    def test_full_sharing(self):
        # Two instances, identical frontiers: SD = N = 2.
        assert sharing_degree([4, 4], [2, 2]) == 2.0

    def test_empty_run(self):
        assert sharing_degree([], []) == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(GroupingError):
            sharing_degree([1], [1, 1])

    def test_ratio(self):
        assert sharing_ratio(2.0, 4) == 0.5
        with pytest.raises(GroupingError):
            sharing_ratio(1.0, 0)


class TestPairwiseSharing:
    def test_identical_frontiers(self):
        a = np.asarray([1, 2, 3])
        assert pairwise_sharing(a, a) == 1.0

    def test_disjoint_frontiers(self):
        assert pairwise_sharing(np.asarray([1, 2]), np.asarray([3, 4])) == 0.0

    def test_half_overlap(self):
        a = np.asarray([1, 2])
        b = np.asarray([2, 3])
        assert pairwise_sharing(a, b) == pytest.approx(1 / 3)

    def test_both_empty(self):
        empty = np.asarray([], dtype=np.int64)
        assert pairwise_sharing(empty, empty) == 0.0


class TestObserver:
    def test_records_and_degree(self):
        obs = SharingObserver(group_size=2)
        obs.record_level(4, 2)   # full sharing at level 0
        obs.record_level(2, 2)   # no sharing at level 1
        assert obs.degree() == pytest.approx(6 / 4)
        assert obs.ratio() == pytest.approx(6 / 8)

    def test_per_level_degree(self):
        obs = SharingObserver(group_size=2)
        obs.record_level(4, 2)
        obs.record_level(2, 2)
        obs.record_level(0, 0)
        assert obs.per_level_degree() == [2.0, 1.0, 0.0]

    def test_lemma1_expected_speedup_equals_sd(self):
        obs = SharingObserver(group_size=3)
        obs.record_level(9, 3)
        assert obs.expected_speedup() == obs.degree()

    def test_invalid_level_rejected(self):
        obs = SharingObserver(group_size=2)
        with pytest.raises(GroupingError):
            obs.record_level(1, 2)  # joint queue cannot exceed sum
