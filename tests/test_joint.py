"""Joint traversal engine (JSA + JFQ, section 4)."""

import numpy as np
import pytest

from repro.errors import TraversalError
from repro.graph.builders import from_edges
from repro.graph.generators import kronecker
from repro.bfs.reference import reference_bfs_multi
from repro.bfs.sequential import SequentialConcurrentBFS
from repro.core.joint import JointTraversal


@pytest.fixture(scope="module")
def kron():
    return kronecker(scale=8, edge_factor=8, seed=9)


class TestCorrectness:
    def test_matches_reference(self, kron):
        sources = [0, 5, 17, 200]
        depths, _, _ = JointTraversal(kron).run_group(sources)
        assert np.array_equal(depths, reference_bfs_multi(kron, sources))

    def test_single_instance_group(self, kron):
        depths, _, _ = JointTraversal(kron).run_group([42])
        assert np.array_equal(depths, reference_bfs_multi(kron, [42]))

    def test_disconnected_instances_finish(self):
        g = from_edges([(0, 1), (3, 4)], num_vertices=6, undirected=True)
        depths, _, _ = JointTraversal(g).run_group([0, 3, 5])
        assert np.array_equal(depths, reference_bfs_multi(g, [0, 3, 5]))

    def test_empty_group_rejected(self, kron):
        with pytest.raises(TraversalError):
            JointTraversal(kron).run_group([])

    def test_out_of_range_source_rejected(self, kron):
        with pytest.raises(TraversalError):
            JointTraversal(kron).run_group([kron.num_vertices])

    def test_max_depth(self, kron):
        depths, _, _ = JointTraversal(kron).run_group([0, 1], max_depth=2)
        assert depths.max() <= 2


class TestSharingAndStats:
    def test_stats_fields_populated(self, kron):
        sources = list(range(8))
        _, record, stats = JointTraversal(kron).run_group(sources)
        assert stats.sources == sources
        assert stats.seconds > 0
        assert stats.sharing_degree >= 1.0
        assert 0 < stats.sharing_ratio <= 1.0
        assert len(stats.jfq_sizes) == record.counters.levels
        assert len(stats.bottom_up_inspections) == len(sources)

    def test_identical_sources_would_fully_share(self, kron):
        # Two nearby sources share most frontiers on a small-diameter
        # power-law graph: SD must exceed the no-sharing value of 1.
        hub = int(np.argmax(kron.out_degrees()))
        neighbors = kron.neighbors(hub)[:2].tolist()
        _, _, stats = JointTraversal(kron).run_group(neighbors)
        assert stats.sharing_degree > 1.0

    def test_workload_is_preserved(self, kron):
        """Shared frontiers do not reduce the overall workload (section 2):
        joint inspections equal the sum of per-instance inspections."""
        sources = [0, 3, 9, 77]
        seq = SequentialConcurrentBFS(kron).run(sources, store_depths=False)
        _, record, _ = JointTraversal(kron).run_group(sources)
        assert record.counters.inspections == seq.counters.inspections

    def test_memory_traffic_lower_than_sequential(self, kron):
        sources = list(range(16))
        seq = SequentialConcurrentBFS(kron).run(sources, store_depths=False)
        _, record, _ = JointTraversal(kron).run_group(sources)
        assert (
            record.counters.global_load_transactions
            < seq.counters.global_load_transactions
        )

    def test_single_kernel(self, kron):
        _, record, _ = JointTraversal(kron).run_group(list(range(8)))
        assert record.counters.kernel_launches == 1

    def test_warp_votes_counted(self, kron):
        _, record, _ = JointTraversal(kron).run_group([0, 1])
        assert record.counters.warp_votes > 0
