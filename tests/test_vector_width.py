"""Vector data types (section 6): long/long2/long4 status loads."""

import numpy as np
import pytest

from repro.errors import TraversalError
from repro.graph.generators import kronecker
from repro.bfs.reference import reference_bfs_multi
from repro.core.bitwise import BitwiseTraversal
from repro.core.engine import IBFS, IBFSConfig


@pytest.fixture(scope="module")
def kron():
    return kronecker(scale=7, edge_factor=8, seed=71)


@pytest.fixture(scope="module")
def wide_sources():
    # 100 instances -> two uint64 lanes, so vectorization has something
    # to fetch together.
    return list(range(100))


def test_invalid_width_rejected(kron):
    with pytest.raises(TraversalError, match="vector_width"):
        BitwiseTraversal(kron, vector_width=3)


@pytest.mark.parametrize("width", [1, 2, 4])
def test_depths_unchanged_by_vectorization(kron, wide_sources, width):
    engine = BitwiseTraversal(kron, vector_width=width)
    depths, _, _ = engine.run_group(wide_sources)
    assert np.array_equal(depths, reference_bfs_multi(kron, wide_sources))


def test_wider_vectors_issue_fewer_instructions(kron, wide_sources):
    records = {}
    for width in (1, 2):
        _, record, _ = BitwiseTraversal(
            kron, vector_width=width
        ).run_group(wide_sources)
        records[width] = record.counters
    assert records[2].instructions < records[1].instructions
    assert (
        records[2].global_load_requests < records[1].global_load_requests
    )


def test_transactions_unchanged_by_vectorization(kron, wide_sources):
    """Vector loads move the same bytes — only requests shrink."""
    txns = {}
    for width in (1, 4):
        _, record, _ = BitwiseTraversal(
            kron, vector_width=width
        ).run_group(wide_sources)
        txns[width] = record.counters.global_load_transactions
    assert txns[1] == txns[4]


def test_single_lane_group_unaffected(kron):
    """With <= 64 instances there is one lane; width changes nothing."""
    sources = list(range(16))
    results = {}
    for width in (1, 4):
        _, record, _ = BitwiseTraversal(
            kron, vector_width=width
        ).run_group(sources)
        results[width] = record.counters.instructions
    assert results[1] == results[4]


def test_ibfs_config_forwards_width(kron, wide_sources):
    fast = IBFS(
        kron, IBFSConfig(group_size=128, groupby=False, vector_width=4)
    ).run(wide_sources, store_depths=False)
    slow = IBFS(
        kron, IBFSConfig(group_size=128, groupby=False, vector_width=1)
    ).run(wide_sources, store_depths=False)
    assert fast.counters.instructions < slow.counters.instructions
