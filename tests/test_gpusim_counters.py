"""Profiler counters and per-level records."""

from repro.gpusim.counters import LevelRecord, ProfilerCounters, RunRecord


def test_counters_start_at_zero():
    c = ProfilerCounters()
    assert c.global_load_transactions == 0
    assert c.loads_per_request == 0.0
    assert c.stores_per_request == 0.0


def test_merge_adds_all_fields():
    a = ProfilerCounters(global_load_transactions=3, inspections=5)
    b = ProfilerCounters(global_load_transactions=2, atomic_operations=7)
    a.merge(b)
    assert a.global_load_transactions == 5
    assert a.inspections == 5
    assert a.atomic_operations == 7


def test_add_operator_returns_new_object():
    a = ProfilerCounters(levels=1)
    b = ProfilerCounters(levels=2)
    c = a + b
    assert c.levels == 3
    assert a.levels == 1
    assert b.levels == 2


def test_loads_per_request():
    c = ProfilerCounters(global_load_transactions=8, global_load_requests=2)
    assert c.loads_per_request == 4.0


def test_snapshot_is_independent():
    a = ProfilerCounters(levels=1)
    snap = a.snapshot()
    a.levels = 10
    assert snap.levels == 1


def test_level_record_transaction_total():
    record = LevelRecord(
        depth=0, direction="td", load_transactions=3, store_transactions=4
    )
    assert record.transaction_total == 7


def test_run_record_accumulates_levels():
    run = RunRecord()
    run.append(LevelRecord(depth=0, direction="td", load_transactions=1))
    run.append(LevelRecord(depth=1, direction="bu", store_transactions=2))
    assert len(run.levels) == 2
    assert run.total_transactions == 3
