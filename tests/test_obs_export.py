"""Exporters: JSONL traces, Prometheus text, the gpusim span adapter."""

import pytest

from repro.bfs.single import SingleBFS
from repro.graph.generators import kronecker
from repro.gpusim.device import Device
from repro.gpusim.trace import record_to_rows
from repro.obs.export import (
    metrics_only,
    pair_level_spans,
    read_jsonl,
    render_prometheus,
    spans_from_level_rows,
    spans_only,
    trace_records,
    write_jsonl,
)
from repro.obs.metrics import MetricsHub
from repro.obs.tracing import Tracer


class FakeClock:
    def __init__(self, start=0.0):
        self.t = start

    def __call__(self):
        self.t += 1.0
        return self.t


@pytest.fixture
def populated():
    tracer = Tracer(process="t", clock=FakeClock())
    with tracer.span("outer"):
        with tracer.span("inner", depth=1):
            pass
    hub = MetricsHub()
    hub.counter("tasks_total", help="tasks").inc(3)
    hub.histogram("lat", help="latency", buckets=(0.5, 1.0)).observe(0.7)
    return tracer, hub


class TestJsonl:
    def test_roundtrip(self, populated, tmp_path):
        tracer, hub = populated
        records = trace_records(tracer, hub)
        path = tmp_path / "trace.jsonl"
        count = write_jsonl(str(path), records)
        assert count == len(records) == 4
        assert read_jsonl(str(path)) == records

    def test_spans_first_then_metrics(self, populated):
        tracer, hub = populated
        kinds = [r["kind"] for r in trace_records(tracer, hub)]
        assert kinds == ["span", "span", "metric", "metric"]

    def test_filters(self, populated):
        tracer, hub = populated
        records = trace_records(tracer, hub)
        assert len(spans_only(records)) == 2
        assert len(metrics_only(records)) == 2

    def test_write_accepts_open_file(self, populated, tmp_path):
        tracer, hub = populated
        path = tmp_path / "t.jsonl"
        with open(path, "w") as fh:
            write_jsonl(fh, trace_records(tracer, hub))
        assert len(read_jsonl(str(path))) == 4


class TestPrometheus:
    def test_counter_rendering(self):
        hub = MetricsHub()
        hub.counter("requests_total", help="served").inc(5)
        text = render_prometheus(hub)
        assert "# HELP requests_total served" in text
        assert "# TYPE requests_total counter" in text
        assert "requests_total 5" in text

    def test_histogram_rendering_is_cumulative(self):
        hub = MetricsHub()
        h = hub.histogram("lat", buckets=(1.0, 2.0))
        h.observe(0.5)
        h.observe(1.5)
        text = render_prometheus(hub)
        assert 'lat_bucket{le="1"} 1' in text
        assert 'lat_bucket{le="2"} 2' in text
        assert 'lat_bucket{le="+Inf"} 2' in text
        assert "lat_sum 2" in text
        assert "lat_count 2" in text

    def test_labels_rendered_sorted(self):
        hub = MetricsHub()
        hub.counter("n", labels={"b": "2", "a": "1"}).inc()
        assert 'n{a="1",b="2"} 1' in render_prometheus(hub)

    def test_live_hub_and_file_records_render_identically(
        self, populated, tmp_path
    ):
        tracer, hub = populated
        path = tmp_path / "trace.jsonl"
        write_jsonl(str(path), trace_records(tracer, hub))
        assert render_prometheus(hub) == render_prometheus(
            read_jsonl(str(path))
        )

    def test_empty_hub_renders_empty(self):
        assert render_prometheus(MetricsHub()) == ""


class TestGpusimAdapter:
    @pytest.fixture(scope="class")
    def rows(self):
        graph = kronecker(scale=7, edge_factor=8, seed=17)
        device = Device()
        result = SingleBFS(graph, device).run(0)
        return record_to_rows(result.record, device.cost)

    def test_levels_laid_end_to_end(self, rows):
        spans = spans_from_level_rows(rows)
        assert len(spans) == len(rows)
        clock = 0.0
        for span, row in zip(spans, rows):
            assert span["kind"] == "span"
            assert span["name"] == "sim.level"
            assert span["process"] == "gpusim"
            assert span["start"] == pytest.approx(clock)
            assert span["duration"] == pytest.approx(row["seconds"])
            clock += row["seconds"]

    def test_counters_survive_in_attrs(self, rows):
        span = spans_from_level_rows(rows)[0]
        row = rows[0]
        for key in ("depth", "direction", "load_transactions"):
            assert span["attrs"][key] == row[key]

    def test_pairing_matches_on_depth(self, rows):
        sim = spans_from_level_rows(rows)
        tracer = Tracer(process="real", clock=FakeClock())
        # Real profile covers only the first two levels.
        for depth in (0, 1):
            with tracer.span("profile.level", depth=depth):
                pass
        real = tracer.export_dicts()
        pairs = pair_level_spans(real, sim)
        assert len(pairs) == len(rows)
        assert pairs[0][0] is not None and pairs[0][1] is not None
        assert pairs[0][0]["attrs"]["depth"] == 0
        assert all(r is None for r, _ in pairs[2:])
        assert all(s is not None for _, s in pairs)
