"""Serving determinism: the online path answers exactly like batch mode,
and identical request streams reproduce bit-identical runs."""

import numpy as np
import pytest

from repro.graph.generators import kronecker, rmat
from repro.bfs.reference import reference_bfs
from repro.core.engine import IBFS, IBFSConfig
from repro.service import (
    BFSServer,
    Request,
    ServingConfig,
    WorkloadConfig,
    run_closed_loop,
    sample_sources,
)


@pytest.fixture(scope="module")
def graph():
    return kronecker(scale=8, edge_factor=8, seed=3)


def test_served_depths_match_direct_engine_run(graph):
    """Same sources through the server and through IBFS.run: same depths."""
    sources = [3, 9, 17, 21, 40, 55, 60, 77]
    engine = IBFS(graph, IBFSConfig(group_size=8))
    direct = engine.run(sources, store_depths=True)

    server = BFSServer(
        graph,
        ServingConfig(batch_size=8, return_depths=True, cache_capacity=0),
    )
    for s in sources:
        server.submit(Request(source=s), arrival_time=0.0)
    responses = {r.request.source: r for r in server.drain()}

    assert sorted(responses) == sorted(sources)
    for s in sources:
        assert responses[s].ok
        assert np.array_equal(responses[s].depths, direct.depth_row(s))
        assert np.array_equal(responses[s].depths, reference_bfs(graph, s))


def test_cached_answers_equal_fresh_answers(graph):
    """A cache hit returns the same depths the traversal produced."""
    server = BFSServer(graph, ServingConfig(batch_size=4, return_depths=True))
    server.submit(Request(source=5), arrival_time=0.0)
    first = server.drain()[0]
    server.submit(Request(source=5), arrival_time=1.0)
    second = server.take_completed()[0]
    assert second.cached
    assert np.array_equal(first.depths, second.depths)


def test_identical_streams_reproduce_bit_identical_runs():
    """Same (graph, workload, config): same latencies, metrics, answers."""
    graph = rmat(scale=9, edge_factor=8, seed=11)
    workload = WorkloadConfig(
        num_requests=150, num_clients=16, zipf_exponent=1.0, seed=4
    )
    serving = ServingConfig(batch_size=16, flush_deadline=2e-5)

    def run():
        return run_closed_loop(BFSServer(graph, serving), workload)

    a, b = run(), run()
    assert a.completed == b.completed == workload.num_requests
    assert a.elapsed == b.elapsed
    assert a.throughput == b.throughput
    assert a.metrics == b.metrics
    assert [(r.request_id, r.latency, r.value) for r in a.responses] == \
           [(r.request_id, r.latency, r.value) for r in b.responses]


def test_sampled_sources_are_deterministic_and_skewed():
    graph = rmat(scale=9, edge_factor=8, seed=11)
    a = sample_sources(graph, 200, 1.1, seed=5)
    b = sample_sources(graph, 200, 1.1, seed=5)
    assert a == b
    assert sample_sources(graph, 200, 1.1, seed=6) != a
    # Skew: the most popular source appears far above the uniform rate,
    # and it is a high-degree vertex.
    counts = {}
    for s in a:
        counts[s] = counts.get(s, 0) + 1
    hottest = max(counts, key=counts.get)
    assert counts[hottest] > 5 * (200 / graph.num_vertices)
    degrees = graph.out_degrees()
    assert degrees[hottest] >= np.percentile(degrees, 95)


def test_closed_loop_answers_match_reference():
    """Every ok response in a load-generated run carries the right value."""
    graph = rmat(scale=9, edge_factor=8, seed=11)
    workload = WorkloadConfig(
        num_requests=80, num_clients=8, zipf_exponent=1.2, seed=2
    )
    result = run_closed_loop(BFSServer(graph), workload)
    assert result.completed == workload.num_requests
    expected = {}
    for response in result.responses:
        source = response.request.source
        if source not in expected:
            depths = reference_bfs(graph, source)
            expected[source] = float(np.count_nonzero(depths >= 0))
        assert response.value == expected[source]
