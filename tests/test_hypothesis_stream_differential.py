"""Differential property tests for the dynamic-graph layer.

Two equivalences pinned on arbitrary random graphs and mutation
batches:

* **Compaction** — folding a batch through
  :func:`repro.stream.overlay.apply_batch` is bit-identical to
  rebuilding the equivalent edge list from scratch with the stable
  :func:`~repro.graph.builders.from_edge_arrays` builder.
* **Repair** — for insert-only batches, patching a cached depth matrix
  with :func:`~repro.stream.repair.repair_depth_matrix` is
  bit-identical to re-running BFS from scratch on the post-mutation
  graph, with and without a ``max_depth`` cap, and regardless of the
  execution substrate (serial engine, partitioned engine, worker
  pool): the deterministic cross-backend checks live at the bottom.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph.builders import from_edge_arrays
from repro.graph.csr import VERTEX_DTYPE
from repro.graph.generators import kronecker
from repro.core.engine import IBFS, IBFSConfig
from repro.stream import MutationBatch, apply_batch, repair_depth_matrix

SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def mutation_cases(draw, max_vertices=24, max_edges=60, max_batch=16):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    graph = from_edge_arrays(
        np.asarray(src, dtype=VERTEX_DTYPE),
        np.asarray(dst, dtype=VERTEX_DTYPE),
        num_vertices=n,
    )
    ni = draw(st.integers(min_value=0, max_value=max_batch))
    inserts = (
        np.asarray(draw(st.lists(st.integers(0, n - 1), min_size=ni,
                                 max_size=ni)), dtype=VERTEX_DTYPE),
        np.asarray(draw(st.lists(st.integers(0, n - 1), min_size=ni,
                                 max_size=ni)), dtype=VERTEX_DTYPE),
    )
    nd = draw(st.integers(min_value=0, max_value=max_batch))
    # Deletes mix real edges (sampled from the graph) with arbitrary
    # pairs that may not exist — both must behave.
    dsrc, ddst = [], []
    for _ in range(nd):
        if m and draw(st.booleans()):
            idx = draw(st.integers(0, m - 1))
            dsrc.append(src[idx])
            ddst.append(dst[idx])
        else:
            dsrc.append(draw(st.integers(0, n - 1)))
            ddst.append(draw(st.integers(0, n - 1)))
    deletes = (
        np.asarray(dsrc, dtype=VERTEX_DTYPE),
        np.asarray(ddst, dtype=VERTEX_DTYPE),
    )
    return graph, inserts, deletes


def reference_fold(graph, inserts, deletes):
    n = graph.num_vertices
    src, dst = graph.edge_array()
    keys = src * np.int64(n) + dst
    dkeys = deletes[0] * np.int64(n) + deletes[1]
    keep = ~np.isin(keys, dkeys)
    src = np.concatenate([src[keep], inserts[0]])
    dst = np.concatenate([dst[keep], inserts[1]])
    return from_edge_arrays(src, dst, num_vertices=n)


@SETTINGS
@given(mutation_cases())
def test_apply_batch_matches_scratch_rebuild(case):
    graph, inserts, deletes = case
    batch = MutationBatch.make(
        graph.num_vertices, inserts=inserts, deletes=deletes
    )
    folded = apply_batch(graph, batch)
    ref = reference_fold(graph, inserts, deletes)
    assert np.array_equal(folded.row_offsets, ref.row_offsets)
    assert np.array_equal(folded.col_indices, ref.col_indices)
    assert folded.row_offsets.dtype == ref.row_offsets.dtype
    assert folded.col_indices.dtype == ref.col_indices.dtype


@st.composite
def repair_cases(draw, max_vertices=20, max_edges=50, max_inserts=10):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    graph = from_edge_arrays(
        np.asarray(src, dtype=VERTEX_DTYPE),
        np.asarray(dst, dtype=VERTEX_DTYPE),
        num_vertices=n,
    )
    ni = draw(st.integers(min_value=0, max_value=max_inserts))
    inserts = (
        np.asarray(draw(st.lists(st.integers(0, n - 1), min_size=ni,
                                 max_size=ni)), dtype=VERTEX_DTYPE),
        np.asarray(draw(st.lists(st.integers(0, n - 1), min_size=ni,
                                 max_size=ni)), dtype=VERTEX_DTYPE),
    )
    k = draw(st.integers(min_value=1, max_value=min(5, n)))
    sources = draw(
        st.lists(st.integers(0, n - 1), min_size=k, max_size=k, unique=True)
    )
    max_depth = draw(
        st.one_of(st.none(), st.integers(min_value=0, max_value=6))
    )
    return graph, inserts, sources, max_depth


@SETTINGS
@given(repair_cases())
def test_repair_matches_scratch_traversal(case):
    graph, inserts, sources, max_depth = case
    old = IBFS(graph, IBFSConfig(group_size=len(sources))).run_group(
        sources, max_depth=max_depth
    ).depths
    batch = MutationBatch.make(graph.num_vertices, inserts=inserts)
    new_graph = apply_batch(graph, batch)
    repaired, _ = repair_depth_matrix(
        new_graph, batch, old, max_depth=max_depth
    )
    scratch = IBFS(
        new_graph, IBFSConfig(group_size=len(sources))
    ).run_group(sources, max_depth=max_depth).depths
    assert repaired.dtype == scratch.dtype
    assert np.array_equal(repaired, scratch)


class TestRepairAcrossBackends:
    """The repaired matrix equals a from-scratch run on *every*
    execution substrate, not just the serial engine — deterministic
    (non-hypothesis) because the heavier backends dominate runtime."""

    @pytest.fixture(scope="class")
    def fixture(self):
        base = kronecker(scale=7, edge_factor=6, seed=21)
        n = base.num_vertices
        sources = list(range(12))
        old = IBFS(base, IBFSConfig(group_size=12)).run_group(
            sources
        ).depths
        rng = np.random.default_rng(3)
        batch = MutationBatch.make(
            n,
            inserts=(rng.integers(0, n, 10, dtype=VERTEX_DTYPE),
                     rng.integers(0, n, 10, dtype=VERTEX_DTYPE)),
        )
        new_graph = apply_batch(base, batch)
        repaired, _ = repair_depth_matrix(new_graph, batch, old)
        return new_graph, sources, repaired

    def test_matches_serial_backend(self, fixture):
        new_graph, sources, repaired = fixture
        scratch = IBFS(
            new_graph, IBFSConfig(group_size=len(sources))
        ).run_group(sources).depths
        assert np.array_equal(repaired, scratch)

    def test_matches_partitioned_backend(self, fixture):
        from repro.dist.engine import DistConfig, PartitionedEngine

        new_graph, sources, repaired = fixture
        for layout in ("1d", "2d"):
            engine = PartitionedEngine(
                new_graph,
                DistConfig(
                    num_partitions=2,
                    layout=layout,
                    group_size=len(sources),
                ),
            )
            try:
                scratch = engine.run_group(sources).depths
            finally:
                engine.close()
            assert np.array_equal(repaired, scratch)

    def test_matches_executor_backend(self, fixture):
        from repro.exec import ExecConfig, GroupExecutor

        new_graph, sources, repaired = fixture
        with GroupExecutor(
            new_graph,
            IBFSConfig(group_size=len(sources)),
            exec_config=ExecConfig(num_workers=2),
        ) as executor:
            scratch = executor.run_group(sources).depths
        assert np.array_equal(repaired, scratch)
