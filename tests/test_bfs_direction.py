"""Direction-optimizing policy state machine."""

from repro.bfs.direction import Direction, DirectionPolicy


def test_initial_is_top_down():
    assert DirectionPolicy().initial() is Direction.TOP_DOWN


def test_switch_to_bottom_up_when_frontier_heavy():
    policy = DirectionPolicy(alpha=14)
    nxt = policy.next_direction(
        Direction.TOP_DOWN,
        frontier_edges=100,
        unexplored_edges=100,  # 100 * 14 > 100
        frontier_vertices=10,
        num_vertices=1000,
    )
    assert nxt is Direction.BOTTOM_UP


def test_stay_top_down_when_frontier_light():
    policy = DirectionPolicy(alpha=14)
    nxt = policy.next_direction(
        Direction.TOP_DOWN,
        frontier_edges=1,
        unexplored_edges=10_000,
        frontier_vertices=1,
        num_vertices=1000,
    )
    assert nxt is Direction.TOP_DOWN


def test_empty_frontier_never_switches():
    policy = DirectionPolicy()
    nxt = policy.next_direction(Direction.TOP_DOWN, 0, 0, 0, 10)
    assert nxt is Direction.TOP_DOWN


def test_sticky_bottom_up_never_returns():
    policy = DirectionPolicy(sticky=True)
    nxt = policy.next_direction(Direction.BOTTOM_UP, 1, 10**9, 1, 10**6)
    assert nxt is Direction.BOTTOM_UP


def test_non_sticky_returns_when_frontier_small():
    policy = DirectionPolicy(sticky=False, beta=24)
    nxt = policy.next_direction(
        Direction.BOTTOM_UP,
        frontier_edges=1,
        unexplored_edges=1,
        frontier_vertices=1,
        num_vertices=1000,  # 1 * 24 < 1000
    )
    assert nxt is Direction.TOP_DOWN


def test_non_sticky_stays_when_frontier_large():
    policy = DirectionPolicy(sticky=False, beta=24)
    nxt = policy.next_direction(Direction.BOTTOM_UP, 500, 1, 500, 1000)
    assert nxt is Direction.BOTTOM_UP


def test_bottom_up_disabled():
    policy = DirectionPolicy(allow_bottom_up=False)
    nxt = policy.next_direction(Direction.TOP_DOWN, 10**9, 1, 10**6, 10**6)
    assert nxt is Direction.TOP_DOWN
