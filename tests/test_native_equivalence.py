"""Engine-matrix bit-identity of the native backend.

The acceptance bar for :mod:`repro.native`: simulated counters and
depth matrices identical between the numpy kernels and every loadable
provider across engines (bitwise/joint/single), vector widths, and
snapshot strategies — plus plans recording ``kernel="native"``
replaying bit-identically through the exec task protocol and the
service-layer :class:`~repro.service.cache.PlanCache`.
"""

import numpy as np
import pytest

import repro.native as native
from repro.bfs.single import SingleBFS
from repro.core.engine import IBFS, IBFSConfig
from repro.graph.generators import rmat, uniform_random
from repro.plan import HeuristicPolicy, make_policy
from repro.service.cache import PlanCache, graph_cache_id

RNG = np.random.default_rng(23)


def _loadable_providers():
    names = ["python"]
    for name in ("cext", "numba"):
        try:
            native._load_backend(name)
        except ImportError:
            continue
        names.append(name)
    return names


PROVIDERS = _loadable_providers()


@pytest.fixture(scope="module")
def graphs():
    return {
        "rmat9": rmat(9, edge_factor=8, seed=1),
        "uni350": uniform_random(350, 4, seed=4),
    }


def _run(graph, mode, group_size, vector_width, snapshot, sources):
    planner = HeuristicPolicy(
        vector_width=vector_width, snapshot=snapshot
    )
    engine = IBFS(
        graph,
        IBFSConfig(group_size=group_size, mode=mode, groupby=False),
        planner=planner,
    )
    return engine.run(sources)


def _assert_identical(a, b, label):
    assert np.array_equal(a.depths, b.depths), f"{label}: depths"
    assert a.counters.__dict__ == b.counters.__dict__, (
        f"{label}: counters\n{a.counters.__dict__}\n{b.counters.__dict__}"
    )
    for ga, gb in zip(a.groups, b.groups):
        assert ga.plan.decisions == gb.plan.decisions or (
            # Auto resolves differently per host; the executed
            # decisions legitimately differ only in the kernel field.
            [d.to_dict() | {"kernel": "x"} for d in ga.plan]
            == [d.to_dict() | {"kernel": "x"} for d in gb.plan]
        ), f"{label}: plans"


# ----------------------------------------------------------------------
# Engines x vector widths x snapshots x providers
# ----------------------------------------------------------------------
class TestEngineMatrix:
    @pytest.mark.parametrize("provider", PROVIDERS)
    @pytest.mark.parametrize("mode", ["bitwise", "joint"])
    @pytest.mark.parametrize(
        "group_size,vector_width", [(32, 1), (70, 2), (130, 4)]
    )
    @pytest.mark.parametrize("snapshot", ["dirty", "full"])
    def test_group_engines(
        self, graphs, provider, mode, group_size, vector_width, snapshot
    ):
        graph = graphs["rmat9"]
        sources = RNG.choice(
            graph.num_vertices, size=group_size, replace=False
        ).tolist()
        with native.force_backend("off"):
            baseline = _run(
                graph, mode, group_size, vector_width, snapshot, sources
            )
        with native.force_backend(provider):
            got = _run(
                graph, mode, group_size, vector_width, snapshot, sources
            )
        _assert_identical(
            baseline, got,
            f"{mode}/gs{group_size}/vw{vector_width}/{snapshot}/{provider}",
        )

    @pytest.mark.parametrize("provider", PROVIDERS)
    @pytest.mark.parametrize("name", ["rmat9", "uni350"])
    def test_single_source(self, graphs, provider, name):
        graph = graphs[name]
        source = int(RNG.integers(0, graph.num_vertices))
        with native.force_backend("off"):
            baseline = SingleBFS(graph).run(source)
        with native.force_backend(provider):
            got = SingleBFS(graph).run(source)
        assert np.array_equal(baseline.depths, got.depths)
        assert (
            baseline.record.counters.__dict__
            == got.record.counters.__dict__
        )

    @pytest.mark.parametrize("provider", PROVIDERS)
    def test_msbfs_configuration(self, graphs, provider):
        # No early termination + per-level reset rides the same engine;
        # the native scan must honor early_termination=False exactly.
        graph = graphs["rmat9"]
        sources = RNG.choice(graph.num_vertices, size=64, replace=False).tolist()
        planner = HeuristicPolicy(early_termination=False)
        config = IBFSConfig(group_size=64, mode="bitwise", groupby=False)
        with native.force_backend("off"):
            baseline = IBFS(graph, config, planner=planner).run(sources)
        with native.force_backend(provider):
            got = IBFS(graph, config, planner=planner).run(sources)
        _assert_identical(baseline, got, f"msbfs/{provider}")


# ----------------------------------------------------------------------
# Recorded kernel="native" plans: replay, exec protocol, PlanCache
# ----------------------------------------------------------------------
class TestNativePlanReplay:
    def _native_plan(self, graph, sources, group_size):
        planner = HeuristicPolicy(kernel="native")
        engine = IBFS(
            graph,
            IBFSConfig(group_size=group_size, mode="bitwise", groupby=False),
            planner=planner,
        )
        result = engine.run_group(sources)
        plan = result.groups[0].plan
        assert all(d.kernel == "native" for d in plan)
        return result, plan

    def test_replay_identical_with_and_without_backend(self, graphs):
        graph = graphs["rmat9"]
        sources = RNG.choice(graph.num_vertices, size=48, replace=False).tolist()
        recorded, plan = self._native_plan(graph, sources, 48)
        config = IBFSConfig(group_size=48, mode="bitwise", groupby=False)
        replayed = IBFS(graph, config).run_group(sources, plan=plan)
        assert np.array_equal(recorded.depths, replayed.depths)
        assert recorded.counters.__dict__ == replayed.counters.__dict__
        with native.force_backend("off"):
            # Re-arm the one-shot fallback warning: with no backend on
            # the host (e.g. the REPRO_NATIVE=0 CI lane) the recorded
            # run above already consumed it.
            native.refresh()
            with pytest.warns(RuntimeWarning, match="falling back"):
                fallback = IBFS(graph, config).run_group(
                    sources, plan=plan
                )
        assert np.array_equal(recorded.depths, fallback.depths)
        assert recorded.counters.__dict__ == fallback.counters.__dict__

    def test_plan_survives_plan_cache(self, graphs):
        graph = graphs["rmat9"]
        sources = RNG.choice(graph.num_vertices, size=32, replace=False).tolist()
        recorded, plan = self._native_plan(graph, sources, 32)
        cache = PlanCache(capacity=4)
        key = PlanCache.key(
            graph_cache_id(graph), sources, "bitwise/gs32", None
        )
        cache.put(key, plan)
        cached = cache.get(key)
        assert cached == plan
        config = IBFSConfig(group_size=32, mode="bitwise", groupby=False)
        replayed = IBFS(graph, config).run_group(sources, plan=cached)
        assert np.array_equal(recorded.depths, replayed.depths)
        assert recorded.counters.__dict__ == replayed.counters.__dict__

    def test_exec_protocol_replays_native_plan(self, graphs):
        # The full worker path: plan pickles over the task queue, the
        # worker warms the backend on spawn and replays bit-identically.
        from repro.exec import ExecConfig, GroupExecutor

        graph = graphs["rmat9"]
        sources = RNG.choice(graph.num_vertices, size=32, replace=False).tolist()
        recorded, plan = self._native_plan(graph, sources, 32)
        config = IBFSConfig(group_size=32, mode="bitwise", groupby=False)
        with GroupExecutor(
            graph, config, exec_config=ExecConfig(num_workers=2)
        ) as executor:
            via_exec = executor.run_group(sources, plan=plan)
        assert np.array_equal(recorded.depths, via_exec.depths)
        assert recorded.counters.__dict__ == via_exec.counters.__dict__


# ----------------------------------------------------------------------
# Adaptive policy resolution through a full run
# ----------------------------------------------------------------------
@pytest.mark.parametrize("provider", PROVIDERS)
def test_adaptive_policy_identical_across_backends(graphs, provider):
    graph = graphs["rmat9"]
    sources = RNG.choice(graph.num_vertices, size=64, replace=False).tolist()
    config = IBFSConfig(group_size=64, mode="bitwise", groupby=False)
    with native.force_backend("off"):
        baseline = IBFS(
            graph, config, planner=make_policy("adaptive")
        ).run(sources)
        kernels_off = {
            d.kernel for g in baseline.groups for d in g.plan
        }
    with native.force_backend(provider):
        got = IBFS(
            graph, config, planner=make_policy("adaptive")
        ).run(sources)
        kernels_on = {d.kernel for g in got.groups for d in g.plan}
    assert kernels_off <= {"flat", "generic"}
    assert kernels_on == {"native"}
    assert np.array_equal(baseline.depths, got.depths)
    assert baseline.counters.__dict__ == got.counters.__dict__
