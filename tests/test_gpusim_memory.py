"""Coalesced memory-transaction counting."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.gpusim.config import KEPLER_K40, XEON_CPU
from repro.gpusim.memory import MemoryModel


@pytest.fixture
def mem():
    return MemoryModel(KEPLER_K40)


class TestStreaming:
    def test_exact_multiple(self, mem):
        assert mem.stream_transactions(256) == 2

    def test_rounds_up(self, mem):
        assert mem.stream_transactions(129) == 2

    def test_zero_bytes(self, mem):
        assert mem.stream_transactions(0) == 0

    def test_negative_rejected(self, mem):
        with pytest.raises(SimulationError):
            mem.stream_transactions(-1)


class TestAdjacency:
    def test_each_list_rounds_up_separately(self, mem):
        # 8-byte entries, 16 per 128 B line: degrees 1, 16, 17
        degrees = np.asarray([1, 16, 17])
        assert mem.adjacency_transactions(degrees) == 1 + 1 + 2

    def test_zero_degree_costs_nothing(self, mem):
        assert mem.adjacency_transactions(np.asarray([0, 0])) == 0

    def test_empty(self, mem):
        assert mem.adjacency_transactions(np.asarray([], dtype=np.int64)) == 0


class TestCoalescing:
    def test_contiguous_warp_coalesces_to_one(self, mem):
        # 32 threads reading 32 contiguous 4-byte entries = 128 B = 1 txn.
        txns, requests = mem.coalesced_transactions(np.arange(32), 4)
        assert requests == 1
        assert txns == 1

    def test_scattered_warp_needs_many(self, mem):
        # Strided by 64 entries of 4 bytes -> every access in its own line.
        txns, requests = mem.coalesced_transactions(np.arange(32) * 64, 4)
        assert requests == 1
        assert txns == 32

    def test_eight_byte_entries_coalesce_to_two_lines(self, mem):
        txns, _ = mem.coalesced_transactions(np.arange(32), 8)
        assert txns == 2  # 32 * 8 B = 256 B

    def test_partial_warp(self, mem):
        txns, requests = mem.coalesced_transactions(np.arange(10), 4)
        assert requests == 1
        assert txns == 1

    def test_empty_stream(self, mem):
        assert mem.coalesced_transactions(np.asarray([], dtype=np.int64), 4) == (0, 0)

    def test_invalid_element_size(self, mem):
        with pytest.raises(SimulationError):
            mem.coalesced_transactions(np.arange(4), 0)

    def test_cpu_warp_of_one(self):
        cpu = MemoryModel(XEON_CPU)
        txns, requests = cpu.coalesced_transactions(np.arange(10), 8)
        assert txns == 10
        assert requests == 10

    def test_duplicate_addresses_in_warp_coalesce(self, mem):
        txns, _ = mem.coalesced_transactions(np.zeros(32, dtype=np.int64), 4)
        assert txns == 1


class TestDerived:
    def test_scattered_transactions(self, mem):
        assert mem.scattered_transactions(10) == 10
        with pytest.raises(SimulationError):
            mem.scattered_transactions(-1)

    def test_status_group_transactions_jsa(self, mem):
        # 128 one-byte statuses fit one 128 B line.
        assert mem.status_group_transactions(10, 128) == 10
        # 256 bytes need two lines per vertex.
        assert mem.status_group_transactions(10, 256) == 20
        # Small groups still cost one transaction.
        assert mem.status_group_transactions(10, 4) == 10

    def test_capacity_rule(self, mem):
        # M = 12 GiB; graph 2 GiB; JFQ 8 MiB; per-instance 16 MiB.
        n = mem.capacity_group_size(
            graph_bytes=2 * 1024**3,
            status_bytes_per_vertex=1,
            num_vertices=16 * 1024**2,
            jfq_bytes=8 * 1024**2,
        )
        assert n == (12 * 1024**3 - 2 * 1024**3 - 8 * 1024**2) // (16 * 1024**2)

    def test_capacity_rule_no_room(self, mem):
        assert (
            mem.capacity_group_size(
                graph_bytes=KEPLER_K40.global_memory_bytes,
                status_bytes_per_vertex=1,
                num_vertices=100,
                jfq_bytes=0,
            )
            == 0
        )

    def test_capacity_rule_invalid_status_size(self, mem):
        with pytest.raises(SimulationError):
            mem.capacity_group_size(0, 0, 0, 0)
