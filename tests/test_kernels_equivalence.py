"""Equivalence suite: kernels-backed engines vs the frozen references.

The :mod:`repro.kernels` primitives replace the reference engines'
hot loops with vectorized reformulations that must be *bit-identical*
— every depth, every simulated counter, every per-level record, every
sharing statistic.  This suite drives the live engines and the frozen
pre-kernels copies (:mod:`repro.kernels.reference`) through the same
traversals and compares everything, plus unit-level checks of the
primitives themselves against their naive formulations.
"""

import numpy as np
import pytest

from repro.plan import DirectionPolicy, HeuristicPolicy
from repro.bfs.single import SingleBFS
from repro.core.bitwise import BitwiseTraversal
from repro.core.engine import IBFS, IBFSConfig
from repro.core.joint import JointTraversal
from repro.graph.generators import path, rmat, star, uniform_random
from repro.kernels import (
    LevelWorkspace,
    per_bit_counts,
    per_bit_weighted,
    round_major_probes,
    scatter_or,
    scatter_plan,
    unpack_lane_bits,
)
from repro.kernels.reference import (
    ReferenceBitwiseTraversal,
    ReferenceJointTraversal,
    ReferenceSingleBFS,
)

RNG = np.random.default_rng(7)


@pytest.fixture(scope="module")
def graphs():
    return {
        "rmat9": rmat(9, edge_factor=8, seed=1),
        "uni400": uniform_random(400, 4, seed=2),
        "star300": star(300),
        "path64": path(64),
    }


def assert_runs_equal(result_a, result_b, label):
    depths_a, record_a, stats_a = result_a
    depths_b, record_b, stats_b = result_b
    assert np.array_equal(depths_a, depths_b), f"{label}: depths differ"
    counters_a = record_a.counters.__dict__
    counters_b = record_b.counters.__dict__
    for key in counters_b:
        assert counters_a[key] == counters_b[key], (
            f"{label}: counter {key}: {counters_a[key]} vs {counters_b[key]}"
        )
    assert len(record_a.levels) == len(record_b.levels), f"{label}: levels"
    for level_a, level_b in zip(record_a.levels, record_b.levels):
        assert level_a == level_b, f"{label}: {level_a} vs {level_b}"
    assert stats_a == stats_b, f"{label}: stats differ"


# ----------------------------------------------------------------------
# Bitwise engine (and the MS-BFS configuration riding on it)
# ----------------------------------------------------------------------
class TestBitwiseEquivalence:
    @pytest.mark.parametrize("name", ["rmat9", "uni400", "star300", "path64"])
    @pytest.mark.parametrize("group_size", [3, 64, 70])
    def test_default_config(self, graphs, name, group_size):
        graph = graphs[name]
        sources = RNG.integers(0, graph.num_vertices, size=group_size).tolist()
        assert_runs_equal(
            BitwiseTraversal(graph).run_group(sources),
            ReferenceBitwiseTraversal(graph).run_group(sources),
            f"{name}/gs{group_size}",
        )

    @pytest.mark.parametrize(
        "label,kwargs",
        [
            ("no-earlyterm", dict(early_termination=False)),
            (
                "msbfs",
                dict(
                    early_termination=False,
                    reset_per_level=True,
                    thread_per_instance=True,
                ),
            ),
            (
                "vec2-pergroup",
                dict(vector_width=2, direction_mode="per-group"),
            ),
            ("vec2", dict(vector_width=2)),
            ("vec4", dict(vector_width=4)),
            ("td-only", dict(policy=DirectionPolicy(allow_bottom_up=False))),
        ],
    )
    @pytest.mark.parametrize("name", ["rmat9", "uni400", "star300", "path64"])
    def test_variant_configs(self, graphs, name, label, kwargs):
        graph = graphs[name]
        sources = RNG.integers(0, graph.num_vertices, size=64).tolist()
        assert_runs_equal(
            BitwiseTraversal(graph, **kwargs).run_group(sources),
            ReferenceBitwiseTraversal(graph, **kwargs).run_group(sources),
            f"{name}/{label}",
        )

    def test_max_depth_cutoff(self, graphs):
        graph = graphs["rmat9"]
        sources = RNG.integers(0, graph.num_vertices, size=8).tolist()
        assert_runs_equal(
            BitwiseTraversal(graph).run_group(sources, max_depth=2),
            ReferenceBitwiseTraversal(graph).run_group(sources, max_depth=2),
            "rmat9/max-depth",
        )

    def test_duplicate_sources(self, graphs):
        graph = graphs["uni400"]
        sources = [5, 5, 17, 17, 17, 9]
        assert_runs_equal(
            BitwiseTraversal(graph).run_group(sources),
            ReferenceBitwiseTraversal(graph).run_group(sources),
            "uni400/dup-sources",
        )


# ----------------------------------------------------------------------
# Joint (JSA) engine and the single-source engine
# ----------------------------------------------------------------------
class TestJointEquivalence:
    @pytest.mark.parametrize("name", ["rmat9", "uni400", "star300"])
    @pytest.mark.parametrize("bottom_up", [True, False])
    def test_joint(self, graphs, name, bottom_up):
        graph = graphs[name]
        sources = RNG.integers(0, graph.num_vertices, size=16).tolist()
        policy = dict(policy=DirectionPolicy(allow_bottom_up=bottom_up))
        assert_runs_equal(
            JointTraversal(graph, **policy).run_group(sources),
            ReferenceJointTraversal(graph, **policy).run_group(sources),
            f"{name}/joint/bu={bottom_up}",
        )


class TestSingleEquivalence:
    @pytest.mark.parametrize("name", ["rmat9", "uni400", "star300", "path64"])
    @pytest.mark.parametrize("bottom_up", [True, False])
    def test_single(self, graphs, name, bottom_up):
        graph = graphs[name]
        policy = DirectionPolicy(allow_bottom_up=bottom_up)
        for source in RNG.integers(0, graph.num_vertices, size=4):
            live = SingleBFS(graph, policy=policy).run(int(source))
            ref = ReferenceSingleBFS(graph, policy=policy).run(int(source))
            label = f"{name}/single/{source}"
            assert np.array_equal(live.depths, ref.depths), label
            assert live.record.counters.__dict__ == ref.record.counters.__dict__, label
            assert live.record.levels == ref.record.levels, label
            assert live.seconds == ref.seconds, label


# ----------------------------------------------------------------------
# Planner-driven engines vs the frozen references
# ----------------------------------------------------------------------
class TestPlannerEquivalence:
    """The planner path must reproduce the frozen oracles exactly: an
    explicitly constructed :class:`HeuristicPolicy` is the same
    traversal as the legacy knobs it consolidated."""

    @pytest.mark.parametrize("name", ["rmat9", "uni400", "star300"])
    @pytest.mark.parametrize("vector_width", [2, 4])
    def test_explicit_planner_vector_widths(self, graphs, name, vector_width):
        graph = graphs[name]
        sources = RNG.integers(0, graph.num_vertices, size=64).tolist()
        planner = HeuristicPolicy(vector_width=vector_width)
        assert_runs_equal(
            BitwiseTraversal(graph, planner=planner).run_group(sources),
            ReferenceBitwiseTraversal(
                graph, vector_width=vector_width
            ).run_group(sources),
            f"{name}/planner-vw{vector_width}",
        )

    @pytest.mark.parametrize("name", ["rmat9", "uni400", "star300"])
    def test_joint_under_planner(self, graphs, name):
        graph = graphs[name]
        sources = RNG.integers(0, graph.num_vertices, size=16).tolist()
        assert_runs_equal(
            JointTraversal(
                graph, planner=HeuristicPolicy()
            ).run_group(sources),
            ReferenceJointTraversal(graph).run_group(sources),
            f"{name}/joint-planner",
        )

    @pytest.mark.parametrize("mode", ["bitwise", "joint"])
    def test_ibfs_random_grouping_matches_reference(self, graphs, mode):
        graph = graphs["rmat9"]
        sources = RNG.choice(
            graph.num_vertices, size=48, replace=False
        ).tolist()
        engine = IBFS(
            graph, IBFSConfig(group_size=16, mode=mode, groupby=False)
        )
        reference_cls = (
            ReferenceBitwiseTraversal
            if mode == "bitwise"
            else ReferenceJointTraversal
        )
        reference = reference_cls(graph)
        for group in engine.make_groups(sources):
            result = engine.run_group(group)
            ref_depths, ref_record, ref_stats = reference.run_group(
                list(group)
            )
            label = f"rmat9/{mode}/no-groupby"
            assert np.array_equal(result.depths, ref_depths), label
            assert (
                result.counters.__dict__ == ref_record.counters.__dict__
            ), label
            assert result.groups[0] == ref_stats, label


# ----------------------------------------------------------------------
# scatter_or vs np.bitwise_or.at
# ----------------------------------------------------------------------
class TestScatterOr:
    @pytest.mark.parametrize("num_targets", [1, 7, 1000, 70000])
    def test_matches_ufunc_at_2d(self, num_targets):
        rng = np.random.default_rng(num_targets)
        pairs = 5000
        targets = rng.integers(0, num_targets, size=pairs)
        words = rng.integers(0, 2**63, size=(pairs, 2), dtype=np.uint64)
        expected = np.zeros((num_targets, 2), dtype=np.uint64)
        np.bitwise_or.at(expected, targets, words)
        out = np.zeros((num_targets, 2), dtype=np.uint64)
        returned = scatter_or(out, targets, words)
        assert np.array_equal(out, expected)
        assert np.array_equal(returned, np.unique(targets))

    def test_matches_ufunc_at_1d(self):
        rng = np.random.default_rng(3)
        targets = rng.integers(0, 50, size=400)
        words = rng.integers(0, 2**63, size=400, dtype=np.uint64)
        expected = np.zeros(50, dtype=np.uint64)
        np.bitwise_or.at(expected, targets, words)
        out = np.zeros(50, dtype=np.uint64)
        scatter_or(out, targets, words)
        assert np.array_equal(out, expected)

    def test_word_index_compact_table(self):
        # words[word_index[i]] scattered for pair i — equivalent to
        # expanding the table up front.
        rng = np.random.default_rng(4)
        table = rng.integers(0, 2**63, size=(10, 1), dtype=np.uint64)
        word_index = rng.integers(0, 10, size=300)
        targets = rng.integers(0, 40, size=300)
        expected = np.zeros((40, 1), dtype=np.uint64)
        np.bitwise_or.at(expected, targets, table[word_index])
        out = np.zeros((40, 1), dtype=np.uint64)
        scatter_or(out, targets, table, word_index=word_index)
        assert np.array_equal(out, expected)

    def test_preserves_existing_bits(self):
        out = np.full((4, 1), 0b1010, dtype=np.uint64)
        scatter_or(out, np.array([1, 1]), np.array([[1], [4]], dtype=np.uint64))
        assert out[1, 0] == 0b1010 | 1 | 4
        assert out[0, 0] == 0b1010

    def test_empty(self):
        out = np.zeros((4, 1), dtype=np.uint64)
        returned = scatter_or(
            out, np.empty(0, dtype=np.int64), np.empty((0, 1), dtype=np.uint64)
        )
        assert returned.size == 0
        assert not out.any()

    def test_plan_reuse(self):
        targets = np.array([3, 1, 3, 0, 1, 3])
        plan = scatter_plan(targets)
        assert np.array_equal(plan.unique_targets, [0, 1, 3])
        words = np.arange(1, 7, dtype=np.uint64).reshape(6, 1)
        expected = np.zeros((4, 1), dtype=np.uint64)
        np.bitwise_or.at(expected, targets, words)
        out = np.zeros((4, 1), dtype=np.uint64)
        scatter_or(out, targets, words, plan=plan)
        assert np.array_equal(out, expected)


# ----------------------------------------------------------------------
# Bookkeeping primitives vs naive formulations
# ----------------------------------------------------------------------
class TestBitPrimitives:
    @pytest.mark.parametrize("rows", [0, 5, 1 << 15])  # crosses uint16 path
    @pytest.mark.parametrize("group_size", [3, 64, 70])
    def test_per_bit_counts(self, rows, group_size):
        lanes = (group_size + 63) // 64
        rng = np.random.default_rng(rows + group_size)
        words = rng.integers(0, 2**63, size=(rows, lanes), dtype=np.uint64)
        mask = np.zeros(lanes * 64, dtype=np.uint64)
        mask[:group_size] = 1
        words &= np.packbits(
            mask.astype(np.uint8), bitorder="little"
        ).view(np.uint64)
        naive = unpack_lane_bits(words, group_size).astype(np.int64).sum(axis=0)
        if rows == 0:
            naive = np.zeros(group_size, dtype=np.int64)
        assert np.array_equal(per_bit_counts(words, group_size), naive)

    def test_per_bit_weighted(self):
        rng = np.random.default_rng(11)
        words = rng.integers(0, 2**63, size=(500, 1), dtype=np.uint64)
        weights = rng.integers(0, 1000, size=500)
        bits = unpack_lane_bits(words, 64).astype(np.int64)
        naive = (bits * weights[:, None]).sum(axis=0)
        assert np.array_equal(per_bit_weighted(words, weights, 64), naive)

    def test_round_major_probes_matches_loop(self):
        rng = np.random.default_rng(5)
        indices = rng.integers(0, 100, size=200)
        starts = np.sort(rng.integers(0, 150, size=20))
        caps = 200 - starts
        probes = np.minimum(rng.integers(0, 12, size=20), caps)
        expected_parts = []
        round_idx = 0
        while True:
            alive = np.flatnonzero(probes > round_idx)
            if alive.size == 0:
                break
            expected_parts.append(indices[starts[alive] + round_idx])
            round_idx += 1
        expected = (
            np.concatenate(expected_parts)
            if expected_parts
            else np.empty(0, dtype=indices.dtype)
        )
        assert np.array_equal(
            round_major_probes(indices, starts, probes), expected
        )


class TestLevelWorkspace:
    def test_snapshot_and_changed_match_full_copy(self):
        rng = np.random.default_rng(9)
        words = rng.integers(0, 2**63, size=(200, 2), dtype=np.uint64)
        workspace = LevelWorkspace(200, 2)
        workspace.begin_level()
        snapshot = words.copy()

        first = np.array([3, 7, 9])
        workspace.stash_rows(words, first)
        words[first] |= np.uint64(1 << 40)
        # Overlapping second stash keeps the pre-level values.
        second = np.array([7, 9, 11, 13])
        workspace.stash_rows(words, second)
        words[second] |= np.uint64(1 << 41)

        probe = rng.integers(0, 200, size=50)
        assert np.array_equal(
            workspace.snapshot_rows(words, probe), snapshot[probe]
        )

        changed, diff = workspace.changed(words)
        full_diff = words ^ snapshot
        expected_rows = np.flatnonzero(np.any(full_diff != 0, axis=1))
        assert np.array_equal(np.sort(changed), expected_rows)
        order = np.argsort(changed)
        assert np.array_equal(diff[order], full_diff[expected_rows])

    def test_single_lane_snapshot_fast_path(self):
        words = np.arange(50, dtype=np.uint64).reshape(50, 1)
        workspace = LevelWorkspace(50, 1)
        workspace.begin_level()
        rows = np.array([4, 9, 4, 30])
        out = workspace.snapshot_rows(words, rows)
        assert out.shape == (4, 1)
        assert np.array_equal(out.reshape(-1), [4, 9, 4, 30])
        workspace.stash_rows(words, np.array([9]))
        words[9] = 999
        assert np.array_equal(
            workspace.snapshot_rows(words, rows).reshape(-1), [4, 9, 4, 30]
        )
