"""Fault model: injection plans, tolerance budgets, crash recovery."""

import pytest

from repro.errors import (
    ExecutorError,
    ServiceError,
    TraversalError,
    WorkerCrashError,
    WorkerTimeoutError,
)
from repro.graph.generators import kronecker
from repro.core.engine import IBFS, IBFSConfig
from repro.exec import (
    ExecConfig,
    FaultLog,
    FaultPlan,
    FaultPolicy,
    GroupExecutor,
)
from repro.exec.shm import shared_memory_available

needs_shm = pytest.mark.skipif(
    not shared_memory_available(),
    reason="multiprocessing.shared_memory unavailable",
)


@pytest.fixture(scope="module")
def graph():
    return kronecker(scale=7, edge_factor=8, seed=9)


@pytest.fixture(scope="module")
def serial(graph):
    engine = IBFS(graph, IBFSConfig(group_size=8))
    return engine.run(list(range(32)), store_depths=True)


def assert_identical(a, b):
    import numpy as np

    assert a.counters.__dict__ == b.counters.__dict__
    assert a.seconds == b.seconds
    assert [g.__dict__ for g in a.groups] == [g.__dict__ for g in b.groups]
    assert np.array_equal(a.depths, b.depths)


class TestFaultPlan:
    def test_error_injection_raises(self):
        plan = FaultPlan(error={2: 1})
        plan.apply(2, attempt=1)  # beyond the faulted window: no-op
        with pytest.raises(TraversalError, match="injected fault"):
            plan.apply(2, attempt=0)

    def test_untargeted_task_unaffected(self):
        FaultPlan(error={2: 1}).apply(3, attempt=0)

    def test_empty_property(self):
        assert FaultPlan().empty
        assert not FaultPlan(crash={0: 1}).empty


class TestFaultPolicy:
    def test_exhaustion_boundary(self):
        policy = FaultPolicy(max_retries=2)
        assert not policy.exhausted(2)
        assert not policy.exhausted(policy.max_retries + 1 - 1)
        assert policy.exhausted(3)

    def test_validation(self):
        with pytest.raises(ExecutorError):
            FaultPolicy(max_retries=-1)
        with pytest.raises(ExecutorError):
            FaultPolicy(task_timeout=0.0)
        with pytest.raises(ExecutorError):
            FaultPolicy(respawn_limit=-1)

    def test_error_taxonomy(self):
        # Executor failures are service errors: one except clause covers
        # the serving layer's and the executor's failure surface.
        assert issubclass(ExecutorError, ServiceError)
        assert issubclass(WorkerCrashError, ExecutorError)
        assert issubclass(WorkerTimeoutError, ExecutorError)


class TestFaultLog:
    def test_counts_and_summary(self):
        log = FaultLog()
        log.record("crash", task_id=1, worker_id=0)
        log.record("retry", task_id=1)
        log.record("retry", task_id=2)
        assert log.count("retry") == 2
        assert log.summary() == {"crash": 1, "retry": 2}


@needs_shm
class TestCrashRecovery:
    def test_crash_retried_and_identical(self, graph, serial):
        with GroupExecutor(
            graph,
            IBFSConfig(group_size=8),
            exec_config=ExecConfig(
                num_workers=2,
                fault_plan=FaultPlan(crash={1: 1}),
            ),
        ) as executor:
            result = executor.run(list(range(32)), store_depths=True)
            stats = executor.last_stats
        assert_identical(result, serial)
        assert stats.crashes == 1
        assert stats.retries == 1
        assert stats.respawns == 1

    def test_error_injection_retried(self, graph, serial):
        with GroupExecutor(
            graph,
            IBFSConfig(group_size=8),
            exec_config=ExecConfig(
                num_workers=2,
                fault_plan=FaultPlan(error={0: 1, 2: 1}),
            ),
        ) as executor:
            result = executor.run(list(range(32)), store_depths=True)
            stats = executor.last_stats
        assert_identical(result, serial)
        assert stats.task_errors == 2
        assert stats.retries == 2

    def test_hang_detected_by_watchdog(self, graph, serial):
        with GroupExecutor(
            graph,
            IBFSConfig(group_size=8),
            exec_config=ExecConfig(
                num_workers=2,
                fault_plan=FaultPlan(hang={1: 1}, hang_seconds=30.0),
                faults=FaultPolicy(task_timeout=0.5),
            ),
        ) as executor:
            result = executor.run(list(range(32)), store_depths=True)
            stats = executor.last_stats
        assert_identical(result, serial)
        assert stats.timeouts == 1

    def test_retry_exhaustion_raises_crash_error(self, graph):
        with GroupExecutor(
            graph,
            IBFSConfig(group_size=8),
            exec_config=ExecConfig(
                num_workers=2,
                fault_plan=FaultPlan(crash={0: 99}),
                faults=FaultPolicy(max_retries=1, respawn_limit=8),
            ),
        ) as executor:
            with pytest.raises(WorkerCrashError):
                executor.run(list(range(32)))

    def test_fail_fast_aborts_on_first_error(self, graph):
        with GroupExecutor(
            graph,
            IBFSConfig(group_size=8),
            exec_config=ExecConfig(
                num_workers=2,
                fault_plan=FaultPlan(error={0: 1}),
                faults=FaultPolicy(fail_fast=True),
            ),
        ) as executor:
            with pytest.raises(ExecutorError):
                executor.run(list(range(32)))

    def test_pool_loss_degrades_to_inprocess(self, graph, serial):
        # Every attempt of every task crashes and the respawn budget is
        # tiny: the pool dies, yet the run completes correctly in-process.
        with GroupExecutor(
            graph,
            IBFSConfig(group_size=8),
            exec_config=ExecConfig(
                num_workers=2,
                fault_plan=FaultPlan(crash={t: 99 for t in range(8)}),
                faults=FaultPolicy(max_retries=99, respawn_limit=2),
            ),
        ) as executor:
            result = executor.run(list(range(32)), store_depths=True)
            stats = executor.last_stats
        assert_identical(result, serial)
        assert stats.degraded
        assert stats.respawns == 2
