"""Oracle BFS sanity: hand-checked depth arrays."""

import pytest

from repro.errors import TraversalError
from repro.graph.builders import from_edges
from repro.graph.generators import complete, path, star
from repro.bfs.reference import reference_bfs, reference_bfs_multi


def test_path_depths():
    g = path(5)
    assert reference_bfs(g, 0).tolist() == [0, 1, 2, 3, 4]
    assert reference_bfs(g, 2).tolist() == [2, 1, 0, 1, 2]


def test_star_depths():
    g = star(4)  # hub 0
    assert reference_bfs(g, 0).tolist() == [0, 1, 1, 1, 1]
    assert reference_bfs(g, 1).tolist() == [1, 0, 2, 2, 2]


def test_complete_depths():
    g = complete(4)
    assert reference_bfs(g, 3).tolist() == [1, 1, 1, 0]


def test_unreachable_marked_minus_one():
    g = from_edges([(0, 1)], num_vertices=4)
    assert reference_bfs(g, 0).tolist() == [0, 1, -1, -1]


def test_directed_edges_not_followed_backwards():
    g = from_edges([(0, 1), (1, 2)], num_vertices=3)
    assert reference_bfs(g, 2).tolist() == [-1, -1, 0]


def test_self_loop_does_not_change_depths():
    g = from_edges([(0, 0), (0, 1)], num_vertices=2)
    assert reference_bfs(g, 0).tolist() == [0, 1]


def test_multi_edges_do_not_change_depths():
    g = from_edges([(0, 1), (0, 1), (1, 2)], num_vertices=3)
    assert reference_bfs(g, 0).tolist() == [0, 1, 2]


def test_source_out_of_range():
    g = path(3)
    with pytest.raises(TraversalError):
        reference_bfs(g, 3)
    with pytest.raises(TraversalError):
        reference_bfs(g, -1)


def test_multi_stacks_rows():
    g = path(4)
    depths = reference_bfs_multi(g, [0, 3])
    assert depths.shape == (2, 4)
    assert depths[0].tolist() == [0, 1, 2, 3]
    assert depths[1].tolist() == [3, 2, 1, 0]


def test_example_graph_from_figure_1():
    # The paper's running example: 9 vertices; BFS trees from figure 1(b).
    edges = [
        (0, 1), (0, 4), (1, 2), (1, 5), (2, 3), (2, 6), (3, 6), (4, 5),
        (5, 7), (6, 7), (7, 8), (4, 8),
    ]
    g = from_edges(edges, num_vertices=9, undirected=True)
    depths0 = reference_bfs(g, 0)
    assert depths0[0] == 0
    assert depths0[1] == 1 and depths0[4] == 1
    # All vertices reachable within a small depth.
    assert (depths0 >= 0).all()
    assert depths0.max() <= 4
