"""GroupExecutor: bit-identical determinism, merging, lifecycle."""

import numpy as np
import pytest

from repro.errors import ExecutorError, TraversalError
from repro.graph.generators import kronecker
from repro.gpusim.cluster import Cluster
from repro.core.distributed import DistributedIBFS
from repro.core.engine import IBFS, IBFSConfig
from repro.exec import (
    ExecConfig,
    FaultPlan,
    FaultPolicy,
    GroupExecutor,
    SCHEDULER_NAMES,
)
from repro.exec.shm import shared_memory_available

needs_shm = pytest.mark.skipif(
    not shared_memory_available(),
    reason="multiprocessing.shared_memory unavailable",
)

CONFIG = IBFSConfig(group_size=8)
SOURCES = list(range(0, 96, 2))


@pytest.fixture(scope="module")
def graph():
    return kronecker(scale=8, edge_factor=8, seed=17)


@pytest.fixture(scope="module")
def serial(graph):
    return IBFS(graph, CONFIG).run(SOURCES, store_depths=True)


def assert_identical(a, b):
    assert a.engine == b.engine
    assert a.sources == b.sources
    assert a.seconds == b.seconds
    assert a.counters.__dict__ == b.counters.__dict__
    assert [g.__dict__ for g in a.groups] == [g.__dict__ for g in b.groups]
    assert (a.depths is None) == (b.depths is None)
    if a.depths is not None:
        assert np.array_equal(a.depths, b.depths)
        assert a.depths.dtype == b.depths.dtype


@needs_shm
class TestDeterminism:
    """The tentpole contract: bit-identical to serial IBFS.run across
    every scheduler, worker count, and injected fault."""

    @pytest.mark.parametrize("scheduler", SCHEDULER_NAMES)
    @pytest.mark.parametrize("workers", [1, 2, 3])
    def test_identical_across_schedulers_and_pool_sizes(
        self, graph, serial, scheduler, workers
    ):
        with GroupExecutor(
            graph,
            CONFIG,
            exec_config=ExecConfig(num_workers=workers, scheduler=scheduler),
        ) as executor:
            result = executor.run(SOURCES, store_depths=True)
        assert_identical(result, serial)

    @pytest.mark.parametrize("scheduler", SCHEDULER_NAMES)
    def test_identical_through_faults(self, graph, serial, scheduler):
        with GroupExecutor(
            graph,
            CONFIG,
            exec_config=ExecConfig(
                num_workers=2,
                scheduler=scheduler,
                fault_plan=FaultPlan(crash={0: 1}, error={2: 1}),
            ),
        ) as executor:
            result = executor.run(SOURCES, store_depths=True)
            stats = executor.last_stats
        assert_identical(result, serial)
        assert stats.crashes == 1
        assert stats.task_errors == 1

    # The generic repeat-runs-match-serial loop lives in the shared
    # substrate matrix (tests/test_runtime_substrates.py) now, across
    # every registered substrate × planner × mutation.

    def test_inprocess_mode_identical(self, graph, serial):
        with GroupExecutor(
            graph, CONFIG, exec_config=ExecConfig(num_workers=0)
        ) as executor:
            result = executor.run(SOURCES, store_depths=True)
            assert executor.backend == "inprocess"
            assert executor.last_stats.backend == "inprocess"
        assert_identical(result, serial)

    def test_store_depths_false(self, graph, serial):
        with GroupExecutor(
            graph, CONFIG, exec_config=ExecConfig(num_workers=2)
        ) as executor:
            result = executor.run(SOURCES, store_depths=False)
        assert result.depths is None
        assert result.counters.__dict__ == serial.counters.__dict__

    def test_cluster_pricing_matches_serial(self, graph):
        cluster = Cluster(2)
        expected = IBFS(graph, CONFIG).run(
            SOURCES, store_depths=False, cluster=cluster
        )
        with GroupExecutor(
            graph, CONFIG, exec_config=ExecConfig(num_workers=2)
        ) as executor:
            result = executor.run(SOURCES, store_depths=False, cluster=cluster)
        assert result.seconds == expected.seconds


@needs_shm
class TestMapGroups:
    def test_map_groups_matches_run_group(self, graph):
        engine = IBFS(graph, CONFIG)
        specs = [([0, 1, 2], None), ([5, 9], 3), ([7], None)]
        with GroupExecutor(
            graph, CONFIG, exec_config=ExecConfig(num_workers=2)
        ) as executor:
            results = executor.map_groups(specs)
        for (group, max_depth), result in zip(specs, results):
            expected = engine.run_group(group, max_depth=max_depth)
            assert result.seconds == expected.seconds
            assert np.array_equal(result.depths, expected.depths)
            assert result.counters.__dict__ == expected.counters.__dict__

    def test_empty_specs(self, graph):
        with GroupExecutor(
            graph, CONFIG, exec_config=ExecConfig(num_workers=0)
        ) as executor:
            assert executor.map_groups([]) == []

    def test_invalid_group_fails_typed(self, graph):
        with GroupExecutor(
            graph, CONFIG, exec_config=ExecConfig(num_workers=0)
        ) as executor:
            with pytest.raises(TraversalError):
                executor.map_groups([([0, 0], None)])
            with pytest.raises(TraversalError):
                executor.map_groups([([graph.num_vertices + 5], None)])
            with pytest.raises(TraversalError):
                executor.map_groups([([], None)])

    def test_return_errors_collects_per_group(self, graph):
        with GroupExecutor(
            graph,
            CONFIG,
            exec_config=ExecConfig(
                num_workers=2,
                fault_plan=FaultPlan(error={1: 99}),
                faults=FaultPolicy(max_retries=1),
            ),
        ) as executor:
            results = executor.map_groups(
                [([0], None), ([1], None), ([2], None)], return_errors=True
            )
        assert not isinstance(results[0], Exception)
        assert isinstance(results[1], ExecutorError)
        assert not isinstance(results[2], Exception)


class TestLifecycle:
    def test_no_sources_rejected(self, graph):
        with GroupExecutor(
            graph, CONFIG, exec_config=ExecConfig(num_workers=0)
        ) as executor:
            with pytest.raises(TraversalError):
                executor.run([])

    def test_closed_executor_rejects_runs(self, graph):
        executor = GroupExecutor(
            graph, CONFIG, exec_config=ExecConfig(num_workers=0)
        )
        executor.close()
        with pytest.raises(ExecutorError, match="closed"):
            executor.run([0])

    def test_close_idempotent(self, graph):
        executor = GroupExecutor(
            graph, CONFIG, exec_config=ExecConfig(num_workers=0)
        )
        executor.close()
        executor.close()

    def test_negative_workers_rejected(self):
        with pytest.raises(ExecutorError):
            ExecConfig(num_workers=-1)

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ExecutorError, match="unknown scheduler"):
            ExecConfig(scheduler="fifo")

    @needs_shm
    def test_shared_segments_released_on_close(self, graph):
        from repro.exec.shm import published_refcount

        executor = GroupExecutor(
            graph, CONFIG, exec_config=ExecConfig(num_workers=1)
        )
        executor.run(SOURCES[:8], store_depths=False)
        assert published_refcount(graph) == 1
        executor.close()
        assert published_refcount(graph) == 0


@needs_shm
class TestDistributedProcessBackend:
    def test_process_backend_matches_sim(self, graph):
        sources = SOURCES[:32]
        sim = DistributedIBFS(graph, num_devices=2, config=CONFIG)
        expected = sim.run(sources, store_depths=True)
        with DistributedIBFS(
            graph, num_devices=2, config=CONFIG, backend="process"
        ) as dist:
            result = dist.run(sources, store_depths=True)
        assert result.backend == "process"
        assert result.wall_seconds > 0
        assert result.exec_stats is not None
        assert result.makespan == expected.makespan
        assert np.array_equal(result.assignment, expected.assignment)
        assert_identical(result.local, expected.local)

    def test_unknown_backend_rejected(self, graph):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError, match="unknown backend"):
            DistributedIBFS(graph, num_devices=2, backend="threads")
