"""Bitwise status array: lane math, bit ops, masks."""

import numpy as np
import pytest

from repro.errors import TraversalError
from repro.core.status_array import (
    ALL_ONES,
    BitwiseStatusArray,
    full_mask,
    instance_masks,
    lanes_for,
)


class TestLanes:
    @pytest.mark.parametrize(
        "group,expected", [(1, 1), (64, 1), (65, 2), (128, 2), (129, 3)]
    )
    def test_lanes_for(self, group, expected):
        assert lanes_for(group) == expected

    def test_non_positive_rejected(self):
        with pytest.raises(TraversalError):
            lanes_for(0)


class TestMasks:
    def test_instance_masks_single_lane(self):
        masks = instance_masks(4)
        assert masks.shape == (4, 1)
        assert masks[:, 0].tolist() == [1, 2, 4, 8]

    def test_instance_masks_multi_lane(self):
        masks = instance_masks(70)
        assert masks.shape == (70, 2)
        assert masks[63, 0] == np.uint64(1) << np.uint64(63)
        assert masks[64, 0] == 0
        assert masks[64, 1] == 1

    def test_full_mask_exact_64(self):
        assert full_mask(64).tolist() == [ALL_ONES]

    def test_full_mask_partial(self):
        assert full_mask(3).tolist() == [0b111]

    def test_full_mask_multi_lane(self):
        mask = full_mask(66)
        assert mask[0] == ALL_ONES
        assert mask[1] == 0b11


class TestBitwiseStatusArray:
    def test_set_and_test(self):
        bsa = BitwiseStatusArray(num_vertices=5, group_size=10)
        assert not bsa.test_bit(2, 7)
        bsa.set_bit(2, 7)
        assert bsa.test_bit(2, 7)
        assert not bsa.test_bit(2, 6)
        assert not bsa.test_bit(3, 7)

    def test_multi_lane_bits(self):
        bsa = BitwiseStatusArray(num_vertices=3, group_size=100)
        bsa.set_bit(1, 99)
        assert bsa.test_bit(1, 99)
        assert bsa.words[1, 1] == np.uint64(1) << np.uint64(99 - 64)

    def test_instance_out_of_range(self):
        bsa = BitwiseStatusArray(2, 4)
        with pytest.raises(TraversalError):
            bsa.set_bit(0, 4)

    def test_visited_matrix(self):
        bsa = BitwiseStatusArray(3, 2)
        bsa.set_bit(0, 0)
        bsa.set_bit(2, 1)
        matrix = bsa.visited_matrix()
        assert matrix.tolist() == [[True, False, False], [False, False, True]]

    def test_bytes_per_vertex(self):
        assert BitwiseStatusArray(1, 64).bytes_per_vertex == 8
        assert BitwiseStatusArray(1, 65).bytes_per_vertex == 16

    def test_is_full(self):
        bsa = BitwiseStatusArray(2, 2)
        bsa.set_bit(0, 0)
        bsa.set_bit(0, 1)
        assert bsa.is_full().tolist() == [True, False]

    def test_snapshot_is_independent(self):
        bsa = BitwiseStatusArray(2, 2)
        snap = bsa.snapshot()
        bsa.set_bit(0, 0)
        assert snap[0, 0] == 0
