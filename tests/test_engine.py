"""IBFS orchestrator: configuration, grouping, capacity, aggregation."""

import numpy as np
import pytest

from repro.errors import TraversalError
from repro.graph.generators import kronecker
from repro.gpusim.cluster import Cluster
from repro.gpusim.config import KEPLER_K40
from repro.gpusim.device import Device
from repro.bfs.reference import reference_bfs_multi
from repro.core.engine import IBFS, IBFSConfig


@pytest.fixture(scope="module")
def kron():
    return kronecker(scale=8, edge_factor=8, seed=11)


class TestConfig:
    def test_defaults(self):
        config = IBFSConfig()
        assert config.group_size == 128
        assert config.mode == "bitwise"
        assert config.groupby

    def test_invalid_mode(self):
        with pytest.raises(TraversalError):
            IBFSConfig(mode="quantum")

    def test_invalid_group_size(self):
        with pytest.raises(TraversalError):
            IBFSConfig(group_size=0)

    def test_engine_name_reflects_config(self, kron):
        assert IBFS(kron).name == "ibfs-bitwise+groupby"
        assert (
            IBFS(kron, IBFSConfig(mode="joint", groupby=False)).name
            == "ibfs-joint+random"
        )


class TestGrouping:
    def test_make_groups_partitions(self, kron):
        engine = IBFS(kron, IBFSConfig(group_size=16))
        sources = list(range(50))
        groups = engine.make_groups(sources)
        assert sorted(s for g in groups for s in g) == sources
        assert all(len(g) <= 16 for g in groups)

    def test_effective_group_size_clamped_by_memory(self, kron):
        budget = kron.memory_bytes() + kron.num_vertices * 8 + kron.num_vertices * 4
        tight = Device(KEPLER_K40.with_memory(budget))
        engine = IBFS(kron, IBFSConfig(group_size=128, mode="joint"), device=tight)
        assert engine.effective_group_size() < 128

    def test_no_capacity_raises(self, kron):
        tiny = Device(KEPLER_K40.with_memory(kron.memory_bytes()))
        engine = IBFS(kron, device=tiny)
        with pytest.raises(TraversalError):
            engine.effective_group_size()


class TestRun:
    def test_depths_match_reference(self, kron):
        sources = [0, 9, 100, 40, 77]
        result = IBFS(kron, IBFSConfig(group_size=4)).run(sources)
        assert np.array_equal(result.depths, reference_bfs_multi(kron, sources))

    def test_row_order_matches_sources(self, kron):
        sources = [100, 0, 55]
        result = IBFS(kron, IBFSConfig(group_size=2)).run(sources)
        for s in sources:
            assert result.depth(s, s) == 0

    def test_empty_sources_rejected(self, kron):
        with pytest.raises(TraversalError):
            IBFS(kron).run([])

    def test_seconds_is_sum_of_groups(self, kron):
        result = IBFS(kron, IBFSConfig(group_size=8)).run(list(range(32)))
        assert result.seconds == pytest.approx(sum(result.group_times()))

    def test_cluster_uses_makespan(self, kron):
        engine = IBFS(kron, IBFSConfig(group_size=8))
        sources = list(range(64))
        serial = engine.run(sources, store_depths=False)
        clustered = engine.run(
            sources, store_depths=False, cluster=Cluster(4)
        )
        assert clustered.seconds < serial.seconds
        assert clustered.seconds >= serial.seconds / 4

    def test_run_all_covers_every_vertex(self):
        small = kronecker(scale=5, edge_factor=4, seed=12)
        result = IBFS(small, IBFSConfig(group_size=16)).run_all(store_depths=True)
        assert result.num_instances == small.num_vertices
        assert np.array_equal(
            result.depths,
            reference_bfs_multi(small, range(small.num_vertices)),
        )

    def test_store_depths_false(self, kron):
        result = IBFS(kron).run(range(16), store_depths=False)
        assert result.depths is None
        assert result.teps > 0
