"""Unit tests of the compiled kernel backend (:mod:`repro.native`).

Covers provider resolution (env gates, forcing, fallback warnings),
op-level bit-identity of every native primitive against its numpy
formulation for each loadable provider, warm-up/capability reporting,
and the bookkeeping edge cases (zero-width frontiers, group sizes not
a multiple of 8, single-lane flat inputs) on both the numpy and native
paths.
"""

import warnings

import numpy as np
import pytest

import repro.native as native
from repro.graph.generators import rmat
from repro.kernels import (
    bucketed_hit_scan,
    bucketed_or_scan,
    per_bit_counts,
    per_bit_weighted,
    round_major_probes,
    scatter_or,
    scatter_plan,
)

RNG = np.random.default_rng(11)


def _loadable_providers():
    names = ["python"]
    for name in ("cext", "numba"):
        try:
            native._load_backend(name)
        except ImportError:
            continue
        names.append(name)
    return names


PROVIDERS = _loadable_providers()


@pytest.fixture(params=PROVIDERS)
def provider(request):
    with native.force_backend(request.param):
        yield request.param


# ----------------------------------------------------------------------
# Resolution, gating, and reporting
# ----------------------------------------------------------------------
class TestResolution:
    def test_python_provider_always_loads(self):
        with native.force_backend("python"):
            assert native.available()
            assert native.backend_name() == "python"

    def test_off_disables_everything(self):
        with native.force_backend("off"):
            assert not native.available()
            assert native.backend_name() is None
            assert not native.effective("auto")
            assert native.resolve_kernel("auto", 1) == "flat"
            assert native.resolve_kernel("auto", 2) == "generic"
            assert "force_backend" in native.disabled_reason()

    def test_env_escape_hatch(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE", "0")
        native.refresh()
        try:
            assert not native.available()
            assert "REPRO_NATIVE" in (native.disabled_reason() or "")
        finally:
            monkeypatch.delenv("REPRO_NATIVE")
            native.refresh()

    def test_env_backend_forcing(self, monkeypatch):
        # The kill switch would override the backend selector (e.g. in
        # the no-native CI lane); this test is about the selector.
        monkeypatch.delenv("REPRO_NATIVE", raising=False)
        monkeypatch.setenv("REPRO_NATIVE_BACKEND", "python")
        native.refresh()
        try:
            assert native.backend_name() == "python"
        finally:
            monkeypatch.delenv("REPRO_NATIVE_BACKEND")
            native.refresh()

    def test_force_backend_rejects_unknown(self):
        with pytest.raises(ValueError):
            with native.force_backend("fortran"):
                pass

    def test_effective_variants(self, provider):
        assert native.effective("auto")
        assert native.effective("native")
        assert not native.effective("flat")
        assert not native.effective("generic")
        assert native.resolve_kernel("auto", 1) == "native"

    def test_explicit_native_falls_back_with_one_warning(self):
        with native.force_backend("off"):
            native.refresh()
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                assert not native.effective("native")
                assert not native.effective("native")
            fallback = [
                w for w in caught if "falling back" in str(w.message)
            ]
            assert len(fallback) == 1
        native.refresh()

    def test_cext_lane_limit(self):
        if "cext" not in PROVIDERS:
            pytest.skip("no C compiler on this host")
        with native.force_backend("cext"):
            assert native.effective("auto", lanes=64)
            assert not native.effective("auto", lanes=65)
            assert native.resolve_kernel("auto", 65) == "generic"

    def test_warmup_and_capability_report(self, provider):
        seconds = native.warmup()
        assert seconds >= 0.0
        report = native.capability_report()
        assert report["enabled"] is True
        assert report["backend"] == provider
        assert report["auto_kernel"] == "native"

    def test_capability_report_when_off(self):
        with native.force_backend("off"):
            report = native.capability_report()
        assert report["enabled"] is False
        assert report["backend"] is None
        assert report["reason"]


# ----------------------------------------------------------------------
# Op-level bit-identity against the numpy kernels
# ----------------------------------------------------------------------
def _random_csr(num_positions, num_vertices, max_degree):
    degrees = RNG.integers(0, max_degree + 1, size=num_positions)
    starts = np.zeros(num_positions, dtype=np.int64)
    np.cumsum(degrees[:-1], out=starts[1:])
    indices = RNG.integers(
        0, num_vertices, size=int(degrees.sum()), dtype=np.int64
    )
    return indices, starts, starts + degrees


class TestOps:
    def test_unique_targets(self, provider):
        targets = RNG.integers(0, 500, size=3000, dtype=np.int64)
        expected = np.unique(targets)
        got = native.unique_targets(targets, 500)
        np.testing.assert_array_equal(got, expected)
        # The cached flag buffer must come back zeroed.
        again = native.unique_targets(targets[:7], 500)
        np.testing.assert_array_equal(again, np.unique(targets[:7]))

    @pytest.mark.parametrize("lanes", [1, 2])
    def test_scatter_or_matches_kernel(self, provider, lanes):
        n = 200
        targets = RNG.integers(0, n, size=900, dtype=np.int64)
        words = RNG.integers(
            0, 2**63, size=(900, lanes), dtype=np.uint64
        )
        expected = np.zeros((n, lanes), dtype=np.uint64)
        plan = scatter_plan(targets)
        scatter_or(expected, targets, words, plan)
        got = np.zeros((n, lanes), dtype=np.uint64)
        native.scatter_or(got, targets, words)
        np.testing.assert_array_equal(got, expected)

    @pytest.mark.parametrize("lanes", [1, 2])
    def test_scatter_or_repeats_matches_np_repeat(self, provider, lanes):
        n = 150
        num_rows = 40
        repeats = RNG.integers(0, 8, size=num_rows).astype(np.int64)
        total = int(repeats.sum())
        targets = RNG.integers(0, n, size=total, dtype=np.int64)
        words = RNG.integers(
            0, 2**63, size=(num_rows, lanes), dtype=np.uint64
        )
        word_index = np.repeat(
            np.arange(num_rows, dtype=np.int64), repeats
        )
        expected = np.zeros((n, lanes), dtype=np.uint64)
        plan = scatter_plan(targets)
        scatter_or(expected, targets, words, plan, word_index)
        got = np.zeros((n, lanes), dtype=np.uint64)
        native.scatter_or(got, targets, words, repeats=repeats)
        np.testing.assert_array_equal(got, expected)

    @pytest.mark.parametrize("lanes", [1, 2])
    @pytest.mark.parametrize("early_termination", [False, True])
    @pytest.mark.parametrize("dirty", [False, True])
    def test_or_scan_matches_bucketed_or_scan(
        self, provider, lanes, early_termination, dirty
    ):
        n = 120
        group_size = lanes * 64 - 3
        indices, starts, ends = _random_csr(80, n, 9)
        base = RNG.integers(0, 2**63, size=(n, lanes), dtype=np.uint64)
        lane_mask = np.full(lanes, np.uint64(2**64 - 1), dtype=np.uint64)
        lane_mask[-1] = np.uint64((1 << (group_size - (lanes - 1) * 64)) - 1)
        vertices = RNG.choice(n, size=80, replace=False)
        state = base[vertices] & lane_mask
        if dirty:
            dirty_pos = np.full(n, -1, dtype=np.int64)
            dirty_vertices = RNG.choice(n, size=30, replace=False)
            saved = RNG.integers(
                0, 2**63, size=(30, lanes), dtype=np.uint64
            )
            dirty_pos[dirty_vertices] = np.arange(30)
            source = ("dirty", base, dirty_pos, saved)

            def fetch(rows):
                out = base[rows].copy()
                hit = dirty_pos[rows] >= 0
                out[hit] = saved[dirty_pos[rows][hit]]
                return out
        else:
            source = ("direct", base)

            def fetch(rows):
                return base[rows].copy()

        insp_a = np.zeros(group_size, dtype=np.int64)
        with native.force_backend("off"):
            probes_a, acc_a, done_a, stream_a = bucketed_or_scan(
                indices, starts, ends, state.copy(), lane_mask,
                lane_mask, early_termination, fetch, insp_a,
                kernel="generic",
            )
        insp_b = np.zeros(group_size, dtype=np.int64)
        probes_b, acc_b, done_b = native.or_scan(
            indices, starts, ends, state.copy(), lane_mask, lane_mask,
            early_termination, source, insp_b,
        )
        np.testing.assert_array_equal(probes_b, probes_a)
        np.testing.assert_array_equal(acc_b, acc_a)
        np.testing.assert_array_equal(done_b, done_a)
        np.testing.assert_array_equal(insp_b, insp_a)
        if stream_a is not None:
            np.testing.assert_array_equal(
                native.round_major_probes(indices, starts, probes_b),
                stream_a,
            )

    def test_or_scan_dirty_swap_restores_live_array(self, provider):
        # The 5-tuple dirty source (with the aligned row list) is
        # bulk-swapped into the live array around the scan; results
        # must match the per-probe dirty_pos form and the live array
        # must come back untouched.
        n = 90
        indices, starts, ends = _random_csr(50, n, 7)
        base = RNG.integers(0, 2**63, size=(n, 1), dtype=np.uint64)
        snapshot = base.copy()
        lane_mask = np.full(1, np.uint64(2**64 - 1), dtype=np.uint64)
        dirty_rows = np.sort(
            RNG.choice(n, size=20, replace=False)
        ).astype(np.int64)
        saved = RNG.integers(0, 2**63, size=(20, 1), dtype=np.uint64)
        dirty_pos = np.full(n, -1, dtype=np.int64)
        dirty_pos[dirty_rows] = np.arange(20)
        vertices = RNG.choice(n, size=50, replace=False)
        state = base[vertices] & lane_mask

        results = []
        for source in (
            ("dirty", base, dirty_pos, saved),
            ("dirty", base, dirty_pos, saved, dirty_rows),
        ):
            insp = np.zeros(64, dtype=np.int64)
            results.append(
                native.or_scan(
                    indices, starts, ends, state.copy(), lane_mask,
                    lane_mask, True, source, insp,
                )
                + (insp,)
            )
            np.testing.assert_array_equal(base, snapshot)
        for a, b in zip(results[0], results[1]):
            np.testing.assert_array_equal(a, b)

    def test_round_major_matches_argsort_formulation(self, provider):
        indices, starts, ends = _random_csr(60, 300, 12)
        probes = RNG.integers(0, 13, size=60).astype(np.int64)
        probes = np.minimum(probes, ends - starts)
        with native.force_backend("off"):
            expected = round_major_probes(indices, starts, probes)
        got = native.round_major_probes(indices, starts, probes)
        np.testing.assert_array_equal(got, expected)

    @pytest.mark.parametrize("size", [1, 31, 32, 33, 1000])
    @pytest.mark.parametrize("element_bytes", [8, 12])
    def test_coalesced_transactions_matches_memory_model(
        self, provider, size, element_bytes
    ):
        from repro.gpusim.config import KEPLER_K40
        from repro.gpusim.memory import MemoryModel

        mem = MemoryModel(KEPLER_K40)
        indices = RNG.integers(0, 4000, size=size).astype(np.int64)
        with native.force_backend("off"):
            expected = mem.coalesced_transactions(indices, element_bytes)
        got = native.coalesced_transactions(
            indices,
            element_bytes,
            mem.config.transaction_bytes,
            mem.config.warp_size,
        )
        assert got == expected

    def test_bottom_up_coalesced_matches_stream_pricing(self, provider):
        from repro.gpusim.config import KEPLER_K40
        from repro.gpusim.memory import MemoryModel

        mem = MemoryModel(KEPLER_K40)
        indices, starts, ends = _random_csr(120, 700, 40)
        probes = np.minimum(
            RNG.integers(0, 41, size=120).astype(np.int64), ends - starts
        )
        with native.force_backend("off"):
            stream = round_major_probes(indices, starts, probes)
            expected = mem.coalesced_transactions(stream, 8)
        got = native.bottom_up_coalesced(
            indices, starts, probes, 8,
            mem.config.transaction_bytes, mem.config.warp_size,
        )
        assert got == expected
        # CPU model: one transaction per probe.
        assert native.bottom_up_coalesced(
            indices, starts, probes, 8, mem.config.transaction_bytes, 1
        ) == (int(probes.sum()), int(probes.sum()))
        zero = np.zeros_like(probes)
        assert native.bottom_up_coalesced(
            indices, starts, zero, 8, mem.config.transaction_bytes, 32
        ) == (0, 0)

    @pytest.mark.parametrize("dtype", [np.int8, np.int16, np.int32])
    @pytest.mark.parametrize("group_size", [1, 7, 64, 100])
    def test_depth_update_matches_unpack_formulation(
        self, provider, dtype, group_size
    ):
        from repro.kernels.bookkeeping import unpack_lane_bits

        lanes = -(-group_size // 64)
        depths = RNG.integers(-1, 5, size=(60, group_size)).astype(dtype)
        rows = np.sort(
            RNG.choice(60, size=25, replace=False)
        ).astype(np.int64)
        diff = RNG.integers(
            0, 2**63, size=(25, lanes), dtype=np.uint64
        )
        if group_size % 64:
            diff[:, -1] &= (
                np.uint64(1) << np.uint64(group_size % 64)
            ) - np.uint64(1)
        expected = depths.copy()
        upd = unpack_lane_bits(diff, group_size).astype(expected.dtype)
        upd *= expected.dtype.type(5)
        expected[rows] += upd
        got = depths.copy()
        native.depth_update(got, rows, diff, 5)
        np.testing.assert_array_equal(got, expected)

    @pytest.mark.parametrize("dtype", [np.int8, np.int16, np.int32])
    def test_materialize_depths_matches_transpose(self, provider, dtype):
        for n, gs in ((1, 1), (65, 3), (513, 64)):
            src = RNG.integers(-1, 90, size=(n, gs)).astype(dtype)
            expected = np.ascontiguousarray(src.T, dtype=np.int32)
            got = native.materialize_depths(src)
            assert got.dtype == np.int32
            np.testing.assert_array_equal(got, expected)

    @pytest.mark.parametrize("use_inst", [False, True])
    def test_hit_scan_depth_matches_bucketed_hit_scan(
        self, provider, use_inst
    ):
        n = 140
        indices, starts, ends = _random_csr(70, n, 10)
        degrees = ends - starts
        level = 2
        if use_inst:
            depths = RNG.integers(-1, 5, size=(3, n)).astype(np.int32)
            inst = RNG.integers(0, 3, size=70).astype(np.int64)

            def hit(positions, nb):
                d = depths[inst[positions], nb]
                return (d >= 0) & (d <= level)
        else:
            depths = RNG.integers(-1, 5, size=n).astype(np.int32)
            inst = None

            def hit(positions, nb):
                d = depths[nb]
                return (d >= 0) & (d <= level)

        with native.force_backend("off"):
            probes_a, found_a = bucketed_hit_scan(
                indices, starts, degrees, hit
            )
        probes_b, found_b = native.hit_scan_depth(
            indices, starts, degrees, depths, level, inst=inst
        )
        np.testing.assert_array_equal(probes_b, probes_a)
        np.testing.assert_array_equal(found_b, found_a)

    @pytest.mark.parametrize("lanes", [1, 2])
    def test_per_bit_ops_match_numpy(self, provider, lanes):
        group_size = lanes * 64 - 5
        words = RNG.integers(
            0, 2**63, size=(90, lanes), dtype=np.uint64
        )
        mask = np.full(lanes, np.uint64(2**64 - 1), dtype=np.uint64)
        mask[-1] = np.uint64((1 << (group_size - (lanes - 1) * 64)) - 1)
        words &= mask
        weights = RNG.integers(0, 1000, size=90).astype(np.int64)
        with native.force_backend("off"):
            counts_np = per_bit_counts(words, group_size)
            weighted_np = per_bit_weighted(words, weights, group_size)
        np.testing.assert_array_equal(
            native.per_bit_counts(words, group_size), counts_np
        )
        np.testing.assert_array_equal(
            native.per_bit_weighted(words, weights, group_size),
            weighted_np,
        )


# ----------------------------------------------------------------------
# Bookkeeping edge cases, both numpy and native paths
# ----------------------------------------------------------------------
BOOKKEEPING_BACKENDS = ["numpy"] + PROVIDERS


@pytest.fixture(params=BOOKKEEPING_BACKENDS)
def bookkeeping_kernel(request):
    """(kernel kwarg, context) pairs: numpy keeps kernel=None."""
    if request.param == "numpy":
        with native.force_backend("off"):
            yield None
    else:
        with native.force_backend(request.param):
            yield "native"


class TestBookkeepingEdgeCases:
    def test_zero_width_frontier(self, bookkeeping_kernel):
        words = np.empty((0, 2), dtype=np.uint64)
        counts = per_bit_counts(words, 70, kernel=bookkeeping_kernel)
        np.testing.assert_array_equal(counts, np.zeros(70, dtype=np.int64))
        weighted = per_bit_weighted(
            words, np.empty(0, dtype=np.int64), 70,
            kernel=bookkeeping_kernel,
        )
        np.testing.assert_array_equal(weighted, np.zeros(70, dtype=np.int64))

    @pytest.mark.parametrize("group_size", [1, 7, 13, 61, 127])
    def test_group_size_not_multiple_of_eight(
        self, bookkeeping_kernel, group_size
    ):
        lanes = (group_size + 63) // 64
        words = RNG.integers(
            0, 2**63, size=(50, lanes), dtype=np.uint64
        )
        mask = np.full(lanes, np.uint64(2**64 - 1), dtype=np.uint64)
        mask[-1] = np.uint64(
            (1 << (group_size - (lanes - 1) * 64)) - 1
        )
        words &= mask
        weights = RNG.integers(0, 40, size=50).astype(np.int64)
        bits = np.unpackbits(
            words.view(np.uint8).reshape(50, -1), axis=1,
            bitorder="little",
        )[:, :group_size].astype(np.int64)
        counts = per_bit_counts(
            words, group_size, kernel=bookkeeping_kernel
        )
        np.testing.assert_array_equal(counts, bits.sum(axis=0))
        weighted = per_bit_weighted(
            words, weights, group_size, kernel=bookkeeping_kernel
        )
        np.testing.assert_array_equal(weighted, weights @ bits)

    def test_single_lane_flat_input(self, bookkeeping_kernel):
        # 1-D words (the flat single-lane layout) must behave exactly
        # like their (rows, 1) view.
        words = RNG.integers(0, 2**63, size=40, dtype=np.uint64)
        counts_flat = per_bit_counts(words, 64, kernel=bookkeeping_kernel)
        counts_2d = per_bit_counts(
            words[:, None], 64, kernel=bookkeeping_kernel
        )
        np.testing.assert_array_equal(counts_flat, counts_2d)
        weights = RNG.integers(0, 9, size=40).astype(np.int64)
        np.testing.assert_array_equal(
            per_bit_weighted(words, weights, 64, kernel=bookkeeping_kernel),
            per_bit_weighted(
                words[:, None], weights, 64, kernel=bookkeeping_kernel
            ),
        )


# ----------------------------------------------------------------------
# Warm-up smoke on a real graph shape
# ----------------------------------------------------------------------
def test_warmup_is_idempotent_and_cheap_to_repeat(provider):
    first = native.warmup()
    second = native.warmup()
    assert first == second  # cached seconds, not re-run


def test_graph_scale_smoke(provider):
    # One realistic CSR through every op, guarding shape/dtype plumbing.
    graph = rmat(8, edge_factor=4, seed=5)
    rev = graph.reverse()
    frontier = np.arange(0, graph.num_vertices, 3, dtype=np.int64)
    starts = rev.row_offsets[frontier]
    ends = rev.row_offsets[frontier + 1]
    bsa = np.zeros((graph.num_vertices, 1), dtype=np.uint64)
    bsa[::2, 0] = np.uint64(0xFF)
    lane_mask = np.array([0xFF], dtype=np.uint64)
    insp = np.zeros(8, dtype=np.int64)
    probes, acc, done = native.or_scan(
        rev.col_indices.astype(np.int64), starts, ends,
        (bsa[frontier] & lane_mask), lane_mask, lane_mask, True,
        ("direct", bsa), insp,
    )
    assert probes.shape == frontier.shape
    assert acc.dtype == np.uint64
    assert done.dtype == bool
