"""Epoch store lifecycle and the frozen-snapshot immutability contract."""

import numpy as np
import pytest

from repro.errors import StreamError
from repro.graph.builders import from_edge_arrays
from repro.graph.csr import VERTEX_DTYPE
from repro.graph.generators import kronecker
from repro.service.cache import graph_cache_id
from repro.stream import EpochStore


def small_graph(seed=3):
    return kronecker(scale=6, edge_factor=4, seed=seed)


class TestEpochLifecycle:
    def test_epoch_zero_is_the_base(self):
        base = small_graph()
        with EpochStore(base) as store:
            assert store.current_epoch == 0
            assert store.current.graph is base
            assert store.live_epochs() == [0]

    def test_publish_advances_epoch_and_reclaims_old(self):
        with EpochStore(small_graph()) as store:
            store.overlay.insert_edges([0], [1])
            snap = store.publish()
            assert snap.epoch == 1
            assert store.current_epoch == 1
            # Epoch 0 had no pins: reclaimed on publish.
            assert store.live_epochs() == [1]
            assert store.reclaimed_epochs == 1
            with pytest.raises(StreamError):
                store.snapshot(0)

    def test_publish_without_pending_is_noop(self):
        with EpochStore(small_graph()) as store:
            snap = store.publish()
            assert snap.epoch == 0
            assert store.current_epoch == 0

    def test_each_epoch_gets_its_own_fingerprint(self):
        with EpochStore(small_graph()) as store:
            ids = {store.current.graph_id}
            for v in range(3):
                store.overlay.insert_edges([v], [v + 1])
                ids.add(store.publish().graph_id)
            assert len(ids) == 4

    def test_pin_keeps_superseded_epoch_alive(self):
        with EpochStore(small_graph()) as store:
            token = store.pin()
            old = store.current.graph
            store.overlay.insert_edges([0], [1])
            store.publish()
            assert store.live_epochs() == [0, 1]
            # The pinned snapshot still answers queries on the old graph.
            snap = store.snapshot(0)
            assert snap.graph is old
            store.unpin(token)
            assert store.live_epochs() == [1]

    def test_unpin_unknown_epoch_is_noop(self):
        with EpochStore(small_graph()) as store:
            token = store.pin()
            store.unpin(token)
            store.unpin(token)  # double unpin tolerated

    def test_pin_reclaimed_epoch_raises(self):
        with EpochStore(small_graph()) as store:
            store.overlay.insert_edges([0], [1])
            store.publish()
            with pytest.raises(StreamError):
                store.pin(epoch=0)

    def test_gc_drops_pins_of_dead_processes(self):
        with EpochStore(small_graph()) as store:
            # A pid that cannot exist: beyond pid_max on Linux.
            store.pin(pid=2 ** 30)
            store.overlay.insert_edges([0], [1])
            store.publish()
            assert store.live_epochs() == [1]
            assert store.reclaimed_epochs == 1

    def test_live_pid_pin_survives_gc(self):
        import os

        with EpochStore(small_graph()) as store:
            store.pin(pid=os.getpid())
            store.overlay.insert_edges([0], [1])
            store.publish()
            assert store.live_epochs() == [0, 1]

    def test_closed_store_refuses_use(self):
        store = EpochStore(small_graph())
        store.close()
        with pytest.raises(StreamError):
            store.pin()
        with pytest.raises(StreamError):
            store.publish()
        store.close()  # idempotent


class TestFrozenSnapshots:
    """Satellite regression: a fingerprinted graph must refuse in-place
    mutation — the fingerprint is memoized forever, so silent mutation
    would serve stale cached depth rows keyed by the old content."""

    def test_fingerprinting_freezes_the_arrays(self):
        graph = small_graph(seed=8)
        assert not graph.frozen
        graph_cache_id(graph)
        assert graph.frozen
        with pytest.raises(ValueError):
            graph.col_indices[0] = 0
        with pytest.raises(ValueError):
            graph.row_offsets[1] = 99

    def test_freeze_covers_cached_degrees_and_reverse(self):
        graph = small_graph(seed=9)
        graph.out_degrees()
        graph.reverse()
        graph.freeze()
        with pytest.raises(ValueError):
            graph.out_degrees()[0] = 7
        with pytest.raises(ValueError):
            graph.reverse().col_indices[0] = 0

    def test_published_snapshots_are_frozen(self):
        with EpochStore(small_graph(seed=10)) as store:
            store.overlay.insert_edges([0], [2])
            snap = store.publish()
            assert snap.graph.frozen
            with pytest.raises(ValueError):
                snap.graph.col_indices[0] = 0

    def test_copy_of_frozen_graph_is_mutable(self):
        graph = small_graph(seed=11)
        graph_cache_id(graph)
        clone = graph.copy()
        assert not clone.frozen
        clone.col_indices[0] = 0  # fresh arrays, no fingerprint: fine

    def test_frozen_survives_pickle(self):
        import pickle

        graph = small_graph(seed=12)
        graph_cache_id(graph)
        clone = pickle.loads(pickle.dumps(graph))
        assert clone.frozen
        assert clone._cache_id == graph._cache_id
        with pytest.raises(ValueError):
            clone.col_indices[0] = 0

    def test_unfingerprinted_graph_stays_writeable(self):
        graph = from_edge_arrays(
            np.asarray([0], dtype=VERTEX_DTYPE),
            np.asarray([1], dtype=VERTEX_DTYPE),
            num_vertices=2,
        )
        graph.col_indices[0] = 1  # never fingerprinted: still mutable
        assert not graph.frozen
