"""Qualitative reproduction of the paper's headline results.

These tests pin the *shape* of each claim — which engine wins, in which
regime, and roughly how — on laptop-scale graphs.  Exact factors are
checked in the benchmark harness, not here.
"""

import numpy as np
import pytest

from repro.graph.generators import kronecker, uniform_random
from repro.bfs.naive import NaiveConcurrentBFS
from repro.bfs.sequential import SequentialConcurrentBFS
from repro.core.engine import IBFS, IBFSConfig
from repro.core.sharing import pairwise_sharing
from repro.bfs.single import SingleBFS


@pytest.fixture(scope="module")
def power_law():
    """Bandwidth-bound power-law graph (the paper's main regime)."""
    return kronecker(scale=12, edge_factor=12, seed=21)


@pytest.fixture(scope="module")
def uniform():
    return uniform_random(4096, 8, seed=22)


@pytest.fixture(scope="module")
def sources(power_law):
    rng = np.random.default_rng(23)
    return sorted(
        rng.choice(power_law.num_vertices, size=96, replace=False).tolist()
    )


@pytest.fixture(scope="module")
def fig15_results(power_law, sources):
    """One run of every figure-15 engine configuration."""
    return {
        "sequential": SequentialConcurrentBFS(power_law).run(
            sources, store_depths=False
        ),
        "naive": NaiveConcurrentBFS(power_law).run(sources, store_depths=False),
        "joint": IBFS(
            power_law, IBFSConfig(group_size=64, mode="joint", groupby=False)
        ).run(sources, store_depths=False),
        "bitwise": IBFS(
            power_law, IBFSConfig(group_size=64, mode="bitwise", groupby=False)
        ).run(sources, store_depths=False),
        "groupby": IBFS(
            power_law, IBFSConfig(group_size=64, mode="bitwise", groupby=True)
        ).run(sources, store_depths=False),
    }


class TestFigure15Ordering:
    """Figure 15: sequential ~= naive < joint < bitwise <= groupby."""

    def test_naive_close_to_sequential(self, fig15_results):
        ratio = fig15_results["sequential"].seconds / fig15_results["naive"].seconds
        assert 0.8 < ratio < 1.6

    def test_joint_beats_sequential(self, fig15_results):
        assert (
            fig15_results["joint"].seconds
            < fig15_results["sequential"].seconds
        )

    def test_bitwise_beats_joint(self, fig15_results):
        assert fig15_results["bitwise"].seconds < fig15_results["joint"].seconds

    def test_groupby_beats_or_matches_bitwise(self, fig15_results):
        assert (
            fig15_results["groupby"].seconds
            <= fig15_results["bitwise"].seconds * 1.05
        )

    def test_overall_speedup_is_large(self, fig15_results):
        speedup = (
            fig15_results["sequential"].seconds
            / fig15_results["groupby"].seconds
        )
        assert speedup > 4


class TestFigure2Sharing:
    """Figure 2: bottom-up levels share far more frontiers than top-down."""

    def test_bottom_up_shares_more(self, power_law):
        engine = SingleBFS(power_law)
        runs = [engine.run(s) for s in (3, 11)]
        td_sharing = []
        bu_sharing = []
        # Reconstruct per-level frontiers from depths and direction logs.
        for level in range(1, 6):
            dir_a = (
                runs[0].record.levels[level].direction
                if level < len(runs[0].record.levels)
                else None
            )
            dir_b = (
                runs[1].record.levels[level].direction
                if level < len(runs[1].record.levels)
                else None
            )
            if dir_a != dir_b or dir_a is None:
                continue
            if dir_a == "td":
                fa = np.flatnonzero(runs[0].depths == level)
                fb = np.flatnonzero(runs[1].depths == level)
                td_sharing.append(pairwise_sharing(fa, fb))
            else:
                # Bottom-up frontiers are the still-unvisited vertices.
                fa = np.flatnonzero(
                    (runs[0].depths < 0) | (runs[0].depths >= level)
                )
                fb = np.flatnonzero(
                    (runs[1].depths < 0) | (runs[1].depths >= level)
                )
                bu_sharing.append(pairwise_sharing(fa, fb))
        assert bu_sharing, "expected at least one common bottom-up level"
        if td_sharing:
            assert max(bu_sharing) > max(td_sharing)


class TestGroupByRegimes:
    """Figure 9 / section 5.2: GroupBy helps power-law graphs far more
    than uniform-degree graphs."""

    def test_uniform_graph_gains_little(self, uniform):
        rng = np.random.default_rng(29)
        sources = sorted(
            rng.choice(uniform.num_vertices, size=96, replace=False).tolist()
        )
        random = IBFS(
            uniform, IBFSConfig(group_size=32, groupby=False)
        ).run(sources, store_depths=False)
        grouped = IBFS(
            uniform, IBFSConfig(group_size=32, groupby=True)
        ).run(sources, store_depths=False)
        # Within a few percent either way: no hubs to exploit.
        assert grouped.seconds == pytest.approx(random.seconds, rel=0.25)

    def test_power_law_graph_gains_more(self, power_law, sources):
        random = IBFS(
            power_law, IBFSConfig(group_size=32, groupby=False)
        ).run(sources, store_depths=False)
        grouped = IBFS(
            power_law, IBFSConfig(group_size=32, groupby=True)
        ).run(sources, store_depths=False)
        assert grouped.sharing_degree >= random.sharing_degree


class TestFigure11Balance:
    """Figure 11: GroupBy lowers the stddev of per-instance bottom-up
    inspection counts (workload balance)."""

    def test_groupby_reduces_or_preserves_stddev(self, power_law, sources):
        def stddev(result):
            per_instance = [
                n
                for g in result.groups
                for n in g.bottom_up_inspections
            ]
            return float(np.std(per_instance))

        random = IBFS(
            power_law, IBFSConfig(group_size=32, groupby=False, seed=7)
        ).run(sources, store_depths=False)
        grouped = IBFS(
            power_law, IBFSConfig(group_size=32, groupby=True)
        ).run(sources, store_depths=False)
        assert stddev(grouped) <= stddev(random) * 1.10


class TestFigure18Stores:
    """Figure 18: the joint frontier queue cuts frontier-queue store
    traffic versus private per-instance queues."""

    def test_jfq_enqueues_fewer_than_private(self, power_law, sources):
        seq = SequentialConcurrentBFS(power_law).run(sources, store_depths=False)
        joint = IBFS(
            power_law, IBFSConfig(group_size=64, mode="joint", groupby=False)
        ).run(sources, store_depths=False)
        assert (
            joint.counters.frontier_enqueues < seq.counters.frontier_enqueues
        )


class TestFigure19Coalescing:
    """Figure 19: joint traversal's status accesses coalesce to about one
    transaction per request; the naive engine needs several."""

    def test_loads_per_request_improve(self, power_law, sources):
        naive = NaiveConcurrentBFS(power_law).run(sources[:32], store_depths=False)
        joint = IBFS(
            power_law, IBFSConfig(group_size=32, mode="joint", groupby=False)
        ).run(sources[:32], store_depths=False)
        assert joint.counters.loads_per_request < naive.counters.loads_per_request


class TestFigure21BitwiseLoads:
    """Figure 21: bitwise statuses cut total load transactions vs JSA."""

    def test_bitwise_loads_lower(self, power_law, sources):
        joint = IBFS(
            power_law, IBFSConfig(group_size=64, mode="joint", groupby=False)
        ).run(sources, store_depths=False)
        bitwise = IBFS(
            power_law, IBFSConfig(group_size=64, mode="bitwise", groupby=False)
        ).run(sources, store_depths=False)
        assert (
            bitwise.counters.global_load_transactions
            < joint.counters.global_load_transactions
        )
