"""Warp vote / ballot / popcount emulation."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.gpusim.warp import popcount, warp_any, warp_ballot


class TestAny:
    def test_rows(self):
        preds = np.asarray([[False, False], [True, False], [True, True]])
        assert warp_any(preds).tolist() == [False, True, True]

    def test_one_dimensional_input(self):
        assert warp_any(np.asarray([False, True])).tolist() == [True]
        assert warp_any(np.asarray([False, False])).tolist() == [False]


class TestBallot:
    def test_bit_positions(self):
        preds = np.asarray([[True, False, True, True]])
        assert warp_ballot(preds).tolist() == [0b1101]

    def test_multiple_rows(self):
        preds = np.asarray([[True, False], [False, True]])
        assert warp_ballot(preds).tolist() == [1, 2]

    def test_one_dimensional(self):
        assert warp_ballot(np.asarray([True, True])).tolist() == [3]

    def test_full_64_bits(self):
        preds = np.ones((1, 64), dtype=bool)
        assert warp_ballot(preds)[0] == np.uint64(0xFFFFFFFFFFFFFFFF)

    def test_too_wide_rejected(self):
        with pytest.raises(SimulationError, match="exceeds 64"):
            warp_ballot(np.ones((1, 65), dtype=bool))


class TestPopcount:
    def test_known_values(self):
        words = np.asarray([0, 1, 3, 0xFF, 0xFFFFFFFFFFFFFFFF], dtype=np.uint64)
        assert popcount(words).tolist() == [0, 1, 2, 8, 64]

    def test_matches_ballot_width(self):
        preds = np.asarray([[True, True, False, True]])
        assert popcount(warp_ballot(preds)).tolist() == [3]

    def test_matrix_input(self):
        words = np.asarray([[1, 3], [7, 0]], dtype=np.uint64)
        assert popcount(words).tolist() == [[1, 2], [3, 0]]
