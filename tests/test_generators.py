"""Synthetic graph generators: determinism, shape, and degree structure."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.generators import (
    complete,
    erdos_renyi,
    kronecker,
    path,
    rmat,
    scale_free,
    small_world,
    star,
    uniform_random,
)
from repro.graph.properties import gini_coefficient


class TestKronecker:
    def test_vertex_count_is_power_of_two(self):
        g = kronecker(scale=8, edge_factor=4, seed=1)
        assert g.num_vertices == 256

    def test_edge_count(self):
        g = kronecker(scale=8, edge_factor=4, seed=1, undirected=False)
        assert g.num_edges == 256 * 4
        g2 = kronecker(scale=8, edge_factor=4, seed=1, undirected=True)
        assert g2.num_edges == 2 * 256 * 4

    def test_deterministic_given_seed(self):
        assert kronecker(7, 4, seed=9) == kronecker(7, 4, seed=9)

    def test_different_seeds_differ(self):
        assert kronecker(7, 4, seed=1) != kronecker(7, 4, seed=2)

    def test_power_law_skew(self):
        g = kronecker(scale=10, edge_factor=8, seed=1)
        assert gini_coefficient(g) > 0.3

    def test_negative_scale_rejected(self):
        with pytest.raises(GraphError):
            kronecker(-1)

    def test_invalid_initiator_rejected(self):
        with pytest.raises(GraphError):
            kronecker(5, abc=(0.9, 0.9, 0.9))


class TestUniformRandom:
    def test_exact_out_degree_before_symmetrization(self):
        g = uniform_random(100, 6, seed=1, undirected=False)
        assert g.out_degrees().tolist() == [6] * 100

    def test_uniformity(self):
        g = uniform_random(500, 8, seed=1)
        assert gini_coefficient(g) < 0.2

    def test_invalid_parameters(self):
        with pytest.raises(GraphError):
            uniform_random(0, 4)
        with pytest.raises(GraphError):
            uniform_random(10, -1)


class TestRmatAndClassics:
    def test_rmat_is_kronecker_with_different_initiator(self):
        g = rmat(8, 4, seed=3)
        assert g.num_vertices == 256
        assert g.num_edges > 0

    def test_erdos_renyi_probability_bounds(self):
        with pytest.raises(GraphError):
            erdos_renyi(10, 1.5)

    def test_erdos_renyi_zero_probability(self):
        g = erdos_renyi(50, 0.0, seed=1)
        assert g.num_edges == 0

    def test_small_world_parameters(self):
        with pytest.raises(GraphError):
            small_world(10, k=3)
        with pytest.raises(GraphError):
            small_world(4, k=4)

    def test_small_world_is_symmetric(self):
        assert small_world(60, 4, 0.1, seed=2).is_symmetric()

    def test_scale_free_has_hubs(self):
        g = scale_free(200, 3, seed=1)
        assert g.out_degrees().max() > 5 * np.median(g.out_degrees())

    def test_scale_free_parameters(self):
        with pytest.raises(GraphError):
            scale_free(3, attach=5)
        with pytest.raises(GraphError):
            scale_free(10, attach=0)

    def test_star_shape(self):
        g = star(10)
        assert g.num_vertices == 11
        assert g.out_degree(0) == 10
        assert g.out_degree(5) == 1

    def test_path_shape(self):
        g = path(5)
        assert g.num_edges == 8  # 4 undirected edges
        assert g.out_degree(0) == 1
        assert g.out_degree(2) == 2

    def test_complete_shape(self):
        g = complete(6)
        assert g.num_edges == 30
        assert all(g.out_degree(v) == 5 for v in range(6))

    def test_classic_generators_reject_bad_sizes(self):
        with pytest.raises(GraphError):
            path(0)
        with pytest.raises(GraphError):
            complete(0)
        with pytest.raises(GraphError):
            star(-1)
