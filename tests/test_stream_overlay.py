"""Delta/CSR overlay: batching, folding, and the compaction contract."""

import numpy as np
import pytest

from repro.errors import StreamError
from repro.graph.builders import from_edge_arrays
from repro.graph.csr import VERTEX_DTYPE
from repro.graph.generators import kronecker
from repro.stream import GraphOverlay, MutationBatch, apply_batch


def edges(*pairs):
    src = np.asarray([p[0] for p in pairs], dtype=VERTEX_DTYPE)
    dst = np.asarray([p[1] for p in pairs], dtype=VERTEX_DTYPE)
    return src, dst


def rebuild(graph, inserts=None, deletes=None):
    """Reference fold: rebuild from the equivalent edge list with the
    stable from_edge_arrays builder."""
    n = graph.num_vertices
    src, dst = graph.edge_array()
    if deletes is not None:
        keys = src * np.int64(n) + dst
        dsrc, ddst = deletes
        dkeys = (np.asarray(dsrc, dtype=np.int64) * n
                 + np.asarray(ddst, dtype=np.int64))
        keep = ~np.isin(keys, dkeys)
        src, dst = src[keep], dst[keep]
    if inserts is not None:
        src = np.concatenate([src, np.asarray(inserts[0], dtype=VERTEX_DTYPE)])
        dst = np.concatenate([dst, np.asarray(inserts[1], dtype=VERTEX_DTYPE)])
    return from_edge_arrays(src, dst, num_vertices=n)


class TestMutationBatch:
    def test_make_validates_range(self):
        with pytest.raises(StreamError):
            MutationBatch.make(4, inserts=edges((0, 4)))
        with pytest.raises(StreamError):
            MutationBatch.make(4, deletes=edges((-1, 0)))

    def test_make_validates_shape(self):
        with pytest.raises(StreamError):
            MutationBatch.make(
                4, inserts=(np.array([0, 1]), np.array([2]))
            )

    def test_flags(self):
        empty = MutationBatch.make(4)
        assert empty.empty and empty.insert_only
        ins = MutationBatch.make(4, inserts=edges((0, 1)))
        assert not ins.empty and ins.insert_only
        dele = MutationBatch.make(4, deletes=edges((0, 1)))
        assert not dele.empty and not dele.insert_only
        assert ins.num_inserts == 1 and dele.num_deletes == 1


class TestApplyBatch:
    def test_insert_appends_per_source_in_order(self):
        graph = from_edge_arrays(*edges((0, 1), (0, 2), (1, 2)),
                                 num_vertices=4)
        batch = MutationBatch.make(4, inserts=edges((0, 3), (2, 0), (0, 1)))
        folded = apply_batch(graph, batch)
        # Vertex 0's old adjacency [1, 2] keeps its order; inserts
        # (0,3) then (0,1) append after it in submission order.
        assert folded.neighbors(0).tolist() == [1, 2, 3, 1]
        assert folded.neighbors(2).tolist() == [0]

    def test_delete_removes_every_copy(self):
        graph = from_edge_arrays(
            *edges((0, 1), (0, 1), (0, 2), (0, 1)), num_vertices=3
        )
        batch = MutationBatch.make(3, deletes=edges((0, 1)))
        folded = apply_batch(graph, batch)
        assert folded.neighbors(0).tolist() == [2]
        assert folded.num_edges == 1

    def test_deletes_apply_before_inserts(self):
        graph = from_edge_arrays(*edges((0, 1)), num_vertices=2)
        batch = MutationBatch.make(
            2, inserts=edges((0, 1)), deletes=edges((0, 1))
        )
        folded = apply_batch(graph, batch)
        # The old copy dies, the inserted copy survives.
        assert folded.neighbors(0).tolist() == [1]

    def test_matches_rebuild_bit_identically(self):
        graph = kronecker(scale=7, edge_factor=6, seed=11)
        n = graph.num_vertices
        rng = np.random.default_rng(5)
        ins = (rng.integers(0, n, 30, dtype=VERTEX_DTYPE),
               rng.integers(0, n, 30, dtype=VERTEX_DTYPE))
        src_all, dst_all = graph.edge_array()
        picks = rng.choice(graph.num_edges, 20, replace=False)
        dels = (src_all[picks], dst_all[picks])
        batch = MutationBatch.make(n, inserts=ins, deletes=dels)
        folded = apply_batch(graph, batch)
        ref = rebuild(graph, inserts=ins, deletes=dels)
        assert np.array_equal(folded.row_offsets, ref.row_offsets)
        assert np.array_equal(folded.col_indices, ref.col_indices)

    def test_delete_missing_edge_is_noop(self):
        graph = from_edge_arrays(*edges((0, 1)), num_vertices=3)
        folded = apply_batch(
            graph, MutationBatch.make(3, deletes=edges((1, 2)))
        )
        assert folded == graph


class TestGraphOverlay:
    def test_commit_folds_and_clears_pending(self):
        overlay = GraphOverlay(
            from_edge_arrays(*edges((0, 1)), num_vertices=3)
        )
        overlay.insert_edges([1], [2])
        assert overlay.has_pending
        folded, batch = overlay.commit()
        assert not overlay.has_pending
        assert batch.num_inserts == 1
        assert folded.neighbors(1).tolist() == [2]
        assert overlay.current is folded
        assert overlay.commits == 1
        assert overlay.total_inserted == 1

    def test_empty_commit_returns_current(self):
        base = from_edge_arrays(*edges((0, 1)), num_vertices=2)
        overlay = GraphOverlay(base)
        folded, batch = overlay.commit()
        assert folded is base and batch.empty
        assert overlay.commits == 0

    def test_base_graph_untouched(self):
        base = kronecker(scale=6, edge_factor=4, seed=2)
        before = base.col_indices.copy()
        overlay = GraphOverlay(base)
        overlay.insert_edges([0, 1], [2, 3])
        overlay.delete_edges([int(base.neighbors(0)[0])], [0])
        overlay.compact()
        assert np.array_equal(base.col_indices, before)
        assert overlay.base is base

    def test_merged_neighbors_view_before_commit(self):
        overlay = GraphOverlay(
            from_edge_arrays(*edges((0, 1), (0, 2)), num_vertices=4)
        )
        overlay.delete_edges([0], [1])
        overlay.insert_edges([0], [3])
        assert overlay.neighbors(0).tolist() == [2, 3]
        # The view matches what commit will materialize.
        folded = overlay.compact()
        assert folded.neighbors(0).tolist() == [2, 3]

    def test_num_edges_tracks_pending(self):
        overlay = GraphOverlay(
            from_edge_arrays(*edges((0, 1), (1, 2)), num_vertices=3)
        )
        overlay.insert_edges([2], [0])
        assert overlay.num_edges == 3
        overlay.delete_edges([0], [1])
        assert overlay.num_edges == 2

    def test_total_deleted_counts_all_copies(self):
        overlay = GraphOverlay(
            from_edge_arrays(*edges((0, 1), (0, 1)), num_vertices=2)
        )
        overlay.delete_edges([0], [1])
        overlay.commit()
        assert overlay.total_deleted == 2

    def test_out_of_range_rejected(self):
        overlay = GraphOverlay(
            from_edge_arrays(*edges((0, 1)), num_vertices=2)
        )
        with pytest.raises(StreamError):
            overlay.insert_edges([0], [2])
        with pytest.raises(StreamError):
            overlay.neighbors(5)

    def test_sequential_commits_compose(self):
        base = kronecker(scale=6, edge_factor=4, seed=7)
        n = base.num_vertices
        overlay = GraphOverlay(base)
        overlay.insert_edges([0, 1], [3, 4])
        first = overlay.compact()
        overlay.insert_edges([2], [5])
        second = overlay.compact()
        ref = rebuild(
            rebuild(base, inserts=edges((0, 3), (1, 4))),
            inserts=edges((2, 5)),
        )
        assert np.array_equal(second.col_indices, ref.col_indices)
        assert first.num_edges == base.num_edges + 2
        assert second.num_edges == base.num_edges + 3
