"""Per-group vs per-instance direction switching."""

import numpy as np
import pytest

from repro.errors import TraversalError
from repro.graph.generators import kronecker, uniform_random
from repro.bfs.reference import reference_bfs_multi
from repro.core.bitwise import BitwiseTraversal


@pytest.fixture(scope="module")
def kron():
    return kronecker(scale=8, edge_factor=8, seed=201)


def test_invalid_mode_rejected(kron):
    with pytest.raises(TraversalError, match="direction_mode"):
        BitwiseTraversal(kron, direction_mode="consensus")


@pytest.mark.parametrize("mode", ["per-instance", "per-group"])
def test_depths_exact_in_both_modes(kron, mode):
    sources = list(range(0, 48, 3))
    engine = BitwiseTraversal(kron, direction_mode=mode)
    depths, _, _ = engine.run_group(sources)
    assert np.array_equal(depths, reference_bfs_multi(kron, sources))


@pytest.mark.parametrize("mode", ["per-instance", "per-group"])
def test_uniform_graph_both_modes(mode):
    graph = uniform_random(300, 4, seed=202)
    sources = list(range(12))
    depths, _, _ = BitwiseTraversal(
        graph, direction_mode=mode
    ).run_group(sources)
    assert np.array_equal(depths, reference_bfs_multi(graph, sources))


def test_per_group_synchronizes_directions(kron):
    """With group voting, a level is never mixed-direction: the joint
    frontier is either all top-down or all bottom-up work."""
    sources = list(range(16))
    _, record, stats = BitwiseTraversal(
        kron, direction_mode="per-group"
    ).run_group(sources)
    # In per-group mode every level's td/bu sharing entries cannot both
    # be populated after level 0 once the vote switches.
    mixed_levels = sum(
        1
        for (td_fq, _), (bu_fq, _) in zip(stats.td_sharing, stats.bu_sharing)
        if td_fq > 0 and bu_fq > 0
    )
    assert mixed_levels == 0


def test_per_instance_can_mix_directions(kron):
    """With per-instance switching and heterogeneous sources, some level
    usually carries both directions (the figure-5 scenario)."""
    degrees = kron.out_degrees()
    hubs = np.argsort(-degrees)[:8].tolist()
    nonzero = np.flatnonzero(degrees > 0)
    leaves = nonzero[np.argsort(degrees[nonzero])][:8].tolist()
    sources = [*hubs, *leaves]
    assert len(set(sources)) == 16
    _, record, stats = BitwiseTraversal(
        kron, direction_mode="per-instance"
    ).run_group(sources)
    mixed_levels = sum(
        1
        for (td_fq, _), (bu_fq, _) in zip(stats.td_sharing, stats.bu_sharing)
        if td_fq > 0 and bu_fq > 0
    )
    assert mixed_levels >= 1
