"""Process backend: one worker per partition, crashes, respawn, degrade.

The process backend runs the exact :class:`PartitionState` compute the
inline backend uses, so every scenario here — clean runs, injected
crashes mid-expand, respawn-budget exhaustion — must end with the same
depth matrix the serial engine produces.
"""

import numpy as np
import pytest

from repro.errors import WorkerCrashError
from repro.graph.generators import kronecker
from repro.core.engine import IBFS, IBFSConfig
from repro.exec.faults import FaultPolicy
from repro.exec.shm import shared_memory_available
from repro.dist.engine import DistConfig, PartitionedEngine
from repro.dist.procs import DistFaultPlan

needs_shm = pytest.mark.skipif(
    not shared_memory_available(),
    reason="multiprocessing.shared_memory unavailable",
)

GROUP_SIZE = 8


@pytest.fixture(scope="module")
def graph():
    return kronecker(scale=7, edge_factor=8, seed=9)


@pytest.fixture(scope="module")
def group(graph):
    engine = IBFS(graph, IBFSConfig(group_size=GROUP_SIZE))
    return engine.make_groups(list(range(24)))[0]


@pytest.fixture(scope="module")
def expected(graph, group):
    return IBFS(graph, IBFSConfig(group_size=GROUP_SIZE)).run_group(group)


def process_engine(graph, **overrides):
    overrides.setdefault("num_partitions", 2)
    overrides.setdefault("group_size", GROUP_SIZE)
    return PartitionedEngine(
        graph, DistConfig(backend="process", **overrides)
    )


@needs_shm
class TestProcessEquivalence:
    @pytest.mark.parametrize("layout", ["1d", "2d"])
    def test_matches_serial(self, graph, group, expected, layout):
        with process_engine(
            graph, num_partitions=4, layout=layout
        ) as engine:
            result = engine.run_group(group)
        assert np.array_equal(result.depths, expected.depths)
        assert engine.last_stats.backend == "process"

    def test_matches_inline_byte_accounting(self, graph, group):
        """Both backends run the same PartitionState, so even the
        per-level wire bytes agree, not just the depths."""
        with process_engine(graph) as engine:
            engine.run_group(group)
            process_levels = [
                (t.fmt, t.nbytes, t.messages, t.entries)
                for t in engine.last_stats.levels
            ]
        inline = PartitionedEngine(
            graph,
            DistConfig(num_partitions=2, group_size=GROUP_SIZE),
        )
        inline.run_group(group)
        inline_levels = [
            (t.fmt, t.nbytes, t.messages, t.entries)
            for t in inline.last_stats.levels
        ]
        assert process_levels == inline_levels

    def test_reusable_across_groups(self, graph):
        serial = IBFS(graph, IBFSConfig(group_size=GROUP_SIZE))
        groups = serial.make_groups(list(range(32)))
        with process_engine(graph) as engine:
            for g in groups:
                result = engine.run_group(g)
                assert np.array_equal(
                    result.depths, serial.run_group(g).depths
                )


@needs_shm
class TestCrashRecovery:
    def test_crash_respawns_and_matches_serial(self, graph, group, expected):
        with process_engine(
            graph,
            fault_plan=DistFaultPlan(crash={0: 1}, level=1),
            faults=FaultPolicy(max_retries=2, respawn_limit=2),
        ) as engine:
            result = engine.run_group(group)
            stats = engine.last_stats
        assert np.array_equal(result.depths, expected.depths)
        assert stats.crashes == 1
        assert stats.respawns == 1
        assert stats.retries == 1
        assert not stats.degraded

    def test_repeated_crashes_within_budget(self, graph, group, expected):
        with process_engine(
            graph,
            fault_plan=DistFaultPlan(crash={1: 2}, level=0),
            faults=FaultPolicy(max_retries=3, respawn_limit=4),
        ) as engine:
            result = engine.run_group(group)
            stats = engine.last_stats
        assert np.array_equal(result.depths, expected.depths)
        assert stats.crashes == 2
        assert stats.respawns == 2

    def test_fail_fast_raises(self, graph, group):
        with process_engine(
            graph,
            fault_plan=DistFaultPlan(crash={0: 1}),
            faults=FaultPolicy(fail_fast=True),
        ) as engine:
            with pytest.raises(WorkerCrashError):
                engine.run_group(group)
        assert engine.last_stats is None

    def test_retry_budget_exhaustion_raises(self, graph, group):
        with process_engine(
            graph,
            fault_plan=DistFaultPlan(crash={0: 99}),
            faults=FaultPolicy(max_retries=2, respawn_limit=8),
        ) as engine:
            with pytest.raises(WorkerCrashError):
                engine.run_group(group)

    def test_respawn_exhausted_degrades_to_inline(
        self, graph, group, expected
    ):
        """No respawn budget left: the engine finishes the group on the
        inline backend instead of failing — same depths by
        construction."""
        with process_engine(
            graph,
            fault_plan=DistFaultPlan(crash={0: 1}),
            faults=FaultPolicy(max_retries=2, respawn_limit=0),
        ) as engine:
            result = engine.run_group(group)
            stats = engine.last_stats
        assert np.array_equal(result.depths, expected.depths)
        assert stats.degraded
        assert stats.crashes == 1
        assert stats.respawns == 0

    def test_fault_events_logged(self, graph, group):
        with process_engine(
            graph,
            fault_plan=DistFaultPlan(crash={0: 1}),
            faults=FaultPolicy(max_retries=2, respawn_limit=2),
        ) as engine:
            engine.run_group(group)
            kinds = [e.kind for e in engine.last_stats.events]
        assert "crash" in kinds
        assert "retry" in kinds
        assert "respawn" in kinds
