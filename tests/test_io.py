"""Graph serialization round trips and format error handling."""

import pytest

from repro.errors import GraphFormatError
from repro.graph.builders import from_edges
from repro.graph.generators import kronecker
from repro.graph.io import (
    load_csr,
    read_dimacs,
    read_edge_list,
    save_csr,
    write_dimacs,
    write_edge_list,
)


@pytest.fixture
def sample_graph():
    return from_edges([(0, 1), (1, 2), (2, 0), (2, 2)], num_vertices=4)


class TestEdgeList:
    def test_round_trip(self, sample_graph, tmp_path):
        target = tmp_path / "g.el"
        write_edge_list(sample_graph, target)
        assert read_edge_list(target) == sample_graph

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        target = tmp_path / "g.el"
        target.write_text("# header\n\n0 1\n# mid comment\n1 2\n")
        g = read_edge_list(target)
        assert g.num_edges == 2

    def test_malformed_line_reports_location(self, tmp_path):
        target = tmp_path / "bad.el"
        target.write_text("0 1\njust-one-token\n")
        with pytest.raises(GraphFormatError, match="bad.el:2"):
            read_edge_list(target)

    def test_non_integer_ids_rejected(self, tmp_path):
        target = tmp_path / "bad.el"
        target.write_text("a b\n")
        with pytest.raises(GraphFormatError, match="non-integer"):
            read_edge_list(target)

    def test_undirected_flag(self, tmp_path):
        target = tmp_path / "g.el"
        target.write_text("0 1\n")
        g = read_edge_list(target, undirected=True)
        assert g.num_edges == 2


class TestDimacs:
    def test_round_trip(self, sample_graph, tmp_path):
        target = tmp_path / "g.gr"
        write_dimacs(sample_graph, target)
        assert read_dimacs(target) == sample_graph

    def test_missing_problem_line(self, tmp_path):
        target = tmp_path / "bad.gr"
        target.write_text("c comment only\n")
        with pytest.raises(GraphFormatError, match="missing problem line"):
            read_dimacs(target)

    def test_arc_before_problem_line(self, tmp_path):
        target = tmp_path / "bad.gr"
        target.write_text("a 1 2\n")
        with pytest.raises(GraphFormatError, match="before problem"):
            read_dimacs(target)

    def test_unknown_line_type(self, tmp_path):
        target = tmp_path / "bad.gr"
        target.write_text("p sp 2 1\nx 1 2\n")
        with pytest.raises(GraphFormatError, match="unrecognized"):
            read_dimacs(target)

    def test_one_based_ids_shifted(self, tmp_path):
        target = tmp_path / "g.gr"
        target.write_text("p sp 3 1\na 1 3\n")
        g = read_dimacs(target)
        assert g.has_edge(0, 2)


class TestBinaryCSR:
    def test_round_trip(self, tmp_path):
        g = kronecker(scale=7, edge_factor=4, seed=11)
        target = tmp_path / "g.csr"
        save_csr(g, target)
        assert load_csr(target) == g

    def test_bad_magic_rejected(self, tmp_path):
        target = tmp_path / "not.csr"
        target.write_bytes(b"GARBAGE!" * 4)
        with pytest.raises(GraphFormatError, match="not a repro CSR"):
            load_csr(target)
