"""CLI serving subcommands and the installable console entry point."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main
from repro.graph.generators import kronecker
from repro.graph.io import save_csr


@pytest.fixture
def saved_graph(tmp_path):
    graph = kronecker(scale=7, edge_factor=6, seed=61)
    target = tmp_path / "g.csr"
    save_csr(graph, target)
    return str(target)


class TestServe:
    def test_serve_prints_metrics(self, saved_graph, capsys):
        code = main([
            "serve", saved_graph, "--requests", "64", "--clients", "16",
            "--batch-size", "8",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "latency p50/p99" in out
        assert "cache hit rate" in out

    def test_serve_writes_metrics_json(self, saved_graph, tmp_path, capsys):
        target = tmp_path / "metrics.json"
        assert main([
            "serve", saved_graph, "--requests", "48", "--clients", "8",
            "--batch-size", "8", "--metrics-json", str(target),
        ]) == 0
        payload = json.loads(target.read_text())
        assert payload["requests"]["completed"] == 48
        assert "latency_seconds" in payload
        assert "cache" in payload
        assert payload["batches"]["count"] >= 1

    def test_serve_without_groupby(self, saved_graph, capsys):
        assert main([
            "serve", saved_graph, "--requests", "32", "--clients", "8",
            "--batch-size", "8", "--no-groupby",
        ]) == 0
        assert "completed         : 32" in capsys.readouterr().out


class TestBenchServe:
    def test_bench_serve_reports_speedup(self, saved_graph, capsys):
        code = main([
            "bench-serve", saved_graph, "--requests", "96", "--clients",
            "16", "--batch-size", "8", "--deadline-us", "5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "micro-batched serving" in out
        assert "naive serving" in out
        assert "throughput speedup" in out


class TestConsoleEntryPoint:
    def test_pyproject_declares_the_script(self):
        pyproject = (
            Path(__file__).resolve().parents[1] / "pyproject.toml"
        ).read_text()
        assert '[project.scripts]' in pyproject
        assert 'repro = "repro.cli:main"' in pyproject

    def test_entry_point_target_resolves(self):
        """The declared target must import and be the argv-taking main."""
        import importlib

        module_name, attr = "repro.cli:main".split(":")
        target = getattr(importlib.import_module(module_name), attr)
        assert callable(target)
        assert target is main

    def test_module_execution_smoke(self, saved_graph):
        """``python -m repro`` behaves like the console script."""
        import repro

        src_dir = os.path.dirname(
            os.path.dirname(os.path.abspath(repro.__file__))
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [src_dir]
            + [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
        )
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "info", saved_graph],
            capture_output=True,
            text=True,
            env=env,
        )
        assert completed.returncode == 0, completed.stderr
        assert "vertices" in completed.stdout
