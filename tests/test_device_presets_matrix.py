"""Engines on every device preset: correctness is device-independent,
relative performance follows the hardware (K40 > K20 > Xeon)."""

import numpy as np
import pytest

from repro.graph.generators import kronecker
from repro.gpusim.config import KEPLER_K20, KEPLER_K40, XEON_CPU
from repro.gpusim.device import Device
from repro.bfs.reference import reference_bfs_multi
from repro.core.engine import IBFS, IBFSConfig

PRESETS = {"k40": KEPLER_K40, "k20": KEPLER_K20, "xeon": XEON_CPU}


@pytest.fixture(scope="module")
def kron():
    return kronecker(scale=8, edge_factor=8, seed=261)


@pytest.fixture(scope="module")
def sources():
    return list(range(0, 48, 3))


@pytest.fixture(scope="module")
def results(kron, sources):
    out = {}
    for name, preset in PRESETS.items():
        engine = IBFS(
            kron, IBFSConfig(group_size=16), device=Device(preset)
        )
        out[name] = engine.run(sources, store_depths=True)
    return out


def test_depths_identical_across_devices(kron, sources, results):
    expected = reference_bfs_multi(kron, sources)
    for name, result in results.items():
        assert np.array_equal(result.depths, expected), name


def test_algorithmic_counters_identical_across_devices(results):
    """Device choice changes pricing, never the traversal."""
    base = results["k40"].counters
    for name in ("k20", "xeon"):
        c = results[name].counters
        assert c.inspections == base.inspections, name
        assert c.edges_traversed == base.edges_traversed, name
        assert c.frontier_enqueues == base.frontier_enqueues, name
        assert c.early_terminations == base.early_terminations, name


def test_performance_follows_hardware(results):
    assert results["k40"].seconds < results["k20"].seconds
    assert results["k20"].seconds < results["xeon"].seconds


def test_occupancy_defaults_full_on_both_gpus():
    for preset in (KEPLER_K40, KEPLER_K20):
        report = Device(preset).occupancy()
        assert report.occupancy == pytest.approx(1.0)
