"""Exception hierarchy sanity checks."""

import pytest

from repro.errors import (
    CapacityError,
    GraphError,
    GraphFormatError,
    GroupingError,
    ReproError,
    SimulationError,
    TraversalError,
)


def test_all_errors_derive_from_repro_error():
    for exc_type in (
        GraphError,
        GraphFormatError,
        SimulationError,
        CapacityError,
        TraversalError,
        GroupingError,
    ):
        assert issubclass(exc_type, ReproError)


def test_format_error_is_a_graph_error():
    assert issubclass(GraphFormatError, GraphError)


def test_capacity_error_is_a_simulation_error():
    assert issubclass(CapacityError, SimulationError)


def test_catching_base_catches_subclass():
    with pytest.raises(ReproError):
        raise CapacityError("out of memory")
