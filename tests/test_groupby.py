"""GroupBy rules: partitioning invariants and sharing improvement."""

import pytest

from repro.errors import GroupingError
from repro.graph.builders import from_edges
from repro.graph.generators import kronecker, scale_free, star, uniform_random
from repro.core.engine import IBFS, IBFSConfig
from repro.core.groupby import (
    DEFAULT_Q,
    GroupByConfig,
    group_sources,
    random_groups,
)


def _is_partition(groups, sources):
    flat = [s for g in groups for s in g]
    return sorted(flat) == sorted(sources)


class TestRandomGroups:
    def test_partition(self):
        groups = random_groups(range(10), 3, seed=1)
        assert _is_partition(groups, list(range(10)))
        assert max(len(g) for g in groups) == 3

    def test_deterministic(self):
        assert random_groups(range(10), 3, seed=1) == random_groups(
            range(10), 3, seed=1
        )

    def test_invalid_group_size(self):
        with pytest.raises(GroupingError):
            random_groups(range(4), 0)

    def test_duplicate_sources_rejected(self):
        with pytest.raises(GroupingError):
            random_groups([1, 1, 2], 2)


class TestGroupByConfig:
    def test_defaults(self):
        config = GroupByConfig()
        assert config.q == DEFAULT_Q
        assert config.p_sequence == (4, 16, 64, 128)

    def test_descending_p_rejected(self):
        with pytest.raises(GroupingError):
            GroupByConfig(p_sequence=(16, 4))

    def test_negative_q_rejected(self):
        with pytest.raises(GroupingError):
            GroupByConfig(q=-1)

    def test_empty_p_rejected(self):
        with pytest.raises(GroupingError):
            GroupByConfig(p_sequence=())


class TestGroupSources:
    @pytest.fixture(scope="class")
    def kron(self):
        return kronecker(scale=9, edge_factor=8, seed=6)

    def test_partition_property(self, kron):
        sources = list(range(0, 128, 2))
        groups = group_sources(kron, sources, 16)
        assert _is_partition(groups, sources)
        assert all(len(g) <= 16 for g in groups)

    def test_out_of_range_source_rejected(self, kron):
        with pytest.raises(GroupingError):
            group_sources(kron, [kron.num_vertices], 4)

    def test_duplicates_rejected(self, kron):
        with pytest.raises(GroupingError):
            group_sources(kron, [0, 0], 4)

    def test_invalid_group_size(self, kron):
        with pytest.raises(GroupingError):
            group_sources(kron, [0, 1], 0)

    def test_star_leaves_share_the_hub(self):
        # All leaves connect to the hub (outdegree = leaves count), so
        # Rule 2 puts leaf sources into the same bucket.
        g = star(200)
        leaves = list(range(1, 33))
        groups = group_sources(g, leaves, 8, GroupByConfig(q=100))
        assert _is_partition(groups, leaves)
        assert all(len(g_) == 8 for g_ in groups)

    def test_uniform_graph_falls_back_gracefully(self):
        g = uniform_random(256, 4, seed=7)
        sources = list(range(0, 64))
        groups = group_sources(g, sources, 16)
        assert _is_partition(groups, sources)

    def test_isolated_sources_grouped_randomly(self):
        g = from_edges([(0, 1)], num_vertices=8, undirected=True)
        groups = group_sources(g, list(range(8)), 4)
        assert _is_partition(groups, list(range(8)))

    def test_groupby_raises_sharing_on_power_law(self):
        """The headline claim of section 5: GroupBy groups share more."""
        g = scale_free(600, 4, seed=8)
        sources = list(range(0, 256))
        grouped = IBFS(
            g, IBFSConfig(group_size=32, groupby=True)
        ).run(sources, store_depths=False)
        randomized = IBFS(
            g, IBFSConfig(group_size=32, groupby=False, seed=13)
        ).run(sources, store_depths=False)
        assert grouped.sharing_degree >= randomized.sharing_degree
