"""Partitioning invariants: 1D/2D blocks must tile the graph exactly.

Every downstream bit-identity guarantee of :mod:`repro.dist` rests on
two structural facts checked here — the edge blocks partition the edge
set and the owner ranges partition the vertex set — plus the
shared-memory publication round-trip the process backend relies on.
"""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.generators import kronecker, rmat
from repro.exec.shm import shared_memory_available
from repro.dist.partition import (
    GraphPartitioner,
    attach_partition,
    check_partition_cover,
    grid_shape,
    publish_partition,
    release_partition,
)

needs_shm = pytest.mark.skipif(
    not shared_memory_available(),
    reason="multiprocessing.shared_memory unavailable",
)


@pytest.fixture(scope="module")
def graph():
    return rmat(scale=8, edge_factor=6, seed=5)


class TestGridShape:
    @pytest.mark.parametrize(
        "p,expected",
        [
            (1, (1, 1)),
            (2, (1, 2)),
            (4, (2, 2)),
            (6, (2, 3)),
            (8, (2, 4)),
            (9, (3, 3)),
            (12, (3, 4)),
            (7, (1, 7)),  # primes fall back to a single grid row
        ],
    )
    def test_rows_times_cols(self, p, expected):
        assert grid_shape(p) == expected
        rows, cols = grid_shape(p)
        assert rows * cols == p
        assert rows <= cols

    def test_rejects_nonpositive(self):
        with pytest.raises(GraphError):
            grid_shape(0)


class TestPartitionerValidation:
    def test_rejects_bad_layout(self, graph):
        with pytest.raises(GraphError):
            GraphPartitioner(graph, 2, layout="3d")

    def test_rejects_bad_balance(self, graph):
        with pytest.raises(GraphError):
            GraphPartitioner(graph, 2, balance="degrees")

    def test_rejects_nonpositive_partitions(self, graph):
        with pytest.raises(GraphError):
            GraphPartitioner(graph, 0)


@pytest.mark.parametrize("layout", ["1d", "2d"])
@pytest.mark.parametrize("num_partitions", [1, 2, 3, 4, 6])
@pytest.mark.parametrize("balance", ["edges", "vertices"])
class TestCover:
    def test_blocks_tile_graph(self, graph, layout, num_partitions, balance):
        pset = GraphPartitioner(
            graph, num_partitions, layout=layout, balance=balance
        ).build()
        check_partition_cover(graph, pset)
        assert pset.num_partitions == num_partitions
        assert pset.rows * pset.cols == num_partitions
        # Each block's rows are its source band; every kept column id
        # lies inside the block's destination band.
        for p in pset.parts:
            assert p.src_size == p.row_offsets.shape[0] - 1
            if p.col_indices.size:
                assert p.col_indices.min() >= p.dst_start
                assert p.col_indices.max() < p.dst_stop

    def test_every_edge_exactly_once(
        self, graph, layout, num_partitions, balance
    ):
        pset = GraphPartitioner(
            graph, num_partitions, layout=layout, balance=balance
        ).build()
        # Reconstruct (src, dst) pairs from all blocks and compare to
        # the graph's own edge list as sorted multisets.
        srcs, dsts = [], []
        for p in pset.parts:
            counts = np.diff(p.row_offsets)
            srcs.append(
                np.repeat(
                    np.arange(p.src_start, p.src_stop, dtype=np.int64),
                    counts,
                )
            )
            dsts.append(np.asarray(p.col_indices, dtype=np.int64))
        got = np.stack([np.concatenate(srcs), np.concatenate(dsts)])
        ro, ci = graph.row_offsets, graph.col_indices
        want = np.stack(
            [
                np.repeat(
                    np.arange(graph.num_vertices, dtype=np.int64),
                    np.diff(ro),
                ),
                np.asarray(ci, dtype=np.int64),
            ]
        )
        order_got = np.lexsort(got[::-1])
        order_want = np.lexsort(want[::-1])
        assert np.array_equal(got[:, order_got], want[:, order_want])


class TestOwnership:
    def test_owner_ranges_refine_row_bands(self, graph):
        pset = GraphPartitioner(graph, 4, layout="2d").build()
        for p in pset.parts:
            assert p.src_start <= p.own_start <= p.own_stop <= p.src_stop
        assert int(pset.own_bounds[0]) == 0
        assert int(pset.own_bounds[-1]) == graph.num_vertices

    def test_owner_of_and_grid_row_of(self, graph):
        pset = GraphPartitioner(graph, 4, layout="2d").build()
        vertices = np.arange(graph.num_vertices, dtype=np.int64)
        owners = pset.owner_of(vertices)
        rows = pset.grid_row_of(vertices)
        for v in (0, 1, graph.num_vertices // 2, graph.num_vertices - 1):
            p = pset.parts[int(owners[v])]
            assert p.own_start <= v < p.own_stop
            assert p.row == int(rows[v])

    def test_vertices_balance_splits_evenly(self, graph):
        pset = GraphPartitioner(
            graph, 4, layout="1d", balance="vertices"
        ).build()
        sizes = [p.own_size for p in pset.parts]
        assert max(sizes) - min(sizes) <= 1

    def test_edges_balance_bounds_block_weight(self, graph):
        """Edge balancing keeps the heaviest 1D partition within a
        small factor of the mean (rmat is skewed but scale-8 ranges are
        wide enough to split well)."""
        pset = GraphPartitioner(
            graph, 4, layout="1d", balance="edges"
        ).build()
        weights = [p.num_local_edges + p.src_size for p in pset.parts]
        assert max(weights) <= 2.0 * (sum(weights) / len(weights))


class TestDenseBytes:
    def test_1d_dense_cost_is_words_for_every_vertex_per_block(self, graph):
        # Under 1d each block's destination band is the whole vertex
        # set, so a dense exchange ships one word per vertex per block.
        for p in (1, 2, 4):
            pset = GraphPartitioner(graph, p, layout="1d").build()
            assert (
                pset.dense_bytes_per_level() == 8 * graph.num_vertices * p
            )

    def test_2d_dense_cost_counts_band_overlaps_once(self, graph):
        pset = GraphPartitioner(graph, 4, layout="2d").build()
        total = 0
        for p in pset.parts:
            for q in pset.parts:
                lo = max(p.dst_start, q.own_start)
                hi = min(p.dst_stop, q.own_stop)
                total += 8 * max(0, hi - lo)
        assert pset.dense_bytes_per_level() == total
        # Column bands cover only part of the vertex set per block, so
        # 2d is strictly cheaper than 1d's full broadcast.
        assert pset.dense_bytes_per_level() < 8 * graph.num_vertices * 4


class TestCoverAudit:
    def test_mismatched_graph_fails_audit(self, graph):
        other = kronecker(scale=7, edge_factor=6, seed=6)
        pset = GraphPartitioner(graph, 2).build()
        with pytest.raises(GraphError):
            check_partition_cover(other, pset)


@needs_shm
class TestPublication:
    def test_publish_attach_round_trip(self, graph):
        pset = GraphPartitioner(graph, 4, layout="2d").build()
        for part in pset.parts:
            handle = publish_partition(part)
            try:
                with attach_partition(handle) as attached:
                    remote = attached.partition
                    assert remote.part_id == part.part_id
                    assert remote.own_start == part.own_start
                    assert remote.own_stop == part.own_stop
                    assert np.array_equal(
                        remote.row_offsets, part.row_offsets
                    )
                    assert np.array_equal(
                        remote.col_indices, part.col_indices
                    )
            finally:
                release_partition(handle)
