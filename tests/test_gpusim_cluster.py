"""Multi-device scheduling and the scaling result."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.gpusim.cluster import Cluster, schedule_lpt, schedule_round_robin


class TestSchedulers:
    def test_round_robin_assignment(self):
        assert schedule_round_robin([1, 1, 1, 1, 1], 2).tolist() == [0, 1, 0, 1, 0]

    def test_round_robin_invalid_device_count(self):
        with pytest.raises(SimulationError):
            schedule_round_robin([1.0], 0)

    def test_lpt_invalid_device_count(self):
        with pytest.raises(SimulationError):
            schedule_lpt([1.0], 0)

    @pytest.mark.parametrize("scheduler", [schedule_round_robin, schedule_lpt])
    def test_empty_durations_same_typed_error(self, scheduler):
        # Both degenerate inputs fail the same way: schedule_lpt used to
        # return an empty assignment for empty durations while the
        # device-count check raised, leaving callers two code paths.
        with pytest.raises(SimulationError, match="at least one"):
            scheduler([], 2)
        with pytest.raises(SimulationError, match="at least one"):
            scheduler(np.array([]), 2)

    def test_lpt_balances_better_than_round_robin(self):
        durations = [10.0, 1.0, 1.0, 1.0, 9.0, 1.0, 1.0, 1.0]
        lpt = Cluster(2, scheduler=schedule_lpt).run(durations)
        rr = Cluster(2, scheduler=schedule_round_robin).run(durations)
        assert lpt.makespan <= rr.makespan

    def test_lpt_perfect_split(self):
        result = Cluster(2, scheduler=schedule_lpt).run([4.0, 3.0, 3.0, 2.0])
        assert result.makespan == pytest.approx(6.0)


class TestCluster:
    def test_needs_at_least_one_device(self):
        with pytest.raises(SimulationError):
            Cluster(0)

    def test_negative_durations_rejected(self):
        with pytest.raises(SimulationError):
            Cluster(2).run([1.0, -1.0])

    def test_empty_work(self):
        result = Cluster(4).run([])
        assert result.makespan == 0.0
        assert result.total_work == 0.0

    def test_makespan_is_max_device_time(self):
        result = Cluster(3).run([5.0, 1.0, 1.0])
        assert result.makespan == result.device_times.max()
        assert result.total_work == pytest.approx(7.0)

    def test_work_conservation(self):
        durations = np.linspace(0.5, 3.0, 17)
        result = Cluster(5).run(durations)
        assert result.total_work == pytest.approx(float(durations.sum()))

    def test_imbalance_one_when_balanced(self):
        result = Cluster(2).run([1.0, 1.0])
        assert result.imbalance == pytest.approx(1.0)


class TestSpeedupCurve:
    def test_near_linear_with_many_units(self):
        rng = np.random.default_rng(1)
        durations = rng.uniform(0.9, 1.1, size=512)
        curve = Cluster(1).speedup_curve(durations, [1, 2, 4, 8])
        assert curve[0] == pytest.approx(1.0)
        assert curve[1] == pytest.approx(2.0, rel=0.05)
        assert curve[3] == pytest.approx(8.0, rel=0.10)

    def test_imbalance_emerges_at_high_device_counts(self):
        # Heavy-tailed group times limit scaling (the paper's figure 17).
        rng = np.random.default_rng(2)
        durations = rng.pareto(1.5, size=128) + 0.1
        curve = Cluster(1).speedup_curve(durations, [1, 64, 128])
        assert curve[2] < 128  # sublinear by then
        assert curve[1] <= 64
