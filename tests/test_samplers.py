"""Traversal-based graph samplers."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.csr import empty_graph
from repro.graph.generators import kronecker, path, scale_free
from repro.graph.samplers import (
    forest_fire_sample,
    random_walk_sample,
    snowball_sample,
)


@pytest.fixture(scope="module")
def kron():
    return kronecker(scale=9, edge_factor=8, seed=221)


SAMPLERS = {
    "snowball": snowball_sample,
    "forest_fire": forest_fire_sample,
    "random_walk": random_walk_sample,
}


@pytest.mark.parametrize("name", SAMPLERS)
class TestCommonBehavior:
    def test_respects_budget(self, kron, name):
        sample = SAMPLERS[name](kron, budget=100, rng_seed=1)
        assert sample.num_vertices == 100

    def test_deterministic(self, kron, name):
        a = SAMPLERS[name](kron, budget=50, rng_seed=7)
        b = SAMPLERS[name](kron, budget=50, rng_seed=7)
        assert a == b

    def test_budget_larger_than_graph(self, name):
        g = path(5)
        sample = SAMPLERS[name](g, budget=50, rng_seed=1)
        assert sample.num_vertices == 5

    def test_invalid_budget(self, kron, name):
        with pytest.raises(GraphError):
            SAMPLERS[name](kron, budget=0)

    def test_empty_graph_rejected(self, name):
        with pytest.raises(GraphError):
            SAMPLERS[name](empty_graph(0), budget=1)

    def test_seed_vertex_out_of_range(self, kron, name):
        with pytest.raises(GraphError):
            SAMPLERS[name](kron, budget=5, seed_vertex=10**6)

    def test_sample_is_induced_subgraph(self, kron, name):
        """Every sampled edge must exist in the original graph."""
        sample = SAMPLERS[name](kron, budget=40, rng_seed=3)
        assert sample.num_edges <= kron.num_edges


class TestSnowball:
    def test_collects_in_bfs_order_from_seed(self):
        g = path(10)
        sample = snowball_sample(g, budget=4, seed_vertex=0)
        # Crawl from 0 collects 0,1,2,3 -> an induced path of 3 edges
        # (undirected, so 6 directed).
        assert sample.num_vertices == 4
        assert sample.num_edges == 6

    def test_crosses_components_via_restart(self):
        from repro.graph.builders import from_edges

        g = from_edges([(0, 1), (3, 4)], num_vertices=6, undirected=True)
        sample = snowball_sample(g, budget=6, seed_vertex=0, rng_seed=2)
        assert sample.num_vertices == 6


class TestForestFire:
    def test_invalid_probability(self, kron):
        with pytest.raises(GraphError):
            forest_fire_sample(kron, budget=5, forward_probability=1.0)

    def test_hub_heavy_samples_keep_skew(self):
        g = scale_free(800, 4, seed=222)
        sample = forest_fire_sample(
            g, budget=200, forward_probability=0.7, rng_seed=3
        )
        # Forest fire tends to preserve heavy-tailed degrees.
        assert sample.out_degrees().max() > 3 * np.median(sample.out_degrees())


class TestRandomWalk:
    def test_invalid_restart(self, kron):
        with pytest.raises(GraphError):
            random_walk_sample(kron, budget=5, restart_probability=1.5)

    def test_escapes_dead_ends(self):
        from repro.graph.builders import from_edges

        # Directed chain into a sink plus an unreachable pair.
        g = from_edges([(0, 1), (1, 2), (3, 4)], num_vertices=5)
        sample = random_walk_sample(
            g, budget=5, seed_vertex=0, rng_seed=4, max_steps=50
        )
        assert sample.num_vertices == 5
