"""Every example script must run cleanly end-to-end.

The examples are part of the public deliverable; this keeps them from
rotting as the API evolves.  Each runs in a subprocess (so its
``__main__`` path and imports are exercised exactly as a user would).
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 6


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "examples must print something"


def test_quickstart_reports_key_metrics():
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    out = completed.stdout
    assert "traversal rate" in out
    assert "sharing degree" in out
    assert "early terminations" in out
