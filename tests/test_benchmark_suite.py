"""The 13-graph benchmark suite: naming, caching, and structure."""

import pytest

from repro.errors import GraphError
from repro.graph.benchmarks import (
    BENCHMARK_NAMES,
    benchmark_graph,
    benchmark_spec,
    benchmark_suite,
    clear_cache,
)
from repro.graph.properties import gini_coefficient


def test_all_thirteen_names_present():
    assert len(BENCHMARK_NAMES) == 13
    assert set(BENCHMARK_NAMES) == {
        "FB", "FR", "HW", "KG0", "KG1", "KG2", "LJ", "OR", "PK",
        "RD", "RM", "TW", "WK",
    }


def test_lookup_is_case_insensitive():
    assert benchmark_spec("kg0").name == "KG0"


def test_unknown_name_rejected():
    with pytest.raises(GraphError, match="unknown benchmark"):
        benchmark_graph("XX")


def test_graphs_are_cached():
    a = benchmark_graph("PK", scale_delta=-3)
    b = benchmark_graph("PK", scale_delta=-3)
    assert a is b


def test_cache_can_be_cleared():
    a = benchmark_graph("PK", scale_delta=-3)
    clear_cache()
    b = benchmark_graph("PK", scale_delta=-3)
    assert a is not b
    assert a == b  # deterministic regeneration


def test_scale_delta_changes_size():
    small = benchmark_graph("WK", scale_delta=-4)
    big = benchmark_graph("WK", scale_delta=-3)
    assert big.num_vertices == 2 * small.num_vertices


def test_too_small_scale_rejected():
    with pytest.raises(GraphError, match="too small"):
        benchmark_graph("PK", scale_delta=-8)


def test_rd_is_uniform_and_others_are_skewed():
    rd = benchmark_graph("RD", scale_delta=-3)
    fb = benchmark_graph("FB", scale_delta=-3)
    assert gini_coefficient(rd) < 0.2
    assert gini_coefficient(fb) > 0.4


def test_kg2_is_the_largest():
    sizes = {
        name: benchmark_graph(name, scale_delta=-3).num_edges
        for name in BENCHMARK_NAMES
    }
    assert max(sizes, key=sizes.get) == "KG2"


def test_suite_iterates_in_name_order():
    names = [name for name, _ in benchmark_suite(scale_delta=-4)]
    assert names == sorted(names)
    assert len(names) == 13


def test_generation_is_process_stable():
    """Benchmark graphs must not depend on Python hash randomization —
    a prior bug seeded them with hash(name), which varies per process
    and silently made benchmark results irreproducible."""
    import os
    import subprocess
    import sys

    import repro

    # The child needs to import repro; the parent may be running from a
    # src/ checkout rather than an installed package, so propagate the
    # package location (plus any existing PYTHONPATH) explicitly.
    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    pythonpath = os.pathsep.join(
        [src_dir] + [p for p in os.environ.get("PYTHONPATH", "").split(os.pathsep) if p]
    )
    script = (
        "from repro.graph.benchmarks import benchmark_graph;"
        "g = benchmark_graph('OR', scale_delta=-3);"
        "print(g.num_edges, int(g.col_indices[:50].sum()))"
    )
    outputs = set()
    for hash_seed in ("1", "42", "random"):
        completed = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env={
                "PYTHONHASHSEED": hash_seed,
                "PATH": "/usr/bin:/bin",
                "PYTHONPATH": pythonpath,
            },
        )
        assert completed.returncode == 0, completed.stderr
        outputs.add(completed.stdout.strip())
    assert len(outputs) == 1, outputs
