"""Profiling hooks: gating, sampling, and hot-path integration."""

import pytest

from repro.errors import ObservabilityError
from repro.core.engine import IBFS, IBFSConfig
from repro.obs import profile as obs_profile
from repro.obs import tracing
from repro.obs.profile import OVERHEAD_BUDGET, ProfileConfig


@pytest.fixture(autouse=True)
def _isolate():
    yield
    obs_profile.disable()
    tracing.set_tracer(None)


@pytest.fixture
def tracer():
    return tracing.configure(process="test")


class TestGating:
    def test_disabled_by_default_yields_null_context(self):
        with obs_profile.span("level", depth=0) as span:
            assert span is None
        assert not obs_profile.enabled()

    def test_disabled_tracer_also_gates(self):
        obs_profile.configure(enabled=True)
        with obs_profile.span("level") as span:
            assert span is None

    def test_enabled_records_prefixed_span(self, tracer):
        obs_profile.configure(enabled=True)
        with obs_profile.span("level", depth=2) as span:
            assert span is not None
        assert tracer.finished[0].name == "profile.level"
        assert tracer.finished[0].attrs == {"depth": 2}

    def test_sample_every_validation(self):
        with pytest.raises(ObservabilityError):
            ProfileConfig(sample_every=0)

    def test_budget_constant_documented(self):
        assert OVERHEAD_BUDGET == 0.05


class TestSampling:
    def test_sample_every_n_keeps_first_hit(self, tracer):
        obs_profile.configure(enabled=True, sample_every=3)
        for _ in range(7):
            with obs_profile.span("level"):
                pass
        # Hits 0, 3, 6 record: the first always does.
        assert len(tracer.finished) == 3

    def test_sites_sample_independently(self, tracer):
        obs_profile.configure(enabled=True, sample_every=2)
        with obs_profile.span("a"):
            pass
        with obs_profile.span("b"):
            pass
        names = {s.name for s in tracer.finished}
        assert names == {"profile.a", "profile.b"}

    def test_reconfigure_resets_site_counters(self, tracer):
        obs_profile.configure(enabled=True, sample_every=2)
        with obs_profile.span("a"):
            pass
        obs_profile.configure(enabled=True, sample_every=2)
        with obs_profile.span("a"):
            pass
        assert len(tracer.finished) == 2


class TestEngineIntegration:
    def test_run_emits_level_and_group_spans(self, tracer, kron_graph):
        obs_profile.configure(enabled=True)
        IBFS(kron_graph, IBFSConfig(group_size=8)).run(
            list(range(8)), store_depths=False
        )
        names = [s.name for s in tracer.finished]
        assert "profile.engine.run_group" in names
        levels = [s for s in tracer.finished if s.name == "profile.level"]
        assert levels
        depths = [s.attrs["depth"] for s in levels]
        assert depths == sorted(depths)
        assert all(s.duration > 0 for s in levels)

    def test_profiling_off_leaves_trace_empty(self, tracer, kron_graph):
        IBFS(kron_graph, IBFSConfig(group_size=8)).run(
            list(range(8)), store_depths=False
        )
        assert tracer.finished == []

    def test_results_identical_with_profiling(self, kron_graph):
        import numpy as np

        engine = IBFS(kron_graph, IBFSConfig(group_size=8))
        plain = engine.run(list(range(16)), store_depths=True)
        obs_profile.configure(enabled=True)
        tracing.configure(process="p")
        profiled = engine.run(list(range(16)), store_depths=True)
        assert np.array_equal(plain.depths, profiled.depths)
        assert plain.seconds == profiled.seconds
        assert plain.counters.__dict__ == profiled.counters.__dict__

    def test_bottomup_kernel_spans_tagged_with_positions(
        self, tracer, kron_graph
    ):
        obs_profile.configure(enabled=True)
        IBFS(kron_graph, IBFSConfig(group_size=8)).run(
            list(range(8)), store_depths=False
        )
        spans = [s for s in tracer.finished
                 if s.name == "profile.kernels.bottomup_or_scan"]
        assert spans  # the bitwise engine goes bottom-up on this graph
        assert all(s.attrs["positions"] > 0 for s in spans)
        levels = [s for s in tracer.finished if s.name == "profile.level"]
        bu = sum(s.attrs["bu_instances"] > 0 for s in levels)
        assert bu > 0
