"""Shared-memory graph publication: round trips, refcounts, transport."""

import numpy as np
import pytest

from repro.graph.generators import kronecker
from repro.bfs.reference import reference_bfs
from repro.exec.shm import (
    attach_graph,
    discard_array,
    pop_array,
    publish_graph,
    published_refcount,
    push_array,
    release_graph,
    shared_memory_available,
)

pytestmark = pytest.mark.skipif(
    not shared_memory_available(),
    reason="multiprocessing.shared_memory unavailable",
)


@pytest.fixture(scope="module")
def graph():
    return kronecker(scale=7, edge_factor=8, seed=9)


class TestPublishAttach:
    def test_round_trip_preserves_structure(self, graph):
        handle = publish_graph(graph)
        try:
            attached = attach_graph(handle)
            try:
                g = attached.graph
                assert g.num_vertices == graph.num_vertices
                assert g.num_edges == graph.num_edges
                assert np.array_equal(g.row_offsets, graph.row_offsets)
                assert np.array_equal(g.col_indices, graph.col_indices)
            finally:
                attached.close()
        finally:
            release_graph(handle)

    def test_attached_traversal_matches(self, graph):
        handle = publish_graph(handle_graph := graph)
        try:
            with attach_graph(handle) as attached:
                assert np.array_equal(
                    reference_bfs(attached.graph, 0),
                    reference_bfs(handle_graph, 0),
                )
        finally:
            release_graph(handle)

    def test_caches_preinstalled(self, graph):
        handle = publish_graph(graph)
        try:
            with attach_graph(handle) as attached:
                g = attached.graph
                # Outdegrees, fingerprint, and the reverse CSR all ride
                # along — nothing O(|E|) is recomputed in the worker.
                assert g._cache_id == handle.graph_id
                assert np.array_equal(g.out_degrees(), graph.out_degrees())
                assert handle.has_reverse
                rev = g.reverse()
                expected = graph.reverse()
                assert np.array_equal(rev.row_offsets, expected.row_offsets)
                assert np.array_equal(rev.col_indices, expected.col_indices)
        finally:
            release_graph(handle)

    def test_no_reverse_when_not_requested(self, graph):
        handle = publish_graph(graph, include_reverse=False)
        try:
            assert not handle.has_reverse
        finally:
            release_graph(handle)

    def test_arrays_read_only(self, graph):
        handle = publish_graph(graph)
        try:
            with attach_graph(handle) as attached:
                with pytest.raises(ValueError):
                    attached.graph.row_offsets[0] = 99
        finally:
            release_graph(handle)


class TestRefcounting:
    def test_republish_shares_segments(self, graph):
        assert published_refcount(graph) == 0
        h1 = publish_graph(graph)
        h2 = publish_graph(graph)
        assert h1 is h2
        assert published_refcount(graph) == 2
        release_graph(h1)
        assert published_refcount(graph) == 1
        # Still attachable while one reference remains.
        with attach_graph(h2) as attached:
            assert attached.graph.num_vertices == graph.num_vertices
        release_graph(h2)
        assert published_refcount(graph) == 0

    def test_release_unlinks_segments(self, graph):
        handle = publish_graph(graph)
        release_graph(handle)
        with pytest.raises(FileNotFoundError):
            attach_graph(handle)

    def test_over_release_is_harmless(self, graph):
        handle = publish_graph(graph)
        release_graph(handle)
        release_graph(handle)
        assert published_refcount(graph) == 0


class TestArrayTransport:
    def test_push_pop_round_trip(self):
        arr = np.arange(24, dtype=np.int32).reshape(4, 6)
        spec = push_array(arr)
        out = pop_array(spec)
        assert np.array_equal(out, arr)
        assert out.dtype == arr.dtype

    def test_pop_unlinks(self):
        spec = push_array(np.ones(8, dtype=np.int32))
        pop_array(spec)
        with pytest.raises(FileNotFoundError):
            pop_array(spec)

    def test_discard_without_reading(self):
        spec = push_array(np.ones(8, dtype=np.int32))
        discard_array(spec)
        with pytest.raises(FileNotFoundError):
            pop_array(spec)

    def test_discard_twice_is_harmless(self):
        spec = push_array(np.ones(4, dtype=np.int32))
        discard_array(spec)
        discard_array(spec)
