"""Run-record trace export."""

import json

import pytest

from repro.graph.generators import kronecker
from repro.gpusim.device import Device
from repro.gpusim.trace import (
    TRACE_FIELDS,
    record_to_json,
    record_to_rows,
    summarize_record,
)
from repro.bfs.single import SingleBFS


@pytest.fixture(scope="module")
def run():
    graph = kronecker(scale=7, edge_factor=8, seed=91)
    device = Device()
    result = SingleBFS(graph, device).run(0)
    return result.record, device


def test_rows_have_all_fields(run):
    record, device = run
    rows = record_to_rows(record, device.cost)
    assert len(rows) == len(record.levels)
    for row in rows:
        assert set(TRACE_FIELDS) <= set(row)
        assert row["seconds"] > 0


def test_rows_without_cost_model_leave_seconds_none(run):
    record, _ = run
    assert record_to_rows(record)[0]["seconds"] is None


def test_json_round_trips(run):
    record, device = run
    payload = json.loads(record_to_json(record, device.cost))
    assert len(payload["levels"]) == len(record.levels)
    assert (
        payload["counters"]["global_load_transactions"]
        == record.counters.global_load_transactions
    )
    assert payload["counters"]["levels"] == record.counters.levels


def test_summary_totals_consistent(run):
    record, device = run
    summary = summarize_record(record, device.cost)
    assert summary["levels"] == len(record.levels)
    assert summary["td_levels"] + summary["bu_levels"] == summary["levels"]
    assert (
        summary["td_transactions"] + summary["bu_transactions"]
        == summary["total_transactions"]
    )
    assert summary["seconds"] == pytest.approx(
        device.cost.kernel_time(record.levels)
    )
    assert summary["peak_frontier"] > 0
