"""Run-record trace export."""

import json

import pytest

from repro.errors import SimulationError, TraceSchemaError
from repro.graph.generators import kronecker
from repro.gpusim.device import Device
from repro.gpusim.trace import (
    TRACE_FIELDS,
    level_to_row,
    record_to_json,
    record_to_rows,
    summarize_record,
    validate_rows,
)
from repro.bfs.single import SingleBFS


@pytest.fixture(scope="module")
def run():
    graph = kronecker(scale=7, edge_factor=8, seed=91)
    device = Device()
    result = SingleBFS(graph, device).run(0)
    return result.record, device


def test_rows_have_all_fields(run):
    record, device = run
    rows = record_to_rows(record, device.cost)
    assert len(rows) == len(record.levels)
    for row in rows:
        assert set(TRACE_FIELDS) <= set(row)
        assert row["seconds"] > 0


def test_rows_without_cost_model_leave_seconds_none(run):
    record, _ = run
    assert record_to_rows(record)[0]["seconds"] is None


def test_json_round_trips(run):
    record, device = run
    payload = json.loads(record_to_json(record, device.cost))
    assert len(payload["levels"]) == len(record.levels)
    assert (
        payload["counters"]["global_load_transactions"]
        == record.counters.global_load_transactions
    )
    assert payload["counters"]["levels"] == record.counters.levels


def test_trace_fields_match_level_to_row_exactly(run):
    # TRACE_FIELDS is the declared schema; level_to_row is the
    # implementation.  They must agree key-for-key (and in order, since
    # TRACE_FIELDS doubles as the column order for tabular exports).
    record, device = run
    row = level_to_row(record.levels[0], device.cost)
    assert tuple(row) == TRACE_FIELDS


def test_validate_rows_accepts_real_rows(run):
    record, device = run
    rows = record_to_rows(record, device.cost)
    assert validate_rows(rows) is rows


def test_unknown_field_fails_closed(run):
    record, device = run
    rows = record_to_rows(record, device.cost)
    rows[1]["warp_divergence"] = 7
    with pytest.raises(TraceSchemaError, match="warp_divergence"):
        validate_rows(rows)
    assert issubclass(TraceSchemaError, SimulationError)


def test_missing_field_fails_closed(run):
    record, device = run
    rows = record_to_rows(record, device.cost)
    del rows[0]["atomics"]
    with pytest.raises(TraceSchemaError, match="atomics"):
        validate_rows(rows)


def test_record_to_json_validates(run, monkeypatch):
    # record_to_json must refuse to serialize drifted rows rather than
    # silently shipping an undeclared schema.
    import repro.gpusim.trace as trace_mod

    record, device = run
    real = trace_mod.level_to_row

    def drifted(level, cost=None):
        row = real(level, cost)
        row["surprise"] = 1
        return row

    monkeypatch.setattr(trace_mod, "level_to_row", drifted)
    with pytest.raises(TraceSchemaError, match="surprise"):
        record_to_json(record, device.cost)


def test_summary_totals_consistent(run):
    record, device = run
    summary = summarize_record(record, device.cost)
    assert summary["levels"] == len(record.levels)
    assert summary["td_levels"] + summary["bu_levels"] == summary["levels"]
    assert (
        summary["td_transactions"] + summary["bu_transactions"]
        == summary["total_transactions"]
    )
    assert summary["seconds"] == pytest.approx(
        device.cost.kernel_time(record.levels)
    )
    assert summary["peak_frontier"] > 0
