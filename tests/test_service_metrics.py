"""MetricsRegistry: percentile math and snapshot non-mutation."""

import pytest

from repro.service.metrics import BatchRecord, MetricsRegistry, percentile


class TestPercentile:
    def test_empty(self):
        assert percentile([], 50.0) == 0.0

    def test_single_value(self):
        assert percentile([3.0], 99.0) == 3.0

    def test_interpolation(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 50.0) == pytest.approx(2.5)
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 100.0) == 4.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)
        with pytest.raises(ValueError):
            percentile([1.0], -1.0)

    def test_presorted_matches_unsorted(self):
        values = [5.0, 1.0, 4.0, 2.0, 3.0]
        ordered = sorted(values)
        for q in (0.0, 25.0, 50.0, 90.0, 99.0, 100.0):
            assert percentile(values, q) == percentile(
                ordered, q, presorted=True
            )

    def test_input_never_mutated(self):
        values = [5.0, 1.0, 4.0]
        percentile(values, 50.0)
        assert values == [5.0, 1.0, 4.0]


class TestRegistrySnapshots:
    def make_registry(self):
        registry = MetricsRegistry()
        for i, latency in enumerate([5e-6, 1e-6, 9e-6, 3e-6, 7e-6]):
            registry.record_submit(queue_depth=i)
            registry.record_completion(latency, cached=(i == 0))
        registry.record_batch(
            BatchRecord(
                batch_id=0, launch_time=0.0, seconds=1e-5,
                num_requests=4, num_sources=4, batch_limit=8,
                sharing_degree=2.0,
            )
        )
        return registry

    def test_snapshot_does_not_mutate_recorded_values(self):
        # Regression: latency_percentiles() used to be fed by repeated
        # per-quantile sorts; the reservoir must stay a completion-order
        # log no matter how many snapshots are taken.
        registry = self.make_registry()
        before = list(registry.latencies)
        assert before != sorted(before)
        registry.snapshot(elapsed=1.0)
        registry.latency_percentiles()
        registry.snapshot(elapsed=2.0)
        assert registry.latencies == before

    def test_repeated_snapshots_identical(self):
        registry = self.make_registry()
        assert registry.snapshot(elapsed=1.0) == registry.snapshot(elapsed=1.0)

    def test_percentile_values(self):
        registry = self.make_registry()
        stats = registry.latency_percentiles()
        assert stats["p50"] == pytest.approx(5e-6)
        assert stats["max"] == pytest.approx(9e-6)
        assert stats["mean"] == pytest.approx(5e-6)

    def test_histogram_and_reservoir_agree(self):
        # Completions land in both the plain latency log and the obs
        # histogram; the histogram is the percentile source of truth.
        registry = self.make_registry()
        assert registry.latency_histogram.samples == registry.latencies
        assert registry.latency_histogram.count == registry.completed
        stats = registry.latency_percentiles()
        assert stats["p99"] == registry.latency_histogram.quantile(99.0)


class TestHubPublish:
    def test_publish_exports_totals_and_latency_histogram(self):
        from repro.obs.metrics import MetricsHub

        registry = TestRegistrySnapshots().make_registry()
        hub = MetricsHub()
        registry.publish(hub)
        assert hub.get("serving_requests_completed").value == 5.0
        assert hub.get("serving_cache_hits").value == 1.0
        assert hub.get("serving_latency_seconds") is registry.latency_histogram

    def test_publish_is_idempotent(self):
        from repro.obs.metrics import MetricsHub

        registry = TestRegistrySnapshots().make_registry()
        hub = MetricsHub()
        registry.publish(hub)
        registry.record_completion(2e-6, cached=False)
        registry.publish(hub)  # refresh, not re-register
        assert hub.get("serving_requests_completed").value == 6.0
