"""Shared-memory reclamation: crashed workers must not orphan segments.

A worker that dies *after* pushing its result segment but *before* its
reply lands on the queue used to leak the segment forever — the name
was worker-generated, so the parent had nothing to unlink.  Result
segments are now named by the parent and shipped with the task, so
every fault path (crash, timeout, teardown mid-flight) can reclaim
them by name.  These tests kill workers in that exact window and then
scan ``/dev/shm`` for leftovers.
"""

import glob
import os

import numpy as np
import pytest

from repro.graph.generators import kronecker
from repro.core.engine import IBFS, IBFSConfig
from repro.exec import ExecConfig, FaultPlan, FaultPolicy, GroupExecutor
from repro.exec.shm import (
    discard_segment,
    push_array,
    result_segment_name,
    shared_memory_available,
)

needs_shm = pytest.mark.skipif(
    not shared_memory_available(),
    reason="multiprocessing.shared_memory unavailable",
)

_SHM_DIR = "/dev/shm"


def _repro_segments():
    """Names of live repro-owned shared-memory segments on this host."""
    if not os.path.isdir(_SHM_DIR):  # pragma: no cover - non-Linux
        return set()
    return {
        os.path.basename(p)
        for p in glob.glob(os.path.join(_SHM_DIR, "repro-*"))
    }


@pytest.fixture(scope="module")
def graph():
    return kronecker(scale=7, edge_factor=8, seed=9)


@pytest.fixture(scope="module")
def serial(graph):
    return IBFS(graph, IBFSConfig(group_size=8)).run(
        list(range(32)), store_depths=True
    )


class TestNamedResultSegments:
    def test_push_array_honors_given_name(self):
        name = result_segment_name()
        spec = push_array(np.arange(6, dtype=np.int32), name=name)
        try:
            assert spec.name == name
        finally:
            discard_segment(name)

    def test_discard_segment_missing_is_noop(self):
        discard_segment(result_segment_name())


@needs_shm
class TestCrashReclamation:
    def test_crash_after_push_leaves_no_segments(self, graph, serial):
        """The regression: kill workers between push_array and the
        reply; depths stay bit-identical and /dev/shm stays clean."""
        before = _repro_segments()
        with GroupExecutor(
            graph,
            IBFSConfig(group_size=8),
            exec_config=ExecConfig(
                num_workers=2,
                fault_plan=FaultPlan(crash_after_result={0: 1, 2: 1}),
                faults=FaultPolicy(max_retries=2, respawn_limit=4),
            ),
        ) as executor:
            result = executor.run(list(range(32)), store_depths=True)
            assert executor.last_stats.crashes >= 2
        assert np.array_equal(result.depths, serial.depths)
        assert _repro_segments() - before == set()

    def test_crash_before_push_leaves_no_segments(self, graph, serial):
        before = _repro_segments()
        with GroupExecutor(
            graph,
            IBFSConfig(group_size=8),
            exec_config=ExecConfig(
                num_workers=2,
                fault_plan=FaultPlan(crash={1: 1}),
                faults=FaultPolicy(max_retries=2, respawn_limit=4),
            ),
        ) as executor:
            result = executor.run(list(range(32)), store_depths=True)
            assert executor.last_stats.crashes >= 1
        assert np.array_equal(result.depths, serial.depths)
        assert _repro_segments() - before == set()

    def test_teardown_reclaims_undelivered_results(self, graph):
        """fail_fast aborts the run while other workers may still be
        pushing; close() must sweep whatever never got consumed."""
        from repro.errors import WorkerCrashError

        before = _repro_segments()
        executor = GroupExecutor(
            graph,
            IBFSConfig(group_size=8),
            exec_config=ExecConfig(
                num_workers=2,
                fault_plan=FaultPlan(crash_after_result={0: 99}),
                faults=FaultPolicy(fail_fast=True, respawn_limit=0),
            ),
        )
        try:
            with pytest.raises(WorkerCrashError):
                executor.run(list(range(32)), store_depths=True)
        finally:
            executor.close()
        assert _repro_segments() - before == set()

    def test_clean_run_leaves_no_segments(self, graph, serial):
        before = _repro_segments()
        with GroupExecutor(
            graph,
            IBFSConfig(group_size=8),
            exec_config=ExecConfig(num_workers=2),
        ) as executor:
            result = executor.run(list(range(32)), store_depths=True)
        assert np.array_equal(result.depths, serial.depths)
        assert _repro_segments() - before == set()

@needs_shm
class TestEpochSegmentReclamation:
    """Epoch lifecycle over shared memory: superseding an epoch must
    give its segments back once no live reader pins it — even when a
    reader crashed while still holding a pin."""

    def test_superseded_unpinned_epoch_releases_segments(self, graph):
        from repro.stream import EpochStore

        before = _repro_segments()
        with EpochStore(graph, share=True) as store:
            assert _repro_segments() - before != set()
            store.overlay.insert_edges([0], [1])
            store.publish()
            # Epoch 0 was unpinned: reclaimed at publish; only epoch
            # 1's segments remain, and close() sweeps those.
            assert store.live_epochs() == [1]
            assert store.reclaimed_epochs == 1
        assert _repro_segments() - before == set()

    def test_pinned_epoch_keeps_segments_until_unpin(self, graph):
        from repro.stream import EpochStore

        before = _repro_segments()
        with EpochStore(graph, share=True) as store:
            token = store.pin()
            epoch0_segments = _repro_segments() - before
            store.overlay.insert_edges([0], [1])
            store.publish()
            # Pinned epoch 0 still holds its segments after supersession.
            assert epoch0_segments <= _repro_segments()
            store.unpin(token)
            assert epoch0_segments - _repro_segments() == epoch0_segments
        assert _repro_segments() - before == set()

    def test_crashed_reader_pin_does_not_leak_segments(self, graph):
        """The satellite regression: a reader that pinned epoch 0 and
        then died must not keep the superseded epoch's segments alive;
        gc() probes the recorded pid and reclaims."""
        import multiprocessing
        import time

        from repro.stream import EpochStore

        before = _repro_segments()
        reader = multiprocessing.get_context("spawn").Process(
            target=time.sleep, args=(60,)
        )
        reader.start()
        try:
            with EpochStore(graph, share=True) as store:
                store.pin(pid=reader.pid)
                epoch0_segments = _repro_segments() - before
                store.overlay.insert_edges([0], [1])
                store.publish()
                # Reader alive: its pin holds epoch 0's segments.
                assert epoch0_segments <= _repro_segments()
                assert store.live_epochs() == [0, 1]

                reader.terminate()
                reader.join()
                assert store.gc() == 1
                assert store.live_epochs() == [1]
                assert epoch0_segments - _repro_segments() \
                    == epoch0_segments
        finally:
            if reader.is_alive():  # pragma: no cover - cleanup path
                reader.terminate()
                reader.join()
        assert _repro_segments() - before == set()
