"""Shared-memory reclamation: crashed workers must not orphan segments.

A worker that dies *after* pushing its result segment but *before* its
reply lands on the queue used to leak the segment forever — the name
was worker-generated, so the parent had nothing to unlink.  Result
segments are now named by the parent and shipped with the task, so
every fault path (crash, timeout, teardown mid-flight) can reclaim
them by name.  These tests kill workers in that exact window and then
scan ``/dev/shm`` for leftovers.
"""

import glob
import os

import numpy as np
import pytest

from repro.graph.generators import kronecker
from repro.core.engine import IBFS, IBFSConfig
from repro.exec import ExecConfig, FaultPlan, FaultPolicy, GroupExecutor
from repro.exec.shm import (
    discard_segment,
    push_array,
    result_segment_name,
    shared_memory_available,
)

needs_shm = pytest.mark.skipif(
    not shared_memory_available(),
    reason="multiprocessing.shared_memory unavailable",
)

_SHM_DIR = "/dev/shm"


def _repro_segments():
    """Names of live repro-owned shared-memory segments on this host."""
    if not os.path.isdir(_SHM_DIR):  # pragma: no cover - non-Linux
        return set()
    return {
        os.path.basename(p)
        for p in glob.glob(os.path.join(_SHM_DIR, "repro-*"))
    }


@pytest.fixture(scope="module")
def graph():
    return kronecker(scale=7, edge_factor=8, seed=9)


@pytest.fixture(scope="module")
def serial(graph):
    return IBFS(graph, IBFSConfig(group_size=8)).run(
        list(range(32)), store_depths=True
    )


class TestNamedResultSegments:
    def test_push_array_honors_given_name(self):
        name = result_segment_name()
        spec = push_array(np.arange(6, dtype=np.int32), name=name)
        try:
            assert spec.name == name
        finally:
            discard_segment(name)

    def test_discard_segment_missing_is_noop(self):
        discard_segment(result_segment_name())


@needs_shm
class TestCrashReclamation:
    def test_crash_after_push_leaves_no_segments(self, graph, serial):
        """The regression: kill workers between push_array and the
        reply; depths stay bit-identical and /dev/shm stays clean."""
        before = _repro_segments()
        with GroupExecutor(
            graph,
            IBFSConfig(group_size=8),
            exec_config=ExecConfig(
                num_workers=2,
                fault_plan=FaultPlan(crash_after_result={0: 1, 2: 1}),
                faults=FaultPolicy(max_retries=2, respawn_limit=4),
            ),
        ) as executor:
            result = executor.run(list(range(32)), store_depths=True)
            assert executor.last_stats.crashes >= 2
        assert np.array_equal(result.depths, serial.depths)
        assert _repro_segments() - before == set()

    def test_crash_before_push_leaves_no_segments(self, graph, serial):
        before = _repro_segments()
        with GroupExecutor(
            graph,
            IBFSConfig(group_size=8),
            exec_config=ExecConfig(
                num_workers=2,
                fault_plan=FaultPlan(crash={1: 1}),
                faults=FaultPolicy(max_retries=2, respawn_limit=4),
            ),
        ) as executor:
            result = executor.run(list(range(32)), store_depths=True)
            assert executor.last_stats.crashes >= 1
        assert np.array_equal(result.depths, serial.depths)
        assert _repro_segments() - before == set()

    def test_teardown_reclaims_undelivered_results(self, graph):
        """fail_fast aborts the run while other workers may still be
        pushing; close() must sweep whatever never got consumed."""
        from repro.errors import WorkerCrashError

        before = _repro_segments()
        executor = GroupExecutor(
            graph,
            IBFSConfig(group_size=8),
            exec_config=ExecConfig(
                num_workers=2,
                fault_plan=FaultPlan(crash_after_result={0: 99}),
                faults=FaultPolicy(fail_fast=True, respawn_limit=0),
            ),
        )
        try:
            with pytest.raises(WorkerCrashError):
                executor.run(list(range(32)), store_depths=True)
        finally:
            executor.close()
        assert _repro_segments() - before == set()

    def test_clean_run_leaves_no_segments(self, graph, serial):
        before = _repro_segments()
        with GroupExecutor(
            graph,
            IBFSConfig(group_size=8),
            exec_config=ExecConfig(num_workers=2),
        ) as executor:
            result = executor.run(list(range(32)), store_depths=True)
        assert np.array_equal(result.depths, serial.depths)
        assert _repro_segments() - before == set()
