"""Edge-list / adjacency builders and graph transforms."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.builders import (
    from_adjacency,
    from_edge_arrays,
    from_edges,
    relabel_random,
    simplify,
    subgraph,
    to_undirected,
)
from repro.bfs.reference import reference_bfs


class TestFromEdges:
    def test_simple(self):
        g = from_edges([(0, 1), (1, 2)])
        assert g.num_vertices == 3
        assert g.num_edges == 2

    def test_empty(self):
        g = from_edges([])
        assert g.num_vertices == 0
        assert g.num_edges == 0

    def test_explicit_vertex_count(self):
        g = from_edges([(0, 1)], num_vertices=10)
        assert g.num_vertices == 10

    def test_vertex_count_too_small_rejected(self):
        with pytest.raises(GraphError):
            from_edges([(0, 5)], num_vertices=3)

    def test_negative_ids_rejected(self):
        with pytest.raises(GraphError):
            from_edges([(-1, 0)])

    def test_undirected_doubles_edges(self):
        g = from_edges([(0, 1), (1, 2)], undirected=True)
        assert g.num_edges == 4
        assert g.is_symmetric()

    def test_multi_edges_preserved(self):
        g = from_edges([(0, 1), (0, 1), (0, 1)])
        assert g.num_edges == 3
        assert g.out_degree(0) == 3

    def test_self_loops_preserved(self):
        g = from_edges([(2, 2)])
        assert g.has_edge(2, 2)

    def test_edge_order_preserved_per_source(self):
        g = from_edges([(1, 9), (0, 5), (1, 3), (0, 2)], num_vertices=10)
        assert g.neighbors(0).tolist() == [5, 2]
        assert g.neighbors(1).tolist() == [9, 3]


class TestFromEdgeArrays:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(GraphError):
            from_edge_arrays(np.asarray([0, 1]), np.asarray([1]))

    def test_two_dimensional_rejected(self):
        with pytest.raises(GraphError):
            from_edge_arrays(np.zeros((2, 2)), np.zeros((2, 2)))


class TestFromAdjacency:
    def test_round_trip(self):
        adj = [[1, 2], [2], [], [0]]
        g = from_adjacency(adj)
        assert [g.neighbors(v).tolist() for v in range(4)] == adj

    def test_all_empty(self):
        g = from_adjacency([[], [], []])
        assert g.num_vertices == 3
        assert g.num_edges == 0


class TestTransforms:
    def test_to_undirected_symmetrizes(self):
        g = to_undirected(from_edges([(0, 1), (2, 1)]))
        assert g.is_symmetric()
        assert g.num_edges == 4

    def test_relabel_preserves_depth_multiset(self):
        g = from_edges(
            [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)], undirected=True
        )
        relabeled = relabel_random(g, seed=5)
        original = sorted(reference_bfs(g, 0).tolist())
        # BFS from the relabeled image of vertex 0.
        depths = [sorted(reference_bfs(relabeled, s).tolist()) for s in range(5)]
        assert original in depths

    def test_subgraph_induces_edges(self):
        g = from_edges([(0, 1), (1, 2), (2, 3), (0, 3)])
        sub = subgraph(g, [0, 1, 3])
        assert sub.num_vertices == 3
        assert sorted(sub.edges()) == [(0, 1), (0, 2)]

    def test_subgraph_duplicate_vertices_rejected(self):
        g = from_edges([(0, 1)])
        with pytest.raises(GraphError):
            subgraph(g, [0, 0])

    def test_simplify_collapses_parallels_and_loops(self):
        g = from_edges([(0, 1), (0, 1), (1, 1), (1, 2)], num_vertices=3)
        simple = simplify(g)
        assert sorted(simple.edges()) == [(0, 1), (1, 2)]

    def test_simplify_can_keep_self_loops(self):
        g = from_edges([(0, 0), (0, 0), (0, 1)])
        simple = simplify(g, remove_self_loops=False)
        assert sorted(simple.edges()) == [(0, 0), (0, 1)]

    def test_simplify_preserves_vertex_count(self):
        g = from_edges([(0, 1)], num_vertices=7)
        assert simplify(g).num_vertices == 7

    def test_simplify_empty_graph(self):
        from repro.graph.csr import empty_graph

        assert simplify(empty_graph(3)).num_vertices == 3
