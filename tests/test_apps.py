"""Applications: reachability index, closeness, betweenness."""

import numpy as np
import pytest

from repro.errors import TraversalError
from repro.graph.builders import from_edges, to_undirected
from repro.graph.generators import kronecker, path, star
from repro.bfs.reference import reference_bfs_multi
from repro.core.engine import IBFS, IBFSConfig
from repro.apps.betweenness import betweenness_centrality
from repro.apps.closeness import closeness_centrality
from repro.apps.reachability import ReachabilityIndex, build_reachability_index


@pytest.fixture(scope="module")
def kron():
    return kronecker(scale=7, edge_factor=8, seed=14)


@pytest.fixture(scope="module")
def engine(kron):
    return IBFS(kron, IBFSConfig(group_size=16))


class TestReachability:
    def test_queries_match_reference(self, kron, engine):
        sources = list(range(12))
        index = build_reachability_index(kron, engine, sources, k=3)
        ref = reference_bfs_multi(kron, sources)
        for s in sources:
            for t in range(0, kron.num_vertices, 11):
                assert index.query(s, t) == (0 <= ref[s][t] <= 3)

    def test_source_always_reaches_itself(self, kron, engine):
        index = build_reachability_index(kron, engine, [5], k=1)
        assert index.query(5, 5)

    def test_unindexed_source_rejected(self, kron, engine):
        index = build_reachability_index(kron, engine, [0, 1], k=2)
        with pytest.raises(TraversalError, match="not indexed"):
            index.query(99, 0)

    def test_target_out_of_range(self, kron, engine):
        index = build_reachability_index(kron, engine, [0], k=2)
        with pytest.raises(TraversalError, match="out of range"):
            index.query(0, 10**6)

    def test_invalid_k(self, kron, engine):
        with pytest.raises(TraversalError):
            build_reachability_index(kron, engine, [0], k=0)
        with pytest.raises(TraversalError):
            ReachabilityIndex(0, [], {}, 0.0)

    def test_build_time_recorded(self, kron, engine):
        index = build_reachability_index(kron, engine, range(8), k=3)
        assert index.build_seconds > 0

    def test_reachable_count_and_memory(self, kron, engine):
        index = build_reachability_index(kron, engine, [0], k=2)
        assert index.reachable_count(0) >= 1
        assert index.memory_bytes() == kron.num_vertices

    def test_k_monotonicity(self, kron, engine):
        small = build_reachability_index(kron, engine, [3], k=1)
        large = build_reachability_index(kron, engine, [3], k=3)
        assert small.reachable_count(3) <= large.reachable_count(3)


class TestCloseness:
    def test_star_hub_has_maximal_closeness(self):
        g = star(10)
        scores = closeness_centrality(g, IBFS(g, IBFSConfig(group_size=11)))
        assert scores[0] == max(scores.values())
        assert scores[0] == pytest.approx(1.0)

    def test_path_center_beats_ends(self):
        g = path(7)
        scores = closeness_centrality(g, IBFS(g, IBFSConfig(group_size=7)))
        assert scores[3] > scores[0]
        assert scores[0] == pytest.approx(scores[6])

    def test_isolated_vertex_scores_zero(self):
        g = from_edges([(0, 1)], num_vertices=3, undirected=True)
        scores = closeness_centrality(g, IBFS(g, IBFSConfig(group_size=4)))
        assert scores[2] == 0.0

    def test_subset_of_sources(self, kron, engine):
        scores = closeness_centrality(kron, engine, sources=[1, 2, 3])
        assert set(scores) == {1, 2, 3}


class TestBetweenness:
    def test_path_interior_dominates(self):
        # Directed convention on a symmetrized path: 2x the undirected BC.
        bc = betweenness_centrality(path(6), normalized=False)
        assert bc.tolist() == [0.0, 8.0, 12.0, 12.0, 8.0, 0.0]

    def test_star_hub_dominates(self):
        bc = betweenness_centrality(star(8), normalized=False)
        assert bc[0] > 0
        assert np.allclose(bc[1:], 0.0)

    def test_normalization(self):
        raw = betweenness_centrality(path(6), normalized=False)
        norm = betweenness_centrality(path(6), normalized=True)
        assert np.allclose(norm, raw / (5 * 4))

    def test_sampled_sources_are_partial_sums(self):
        g = to_undirected(path(5))
        full = betweenness_centrality(g, normalized=False)
        part = betweenness_centrality(g, sources=[0], normalized=False)
        assert (part <= full + 1e-12).all()

    def test_source_out_of_range(self):
        with pytest.raises(TraversalError):
            betweenness_centrality(path(3), sources=[5])

    def test_triangle_has_no_betweenness(self):
        g = from_edges([(0, 1), (1, 2), (2, 0)], undirected=True)
        bc = betweenness_centrality(g, normalized=False)
        assert np.allclose(bc, 0.0)
