"""Planner policy behavior and the validation satellites.

Covers the typed rejection of bad direction thresholds (in the planner
and through the deprecated ``repro.bfs.direction`` shim), the engine
configuration validation that rides this layer, and the decision
semantics of every policy family.
"""

import warnings

import pytest

import repro.native as native
from repro.errors import TraversalError
from repro.core.engine import IBFSConfig
from repro.core.groupby import GroupByConfig
from repro.gpusim.config import KEPLER_K40, XEON_CPU
from repro.gpusim.device import Device
from repro.plan import (
    AdaptivePolicy,
    DIRECTION_MODES,
    Direction,
    DirectionPolicy,
    FixedPolicy,
    HeuristicPolicy,
    LevelDecision,
    POLICY_NAMES,
    RecordedPolicy,
    RunPlan,
    make_policy,
)

TD = Direction.TOP_DOWN
BU = Direction.BOTTOM_UP


# ----------------------------------------------------------------------
# DirectionPolicy threshold validation (planner + legacy shim)
# ----------------------------------------------------------------------
class TestDirectionPolicyValidation:
    @pytest.mark.parametrize("alpha", [0.0, -1.0, -14.0])
    def test_rejects_nonpositive_alpha(self, alpha):
        with pytest.raises(TraversalError, match="alpha must be positive"):
            DirectionPolicy(alpha=alpha)

    @pytest.mark.parametrize("beta", [0.0, -0.5, -24.0])
    def test_rejects_nonpositive_beta(self, beta):
        with pytest.raises(TraversalError, match="beta must be positive"):
            DirectionPolicy(beta=beta)

    def test_defaults_are_beamer(self):
        policy = DirectionPolicy()
        assert policy.alpha == 14.0
        assert policy.beta == 24.0

    def test_shim_reexports_same_class_and_validates(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            import importlib

            import repro.bfs.direction as shim

            importlib.reload(shim)
        assert shim.DirectionPolicy is DirectionPolicy
        assert shim.Direction is Direction
        with pytest.raises(TraversalError, match="alpha must be positive"):
            shim.DirectionPolicy(alpha=0.0)
        with pytest.raises(TraversalError, match="beta must be positive"):
            shim.DirectionPolicy(beta=-1.0)

    def test_shim_warns_on_import(self):
        import importlib
        import sys

        sys.modules.pop("repro.bfs.direction", None)
        with pytest.warns(DeprecationWarning, match="repro.plan"):
            import repro.bfs.direction as shim

            importlib.reload(shim)


# ----------------------------------------------------------------------
# IBFSConfig validation satellites
# ----------------------------------------------------------------------
class TestIBFSConfigValidation:
    @pytest.mark.parametrize("width", [0, 3, 5, 8, -2])
    def test_rejects_bad_vector_width(self, width):
        with pytest.raises(TraversalError, match="vector_width"):
            IBFSConfig(vector_width=width)

    @pytest.mark.parametrize("width", [1, 2, 4])
    def test_accepts_supported_vector_widths(self, width):
        assert IBFSConfig(vector_width=width).vector_width == width

    def test_rejects_vector_width_in_joint_mode(self):
        with pytest.raises(TraversalError, match="joint"):
            IBFSConfig(mode="joint", vector_width=2)
        assert IBFSConfig(mode="joint", vector_width=1).mode == "joint"

    def test_rejects_non_groupby_config_object(self):
        with pytest.raises(TraversalError, match="GroupByConfig"):
            IBFSConfig(groupby_config={"q": 64})

    def test_rejects_custom_groupby_config_without_groupby(self):
        with pytest.raises(TraversalError, match="groupby"):
            IBFSConfig(groupby=False, groupby_config=GroupByConfig(q=64))

    def test_default_groupby_config_ok_without_groupby(self):
        config = IBFSConfig(groupby=False)
        assert config.groupby_config == GroupByConfig()


# ----------------------------------------------------------------------
# HeuristicPolicy
# ----------------------------------------------------------------------
class TestHeuristicPolicy:
    def test_validates_through_direction_policy(self):
        with pytest.raises(TraversalError, match="alpha must be positive"):
            HeuristicPolicy(alpha=0.0)

    def test_rejects_bad_direction_mode(self):
        with pytest.raises(TraversalError, match="direction_mode"):
            HeuristicPolicy(direction_mode="global")
        for mode in DIRECTION_MODES:
            assert HeuristicPolicy(direction_mode=mode).direction_mode == mode

    def test_rejects_bad_knobs(self):
        with pytest.raises(TraversalError):
            HeuristicPolicy(vector_width=3)
        with pytest.raises(TraversalError):
            HeuristicPolicy(kernel="warp")
        with pytest.raises(TraversalError):
            HeuristicPolicy(snapshot="none")

    def test_from_direction_policy_copies_fields(self):
        legacy = DirectionPolicy(
            alpha=7.0, beta=9.0, allow_bottom_up=False, sticky=False
        )
        wrapped = HeuristicPolicy.from_direction_policy(
            legacy, early_termination=False, vector_width=2
        )
        assert wrapped.alpha == 7.0
        assert wrapped.beta == 9.0
        assert wrapped.allow_bottom_up is False
        assert wrapped.sticky is False
        assert wrapped.early_termination is False
        assert wrapped.vector_width == 2

    def test_session_wants_stats(self):
        session = HeuristicPolicy().session(4, 100, 500)
        assert session.wants_stats is True
        first = session.initial()
        assert first.directions == (TD,) * 4


# ----------------------------------------------------------------------
# FixedPolicy
# ----------------------------------------------------------------------
class TestFixedPolicy:
    def test_rejects_bad_direction(self):
        with pytest.raises(TraversalError, match="direction"):
            FixedPolicy(direction="sideways")

    def test_switch_level_validation(self):
        with pytest.raises(TraversalError, match="switch_level"):
            FixedPolicy(direction="bu", switch_level=2)
        with pytest.raises(TraversalError, match="switch_level"):
            FixedPolicy(direction="td", switch_level=0)

    def test_allow_bottom_up(self):
        assert FixedPolicy(direction="td").allow_bottom_up is False
        assert FixedPolicy(direction="bu").allow_bottom_up is True
        assert FixedPolicy(direction="td", switch_level=3).allow_bottom_up

    def test_session_is_constant_and_statless(self):
        session = FixedPolicy(direction="td").session(2, 100, 500)
        assert session.wants_stats is False
        assert session.initial().directions == (TD, TD)
        assert session.next(None).directions == (TD, TD)

    def test_switch_level_flips_direction(self):
        session = FixedPolicy(direction="td", switch_level=2).session(
            1, 100, 500
        )
        directions = [session.initial()] + [session.next(None) for _ in range(3)]
        assert [d.directions[0] for d in directions] == [TD, TD, BU, BU]


# ----------------------------------------------------------------------
# RecordedPolicy
# ----------------------------------------------------------------------
def small_plan():
    plan = RunPlan(policy="heuristic", engine="bitwise", group_size=2)
    plan.append(LevelDecision(directions=(TD, TD)))
    plan.append(LevelDecision(directions=(TD, BU)))
    return plan


class TestRecordedPolicy:
    def test_rejects_empty_plan(self):
        with pytest.raises(TraversalError, match="empty"):
            RecordedPolicy(RunPlan(policy="p", engine="e", group_size=2))

    def test_adopts_recording_policy_name(self):
        assert RecordedPolicy(small_plan()).name == "heuristic"

    def test_group_size_mismatch(self):
        policy = RecordedPolicy(small_plan())
        with pytest.raises(TraversalError, match="group size"):
            policy.session(5, 100, 500)

    def test_replays_verbatim_then_repeats_final(self):
        plan = small_plan()
        session = RecordedPolicy(plan).session(2, 100, 500)
        assert session.wants_stats is False
        assert session.initial() == plan.decisions[0]
        assert session.next(None) == plan.decisions[1]
        # Past the recorded horizon: the final decision repeats.
        assert session.next(None) == plan.decisions[1]

    def test_allow_bottom_up_follows_plan(self):
        assert RecordedPolicy(small_plan()).allow_bottom_up is True
        td_plan = RunPlan(policy="p", engine="e", group_size=1)
        td_plan.append(LevelDecision(directions=(TD,)))
        assert RecordedPolicy(td_plan).allow_bottom_up is False


# ----------------------------------------------------------------------
# AdaptivePolicy
# ----------------------------------------------------------------------
class TestAdaptivePolicy:
    def test_validation(self):
        with pytest.raises(TraversalError):
            AdaptivePolicy(probe_discount=0.0)
        with pytest.raises(TraversalError):
            AdaptivePolicy(margin=0.5)
        with pytest.raises(TraversalError):
            AdaptivePolicy(snapshot_threshold=1.5)

    def test_for_device_clamps_discount(self):
        gpu = AdaptivePolicy.for_device(Device(KEPLER_K40))
        cpu = AdaptivePolicy.for_device(Device(XEON_CPU))
        for policy in (gpu, cpu):
            assert 0.05 <= policy.probe_discount <= 0.25

    @pytest.mark.parametrize(
        "group_size,width,kernel",
        [(32, 1, "flat"), (64, 1, "flat"), (128, 2, "generic"),
         (256, 4, "generic")],
    )
    def test_width_and_kernel_follow_lane_count(
        self, group_size, width, kernel
    ):
        # The numpy-only resolution: without a compiled backend the
        # session picks the flat/generic variant by lane count.
        with native.force_backend("off"):
            session = AdaptivePolicy().session(group_size, 1000, 8000)
            first = session.initial()
        assert first.vector_width == width
        assert first.kernel == kernel
        assert first.directions == (TD,) * group_size

    @pytest.mark.parametrize("group_size", [32, 128])
    def test_kernel_resolves_native_when_backend_loads(self, group_size):
        if not native.available():
            pytest.skip("no native backend on this host")
        session = AdaptivePolicy().session(group_size, 1000, 8000)
        assert session.initial().kernel == "native"


# ----------------------------------------------------------------------
# Presets
# ----------------------------------------------------------------------
class TestPresets:
    @pytest.mark.parametrize("name", POLICY_NAMES)
    def test_make_policy_names(self, name):
        policy = make_policy(name)
        assert policy.session(4, 100, 500) is not None

    def test_make_policy_rejects_unknown(self):
        with pytest.raises(TraversalError, match="unknown policy"):
            make_policy("oracle")

    def test_td_only_preset_never_goes_bottom_up(self):
        policy = make_policy("td-only")
        assert policy.allow_bottom_up is False
        session = policy.session(3, 100, 500)
        assert session.initial().directions == (TD,) * 3

    def test_no_early_termination_preset(self):
        policy = make_policy("no-early-termination")
        session = policy.session(2, 100, 500)
        assert session.initial().early_termination is False

    def test_adaptive_for_device(self):
        policy = make_policy("adaptive", device=Device(KEPLER_K40))
        assert isinstance(policy, AdaptivePolicy)
