"""ConcurrentResult accessors and validation helper."""

import numpy as np
import pytest

from repro.errors import TraversalError
from repro.gpusim.counters import ProfilerCounters
from repro.core.result import (
    ConcurrentResult,
    GroupStats,
    validate_against_reference,
)


def _result(depths=None, groups=None, seconds=1.0, edges=100):
    counters = ProfilerCounters(edges_traversed=edges)
    return ConcurrentResult(
        engine="test",
        sources=[3, 7],
        seconds=seconds,
        counters=counters,
        num_vertices=4,
        depths=depths,
        groups=groups or [],
    )


class TestDepthAccess:
    def test_depth_lookup(self):
        depths = np.asarray([[0, 1, 2, -1], [1, 0, 1, -1]], dtype=np.int32)
        result = _result(depths=depths)
        assert result.depth(3, 2) == 2
        assert result.depth(7, 0) == 1
        assert result.depth_row(7).tolist() == [1, 0, 1, -1]

    def test_unknown_source(self):
        result = _result(depths=np.zeros((2, 4), dtype=np.int32))
        with pytest.raises(TraversalError, match="not a traversal source"):
            result.depth(9, 0)

    def test_vertex_out_of_range(self):
        result = _result(depths=np.zeros((2, 4), dtype=np.int32))
        with pytest.raises(TraversalError, match="out of range"):
            result.depth(3, 99)

    def test_missing_depths(self):
        result = _result(depths=None)
        with pytest.raises(TraversalError, match="store_depths"):
            result.depth_row(3)

    def test_reached(self):
        depths = np.asarray([[0, 1, -1, -1], [0, 0, 0, 0]], dtype=np.int32)
        result = _result(depths=depths)
        assert result.reached(3) == 2
        assert result.reached(7) == 4


class TestMetrics:
    def test_teps(self):
        assert _result(seconds=2.0, edges=100).teps == 50.0

    def test_teps_zero_time(self):
        assert _result(seconds=0.0).teps == 0.0

    def test_sharing_aggregates_weighted(self):
        groups = [
            GroupStats([1, 2], 0.5, sharing_degree=2.0, sharing_ratio=1.0),
            GroupStats([3, 4, 5, 6], 0.5, sharing_degree=1.0, sharing_ratio=0.25),
        ]
        result = _result(groups=groups)
        assert result.sharing_degree == pytest.approx((2 * 2 + 1 * 4) / 6)
        assert result.sharing_ratio == pytest.approx((1 * 2 + 0.25 * 4) / 6)

    def test_sharing_empty(self):
        assert _result().sharing_degree == 0.0
        assert _result().sharing_ratio == 0.0

    def test_group_times(self):
        groups = [
            GroupStats([1], 0.25, 1.0, 1.0),
            GroupStats([2], 0.75, 1.0, 1.0),
        ]
        assert _result(groups=groups).group_times() == [0.25, 0.75]

    def test_summary_keys(self):
        summary = _result().summary()
        assert {"teps", "seconds", "instances", "inspections"} <= set(summary)


class TestValidation:
    def test_passes_on_equal(self):
        depths = np.asarray([[0, 1], [1, 0]], dtype=np.int32)
        result = _result(depths=depths)
        validate_against_reference(result, depths.copy())

    def test_fails_on_difference(self):
        depths = np.asarray([[0, 1], [1, 0]], dtype=np.int32)
        result = _result(depths=depths)
        wrong = depths.copy()
        wrong[1, 1] = 5
        with pytest.raises(TraversalError, match="disagrees"):
            validate_against_reference(result, wrong)

    def test_fails_on_shape_mismatch(self):
        result = _result(depths=np.zeros((2, 4), dtype=np.int32))
        with pytest.raises(TraversalError, match="shape"):
            validate_against_reference(result, np.zeros((1, 4), dtype=np.int32))

    def test_fails_without_depths(self):
        with pytest.raises(TraversalError, match="without stored depths"):
            validate_against_reference(_result(), np.zeros((2, 4)))
