"""Sequential and naive concurrent baselines."""

import numpy as np
import pytest

from repro.graph.generators import kronecker
from repro.bfs.naive import NaiveConcurrentBFS
from repro.bfs.reference import reference_bfs_multi
from repro.bfs.sequential import SequentialConcurrentBFS


@pytest.fixture(scope="module")
def kron():
    return kronecker(scale=8, edge_factor=8, seed=5)


@pytest.fixture(scope="module")
def sources():
    return list(range(0, 64, 2))


class TestSequential:
    def test_depths_match_reference(self, kron, sources):
        result = SequentialConcurrentBFS(kron).run(sources)
        assert np.array_equal(result.depths, reference_bfs_multi(kron, sources))

    def test_time_is_sum_of_instances(self, kron):
        engine = SequentialConcurrentBFS(kron)
        one = engine.run([3]).seconds
        two = engine.run([3, 3]).seconds  # same source twice is allowed here
        assert two == pytest.approx(2 * one, rel=1e-9)

    def test_store_depths_false_omits_matrix(self, kron, sources):
        result = SequentialConcurrentBFS(kron).run(sources, store_depths=False)
        assert result.depths is None
        assert result.counters.edges_traversed > 0

    def test_max_depth_forwarded(self, kron, sources):
        limited = SequentialConcurrentBFS(kron).run(sources, max_depth=1)
        assert limited.depths.max() <= 1


class TestNaive:
    def test_depths_match_reference(self, kron, sources):
        result = NaiveConcurrentBFS(kron).run(sources)
        assert np.array_equal(result.depths, reference_bfs_multi(kron, sources))

    def test_kernel_per_instance(self, kron, sources):
        result = NaiveConcurrentBFS(kron).run(sources)
        assert result.counters.kernel_launches == len(sources)

    def test_memory_traffic_identical_to_sequential(self, kron, sources):
        seq = SequentialConcurrentBFS(kron).run(sources, store_depths=False)
        naive = NaiveConcurrentBFS(kron).run(sources, store_depths=False)
        assert (
            naive.counters.global_load_transactions
            == seq.counters.global_load_transactions
        )
        assert (
            naive.counters.global_store_transactions
            == seq.counters.global_store_transactions
        )

    def test_naive_close_to_sequential_runtime(self):
        """The paper's core motivation: naive multi-kernel concurrency is
        within tens of percent of sequential execution once the workload
        is bandwidth-bound (figure 15's Sequential vs Naive bars)."""
        big = kronecker(scale=12, edge_factor=12, seed=5)
        sources = list(range(32))
        seq = SequentialConcurrentBFS(big).run(sources, store_depths=False)
        naive = NaiveConcurrentBFS(big).run(sources, store_depths=False)
        ratio = seq.seconds / naive.seconds
        assert 0.8 < ratio < 1.6
