"""Joint frontier queue generation with ballots."""

import numpy as np
import pytest

from repro.errors import TraversalError
from repro.core.frontier import (
    FrontierBallots,
    frontier_bits_bottom_up,
    frontier_bits_top_down,
    generate_jfq,
)
from repro.core.status_array import full_mask


class TestGenerateJFQ:
    def test_any_vote_selects_frontiers(self):
        bits = np.asarray([[0], [0b101], [0], [0b010]], dtype=np.uint64)
        result = generate_jfq(bits, group_size=3)
        assert result.queue.tolist() == [1, 3]
        assert result.ballots[:, 0].tolist() == [0b101, 0b010]

    def test_one_dimensional_input_promoted(self):
        bits = np.asarray([0, 1, 0], dtype=np.uint64)
        result = generate_jfq(bits, group_size=1)
        assert result.queue.tolist() == [1]

    def test_empty_when_no_bits_set(self):
        bits = np.zeros((5, 2), dtype=np.uint64)
        result = generate_jfq(bits, group_size=100)
        assert result.size == 0
        assert result.sharing_degree() == 0.0
        assert result.sharing_histogram() == {}

    def test_invalid_group_size(self):
        with pytest.raises(TraversalError):
            generate_jfq(np.zeros((2, 1), dtype=np.uint64), 0)

    def test_misaligned_ballots_rejected(self):
        with pytest.raises(TraversalError):
            FrontierBallots(
                queue=np.asarray([0, 1]),
                ballots=np.zeros((1, 1), dtype=np.uint64),
                group_size=2,
            )


class TestSharingStats:
    def test_share_counts(self):
        bits = np.asarray([[0b111], [0b001], [0b011]], dtype=np.uint64)
        result = generate_jfq(bits, group_size=3)
        assert result.share_counts().tolist() == [3, 1, 2]

    def test_histogram(self):
        bits = np.asarray(
            [[0b1], [0b1], [0b11], [0b111], [0]], dtype=np.uint64
        )
        result = generate_jfq(bits, group_size=3)
        assert result.sharing_histogram() == {1: 2, 2: 1, 3: 1}

    def test_sharing_degree_from_histogram(self):
        bits = np.asarray([[0b11], [0b1]], dtype=np.uint64)
        result = generate_jfq(bits, group_size=2)
        # (2 + 1) / 2 frontiers
        assert result.sharing_degree() == pytest.approx(1.5)

    def test_multi_lane_ballots(self):
        bits = np.zeros((3, 2), dtype=np.uint64)
        bits[0, 0] = 1          # instance 0
        bits[0, 1] = 1          # instance 64
        bits[2, 1] = 0b10       # instance 65
        result = generate_jfq(bits, group_size=66)
        assert result.queue.tolist() == [0, 2]
        assert result.share_counts().tolist() == [2, 1]


class TestIdentificationHelpers:
    def test_top_down_xor(self):
        prev = np.asarray([[0b001], [0b011]], dtype=np.uint64)
        cur = np.asarray([[0b011], [0b011]], dtype=np.uint64)
        mask = full_mask(2)
        bits = frontier_bits_top_down(prev, cur, mask)
        assert bits[:, 0].tolist() == [0b010, 0]

    def test_bottom_up_not(self):
        cur = np.asarray([[0b01], [0b11]], dtype=np.uint64)
        mask = full_mask(2)
        bits = frontier_bits_bottom_up(cur, mask)
        assert bits[:, 0].tolist() == [0b10, 0]

    def test_mask_restricts_instances(self):
        cur = np.zeros((1, 1), dtype=np.uint64)
        mask = np.asarray([0b01], dtype=np.uint64)  # only instance 0 live
        bits = frontier_bits_bottom_up(cur, mask)
        assert bits[0, 0] == 0b01


class TestEngineConsistency:
    def test_ballot_sharing_matches_observer(self):
        """The per-level SD computed from ballots equals the engines'
        queue-size-based SD on a real traversal level."""
        from repro.graph.generators import kronecker
        from repro.bfs.reference import reference_bfs_multi

        graph = kronecker(scale=6, edge_factor=6, seed=211)
        sources = [0, 1, 2, 3]
        depths = reference_bfs_multi(graph, sources)
        level = 1
        bits = np.zeros((graph.num_vertices, 1), dtype=np.uint64)
        for j in range(len(sources)):
            frontier = depths[j] == level
            bits[frontier, 0] |= np.uint64(1) << np.uint64(j)
        result = generate_jfq(bits, group_size=len(sources))
        fq_total = int(np.count_nonzero(depths == level))
        expected_sd = fq_total / result.size if result.size else 0.0
        assert result.sharing_degree() == pytest.approx(expected_sd)
