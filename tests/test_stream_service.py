"""Epoch-aware serving: mutation barriers, cache repair, epoch metrics."""

import numpy as np
import pytest

from repro.errors import ServiceError
from repro.graph.generators import kronecker
from repro.service import BFSServer, ServingConfig, WorkloadConfig
from repro.service.request import Request
from repro.stream import ChurnConfig, DynamicBFSServer, run_churn_loop
from repro.stream.repair import RECOMPUTE, REPAIR


def graph(seed=3):
    return kronecker(scale=7, edge_factor=6, seed=seed)


def serving(**kw):
    base = dict(batch_size=8, cache_capacity=256, return_depths=True)
    base.update(kw)
    return ServingConfig(**base)


def ask(server, source, max_depth=None):
    rid = server.submit(Request(source=source, kind="bfs",
                                max_depth=max_depth))
    for resp in server.drain():
        if resp.request_id == rid:
            return resp
    raise AssertionError("no response")


class TestMutationBarrier:
    def test_queries_after_mutation_see_new_graph(self):
        g = graph()
        with DynamicBFSServer(g, serving()) as server:
            n = g.num_vertices
            # Find a vertex unreachable from source 0.
            before = ask(server, 0).depths
            far = int(np.flatnonzero(before < 0)[0]) if (before < 0).any() \
                else None
            if far is None:
                pytest.skip("graph fully reachable from 0")
            record = server.mutate(inserts=([0], [far]))
            assert record.epoch == 1
            after = ask(server, 0).depths
            assert after[far] == 1

    def test_mutation_is_a_barrier_for_inflight_requests(self):
        g = graph(seed=4)
        # Tiny deadline so nothing flushes before the mutation barrier.
        with DynamicBFSServer(
            g, serving(batch_size=64, flush_deadline=10.0)
        ) as server:
            before = np.asarray(
                BFSServer(g, serving()).engine.run_group([5]).depths[0]
            )
            server.submit(Request(source=5, kind="bfs"))
            record = server.mutate(inserts=([5], [7]))
            # The queued request flushed against the OLD epoch.
            done = server.take_completed()
            assert len(done) == 1
            assert np.array_equal(done[0].depths, before)
            assert record.epoch == 1

    def test_empty_mutation_is_noop(self):
        with DynamicBFSServer(graph(), serving()) as server:
            record = server.mutate()
            assert record.decision == "noop"
            assert server.epochs.current_epoch == 0
            assert server._graph_id == server.epochs.current.graph_id

    def test_mutation_before_clock_rejected(self):
        with DynamicBFSServer(graph(), serving()) as server:
            ask(server, 0)
            with pytest.raises(ServiceError):
                server.mutate(inserts=([0], [1]), arrival_time=-1.0)

    def test_executor_backend_refused(self):
        class FakeExecutor:
            pass

        with pytest.raises(ServiceError):
            DynamicBFSServer(graph(), serving(), executor=FakeExecutor())


class TestCacheAcrossEpochs:
    def test_insert_batch_repairs_cached_rows_bit_identically(self):
        g = graph(seed=5)
        with DynamicBFSServer(g, serving()) as server:
            sources = [0, 1, 2, 3]
            for s in sources:
                ask(server, s)
            record = server.mutate(inserts=([0, 1], [9, 11]))
            assert record.decision == REPAIR
            assert record.rows_repaired >= len(sources)
            # Post-mutation answers come from the repaired cache...
            responses = {s: ask(server, s) for s in sources}
            assert all(r.cached for r in responses.values())
            # ...and are bit-identical to a fresh server on the new graph.
            fresh = BFSServer(server.graph, serving())
            scratch = fresh.engine.run_group(sources).depths
            for i, s in enumerate(sources):
                assert np.array_equal(responses[s].depths, scratch[i])

    def test_delete_batch_drops_cached_rows(self):
        g = graph(seed=6)
        with DynamicBFSServer(g, serving()) as server:
            for s in (0, 1):
                ask(server, s)
            src = int(np.repeat(np.arange(g.num_vertices),
                                np.diff(g.row_offsets))[0])
            dst = int(g.col_indices[0])
            record = server.mutate(deletes=([src], [dst]))
            assert record.decision == RECOMPUTE
            assert record.rows_dropped == 2
            assert record.rows_repaired == 0
            assert not ask(server, 0).cached

    def test_plan_cache_purged_on_epoch_swap(self):
        with DynamicBFSServer(graph(seed=7), serving()) as server:
            ask(server, 0)
            assert len(server.plan_cache) > 0
            record = server.mutate(inserts=([0], [3]))
            assert record.plans_purged > 0
            assert len(server.plan_cache) == 0

    def test_invalidations_surface_in_cache_stats(self):
        g = graph(seed=8)
        with DynamicBFSServer(g, serving()) as server:
            ask(server, 0)
            src, dst = int(g.col_indices[0]), 0  # delete needs a real edge
            sa, da = g.edge_array()
            server.mutate(deletes=([int(sa[0])], [int(da[0])]))
            stats = server.cache.stats()
            assert stats["invalidations"] == 1
            assert server.plan_cache.stats()["invalidations"] >= 1


class TestEpochMetrics:
    def test_metrics_snapshot_epochs_section(self):
        with DynamicBFSServer(graph(seed=9), serving()) as server:
            ask(server, 0)
            server.mutate(inserts=([0], [5]))
            ask(server, 1)
            sa, da = server.graph.edge_array()
            server.mutate(deletes=([int(sa[0])], [int(da[0])]))
            payload = server.metrics_snapshot()
            epochs = payload["epochs"]
            assert epochs["current_epoch"] == 2
            assert epochs["published"] == 2
            assert epochs["repairs"] == 1
            assert epochs["recomputes"] == 1
            assert epochs["rows_repaired"] >= 1
            assert epochs["rows_dropped"] >= 1
            assert epochs["plans_purged"] >= 1
            assert len(epochs["history"]) == 2
            first = epochs["history"][0]
            assert first["epoch"] == 1 and first["decision"] == REPAIR

    def test_superseded_epochs_reclaimed(self):
        with DynamicBFSServer(graph(seed=10), serving()) as server:
            for v in range(3):
                server.mutate(inserts=([v], [v + 1]))
            assert server.epochs.live_epochs() == [3]
            assert server.metrics_snapshot()["epochs"][
                "reclaimed_epochs"] == 3


class TestPartitionedEpochs:
    def test_partitioned_server_swaps_substrate(self):
        g = graph(seed=11)
        with DynamicBFSServer(g, serving(partitions=2)) as server:
            before = ask(server, 0).depths
            server.mutate(inserts=([0], [int(np.flatnonzero(
                np.asarray(before) < 0)[0])] if (
                np.asarray(before) < 0).any() else [1]))
            after = ask(server, 0).depths
            scratch = BFSServer(server.graph, serving()).engine.run_group(
                [0]
            ).depths[0]
            assert np.array_equal(after, scratch)
            assert server.partitioned is not None
            assert server.partitioned.graph is server.graph


class TestChurnLoop:
    def test_churn_loop_completes_and_publishes(self):
        server = DynamicBFSServer(graph(seed=12), serving())
        try:
            result, records = run_churn_loop(
                server,
                WorkloadConfig(num_requests=96, num_clients=8, seed=1),
                ChurnConfig(mutate_every=24, inserts_per_batch=4),
            )
        finally:
            server.close()
        assert result.completed == 96
        assert len(records) >= 2
        assert all(r.decision in (REPAIR, RECOMPUTE) for r in records)
        assert result.metrics["epochs"]["published"] == len(records)

    def test_churn_loop_is_deterministic(self):
        def run():
            server = DynamicBFSServer(graph(seed=13), serving())
            try:
                result, records = run_churn_loop(
                    server,
                    WorkloadConfig(num_requests=64, num_clients=8, seed=2),
                    ChurnConfig(mutate_every=16, inserts_per_batch=4,
                                deletes_per_batch=2, seed=5),
                )
            finally:
                server.close()
            depths = {
                r.request_id: None if r.depths is None else r.depths.tolist()
                for r in result.responses
            }
            return depths, [rec.to_dict() for rec in records]

        assert run() == run()

    def test_churn_config_validation(self):
        with pytest.raises(ServiceError):
            ChurnConfig(mutate_every=-1)
        with pytest.raises(ServiceError):
            ChurnConfig(inserts_per_batch=0, deletes_per_batch=0)
