"""Golden regression tests on simulated counters.

The cost model's *shapes* are asserted elsewhere; these tests pin the
exact deterministic counter values for one fixed workload so that
accidental changes to the accounting (a lost transaction term, a
doubled instruction count) are caught immediately.  If a deliberate
model change lands, regenerate the constants with the printed actuals.
"""

import pytest

from repro.graph.generators import kronecker
from repro.bfs.sequential import SequentialConcurrentBFS
from repro.core.engine import IBFS, IBFSConfig

#: Fixed workload: one graph, one source set.
GRAPH_SEED = 171
SOURCES = list(range(0, 32, 2))


@pytest.fixture(scope="module")
def graph():
    return kronecker(scale=7, edge_factor=8, seed=GRAPH_SEED)


@pytest.fixture(scope="module")
def sequential(graph):
    return SequentialConcurrentBFS(graph).run(SOURCES, store_depths=False)


@pytest.fixture(scope="module")
def ibfs(graph):
    return IBFS(graph, IBFSConfig(group_size=16, groupby=False, seed=1)).run(
        SOURCES, store_depths=False
    )


class TestWorkloadInvariants:
    """Determinism and cross-engine conservation laws."""

    def test_runs_are_deterministic(self, graph, ibfs):
        again = IBFS(
            graph, IBFSConfig(group_size=16, groupby=False, seed=1)
        ).run(SOURCES, store_depths=False)
        assert again.seconds == ibfs.seconds
        assert (
            again.counters.global_load_transactions
            == ibfs.counters.global_load_transactions
        )
        assert again.counters.inspections == ibfs.counters.inspections

    def test_bitwise_physical_work_below_sequential(self, sequential, ibfs):
        assert ibfs.counters.inspections < sequential.counters.inspections
        assert (
            ibfs.counters.global_load_transactions
            < sequential.counters.global_load_transactions
        )

    def test_logical_edges_bounded(self, graph, sequential, ibfs):
        # Early termination can only reduce logical traversed edges.
        assert 0 < ibfs.counters.edges_traversed <= (
            sequential.counters.edges_traversed
        )
        # And both stay below the trivial bound of i * 2|E|.
        bound = len(SOURCES) * 2 * graph.num_edges
        assert sequential.counters.edges_traversed <= bound

    def test_requests_dominate_transactions_sanity(self, ibfs):
        c = ibfs.counters
        assert c.global_load_requests > 0
        assert c.global_store_requests > 0
        # Perfect coalescing floor: at least one transaction per 128 B
        # of distinct traffic means lpr can be < 1 only if a request
        # covers several... it cannot: txns >= requests is false in
        # general, but lpr must be positive and finite.
        assert 0 < c.loads_per_request < 64


class TestGoldenValues:
    """Exact pinned values for the fixed workload (regenerate on
    deliberate cost-model changes)."""

    def test_sequential_counters(self, sequential):
        c = sequential.counters
        actual = {
            "levels": c.levels,
            "inspections": c.inspections,
            "edges": c.edges_traversed,
            "loads": c.global_load_transactions,
            "stores": c.global_store_transactions,
            "enqueues": c.frontier_enqueues,
            "kernels": c.kernel_launches,
        }
        expected = {
            "levels": 69,
            "inspections": 7329,
            "edges": 7329,
            "loads": 3280,
            "stores": 440,
            "enqueues": 2739,
            "kernels": 16,
        }
        assert actual == expected, f"actuals: {actual}"

    def test_ibfs_counters(self, ibfs):
        c = ibfs.counters
        actual = {
            "levels": c.levels,
            "inspections": c.inspections,
            "edges": c.edges_traversed,
            "loads": c.global_load_transactions,
            "stores": c.global_store_transactions,
            "early": c.early_terminations,
            "atomics": c.atomic_operations,
        }
        assert actual == _IBFS_GOLDEN, f"actuals: {actual}"


#: Populated from a verified run; see module docstring.
_IBFS_GOLDEN = {
    "levels": 5,
    "inspections": 1981,
    "edges": 7329,
    "loads": 785,
    "stores": 62,
    "early": 105,
    "atomics": 127,
}
