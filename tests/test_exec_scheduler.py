"""Dispatch policies, the cost model, and the work-stealing board."""

import numpy as np
import pytest

from repro.errors import ExecutorError
from repro.graph.generators import kronecker, star
from repro.exec.scheduler import (
    SCHEDULER_NAMES,
    CostModel,
    LPTDispatch,
    RoundRobinDispatch,
    TaskBoard,
    WorkStealingDispatch,
    get_policy,
)


@pytest.fixture(scope="module")
def graph():
    return kronecker(scale=7, edge_factor=8, seed=9)


class TestCostModel:
    def test_predict_orders_by_degree_sum(self, graph):
        model = CostModel(graph)
        degrees = graph.out_degrees()
        heavy = int(np.argmax(degrees))
        light = int(np.argmin(degrees))
        assert model.predict([heavy]) >= model.predict([light])

    def test_hub_group_costs_more(self):
        g = star(50)
        model = CostModel(g)
        assert model.predict([0]) > model.predict([1])

    def test_predict_seconds_needs_observation(self, graph):
        model = CostModel(graph)
        assert model.predict_seconds([0]) is None
        model.observe([0], 0.5)
        assert model.predict_seconds([0]) == pytest.approx(0.5)
        assert model.observations == 1

    def test_ewma_refinement(self, graph):
        model = CostModel(graph, smoothing=0.5)
        model.observe([0], 1.0)
        first = model.seconds_per_unit
        model.observe([0], 3.0)
        # The rate moved toward the new observation but kept history.
        assert model.seconds_per_unit > first
        assert model.seconds_per_unit < 3.0 / model.predict([0])

    def test_negative_wall_rejected(self, graph):
        with pytest.raises(ExecutorError):
            CostModel(graph).observe([0], -1.0)

    def test_bad_smoothing_rejected(self, graph):
        with pytest.raises(ExecutorError):
            CostModel(graph, smoothing=0.0)


class TestPolicies:
    def test_registry_round_trip(self):
        for name in SCHEDULER_NAMES:
            assert get_policy(name).name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(ExecutorError, match="unknown scheduler"):
            get_policy("random")

    def test_round_robin_stripes(self):
        assignment = RoundRobinDispatch().assign([1.0] * 6, 2)
        assert assignment.tolist() == [0, 1, 0, 1, 0, 1]

    def test_lpt_balances_skewed_costs(self):
        costs = [10.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0]
        assignment = LPTDispatch().assign(costs, 2)
        loads = [
            sum(c for c, w in zip(costs, assignment) if w == d)
            for d in range(2)
        ]
        # LPT isolates the heavy task; round-robin would not.
        assert max(loads) / min(loads) < 2.0

    def test_only_steal_allows_stealing(self):
        assert WorkStealingDispatch().allow_stealing
        assert not LPTDispatch().allow_stealing
        assert not RoundRobinDispatch().allow_stealing


class TestTaskBoard:
    def make_board(self, allow_stealing=True):
        # Worker 0 gets tasks 0,1,2; worker 1 gets task 3.
        return TaskBoard([0, 0, 0, 1], [5.0, 3.0, 1.0, 2.0], 2, allow_stealing)

    def test_own_deque_served_front_first(self):
        board = self.make_board()
        assert board.next_task(0) == 0
        assert board.next_task(0) == 1
        assert board.steals == 0

    def test_idle_worker_steals_from_tail(self):
        board = self.make_board()
        assert board.next_task(1) == 3  # own work first
        # Worker 1 idle; worker 0 is the richest victim; steal its tail.
        assert board.next_task(1) == 2
        assert board.steals == 1
        assert board.remaining() == 2

    def test_no_stealing_when_disabled(self):
        board = self.make_board(allow_stealing=False)
        assert board.next_task(1) == 3
        assert board.next_task(1) is None
        assert board.steals == 0

    def test_empty_board_returns_none(self):
        board = TaskBoard([], [], 2, True)
        assert board.next_task(0) is None
        assert board.remaining() == 0

    def test_requeue_goes_to_lightest_worker_front(self):
        board = self.make_board()
        board.next_task(1)  # drain worker 1 -> load 0
        board.requeue(3)
        assert board.next_task(1) == 3

    def test_load_tracks_costs(self):
        board = self.make_board()
        assert board.load(0) == pytest.approx(9.0)
        board.next_task(0)
        assert board.load(0) == pytest.approx(4.0)

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(ExecutorError):
            TaskBoard([0, 0], [1.0], 2, True)
        with pytest.raises(ExecutorError):
            TaskBoard([0], [1.0], 0, True)
        with pytest.raises(ExecutorError):
            TaskBoard([5], [1.0], 2, True)
