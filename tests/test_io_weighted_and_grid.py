"""Weighted DIMACS I/O, the 2-D grid generator, and result export."""

import json

import numpy as np
import pytest

from repro.errors import GraphError, GraphFormatError
from repro.graph.generators import grid_2d, kronecker
from repro.graph.io import read_weighted_dimacs, write_weighted_dimacs
from repro.graph.weighted import from_weighted_edges, with_random_weights
from repro.bfs.reference import reference_bfs
from repro.bfs.sssp import dijkstra
from repro.core.engine import IBFS, IBFSConfig


class TestWeightedDimacs:
    def test_round_trip(self, tmp_path):
        g = from_weighted_edges(
            [(0, 1, 2.5), (1, 2, 0.5), (2, 0, 7.0)], num_vertices=4
        )
        target = tmp_path / "w.gr"
        write_weighted_dimacs(g, target)
        back = read_weighted_dimacs(target)
        assert back.graph == g.graph
        assert np.allclose(back.weights, g.weights)

    def test_round_trip_preserves_distances(self, tmp_path):
        topo = kronecker(scale=6, edge_factor=4, seed=131)
        g = with_random_weights(topo, seed=132)
        target = tmp_path / "w.gr"
        write_weighted_dimacs(g, target)
        back = read_weighted_dimacs(target)
        source = int(topo.out_degrees().argmax())
        assert np.allclose(
            dijkstra(back, source), dijkstra(g, source), equal_nan=True
        )

    def test_missing_weight_defaults_to_one(self, tmp_path):
        target = tmp_path / "w.gr"
        target.write_text("p sp 2 1\na 1 2\n")
        g = read_weighted_dimacs(target)
        assert g.weights.tolist() == [1.0]

    def test_malformed_file(self, tmp_path):
        target = tmp_path / "bad.gr"
        target.write_text("a 1 2 3\n")
        with pytest.raises(GraphFormatError, match="before problem"):
            read_weighted_dimacs(target)


class TestGrid2D:
    def test_shape_and_degrees(self):
        g = grid_2d(3, 4)
        assert g.num_vertices == 12
        # Interior vertex has degree 4, corner 2.
        assert g.out_degree(5) == 4
        assert g.out_degree(0) == 2
        assert g.num_edges == 2 * (3 * 3 + 2 * 4)

    def test_bfs_depth_is_manhattan_distance(self):
        rows, cols = 5, 7
        g = grid_2d(rows, cols)
        depths = reference_bfs(g, 0)
        for r in range(rows):
            for c in range(cols):
                assert depths[r * cols + c] == r + c

    def test_single_cell(self):
        g = grid_2d(1, 1)
        assert g.num_vertices == 1
        assert g.num_edges == 0

    def test_single_row(self):
        g = grid_2d(1, 5)
        assert reference_bfs(g, 0).tolist() == [0, 1, 2, 3, 4]

    def test_invalid_dimensions(self):
        with pytest.raises(GraphError):
            grid_2d(0, 3)

    def test_engines_handle_high_diameter(self):
        """Grids are the opposite regime from power-law graphs: long
        level chains, flat degrees — engines must still be exact."""
        g = grid_2d(8, 8)
        sources = [0, 27, 63]
        result = IBFS(g, IBFSConfig(group_size=4)).run(sources)
        for s in sources:
            assert np.array_equal(result.depth_row(s), reference_bfs(g, s))


class TestResultExport:
    def test_to_dict_round_trips_through_json(self):
        g = kronecker(scale=6, edge_factor=4, seed=133)
        result = IBFS(g, IBFSConfig(group_size=8)).run([0, 1, 2])
        payload = json.loads(result.to_json())
        assert payload["engine"] == result.engine
        assert payload["sources"] == [0, 1, 2]
        assert payload["summary"]["teps"] == pytest.approx(result.teps)
        assert "depths" not in payload

    def test_depths_included_on_request(self):
        g = kronecker(scale=5, edge_factor=4, seed=134)
        result = IBFS(g, IBFSConfig(group_size=4)).run([0, 1])
        payload = result.to_dict(include_depths=True)
        assert np.array_equal(np.asarray(payload["depths"]), result.depths)

    def test_groups_serialized(self):
        g = kronecker(scale=6, edge_factor=4, seed=135)
        result = IBFS(g, IBFSConfig(group_size=2)).run([0, 1, 2, 3])
        payload = result.to_dict()
        assert len(payload["groups"]) == len(result.groups)
        assert payload["groups"][0]["sharing_degree"] == pytest.approx(
            result.groups[0].sharing_degree
        )
