"""Shared fixtures: a zoo of small graphs and engine factories."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    IBFS,
    IBFSConfig,
    B40C,
    CPUiBFS,
    MSBFS,
    NaiveConcurrentBFS,
    SequentialConcurrentBFS,
    SpMMBC,
    from_edges,
    kronecker,
    uniform_random,
)
from repro.graph.generators import complete, path, scale_free, small_world, star


@pytest.fixture(scope="session")
def kron_graph():
    """A small power-law graph (the default traversal target)."""
    return kronecker(scale=7, edge_factor=8, seed=2)


@pytest.fixture(scope="session")
def uniform_graph():
    """A uniform-outdegree graph (the RD-style regime)."""
    return uniform_random(200, 4, seed=3)


@pytest.fixture(scope="session")
def disconnected_graph():
    """Two components plus isolated vertices."""
    return from_edges(
        [(0, 1), (1, 2), (2, 3), (5, 6), (6, 7)],
        num_vertices=10,
        undirected=True,
    )


@pytest.fixture(scope="session")
def graph_zoo(kron_graph, uniform_graph, disconnected_graph):
    """Named collection of structurally diverse graphs."""
    return {
        "kron": kron_graph,
        "uniform": uniform_graph,
        "disconnected": disconnected_graph,
        "star": star(40),
        "path": path(30),
        "complete": complete(10),
        "small_world": small_world(80, 4, 0.2, seed=4),
        "scale_free": scale_free(120, 3, seed=5),
        "self_loops": from_edges([(0, 0), (0, 1), (1, 2), (2, 0)], num_vertices=3),
        "multi_edges": from_edges(
            [(0, 1), (0, 1), (1, 2), (1, 2), (2, 3)], num_vertices=4
        ),
    }


def engine_factories():
    """(name, factory) pairs covering every concurrent engine.

    Each factory takes a graph and returns an engine with a common
    ``run(sources, ...)`` interface.
    """
    return [
        ("sequential", lambda g: SequentialConcurrentBFS(g)),
        ("naive", lambda g: NaiveConcurrentBFS(g)),
        ("joint-random", lambda g: IBFS(
            g, IBFSConfig(group_size=8, mode="joint", groupby=False))),
        ("joint-groupby", lambda g: IBFS(
            g, IBFSConfig(group_size=8, mode="joint", groupby=True))),
        ("bitwise-random", lambda g: IBFS(
            g, IBFSConfig(group_size=8, mode="bitwise", groupby=False))),
        ("bitwise-groupby", lambda g: IBFS(
            g, IBFSConfig(group_size=16, mode="bitwise", groupby=True))),
        ("bitwise-multilane", lambda g: IBFS(
            g, IBFSConfig(group_size=70, mode="bitwise", groupby=True))),
        ("ms-bfs", lambda g: MSBFS(g, group_size=8)),
        ("b40c", lambda g: B40C(g)),
        ("spmm-bc", lambda g: SpMMBC(g, group_size=8)),
        ("cpu-ibfs", lambda g: CPUiBFS(g)),
    ]


@pytest.fixture(params=engine_factories(), ids=lambda p: p[0])
def any_engine_factory(request):
    """Parametrized engine factory fixture."""
    return request.param


def pick_sources(graph, count, seed=0):
    """Deterministic distinct sources spread over the graph."""
    rng = np.random.default_rng(seed)
    count = min(count, graph.num_vertices)
    return sorted(rng.choice(graph.num_vertices, size=count, replace=False).tolist())
