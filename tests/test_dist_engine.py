"""PartitionedEngine equivalence, replay, cost models, and stats.

The partitioned engine's contract is the executor's: partitioning,
layout, wire format, and cost model may change *how* the traversal runs
and what the communication costs, but the depth matrix must stay
bit-identical to the serial :class:`repro.core.engine.IBFS`.
"""

import numpy as np
import pytest

from repro.errors import SimulationError, TraversalError
from repro.graph.generators import kronecker
from repro.core.engine import IBFS, IBFSConfig
from repro.obs.metrics import MetricsHub
from repro.plan.types import LevelDecision, RunPlan
from repro.dist.comm import ClusterCommModel, CommCostModel
from repro.dist.engine import DistConfig, DistStats, PartitionedEngine
from repro.dist.exchange import (
    DENSE_SLOT_BYTES,
    SPARSE_ENTRY_BYTES,
    ExchangePolicy,
)

GROUP_SIZE = 8


@pytest.fixture(scope="module")
def graph():
    return kronecker(scale=7, edge_factor=8, seed=9)


@pytest.fixture(scope="module")
def serial(graph):
    return IBFS(graph, IBFSConfig(group_size=GROUP_SIZE))


@pytest.fixture(scope="module")
def group(graph, serial):
    return serial.make_groups(list(range(24)))[0]


def dist_engine(graph, num_partitions, layout="1d", **overrides):
    overrides.setdefault("group_size", GROUP_SIZE)
    return PartitionedEngine(
        graph,
        DistConfig(
            num_partitions=num_partitions, layout=layout, **overrides
        ),
    )


class TestEquivalence:
    @pytest.mark.parametrize("layout", ["1d", "2d"])
    @pytest.mark.parametrize("num_partitions", [1, 2, 4])
    def test_group_matches_serial(
        self, graph, serial, group, layout, num_partitions
    ):
        expected = serial.run_group(group)
        engine = dist_engine(graph, num_partitions, layout)
        result = engine.run_group(group)
        assert np.array_equal(result.depths, expected.depths)

    @pytest.mark.parametrize("fmt", ["dense", "sparse"])
    def test_forced_formats_match_serial(self, graph, serial, group, fmt):
        expected = serial.run_group(group)
        engine = dist_engine(graph, 4, "2d", exchange=fmt)
        result = engine.run_group(group)
        assert np.array_equal(result.depths, expected.depths)
        assert set(engine.last_stats.formats()) == {fmt}

    @pytest.mark.parametrize("max_depth", [0, 1, 3])
    def test_max_depth_matches_serial(
        self, graph, serial, group, max_depth
    ):
        expected = serial.run_group(group, max_depth=max_depth)
        result = dist_engine(graph, 2).run_group(group, max_depth=max_depth)
        assert np.array_equal(result.depths, expected.depths)

    # The plain full-run-matches-serial loop lives in the shared
    # substrate matrix (tests/test_runtime_substrates.py) now, across
    # every registered substrate × planner × mutation.

    def test_random_grouping_matches_serial(self, graph):
        sources = list(range(20))
        expected = IBFS(
            graph, IBFSConfig(group_size=GROUP_SIZE, groupby=False, seed=7)
        ).run(sources, store_depths=True)
        engine = dist_engine(graph, 2, groupby=False, seed=7)
        result = engine.run(sources, store_depths=True)
        assert np.array_equal(result.depths, expected.depths)


class TestReplay:
    def test_recorded_plan_is_resolved(self, graph, group):
        engine = dist_engine(graph, 2)
        result = engine.run_group(group)
        plan = result.groups[0].plan
        assert len(plan.decisions) == len(engine.last_stats.levels)
        for decision in plan.decisions:
            assert decision.exchange in ("dense", "sparse")

    def test_replay_resends_recorded_bytes(self, graph, group):
        engine = dist_engine(graph, 2)
        first = engine.run_group(group)
        recorded = first.groups[0].plan
        original = [
            (t.fmt, t.update_bytes, t.broadcast_bytes, t.messages)
            for t in engine.last_stats.levels
        ]
        replay = engine.run_group(group, plan=recorded)
        assert np.array_equal(replay.depths, first.depths)
        assert original == [
            (t.fmt, t.update_bytes, t.broadcast_bytes, t.messages)
            for t in engine.last_stats.levels
        ]

    def test_plan_overrides_policy(self, graph, group):
        """A plan forcing dense on every level beats an all-sparse
        policy — replay follows the recording, not the live policy."""
        engine = dist_engine(graph, 2, exchange="sparse")
        baseline = engine.run_group(group)
        levels = len(engine.last_stats.levels)
        forced = RunPlan(policy="forced", engine=engine.name,
                         group_size=len(group))
        for _ in range(levels):
            forced.append(
                LevelDecision(
                    directions=baseline.groups[0].plan.decisions[0].directions,
                    exchange="dense",
                )
            )
        replayed = engine.run_group(group, plan=forced)
        assert np.array_equal(replayed.depths, baseline.depths)
        assert set(engine.last_stats.formats()) == {"dense"}


class TestExchangeAccounting:
    def test_dense_levels_cost_fixed_bytes(self, graph, group):
        engine = dist_engine(graph, 2, exchange="dense")
        engine.run_group(group)
        fixed = engine.partitions.dense_bytes_per_level()
        for trace in engine.last_stats.levels:
            assert trace.update_bytes == fixed

    def test_sparse_bytes_scale_with_entries(self, graph, group):
        engine = dist_engine(graph, 2, exchange="sparse")
        engine.run_group(group)
        for trace in engine.last_stats.levels:
            assert trace.update_bytes == SPARSE_ENTRY_BYTES * trace.entries

    def test_1d_has_no_frontier_broadcast(self, graph, group):
        engine = dist_engine(graph, 4, "1d")
        engine.run_group(group)
        assert all(
            t.broadcast_bytes == 0 for t in engine.last_stats.levels
        )

    def test_2d_broadcasts_frontier_to_sibling_blocks(self, graph, group):
        engine = dist_engine(graph, 4, "2d")
        engine.run_group(group)
        stats = engine.last_stats
        assert any(t.broadcast_bytes > 0 for t in stats.levels)
        for trace in stats.levels:
            # cols - 1 == 1 remote copy per frontier entry on a 2x2 grid.
            assert trace.broadcast_bytes == (
                SPARSE_ENTRY_BYTES * trace.frontier_vertices
            )

    def test_level0_format_follows_policy_prediction(self, graph, group):
        """Auto resolves level 0 from the source frontier's out-degree
        sum — the same prediction a replaying backend would make."""
        engine = dist_engine(graph, 2)
        frontier_edges = int(
            graph.out_degrees()[np.asarray(group, dtype=np.int64)].sum()
        )
        expected = engine.exchange_policy.decide(
            frontier_edges, engine.partitions.dense_bytes_per_level()
        )
        engine.run_group(group)
        assert engine.last_stats.levels[0].fmt == expected

    def test_auto_levels_price_like_the_forced_format(self, graph, group):
        """Each auto level's bytes equal the corresponding forced run's
        bytes for whichever format auto resolved — the policy changes
        the choice, never the per-format price."""
        runs = {}
        for fmt in ("auto", "dense", "sparse"):
            engine = dist_engine(graph, 2, exchange=fmt)
            engine.run_group(group)
            runs[fmt] = engine.last_stats.levels
        assert len(runs["auto"]) == len(runs["dense"]) == len(runs["sparse"])
        for auto, dense, sparse in zip(
            runs["auto"], runs["dense"], runs["sparse"]
        ):
            expected = dense if auto.fmt == "dense" else sparse
            assert auto.update_bytes == expected.update_bytes


class TestValidation:
    def test_rejects_bad_config(self, graph):
        with pytest.raises(TraversalError):
            DistConfig(num_partitions=0)
        with pytest.raises(TraversalError):
            DistConfig(layout="ring")
        with pytest.raises(TraversalError):
            DistConfig(exchange="brotli")
        with pytest.raises(TraversalError):
            DistConfig(backend="thread")
        with pytest.raises(TraversalError):
            DistConfig(exchange_threshold=0.0)

    def test_rejects_bad_groups(self, graph):
        engine = dist_engine(graph, 2)
        with pytest.raises(TraversalError):
            engine.run_group([])
        with pytest.raises(TraversalError):
            engine.run_group([1, 1])
        with pytest.raises(TraversalError):
            engine.run_group([graph.num_vertices])
        with pytest.raises(TraversalError):
            engine.run_group(list(range(GROUP_SIZE + 1)))

    def test_effective_group_size_clamps_to_status_word(self, graph):
        engine = dist_engine(graph, 2, group_size=128)
        assert engine.effective_group_size() == 64

    def test_closed_engine_refuses_to_run(self, graph, group):
        engine = dist_engine(graph, 2)
        engine.close()
        with pytest.raises(TraversalError):
            engine.run_group(group)

    def test_name_encodes_layout_and_partitions(self, graph):
        assert dist_engine(graph, 4, "2d").name == "dist-2dx4+groupby"
        assert (
            dist_engine(graph, 2, groupby=False).name == "dist-1dx2+random"
        )


class TestCostModels:
    def test_comm_model_rejects_bad_rates(self):
        with pytest.raises(SimulationError):
            CommCostModel(bytes_per_second=0)
        with pytest.raises(SimulationError):
            CommCostModel(latency_seconds=-1)

    def test_price_level_arithmetic(self):
        model = CommCostModel(
            latency_seconds=1e-6,
            bytes_per_second=1e9,
            edges_per_second=1e9,
            base_level_seconds=0.0,
        )
        cost = model.price_level([1000, 4000], nbytes=2000, messages=3)
        assert cost.compute_seconds == pytest.approx(4000 / 1e9)
        assert cost.exchange_seconds == pytest.approx(3e-6 + 2000 / 1e9)
        assert cost.total_seconds == pytest.approx(
            cost.compute_seconds + cost.exchange_seconds
        )

    def test_cluster_model_shares_devices(self, graph, group):
        """Two devices for four partitions: the simulated compute term
        roughly doubles versus four devices, while depths are
        untouched."""
        edges = [10**7] * 4
        wide = ClusterCommModel(num_devices=4).price_level(edges, 0, 0)
        narrow = ClusterCommModel(num_devices=2).price_level(edges, 0, 0)
        assert narrow.compute_seconds > wide.compute_seconds

    def test_cluster_model_accumulates_device_time(self, graph, group):
        model = ClusterCommModel(num_devices=2)
        engine = PartitionedEngine(
            graph,
            DistConfig(num_partitions=4, group_size=GROUP_SIZE),
            cost_model=model,
        )
        result = engine.run_group(group)
        expected = IBFS(graph, IBFSConfig(group_size=GROUP_SIZE)).run_group(
            group
        )
        assert np.array_equal(result.depths, expected.depths)
        assert sum(model.device_seconds) > 0.0


class TestStats:
    def test_stats_shape(self, graph, group):
        engine = dist_engine(graph, 2)
        engine.run_group(group)
        stats = engine.last_stats
        assert stats.groups == 1
        assert stats.num_partitions == 2
        assert stats.layout == "1d"
        assert stats.bytes_total == sum(t.nbytes for t in stats.levels)
        assert stats.messages_total == sum(
            t.messages for t in stats.levels
        )
        payload = stats.to_dict()
        assert payload["levels"][0]["bytes"] == stats.levels[0].nbytes
        assert sum(payload["formats"].values()) == len(stats.levels)

    def test_run_merges_group_stats(self, graph):
        engine = dist_engine(graph, 2)
        engine.run(list(range(24)), store_depths=False)
        groups = engine.last_stats.groups
        assert groups == len(engine.make_groups(list(range(24))))
        assert len(engine.last_stats.levels) > 0

    def test_publish_exports_counters(self, graph, group):
        hub = MetricsHub()
        engine = dist_engine(graph, 2)
        engine.run_group(group)
        stats = engine.last_stats
        stats.publish(hub)
        assert (
            hub.counter("exchange_bytes_total").value == stats.bytes_total
        )
        assert hub.counter("dist_levels_total").value == len(stats.levels)
        assert (
            hub.histogram("exchange_level_seconds").count
            == len(stats.levels)
        )

    def test_dense_slot_price_documented(self):
        # The stats layer prices dense slots at one status word.
        assert DENSE_SLOT_BYTES == 8
        policy = ExchangePolicy()
        assert policy.decide(frontier_edges=0, dense_bytes=100) == "sparse"
        assert policy.decide(frontier_edges=10**9, dense_bytes=100) == "dense"

    def test_empty_stats(self):
        stats = DistStats(backend="inline", layout="1d", num_partitions=1)
        assert stats.bytes_total == 0
        assert stats.formats() == {}
