"""Single-source engine: correctness, counters, and direction behavior."""

import numpy as np
import pytest

from repro.errors import TraversalError
from repro.graph.builders import from_edges
from repro.graph.generators import kronecker, path, star
from repro.gpusim.device import Device
from repro.bfs.direction import DirectionPolicy
from repro.bfs.reference import reference_bfs
from repro.bfs.single import SingleBFS


@pytest.fixture(scope="module")
def kron():
    return kronecker(scale=8, edge_factor=8, seed=4)


class TestCorrectness:
    def test_matches_reference_on_kron(self, kron):
        engine = SingleBFS(kron)
        for source in (0, 7, 100, 255):
            result = engine.run(source)
            assert np.array_equal(result.depths, reference_bfs(kron, source))

    def test_matches_reference_top_down_only(self, kron):
        engine = SingleBFS(kron, policy=DirectionPolicy(allow_bottom_up=False))
        result = engine.run(3)
        assert np.array_equal(result.depths, reference_bfs(kron, 3))

    def test_disconnected(self):
        g = from_edges([(0, 1), (3, 4)], num_vertices=6, undirected=True)
        result = SingleBFS(g).run(0)
        assert result.depths.tolist() == [0, 1, -1, -1, -1, -1]
        assert result.reached == 2

    def test_isolated_source(self):
        g = from_edges([(1, 2)], num_vertices=3)
        result = SingleBFS(g).run(0)
        assert result.depths.tolist() == [0, -1, -1]

    def test_source_out_of_range(self, kron):
        with pytest.raises(TraversalError):
            SingleBFS(kron).run(kron.num_vertices)


class TestMaxDepth:
    def test_depth_limit_truncates(self):
        g = path(10)
        result = SingleBFS(g).run(0, max_depth=3)
        depths = result.depths
        assert depths[3] == 3
        assert (depths[4:] == -1).all()

    def test_depth_limit_zero(self):
        g = path(4)
        result = SingleBFS(g).run(0, max_depth=0)
        assert result.depths.tolist() == [0, -1, -1, -1]


class TestCountersAndTiming:
    def test_time_positive_and_teps_consistent(self, kron):
        result = SingleBFS(kron).run(0)
        assert result.seconds > 0
        assert result.teps == pytest.approx(
            result.edges_traversed / result.seconds
        )

    def test_edges_traversed_bounded_by_total(self, kron):
        result = SingleBFS(kron).run(0)
        # Direction optimization plus early termination should inspect
        # fewer edges than the full |E| twice over.
        assert 0 < result.edges_traversed <= 2 * kron.num_edges

    def test_level_records_match_levels_counter(self, kron):
        result = SingleBFS(kron).run(0)
        assert len(result.record.levels) == result.record.counters.levels

    def test_kernel_launch_counted_once(self, kron):
        result = SingleBFS(kron).run(0)
        assert result.record.counters.kernel_launches == 1

    def test_star_from_hub_takes_one_level(self):
        result = SingleBFS(star(16)).run(0)
        directions = [lvl.direction for lvl in result.record.levels]
        assert directions[0] == "td"
        assert result.depths.max() == 1


class TestDirectionSwitching:
    def test_power_law_run_uses_bottom_up(self, kron):
        result = SingleBFS(kron).run(0)
        directions = {lvl.direction for lvl in result.record.levels}
        assert "bu" in directions

    def test_bottom_up_early_termination_counted(self, kron):
        result = SingleBFS(kron).run(0)
        assert result.record.counters.early_terminations > 0

    def test_bottom_up_saves_inspections_on_dense_graphs(self, kron):
        optimized = SingleBFS(kron).run(0)
        plain = SingleBFS(
            kron, policy=DirectionPolicy(allow_bottom_up=False)
        ).run(0)
        assert (
            optimized.record.counters.inspections
            < plain.record.counters.inspections
        )

    def test_device_override(self, kron):
        from repro.gpusim.config import XEON_CPU

        gpu = SingleBFS(kron).run(0)
        cpu = SingleBFS(kron, device=Device(XEON_CPU)).run(0)
        assert np.array_equal(gpu.depths, cpu.depths)
        assert cpu.seconds > gpu.seconds  # CPU model is slower
