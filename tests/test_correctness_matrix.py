"""Every engine x every graph family must match the oracle exactly.

This is the library's behavioural contract: all performance techniques
(joint traversal, GroupBy, bitwise statuses, early termination, cost
models) are observationally invisible in the computed depths.
"""

import numpy as np
import pytest

from repro.bfs.reference import reference_bfs_multi
from repro.core.result import validate_against_reference

from tests.conftest import pick_sources


GRAPH_NAMES = [
    "kron",
    "uniform",
    "disconnected",
    "star",
    "path",
    "complete",
    "small_world",
    "scale_free",
    "self_loops",
    "multi_edges",
]


@pytest.mark.parametrize("graph_name", GRAPH_NAMES)
def test_engine_matches_oracle(graph_zoo, any_engine_factory, graph_name):
    name, factory = any_engine_factory
    graph = graph_zoo[graph_name]
    sources = pick_sources(graph, 12, seed=hash(name) % 1000)
    result = factory(graph).run(sources)
    validate_against_reference(result, reference_bfs_multi(graph, sources))


def test_engines_agree_with_each_other(graph_zoo):
    """Cross-check: all engines produce bitwise-identical matrices."""
    from tests.conftest import engine_factories

    graph = graph_zoo["kron"]
    sources = pick_sources(graph, 10, seed=3)
    matrices = {}
    for name, factory in engine_factories():
        matrices[name] = factory(graph).run(sources).depths
    baseline = matrices.pop("sequential")
    for name, depths in matrices.items():
        assert np.array_equal(depths, baseline), name
