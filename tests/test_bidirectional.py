"""Bidirectional point-to-point distance queries."""

import numpy as np
import pytest

from repro.errors import TraversalError
from repro.graph.builders import from_edges
from repro.graph.generators import grid_2d, kronecker, path
from repro.bfs.bidirectional import bidirectional_distance
from repro.bfs.reference import reference_bfs


@pytest.fixture(scope="module")
def kron():
    return kronecker(scale=8, edge_factor=8, seed=231)


class TestCorrectness:
    def test_matches_full_bfs_on_kron(self, kron):
        rng = np.random.default_rng(232)
        for _ in range(20):
            s = int(rng.integers(kron.num_vertices))
            t = int(rng.integers(kron.num_vertices))
            expected = int(reference_bfs(kron, s)[t])
            got = bidirectional_distance(kron, s, t)
            assert got.distance == expected, (s, t)

    def test_path_graph_distances(self):
        g = path(20)
        result = bidirectional_distance(g, 0, 19)
        assert result.distance == 19
        assert result.reachable

    def test_grid_distances(self):
        g = grid_2d(6, 6)
        assert bidirectional_distance(g, 0, 35).distance == 10

    def test_same_vertex(self, kron):
        result = bidirectional_distance(kron, 5, 5)
        assert result.distance == 0
        assert result.meeting_vertex == 5

    def test_unreachable(self):
        g = from_edges([(0, 1)], num_vertices=4)
        result = bidirectional_distance(g, 0, 3)
        assert result.distance == -1
        assert not result.reachable
        assert result.meeting_vertex == -1

    def test_directed_edges_respected(self):
        g = from_edges([(0, 1), (1, 2)], num_vertices=3)
        assert bidirectional_distance(g, 0, 2).distance == 2
        assert bidirectional_distance(g, 2, 0).distance == -1

    def test_vertex_out_of_range(self, kron):
        with pytest.raises(TraversalError):
            bidirectional_distance(kron, 0, 10**6)


class TestEfficiency:
    def test_visits_fewer_than_full_bfs(self, kron):
        s = int(kron.out_degrees().argmax())
        depths = reference_bfs(kron, s)
        # A nearby target: meet-in-the-middle touches a fraction.
        targets = np.flatnonzero(depths == 2)
        if targets.size:
            result = bidirectional_distance(kron, s, int(targets[0]))
            full = int(np.count_nonzero(depths >= 0))
            assert result.visited < full

    def test_max_depth_cuts_off(self):
        g = path(30)
        result = bidirectional_distance(g, 0, 29, max_depth=4)
        assert result.distance == -1

    def test_max_depth_still_finds_close_pairs(self):
        g = path(30)
        result = bidirectional_distance(g, 3, 6, max_depth=10)
        assert result.distance == 3

    def test_meeting_vertex_lies_on_a_shortest_path(self, kron):
        rng = np.random.default_rng(233)
        for _ in range(10):
            s = int(rng.integers(kron.num_vertices))
            t = int(rng.integers(kron.num_vertices))
            result = bidirectional_distance(kron, s, t)
            if result.distance > 0:
                m = result.meeting_vertex
                ds = int(reference_bfs(kron, s)[m])
                dt = int(reference_bfs(kron, m)[t])
                assert ds + dt == result.distance
