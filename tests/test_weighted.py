"""Weighted CSR graphs."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.builders import from_edges
from repro.graph.generators import kronecker
from repro.graph.weighted import (
    WeightedCSRGraph,
    from_weighted_edges,
    with_random_weights,
    with_unit_weights,
)


@pytest.fixture
def weighted_triangle():
    return from_weighted_edges([(0, 1, 2.0), (1, 2, 3.0), (2, 0, 5.0)])


class TestConstruction:
    def test_basic(self, weighted_triangle):
        assert weighted_triangle.num_vertices == 3
        assert weighted_triangle.num_edges == 3

    def test_weight_count_must_match(self):
        g = from_edges([(0, 1), (1, 2)])
        with pytest.raises(GraphError, match="one weight per edge"):
            WeightedCSRGraph(g, np.asarray([1.0]))

    def test_neighbors_return_weights(self, weighted_triangle):
        neighbors, weights = weighted_triangle.neighbors(1)
        assert neighbors.tolist() == [2]
        assert weights.tolist() == [3.0]

    def test_weights_follow_csr_order(self):
        # Edges given out of source order; weights must follow topology.
        g = from_weighted_edges([(1, 0, 9.0), (0, 2, 1.0), (0, 1, 4.0)])
        neighbors, weights = g.neighbors(0)
        assert neighbors.tolist() == [2, 1]
        assert weights.tolist() == [1.0, 4.0]

    def test_undirected_duplicates_weights(self):
        g = from_weighted_edges([(0, 1, 7.0)], undirected=True)
        assert g.num_edges == 2
        _, w01 = g.neighbors(0)
        _, w10 = g.neighbors(1)
        assert w01.tolist() == [7.0]
        assert w10.tolist() == [7.0]

    def test_empty(self):
        g = from_weighted_edges([])
        assert g.num_vertices == 0
        assert not g.has_negative_weights()

    def test_repr(self, weighted_triangle):
        assert "num_vertices=3" in repr(weighted_triangle)


class TestReverse:
    def test_reverse_carries_weights(self, weighted_triangle):
        rev = weighted_triangle.reverse()
        neighbors, weights = rev.neighbors(1)
        assert neighbors.tolist() == [0]
        assert weights.tolist() == [2.0]

    def test_reverse_is_cached_involution(self, weighted_triangle):
        assert weighted_triangle.reverse().reverse() is weighted_triangle


class TestFactories:
    def test_unit_weights_are_ones(self):
        g = with_unit_weights(from_edges([(0, 1), (1, 2)]))
        assert g.weights.tolist() == [1.0, 1.0]

    def test_random_weights_in_range(self):
        topo = kronecker(scale=6, edge_factor=4, seed=2)
        g = with_random_weights(topo, low=2.0, high=5.0, seed=3)
        assert g.weights.min() >= 2.0
        assert g.weights.max() < 5.0

    def test_random_weights_deterministic(self):
        topo = kronecker(scale=5, edge_factor=4, seed=2)
        a = with_random_weights(topo, seed=3)
        b = with_random_weights(topo, seed=3)
        assert np.array_equal(a.weights, b.weights)

    def test_invalid_range(self):
        with pytest.raises(GraphError):
            with_random_weights(from_edges([(0, 1)]), low=5.0, high=1.0)

    def test_negative_detection(self):
        g = from_weighted_edges([(0, 1, -1.0)])
        assert g.has_negative_weights()
