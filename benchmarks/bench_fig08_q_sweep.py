"""Figure 8: GroupBy performance as the hub threshold q varies.

Paper shape: performance rises with q, peaks in a middle band (the
paper reports 128-1024 at its graph sizes), and falls for very large q
because too few sources satisfy Rule 2.  At laptop scale the peak band
shifts left with the hub degrees, but the rise-peak-fall shape and the
poor extremes must hold.
"""

import pytest

from repro import IBFS, IBFSConfig
from repro.core.groupby import GroupByConfig

from harness import emit, format_table, load_graph, pick_sources, run_once

# The largest value exceeds every vertex degree at laptop scale, so the
# "no source satisfies Rule 2" regime the paper observes at q=4096
# genuinely occurs.
Q_VALUES = (1, 4, 16, 64, 128, 256, 1024, 1_000_000)
GRAPHS = ("HW", "KG0", "LJ", "OR")


@pytest.mark.parametrize("graph_name", GRAPHS)
def test_fig08_q_sweep(benchmark, graph_name):
    graph = load_graph(graph_name)
    sources = pick_sources(graph)

    def experiment():
        times = {}
        for q in Q_VALUES:
            engine = IBFS(
                graph,
                IBFSConfig(
                    group_size=32,
                    groupby=True,
                    groupby_config=GroupByConfig(q=q),
                ),
            )
            times[q] = engine.run(sources, store_depths=False).seconds
        return times

    times = run_once(benchmark, experiment)
    best = min(times.values())
    rows = [
        (q, times[q] * 1e3, round(100 * best / times[q], 1)) for q in Q_VALUES
    ]
    table = format_table(
        f"Figure 8 [{graph_name}]: GroupBy performance vs q "
        "(relative % of best)",
        ["q", "ms", "relative %"],
        rows,
    )
    emit(f"fig08_q_sweep_{graph_name}", table)

    # Shape: the best q sits strictly inside the sweep, or at least the
    # extremes are not better than the interior band.
    interior_best = min(times[q] for q in Q_VALUES[1:-1])
    assert interior_best <= times[Q_VALUES[0]] * 1.02
    assert interior_best <= times[Q_VALUES[-1]] * 1.02
    benchmark.extra_info["best_q"] = min(times, key=times.get)
