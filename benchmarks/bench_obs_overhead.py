#!/usr/bin/env python
"""Observability overhead gate: profiling must stay within budget.

:mod:`repro.obs.profile` documents a hard ceiling — fully enabled
tracing + per-level profiling may slow the hot path by at most
``OVERHEAD_BUDGET`` (5%).  This harness measures it: each configuration
runs the bitwise engine with observability fully off and fully on
(tracer installed, ``sample_every=1``), takes the best of ``--repeats``
wall clocks for each, and reports the overhead ratio
``enabled/disabled - 1``.

The gate is machine-independent (a ratio on the same host), so
``--check`` needs no committed baseline: it exits 1 if any
configuration exceeds the budget.  Results go to ``BENCH_obs.json``
(or ``BENCH_obs.quick.json`` with ``--quick``); ``--trace PATH``
additionally writes the final instrumented run's spans and the
harness's own hub metrics as a JSONL trace artifact.

Usage::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py            # full
    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --quick --check
    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --quick \
        --trace obs-trace.jsonl
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.bitwise import BitwiseTraversal
from repro.graph.generators import rmat
from repro.obs import export as obs_export
from repro.obs import metrics as obs_metrics
from repro.obs import profile as obs_profile
from repro.obs import tracing as obs_tracing
from repro.obs.ledger import Ledger, save_ledger
from repro.obs.profile import OVERHEAD_BUDGET

SOURCE_SEED = 23

#: (name, scale, edge_factor, group_size).  Low edge factors raise the
#: diameter, maximizing levels — and therefore profile spans — per unit
#: of traversal work, which is the worst case for the budget.
FULL_CONFIGS = [
    ("bitwise-rmat15-ef2-gs64", 15, 2, 64),
    ("bitwise-rmat17-ef2-gs64", 17, 2, 64),
    ("bitwise-rmat13-ef8-gs32", 13, 8, 32),
]
QUICK_CONFIGS = [
    ("bitwise-rmat14-ef2-gs64", 14, 2, 64),
]
FULL_CONFIGS = QUICK_CONFIGS + FULL_CONFIGS


def observability_off():
    obs_profile.disable()
    obs_tracing.set_tracer(None)


def observability_on():
    tracer = obs_tracing.configure(process="bench")
    obs_profile.configure(enabled=True, sample_every=1)
    return tracer


def time_group(graph, sources):
    """Wall seconds for one joint group run on a fresh engine."""
    engine = BitwiseTraversal(graph)
    start = time.perf_counter()
    engine.run_group(sources)
    return time.perf_counter() - start


def run_config(name, scale, edge_factor, group_size, repeats):
    graph = rmat(scale, edge_factor=edge_factor, seed=5)
    rng = np.random.default_rng(SOURCE_SEED)
    sources = rng.integers(0, graph.num_vertices, size=group_size).tolist()

    # Warm caches (allocator, BLAS threads) outside the measurement.
    observability_off()
    BitwiseTraversal(graph).run_group(sources)

    # Off and on runs interleave within each repeat so slow host drift
    # (frequency scaling, background load) hits both states equally
    # instead of biasing the enabled/disabled ratio; best-of-repeats
    # then strips the remaining one-sided noise.
    tracer = observability_on()
    off_s = float("inf")
    on_s = float("inf")
    for _ in range(repeats):
        observability_off()
        off_s = min(off_s, time_group(graph, sources))
        obs_tracing.set_tracer(tracer)
        obs_profile.configure(enabled=True, sample_every=1)
        on_s = min(on_s, time_group(graph, sources))
    span_count = len(tracer.finished)
    observability_off()

    overhead = on_s / off_s - 1.0
    return {
        "name": name,
        "graph": f"rmat scale={scale} edge_factor={edge_factor} seed=5",
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "group_size": group_size,
        "disabled_seconds": off_s,
        "enabled_seconds": on_s,
        "spans_per_run": span_count // repeats,
        "overhead": overhead,
        "budget": OVERHEAD_BUDGET,
    }, tracer


def publish(results, hub=None):
    """Register the harness's measurements into the metrics hub, so the
    overhead gate's numbers export like any other layer's."""
    hub = hub if hub is not None else obs_metrics.get_hub()
    for entry in results:
        labels = {"config": entry["name"]}
        hub.gauge(
            "bench_obs_overhead_ratio",
            "Fully-enabled profiling slowdown (enabled/disabled - 1)",
            labels=labels,
        ).set(entry["overhead"])
        hub.gauge(
            "bench_obs_disabled_seconds",
            "Best-of-repeats wall seconds, observability off",
            labels=labels,
        ).set(entry["disabled_seconds"])
        hub.gauge(
            "bench_obs_enabled_seconds",
            "Best-of-repeats wall seconds, observability on",
            labels=labels,
        ).set(entry["enabled_seconds"])
    hub.gauge(
        "bench_obs_overhead_budget", "Documented overhead ceiling"
    ).set(OVERHEAD_BUDGET)
    return hub


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="one small config, fewer repeats (the CI gate)",
    )
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="timing repeats per observability state",
    )
    parser.add_argument(
        "--output", type=Path, default=None,
        help="result JSON path (default: BENCH_obs.json at repo root; "
        "BENCH_obs.quick.json in --quick mode)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit 1 if any config's overhead exceeds the "
        f"{OVERHEAD_BUDGET:.0%} budget (no baseline file needed — the "
        "budget is an absolute ratio)",
    )
    parser.add_argument(
        "--trace", type=Path, default=None,
        help="write the last instrumented run's spans plus the "
        "harness metrics as a JSONL trace artifact",
    )
    args = parser.parse_args(argv)

    configs = QUICK_CONFIGS if args.quick else FULL_CONFIGS
    repeats = args.repeats or (3 if args.quick else 5)
    root = Path(__file__).resolve().parent.parent
    output = args.output or (
        root / ("BENCH_obs.quick.json" if args.quick else "BENCH_obs.json")
    )

    results = []
    last_tracer = None
    for cfg in configs:
        print(f"[{cfg[0]}] running ({repeats} repeats per state)...",
              flush=True)
        entry, last_tracer = run_config(*cfg, repeats)
        results.append(entry)
        print(
            f"  off {entry['disabled_seconds']:.3f}s  "
            f"on {entry['enabled_seconds']:.3f}s  "
            f"overhead {entry['overhead']:+.2%} "
            f"(budget {OVERHEAD_BUDGET:.0%}, "
            f"{entry['spans_per_run']} spans/run)",
            flush=True,
        )

    payload = {
        "benchmark": "obs_overhead",
        "mode": "quick" if args.quick else "full",
        "repeats": repeats,
        "metric": "profiling overhead ratio (enabled/disabled - 1)",
        "budget": OVERHEAD_BUDGET,
        "results": results,
    }
    # Results land in the unified bench-ledger schema so `repro
    # bench-diff` can gate run-over-run regressions directly.
    ledger = Ledger.from_legacy(payload)
    save_ledger(ledger, str(output))
    print(f"wrote {output} (repro.bench-ledger/v1)")

    if args.trace is not None:
        hub = publish(results, obs_metrics.MetricsHub())
        count = obs_export.write_jsonl(
            str(args.trace), obs_export.trace_records(last_tracer, hub)
        )
        print(f"wrote {args.trace} ({count} records)")

    if args.check:
        failed = False
        for entry in results:
            if entry["overhead"] > OVERHEAD_BUDGET:
                print(
                    f"OVER BUDGET {entry['name']}: overhead "
                    f"{entry['overhead']:+.2%} > {OVERHEAD_BUDGET:.0%}",
                    file=sys.stderr,
                )
                failed = True
        if failed:
            return 1
        print(
            f"overhead check passed: all configs within the "
            f"{OVERHEAD_BUDGET:.0%} budget"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
