"""Figure 14: the benchmark graphs (vertex and edge counts).

The paper plots the 13 graphs by vertex count (up to ~17 M) and edge
count (up to ~1 B); our laptop-scale stand-ins preserve the relative
ordering (KG2 largest, KG0 densest, PK smallest) at 2^10..2^13 vertices.
"""

from repro.graph.properties import degree_stats, gini_coefficient

from harness import ALL_GRAPHS, emit, format_table, load_graph, run_once


def test_fig14_graph_inventory(benchmark):
    def experiment():
        rows = []
        for name in ALL_GRAPHS:
            graph = load_graph(name)
            stats = degree_stats(graph)
            rows.append(
                (
                    name,
                    graph.num_vertices,
                    graph.num_edges,
                    round(graph.average_degree, 1),
                    int(stats["max"]),
                    round(gini_coefficient(graph), 3),
                )
            )
        return rows

    rows = run_once(benchmark, experiment)
    table = format_table(
        "Figure 14: graph benchmarks (laptop-scale stand-ins)",
        ["graph", "vertices", "edges", "avg_deg", "max_deg", "gini"],
        rows,
    )
    emit("fig14_graphs", table)
    # KG2 must be the largest graph, mirroring the paper's suite.
    edges = {row[0]: row[2] for row in rows}
    assert max(edges, key=edges.get) == "KG2"
    benchmark.extra_info["graphs"] = len(rows)
