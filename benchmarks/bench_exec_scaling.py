#!/usr/bin/env python
"""Wall-clock scaling harness for the multi-process execution backend.

Measures real host wall time of :class:`repro.exec.GroupExecutor` over
1/2/4/8 workers against the serial :class:`repro.core.engine.IBFS`
baseline on the same graph and sources.  Every worker count's result is
asserted bit-identical to the serial engine (depths, counters, group
stats) before its timing is trusted, and one fault-injected
configuration (a worker crashed mid-run) must also reproduce the serial
result exactly — a speedup can never come from doing different or
wrong work.

Results land in ``BENCH_exec.json`` at the repo root (or ``--output``;
``BENCH_exec.quick.json`` in ``--quick`` mode).  ``--check`` gates:

* the fault-injected run must be bit-identical (always enforced);
* the 2-worker speedup must reach ``--min-speedup`` (default 1.3x) —
  enforced only when the host has at least 2 CPU cores, since genuine
  parallel speedup is physically impossible on a single core; such
  hosts record ``"insufficient_cores": true`` instead.

Usage::

    PYTHONPATH=src python benchmarks/bench_exec_scaling.py          # full
    PYTHONPATH=src python benchmarks/bench_exec_scaling.py --quick  # CI
    PYTHONPATH=src python benchmarks/bench_exec_scaling.py --quick --check
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.engine import IBFS, IBFSConfig
from repro.exec import ExecConfig, FaultPlan, FaultPolicy, GroupExecutor
from repro.graph.generators import rmat

SOURCE_SEED = 11

#: (scale, edge_factor, group_size, num_sources) — enough groups that
#: placement matters (stealing has victims) but each group is a real
#: traversal, so per-task compute dwarfs the IPC round-trip.
FULL_SHAPE = (14, 4, 8, 96)
QUICK_SHAPE = (13, 4, 8, 64)

FULL_WORKER_COUNTS = (1, 2, 4, 8)
QUICK_WORKER_COUNTS = (1, 2)


def same_result(a, b) -> bool:
    """Bit-identity of two ConcurrentResults (the executor contract)."""
    if a.sources != b.sources or a.seconds != b.seconds:
        return False
    if a.counters.__dict__ != b.counters.__dict__:
        return False
    if len(a.groups) != len(b.groups):
        return False
    for ga, gb in zip(a.groups, b.groups):
        if ga.__dict__ != gb.__dict__:
            return False
    if (a.depths is None) != (b.depths is None):
        return False
    if a.depths is not None and not np.array_equal(a.depths, b.depths):
        return False
    return True


def time_run(run, repeats):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller graph, 1/2 workers only (CI smoke)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repeats per configuration")
    parser.add_argument("--output", type=Path, default=None,
                        help="result JSON path (default: BENCH_exec.json "
                             "at repo root; BENCH_exec.quick.json with "
                             "--quick)")
    parser.add_argument("--check", action="store_true",
                        help="fail unless the fault-injected run is "
                             "bit-identical and (on multi-core hosts) the "
                             "2-worker speedup reaches --min-speedup")
    parser.add_argument("--min-speedup", type=float, default=1.3,
                        help="required 2-worker speedup under --check")
    args = parser.parse_args(argv)

    scale, edge_factor, group_size, num_sources = (
        QUICK_SHAPE if args.quick else FULL_SHAPE
    )
    worker_counts = QUICK_WORKER_COUNTS if args.quick else FULL_WORKER_COUNTS
    repeats = args.repeats or (2 if args.quick else 3)
    root = Path(__file__).resolve().parent.parent
    output = args.output or (
        root / ("BENCH_exec.quick.json" if args.quick else "BENCH_exec.json")
    )
    cpu_count = os.cpu_count() or 1

    graph = rmat(scale, edge_factor=edge_factor, seed=3)
    rng = np.random.default_rng(SOURCE_SEED)
    sources = sorted(
        rng.choice(graph.num_vertices, size=num_sources, replace=False).tolist()
    )
    config = IBFSConfig(group_size=group_size)
    engine = IBFS(graph, config)

    print(
        f"graph rmat scale={scale} ef={edge_factor}: "
        f"{graph.num_vertices} vertices, {graph.num_edges} edges; "
        f"{num_sources} sources in groups of {group_size}; "
        f"{cpu_count} host cores",
        flush=True,
    )

    reference = engine.run(sources, store_depths=True)
    serial_seconds = time_run(
        lambda: engine.run(sources, store_depths=False), repeats
    )
    print(f"[serial] {serial_seconds:.3f}s", flush=True)

    results = []
    for workers in worker_counts:
        with GroupExecutor(
            graph, config, exec_config=ExecConfig(num_workers=workers)
        ) as executor:
            # Verification pass doubles as pool warm-up, so fork/attach
            # cost is excluded from the timed runs.
            verify = executor.run(sources, store_depths=True)
            if not same_result(reference, verify):
                raise AssertionError(
                    f"{workers}-worker result diverged from serial"
                )
            seconds = time_run(
                lambda: executor.run(sources, store_depths=False), repeats
            )
            stats = executor.last_stats
        entry = {
            "workers": workers,
            "seconds": seconds,
            "speedup_vs_serial": serial_seconds / seconds,
            "bit_identical": True,
            "backend": stats.backend,
            "steals": stats.steals,
            "per_worker_tasks": dict(stats.per_worker_tasks),
        }
        results.append(entry)
        print(
            f"[{workers} workers] {seconds:.3f}s  "
            f"speedup {entry['speedup_vs_serial']:.2f}x  "
            f"steals {stats.steals}",
            flush=True,
        )

    # Fault-injected run: crash the worker holding task 1 on its first
    # attempt; the retried run must still reproduce the serial result.
    with GroupExecutor(
        graph,
        config,
        exec_config=ExecConfig(
            num_workers=2,
            fault_plan=FaultPlan(crash={1: 1}),
            faults=FaultPolicy(max_retries=2),
        ),
    ) as executor:
        faulted = executor.run(sources, store_depths=True)
        fault_stats = executor.last_stats
    fault_identical = same_result(reference, faulted)
    fault_entry = {
        "workers": 2,
        "injected": "crash task 1 attempt 0",
        "bit_identical": fault_identical,
        "crashes": fault_stats.crashes,
        "retries": fault_stats.retries,
        "respawns": fault_stats.respawns,
    }
    print(
        f"[fault-injected] crashes={fault_stats.crashes} "
        f"retries={fault_stats.retries} "
        f"bit_identical={fault_identical}",
        flush=True,
    )

    two_worker = next(r for r in results if r["workers"] == 2)
    insufficient_cores = cpu_count < 2
    payload = {
        "benchmark": "exec_scaling",
        "mode": "quick" if args.quick else "full",
        "repeats": repeats,
        "metric": "host wall-clock seconds per full run (best of repeats)",
        "graph": f"rmat scale={scale} edge_factor={edge_factor} seed=3",
        "num_sources": num_sources,
        "group_size": group_size,
        "cpu_count": cpu_count,
        "insufficient_cores": insufficient_cores,
        "serial_seconds": serial_seconds,
        "results": results,
        "fault_injected": fault_entry,
    }

    failures = []
    if args.check:
        if not fault_identical:
            failures.append("fault-injected run diverged from serial")
        if fault_stats.crashes < 1:
            failures.append("injected crash never fired")
        if insufficient_cores:
            print(
                f"check: host has {cpu_count} core(s); the "
                f"{args.min_speedup:.1f}x 2-worker gate needs >= 2 and "
                f"is skipped (recorded insufficient_cores)"
            )
        elif two_worker["speedup_vs_serial"] < args.min_speedup:
            failures.append(
                f"2-worker speedup {two_worker['speedup_vs_serial']:.2f}x "
                f"< {args.min_speedup:.1f}x"
            )
        # The gate verdict travels with the numbers: a reader of the
        # JSON sees what host ran it, whether the speedup gate applied,
        # and what (if anything) failed — no CI log digging.
        payload["check"] = {
            "cpu_count": cpu_count,
            "min_speedup": args.min_speedup,
            "speedup_gate_enforced": not insufficient_cores,
            "passed": not failures,
            "failures": failures,
        }

    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {output}")

    if args.check:
        for failure in failures:
            print(f"CHECK FAILED: {failure}", file=sys.stderr)
        if failures:
            return 1
        print("exec scaling check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
