"""Online serving: micro-batched vs one-request-one-traversal throughput.

The serving-layer acceptance claim: a closed-loop client fleet issuing
single-source BFS requests with a power-law (Zipf-over-degree-rank)
source distribution is served >= 4x faster by dynamic micro-batching
(GroupBy-formed batches + LRU result cache) than by running one
traversal per request — on an R-MAT graph, where hub-skew gives both
the cache and GroupBy something to exploit.

Reported per configuration: requests/sec, p50/p99 latency, batch
occupancy, realized sharing degree, and cache hit rate — the metrics
JSON the server exports.

Run as a script, this file is also the runtime-registry overhead gate::

    PYTHONPATH=src python benchmarks/bench_serving_throughput.py --check

Every server dispatch now crosses ``repro.runtime``'s Substrate layer
instead of calling the engine directly, so ``--check`` measures what
that indirection costs: the same groups are traversed through
``substrate.run_group`` and through ``engine.run_group`` on the very
same engine object, interleaved, best-of-repeats.  The registry/direct
ratio must stay within ``--max-overhead`` (default 2%).  Results are
written as a ``repro.bench-ledger/v1`` ledger (``BENCH_runtime.json``)
whose gated metrics are machine-independent ratios — wall-clock
seconds travel as attrs only — so ``repro bench-diff`` can compare
runs across hosts.
"""

import pytest

from harness import emit, format_table, run_once
from repro.graph.generators import rmat
from repro.service import ServingConfig, WorkloadConfig, compare_serving

#: >= 4x requests/sec over naive serving (the PR acceptance bar).
MIN_SPEEDUP = 4.0


@pytest.fixture(scope="module")
def graph():
    return rmat(scale=11, edge_factor=16, seed=7)


def test_serving_throughput(benchmark, graph):
    workload = WorkloadConfig(
        num_requests=512,
        num_clients=64,
        zipf_exponent=1.1,
        seed=1,
    )
    serving = ServingConfig(
        batch_size=32,
        flush_deadline=5e-5,
        queue_capacity=256,
        cache_capacity=4096,
    )

    comparison = run_once(
        benchmark, lambda: compare_serving(graph, workload, serving)
    )
    batched, naive = comparison["batched"], comparison["naive"]

    rows = []
    for label, result in (("micro-batched", batched), ("naive", naive)):
        lat = result.metrics["latency_seconds"]
        batches = result.metrics["batches"]
        cache = result.metrics["cache"]
        rows.append(
            (
                label,
                result.completed,
                result.throughput / 1e3,
                lat["p50"] * 1e6,
                lat["p99"] * 1e6,
                batches["count"],
                batches["mean_occupancy"],
                batches["mean_sharing_degree"],
                cache["hit_rate"],
            )
        )
    rows.append(
        ("speedup", "", comparison["speedup"], "", "", "", "", "", "")
    )
    emit(
        "serving_throughput",
        format_table(
            "Online serving: micro-batched vs one-request-one-traversal "
            "(RMAT scale 11, zipf 1.1, 64 closed-loop clients)",
            ["serving", "completed", "kreq/s", "p50us", "p99us",
             "batches", "occupancy", "sharing", "cache_hit"],
            rows,
        ),
    )
    benchmark.extra_info.update(
        {
            "batched_rps": batched.throughput,
            "naive_rps": naive.throughput,
            "speedup": comparison["speedup"],
            "cache_hit_rate": batched.metrics["cache"]["hit_rate"],
            "mean_occupancy": batched.metrics["batches"]["mean_occupancy"],
        }
    )

    # Every request is answered in both configurations.
    assert batched.completed == workload.num_requests
    assert naive.completed == workload.num_requests
    assert batched.shed == 0 and batched.errored == 0
    # The metrics JSON carries the occupancy/cache evidence.
    assert batched.metrics["batches"]["mean_occupancy"] > 0.3
    assert batched.metrics["cache"]["hit_rate"] > 0.2
    assert naive.metrics["cache"]["hit_rate"] == 0.0
    # The acceptance bar: >= 4x requests/sec over naive serving.
    assert comparison["speedup"] >= MIN_SPEEDUP, (
        f"micro-batched serving only {comparison['speedup']:.2f}x over naive"
    )


# ----------------------------------------------------------------------
# Registry dispatch overhead gate (script mode, ``--check``)
# ----------------------------------------------------------------------
def _time_best(fn, repeats):
    import time

    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _measure_overhead(direct, registry, repeats):
    """Interleaved best-of timing of two equivalent call paths.

    Alternating direct/registry inside one loop exposes both to the
    same thermal and cache conditions; best-of filters scheduler
    noise.  Returns (direct_seconds, registry_seconds, ratio).
    """
    direct()
    registry()  # warm both paths before trusting any timing
    best_direct = best_registry = float("inf")
    for _ in range(repeats):
        best_direct = min(best_direct, _time_best(direct, 1))
        best_registry = min(best_registry, _time_best(registry, 1))
    return best_direct, best_registry, best_registry / best_direct


def main(argv=None):
    import argparse
    import os
    import sys
    from pathlib import Path

    from repro.core.engine import IBFSConfig
    from repro.obs.ledger import (
        LOWER_IS_BETTER,
        Ledger,
        LedgerEntry,
        MetricPoint,
        save_ledger,
    )
    from repro.runtime import SubstrateSpec, make_substrate

    parser = argparse.ArgumentParser(
        description="runtime-registry dispatch overhead gate"
    )
    parser.add_argument("--quick", action="store_true",
                        help="smaller graph and fewer repeats (CI smoke)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="interleaved timing repeats (default 3 "
                             "quick / 5 full)")
    parser.add_argument("--check", action="store_true",
                        help="fail unless registry dispatch stays within "
                             "--max-overhead of direct engine calls")
    parser.add_argument("--max-overhead", type=float, default=0.02,
                        help="allowed fractional overhead of registry "
                             "dispatch under --check (default 0.02)")
    parser.add_argument("--output", type=Path, default=None,
                        help="ledger path (default: BENCH_runtime.json at "
                             "repo root; BENCH_runtime.quick.json with "
                             "--quick)")
    args = parser.parse_args(argv)

    scale = 10 if args.quick else 11
    repeats = args.repeats or (3 if args.quick else 5)
    root = Path(__file__).resolve().parent.parent
    output = args.output or (
        root / ("BENCH_runtime.quick.json" if args.quick
                else "BENCH_runtime.json")
    )

    graph = rmat(scale=scale, edge_factor=16, seed=7)
    config = IBFSConfig(group_size=8)
    sources = list(range(0, 128, 2))

    print(
        f"graph rmat scale={scale} ef=16: {graph.num_vertices} vertices, "
        f"{graph.num_edges} edges; {len(sources)} sources in groups of "
        f"{config.group_size}; repeats={repeats}",
        flush=True,
    )

    ledger = Ledger(
        benchmark="runtime_dispatch",
        mode="quick" if args.quick else "full",
        meta={
            "graph": f"rmat scale={scale} edge_factor=16 seed=7",
            "num_sources": len(sources),
            "group_size": config.group_size,
            "cpu_count": os.cpu_count() or 1,
            "repeats": repeats,
            "max_overhead": args.max_overhead,
            "metric": "registry/direct wall-clock ratio "
                      "(best of interleaved repeats)",
        },
    )

    failures = []
    with make_substrate(
        SubstrateSpec(kind="serial"), graph, engine_config=config
    ) as substrate:
        engine = substrate.engine  # the registry wraps this exact object
        groups = engine.make_groups(sources)

        cases = {
            "dispatch_run_group": (
                lambda: [engine.run_group(g) for g in groups],
                lambda: [substrate.run_group(g) for g in groups],
            ),
            "dispatch_run": (
                lambda: engine.run(sources, store_depths=False),
                lambda: substrate.run(sources, store_depths=False),
            ),
        }
        for name, (direct, registry) in cases.items():
            direct_s, registry_s, ratio = _measure_overhead(
                direct, registry, repeats
            )
            print(
                f"[{name}] direct {direct_s * 1e3:.2f}ms  "
                f"registry {registry_s * 1e3:.2f}ms  "
                f"ratio {ratio:.4f}",
                flush=True,
            )
            ledger.entries.append(
                LedgerEntry(
                    name=name,
                    metrics={
                        "overhead_ratio": MetricPoint(
                            value=ratio,
                            direction=LOWER_IS_BETTER,
                            unit="x",
                        ),
                    },
                    attrs={
                        "direct_seconds": direct_s,
                        "registry_seconds": registry_s,
                    },
                )
            )
            if args.check and ratio > 1.0 + args.max_overhead:
                failures.append(
                    f"{name}: registry dispatch {ratio:.4f}x direct "
                    f"exceeds the {1.0 + args.max_overhead:.2f}x budget"
                )

    if args.check:
        ledger.meta["check"] = {
            "passed": not failures,
            "failures": failures,
        }

    save_ledger(ledger, str(output))
    print(f"wrote {output}")

    if args.check:
        for failure in failures:
            print(f"CHECK FAILED: {failure}", file=sys.stderr)
        if failures:
            return 1
        print("runtime dispatch check passed")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
