"""Online serving: micro-batched vs one-request-one-traversal throughput.

The serving-layer acceptance claim: a closed-loop client fleet issuing
single-source BFS requests with a power-law (Zipf-over-degree-rank)
source distribution is served >= 4x faster by dynamic micro-batching
(GroupBy-formed batches + LRU result cache) than by running one
traversal per request — on an R-MAT graph, where hub-skew gives both
the cache and GroupBy something to exploit.

Reported per configuration: requests/sec, p50/p99 latency, batch
occupancy, realized sharing degree, and cache hit rate — the metrics
JSON the server exports.
"""

import pytest

from harness import emit, format_table, run_once
from repro.graph.generators import rmat
from repro.service import ServingConfig, WorkloadConfig, compare_serving

#: >= 4x requests/sec over naive serving (the PR acceptance bar).
MIN_SPEEDUP = 4.0


@pytest.fixture(scope="module")
def graph():
    return rmat(scale=11, edge_factor=16, seed=7)


def test_serving_throughput(benchmark, graph):
    workload = WorkloadConfig(
        num_requests=512,
        num_clients=64,
        zipf_exponent=1.1,
        seed=1,
    )
    serving = ServingConfig(
        batch_size=32,
        flush_deadline=5e-5,
        queue_capacity=256,
        cache_capacity=4096,
    )

    comparison = run_once(
        benchmark, lambda: compare_serving(graph, workload, serving)
    )
    batched, naive = comparison["batched"], comparison["naive"]

    rows = []
    for label, result in (("micro-batched", batched), ("naive", naive)):
        lat = result.metrics["latency_seconds"]
        batches = result.metrics["batches"]
        cache = result.metrics["cache"]
        rows.append(
            (
                label,
                result.completed,
                result.throughput / 1e3,
                lat["p50"] * 1e6,
                lat["p99"] * 1e6,
                batches["count"],
                batches["mean_occupancy"],
                batches["mean_sharing_degree"],
                cache["hit_rate"],
            )
        )
    rows.append(
        ("speedup", "", comparison["speedup"], "", "", "", "", "", "")
    )
    emit(
        "serving_throughput",
        format_table(
            "Online serving: micro-batched vs one-request-one-traversal "
            "(RMAT scale 11, zipf 1.1, 64 closed-loop clients)",
            ["serving", "completed", "kreq/s", "p50us", "p99us",
             "batches", "occupancy", "sharing", "cache_hit"],
            rows,
        ),
    )
    benchmark.extra_info.update(
        {
            "batched_rps": batched.throughput,
            "naive_rps": naive.throughput,
            "speedup": comparison["speedup"],
            "cache_hit_rate": batched.metrics["cache"]["hit_rate"],
            "mean_occupancy": batched.metrics["batches"]["mean_occupancy"],
        }
    )

    # Every request is answered in both configurations.
    assert batched.completed == workload.num_requests
    assert naive.completed == workload.num_requests
    assert batched.shed == 0 and batched.errored == 0
    # The metrics JSON carries the occupancy/cache evidence.
    assert batched.metrics["batches"]["mean_occupancy"] > 0.3
    assert batched.metrics["cache"]["hit_rate"] > 0.2
    assert naive.metrics["cache"]["hit_rate"] == 0.0
    # The acceptance bar: >= 4x requests/sec over naive serving.
    assert comparison["speedup"] >= MIN_SPEEDUP, (
        f"micro-batched serving only {comparison['speedup']:.2f}x over naive"
    )
