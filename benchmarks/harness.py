"""Shared infrastructure for the per-figure benchmark harness.

Every ``bench_*.py`` file regenerates one table or figure from the
paper's evaluation (section 8).  Conventions:

* graphs come from :func:`repro.graph.benchmarks.benchmark_graph` at a
  scale controlled by the ``REPRO_BENCH_SCALE`` environment variable
  (``scale_delta``, default 0 — the suite's native laptop scale);
* the number of BFS instances per experiment is controlled by
  ``REPRO_BENCH_SOURCES`` (default 128, the paper's APSP scaled down —
  several groups of 32, so GroupBy has real choices to make);
* each benchmark prints a plain-text reproduction of the figure's rows
  and writes the same table under ``benchmarks/results/`` so
  EXPERIMENTS.md can reference stable artifacts;
* pytest-benchmark measures harness wall time; the *simulated* metrics
  (TEPS, transactions) are attached as ``extra_info``.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro import (
    IBFS,
    IBFSConfig,
    NaiveConcurrentBFS,
    SequentialConcurrentBFS,
    benchmark_graph,
)
from repro.graph.csr import CSRGraph

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Graphs listed in the order the paper's figures use.
ALL_GRAPHS = (
    "FB", "FR", "HW", "KG0", "KG1", "KG2", "LJ", "OR", "PK", "RD", "RM",
    "TW", "WK",
)


def scale_delta() -> int:
    """Benchmark graph scale offset (env ``REPRO_BENCH_SCALE``)."""
    return int(os.environ.get("REPRO_BENCH_SCALE", "0"))


def source_count() -> int:
    """Concurrent instances per experiment (env ``REPRO_BENCH_SOURCES``)."""
    return int(os.environ.get("REPRO_BENCH_SOURCES", "128"))


def load_graph(name: str) -> CSRGraph:
    """The named benchmark graph at the configured scale."""
    return benchmark_graph(name, scale_delta=scale_delta())


def pick_sources(graph: CSRGraph, count: Optional[int] = None, seed: int = 42):
    """Deterministic distinct sources for an experiment."""
    if count is None:
        count = source_count()
    count = min(count, graph.num_vertices)
    rng = np.random.default_rng(seed)
    return sorted(
        rng.choice(graph.num_vertices, size=count, replace=False).tolist()
    )


def fig15_engines(graph: CSRGraph, group_size: int = 32) -> Dict[str, object]:
    """The five engine configurations of figure 15, in bar order."""
    return {
        "sequential": SequentialConcurrentBFS(graph),
        "naive": NaiveConcurrentBFS(graph),
        "joint": IBFS(
            graph, IBFSConfig(group_size=group_size, mode="joint", groupby=False)
        ),
        "bitwise": IBFS(
            graph, IBFSConfig(group_size=group_size, mode="bitwise", groupby=False)
        ),
        "groupby": IBFS(
            graph, IBFSConfig(group_size=group_size, mode="bitwise", groupby=True)
        ),
    }


def format_table(
    title: str, headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Fixed-width text table mirroring the paper's figure data."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in str_rows)) if str_rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines) + "\n"


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.01:
            return f"{cell:.3g}"
        return f"{cell:.3f}"
    return str(cell)


def emit(name: str, table: str) -> None:
    """Print the reproduction table and persist it under results/."""
    print("\n" + table)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(table)


def run_once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark and return its value.

    The interesting measurements are simulated (deterministic), so
    repeated timing rounds would only re-measure the harness itself.
    """
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)
