#!/usr/bin/env python
"""Traversal-plan policy comparison and record/replay benchmark.

Runs :class:`repro.core.engine.IBFS` over the same graph and sources
under every planner policy (``heuristic``, ``adaptive``, ``td-only``,
``no-early-termination``) and reports the simulated cost-model seconds
and hardware counters each policy pays.  Direction, kernel variant,
vector width, and snapshot strategy are cost-only knobs, so every
policy's depth matrix is asserted bit-identical to the heuristic
reference before its numbers are trusted.

A second section measures plan record/replay: the heuristic run's
recorded :class:`~repro.plan.RunPlan` for each group is replayed and
must reproduce the recorded depths, counters, and simulated seconds
exactly; host wall-clock for record vs replay is reported (replay skips
the per-level heuristic evaluation).

Results land in ``BENCH_plan.json`` at the repo root (or ``--output``).
``--check`` gates:

* every policy depth-identical to the heuristic reference (always
  enforced, with or without ``--check``);
* replay bit-identical for every group (depths, counters, seconds);
* ``adaptive`` simulated seconds within ``--max-gap`` (default 1.5x)
  of ``heuristic`` — the cost model driving it is coarser than the
  frozen per-level heuristics, but it must stay in the same regime;
* ``adaptive`` no slower than ``td-only`` — an adaptive planner that
  loses to never-switching is broken.

Usage::

    PYTHONPATH=src python benchmarks/bench_plan_policies.py          # full
    PYTHONPATH=src python benchmarks/bench_plan_policies.py --quick  # CI
    PYTHONPATH=src python benchmarks/bench_plan_policies.py --quick --check
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.engine import IBFS, IBFSConfig
from repro.graph.generators import rmat
from repro.plan import POLICY_NAMES, make_policy

SOURCE_SEED = 17

#: (scale, edge_factor, group_size, num_sources)
FULL_SHAPE = (14, 8, 64, 256)
QUICK_SHAPE = (12, 8, 32, 64)


def policy_entry(name, result, reference_depths):
    depths_ok = np.array_equal(result.depths, reference_depths)
    counters = result.counters
    return depths_ok, {
        "policy": name,
        "simulated_seconds": result.seconds,
        "depth_identical": depths_ok,
        "levels": counters.levels,
        "inspections": counters.inspections,
        "bottom_up_inspections": counters.bottom_up_inspections,
        "edges_traversed": counters.edges_traversed,
        "early_terminations": counters.early_terminations,
        "global_load_transactions": counters.global_load_transactions,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller graph and fewer sources (CI smoke)")
    parser.add_argument("--output", type=Path, default=None,
                        help="result JSON path (default: BENCH_plan.json "
                             "at repo root)")
    parser.add_argument("--check", action="store_true",
                        help="fail on replay divergence or an adaptive "
                             "policy outside its gates")
    parser.add_argument("--max-gap", type=float, default=1.5,
                        help="max adaptive/heuristic simulated-seconds "
                             "ratio under --check")
    args = parser.parse_args(argv)

    scale, edge_factor, group_size, num_sources = (
        QUICK_SHAPE if args.quick else FULL_SHAPE
    )
    root = Path(__file__).resolve().parent.parent
    output = args.output or root / "BENCH_plan.json"

    graph = rmat(scale, edge_factor=edge_factor, seed=7)
    rng = np.random.default_rng(SOURCE_SEED)
    sources = sorted(
        rng.choice(graph.num_vertices, size=num_sources, replace=False).tolist()
    )
    config = IBFSConfig(group_size=group_size)

    print(
        f"graph rmat scale={scale} ef={edge_factor}: "
        f"{graph.num_vertices} vertices, {graph.num_edges} edges; "
        f"{num_sources} sources in groups of {group_size}",
        flush=True,
    )

    # ------------------------------------------------------------------
    # Policy comparison (simulated cost-model seconds)
    # ------------------------------------------------------------------
    reference = IBFS(graph, config).run(sources, store_depths=True)
    results = []
    seconds_by_policy = {}
    all_identical = True
    for name in POLICY_NAMES:
        engine = IBFS(graph, config, planner=make_policy(name))
        result = engine.run(sources, store_depths=True)
        depths_ok, entry = policy_entry(name, result, reference.depths)
        all_identical &= depths_ok
        seconds_by_policy[name] = result.seconds
        results.append(entry)
        print(
            f"[{name:>20}] sim {result.seconds:.4f}s  "
            f"levels {entry['levels']:>5}  "
            f"bu-inspections {entry['bottom_up_inspections']:>9}  "
            f"depths {'ok' if depths_ok else 'DIVERGED'}",
            flush=True,
        )
    if not all_identical:
        raise AssertionError("a policy's depth matrix diverged from the "
                             "heuristic reference")

    # ------------------------------------------------------------------
    # Record/replay: recorded plans must reproduce runs bit-identically
    # ------------------------------------------------------------------
    engine = IBFS(graph, config)
    groups = [sources[i:i + group_size]
              for i in range(0, len(sources), group_size)]
    record_start = time.perf_counter()
    recorded = [engine.run_group(group) for group in groups]
    record_seconds = time.perf_counter() - record_start
    plans = [run.groups[0].plan for run in recorded]

    replay_start = time.perf_counter()
    replayed = [engine.run_group(group, plan=plan)
                for group, plan in zip(groups, plans)]
    replay_seconds = time.perf_counter() - replay_start

    replay_identical = all(
        np.array_equal(a.depths, b.depths)
        and a.counters.__dict__ == b.counters.__dict__
        and a.seconds == b.seconds
        for a, b in zip(recorded, replayed)
    )
    replay_entry = {
        "groups": len(groups),
        "bit_identical": replay_identical,
        "record_host_seconds": record_seconds,
        "replay_host_seconds": replay_seconds,
        "replay_host_speedup": (
            record_seconds / replay_seconds if replay_seconds else 0.0
        ),
        "plan_levels": [len(plan) for plan in plans],
    }
    print(
        f"[replay] {len(groups)} groups  "
        f"record {record_seconds:.3f}s  replay {replay_seconds:.3f}s  "
        f"bit_identical={replay_identical}",
        flush=True,
    )

    adaptive_gap = (
        seconds_by_policy["adaptive"] / seconds_by_policy["heuristic"]
    )
    payload = {
        "benchmark": "plan_policies",
        "mode": "quick" if args.quick else "full",
        "metric": "simulated cost-model seconds per full run",
        "graph": f"rmat scale={scale} edge_factor={edge_factor} seed=7",
        "num_sources": num_sources,
        "group_size": group_size,
        "adaptive_vs_heuristic": adaptive_gap,
        "results": results,
        "replay": replay_entry,
    }
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {output}")

    if args.check:
        failed = False
        if not replay_identical:
            print("CHECK FAILED: plan replay diverged from recording",
                  file=sys.stderr)
            failed = True
        if adaptive_gap > args.max_gap:
            print(
                f"CHECK FAILED: adaptive is {adaptive_gap:.2f}x the "
                f"heuristic simulated seconds (gate {args.max_gap:.1f}x)",
                file=sys.stderr,
            )
            failed = True
        if seconds_by_policy["adaptive"] > seconds_by_policy["td-only"]:
            print(
                "CHECK FAILED: adaptive is slower than the td-only preset",
                file=sys.stderr,
            )
            failed = True
        if failed:
            return 1
        print("plan policy check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
