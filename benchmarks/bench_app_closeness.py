"""Extension: closeness-centrality construction time across engines.

Section 1 lists closeness centrality among the algorithms iBFS
accelerates; like the reachability index (Table 1), it is a bulk
concurrent-BFS workload, so the engine ladder should carry over to
application-level build times.
"""

from repro import IBFS, IBFSConfig, SequentialConcurrentBFS
from repro.baselines import MSBFS
from repro.apps.closeness import closeness_centrality

from harness import emit, format_table, load_graph, pick_sources, run_once

GRAPHS = ("FB", "OR")
GROUP_SIZE = 32


def test_app_closeness_build_time(benchmark):
    def experiment():
        rows = []
        for name in GRAPHS:
            graph = load_graph(name)
            sample = pick_sources(graph)
            engines = {
                "sequential": SequentialConcurrentBFS(graph),
                "ms-bfs": MSBFS(graph, group_size=GROUP_SIZE),
                "gpu-ibfs": IBFS(graph, IBFSConfig(group_size=GROUP_SIZE)),
            }
            scores = {}
            times = {}
            for label, engine in engines.items():
                result = engine.run(sample, store_depths=True)
                times[label] = result.seconds
                scores[label] = closeness_centrality(
                    graph, _Precomputed(result)
                )
            # All engines must agree on every score.
            for label in ("ms-bfs", "gpu-ibfs"):
                for v, s in scores["sequential"].items():
                    assert abs(scores[label][v] - s) < 1e-12, (name, label, v)
            rows.append(
                (
                    name,
                    times["sequential"] * 1e3,
                    times["ms-bfs"] * 1e3,
                    times["gpu-ibfs"] * 1e3,
                    round(times["sequential"] / times["gpu-ibfs"], 2),
                )
            )
        return rows

    rows = run_once(benchmark, experiment)
    table = format_table(
        "Application: closeness centrality over 128 sampled vertices (ms)",
        ["graph", "sequential", "ms-bfs", "gpu-ibfs", "ibfs speedup"],
        rows,
    )
    emit("app_closeness", table)

    for name, seq_ms, ms_ms, ibfs_ms, _ in rows:
        assert ibfs_ms < seq_ms, name
        assert ibfs_ms < ms_ms, name
    benchmark.extra_info["graphs"] = list(GRAPHS)


class _Precomputed:
    """Adapter: serve an already-computed ConcurrentResult to apps."""

    def __init__(self, result):
        self._result = result

    def run(self, sources, max_depth=None, store_depths=True):
        return self._result
