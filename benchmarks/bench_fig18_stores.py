"""Figure 18: global store transactions during frontier-queue generation
— private per-instance queues vs random JFQ vs GroupBy JFQ.

Paper shape: the joint frontier queue needs ~4x fewer stores than
private queues on average (each shared frontier is enqueued once), and
GroupBy saves a further ~2.6x by raising the sharing ratio.
"""

from repro import IBFS, IBFSConfig, SequentialConcurrentBFS

from harness import ALL_GRAPHS, emit, format_table, load_graph, pick_sources, run_once

GROUP_SIZE = 32


def test_fig18_frontier_queue_stores(benchmark):
    def experiment():
        rows = []
        for name in ALL_GRAPHS:
            graph = load_graph(name)
            sources = pick_sources(graph)
            # Private queues: every instance enqueues its own frontiers.
            private = SequentialConcurrentBFS(graph).run(
                sources, store_depths=False
            )
            random_jfq = IBFS(
                graph,
                IBFSConfig(group_size=GROUP_SIZE, mode="joint", groupby=False),
            ).run(sources, store_depths=False)
            groupby_jfq = IBFS(
                graph,
                IBFSConfig(group_size=GROUP_SIZE, mode="joint", groupby=True),
            ).run(sources, store_depths=False)
            rows.append(
                (
                    name,
                    private.counters.frontier_enqueues,
                    random_jfq.counters.frontier_enqueues,
                    groupby_jfq.counters.frontier_enqueues,
                )
            )
        return rows

    rows = run_once(benchmark, experiment)
    table = format_table(
        "Figure 18: frontier-queue store operations "
        "(private FQ vs random JFQ vs GroupBy JFQ)",
        ["graph", "private FQ", "random JFQ", "GroupBy JFQ"],
        rows,
    )
    emit("fig18_stores", table)

    for name, private, random_jfq, groupby_jfq in rows:
        assert random_jfq < private, name
        assert groupby_jfq <= random_jfq * 1.05, name
    total_private = sum(r[1] for r in rows)
    total_random = sum(r[2] for r in rows)
    benchmark.extra_info["jfq_reduction"] = round(total_private / total_random, 2)
