"""Figure 9: frontier sharing ratio, random grouping vs GroupBy, for
top-down and bottom-up levels across all 13 graphs.

Paper shape: GroupBy lifts top-down sharing by a large factor (3.9% ->
39.3% on average, ~10x) and bottom-up sharing to ~66% (~1.7x); gains on
the uniform RD graph are much smaller.
"""

import numpy as np

from repro.core.groupby import GroupByConfig, group_sources, random_groups
from repro.core.joint import JointTraversal

from harness import ALL_GRAPHS, emit, format_table, load_graph, pick_sources, run_once

GROUP_SIZE = 32


def _direction_sharing(graph, groups):
    """Mean sharing ratio per direction over all groups and levels.

    Bottom-up sharing comes from the standard direction-optimized run.
    Top-down sharing is measured with bottom-up disabled over the first
    levels: at laptop scale the direction switch fires as soon as a
    group hits its shared hub (level 2), which would otherwise move the
    entire hub-collision effect into the bottom-up series.
    """
    from repro.bfs.direction import DirectionPolicy

    full = JointTraversal(graph)
    td_only = JointTraversal(
        graph, policy=DirectionPolicy(allow_bottom_up=False)
    )
    td_fq = td_jfq = bu_fq = bu_jfq = 0
    for members in groups:
        n = len(members)
        _, _, stats = full.run_group(members)
        for fq, jfq in stats.bu_sharing:
            bu_fq += fq / n
            bu_jfq += jfq
        _, _, td_stats = td_only.run_group(members, max_depth=4)
        for fq, jfq in td_stats.td_sharing:
            td_fq += fq / n
            td_jfq += jfq
    td = 100 * td_fq / td_jfq if td_jfq else 0.0
    bu = 100 * bu_fq / bu_jfq if bu_jfq else 0.0
    return td, bu


def test_fig09_groupby_sharing(benchmark):
    def experiment():
        rows = []
        for name in ALL_GRAPHS:
            graph = load_graph(name)
            sources = pick_sources(graph)
            random = random_groups(sources, GROUP_SIZE, seed=9)
            grouped = group_sources(graph, sources, GROUP_SIZE, GroupByConfig())
            rnd_td, rnd_bu = _direction_sharing(graph, random)
            grp_td, grp_bu = _direction_sharing(graph, grouped)
            rows.append((name, rnd_td, grp_td, rnd_bu, grp_bu))
        return rows

    rows = run_once(benchmark, experiment)
    table = format_table(
        "Figure 9: frontier sharing ratio % (random vs GroupBy)",
        ["graph", "td random", "td GroupBy", "bu random", "bu GroupBy"],
        rows,
    )
    emit("fig09_groupby_sharing", table)

    # Shape: averaged over the power-law graphs GroupBy must lift
    # top-down sharing and must not lose bottom-up sharing.
    power_law = [r for r in rows if r[0] != "RD"]
    td_gain = np.mean([r[2] for r in power_law]) - np.mean(
        [r[1] for r in power_law]
    )
    bu_gain = np.mean([r[4] for r in power_law]) - np.mean(
        [r[3] for r in power_law]
    )
    assert td_gain > 0
    assert bu_gain > -2.0
    benchmark.extra_info["td_gain_points"] = round(float(td_gain), 2)
    benchmark.extra_info["bu_gain_points"] = round(float(bu_gain), 2)
