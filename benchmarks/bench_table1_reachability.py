"""Table 1: runtime of 3-hop reachability index construction.

The index computes the first k=3 BFS levels from a set of selected
vertices.  Paper shape: GPU-iBFS is fastest everywhere — 21x over B40C,
3.3x over MS-BFS, 2.2x over CPU-iBFS.
"""

import pytest

from repro import B40C, CPUiBFS, IBFS, IBFSConfig, MSBFS
from repro.apps.reachability import build_reachability_index

from harness import emit, format_table, load_graph, pick_sources, run_once

GRAPHS = ("FB", "KG0", "OR", "TW")
GROUP_SIZE = 32
K = 3


@pytest.mark.parametrize("graph_name", GRAPHS)
def test_table1_reachability_index(benchmark, graph_name):
    graph = load_graph(graph_name)
    sources = pick_sources(graph)

    def experiment():
        engines = {
            "ms-bfs": MSBFS(graph, group_size=GROUP_SIZE),
            "cpu-ibfs": CPUiBFS(graph, IBFSConfig(group_size=GROUP_SIZE)),
            "b40c": B40C(graph),
            "gpu-ibfs": IBFS(graph, IBFSConfig(group_size=GROUP_SIZE)),
        }
        times = {}
        reference_index = None
        for label, engine in engines.items():
            index = build_reachability_index(graph, engine, sources, k=K)
            times[label] = index.build_seconds
            # All systems must build the same index.
            if reference_index is None:
                reference_index = index
            else:
                for s in sources[:8]:
                    assert index.reachable_count(s) == (
                        reference_index.reachable_count(s)
                    )
        return times

    times = run_once(benchmark, experiment)
    order = ("ms-bfs", "cpu-ibfs", "b40c", "gpu-ibfs")
    rows = [(label, times[label] * 1e3) for label in order]
    table = format_table(
        f"Table 1 [{graph_name}]: 3-hop reachability index build time (ms)",
        ["system", "ms"],
        rows,
    )
    emit(f"table1_reachability_{graph_name}", table)

    assert times["gpu-ibfs"] == min(times.values())
    assert times["gpu-ibfs"] < times["b40c"]
    assert times["gpu-ibfs"] < times["ms-bfs"]
    assert times["gpu-ibfs"] < times["cpu-ibfs"]
    benchmark.extra_info["speedup_over_b40c"] = round(
        times["b40c"] / times["gpu-ibfs"], 2
    )
