"""Ablation: CUDA vector data types (section 6).

With 128 instances the BSA holds two uint64 lanes per vertex; a
``long2``/``long4`` load fetches them in one instruction.  Transactions
(bytes) are unchanged, so the gain appears in instruction counts and
warp load requests — visible in runtime only when the workload is
compute-bound.
"""

from repro.core.bitwise import BitwiseTraversal
from repro.core.groupby import random_groups

from harness import emit, format_table, load_graph, pick_sources, run_once

GROUP_SIZE = 128  # two lanes
WIDTHS = (1, 2, 4)
GRAPHS = ("FB", "KG0")


def test_ablation_vector_width(benchmark):
    def experiment():
        rows = []
        for name in GRAPHS:
            graph = load_graph(name)
            sources = pick_sources(graph, 128, seed=2)
            per_width = {}
            for width in WIDTHS:
                engine = BitwiseTraversal(graph, vector_width=width)
                instructions = 0
                requests = 0
                seconds = 0.0
                for group in random_groups(sources, GROUP_SIZE, seed=1):
                    _, record, stats = engine.run_group(group)
                    instructions += record.counters.instructions
                    requests += record.counters.global_load_requests
                    seconds += stats.seconds
                per_width[width] = (instructions, requests, seconds)
            base = per_width[1]
            for width in WIDTHS:
                instructions, requests, seconds = per_width[width]
                rows.append(
                    (
                        name,
                        width,
                        instructions,
                        requests,
                        round(base[0] / instructions, 2),
                        seconds * 1e3,
                    )
                )
        return rows

    rows = run_once(benchmark, experiment)
    table = format_table(
        "Ablation: vector data types (128 instances = 2 BSA lanes)",
        ["graph", "width", "instructions", "load reqs", "instr gain", "ms"],
        rows,
    )
    emit("ablation_vector", table)

    # Wider vectors never increase instruction count or requests.
    by_graph = {}
    for name, width, instructions, requests, _, _ in rows:
        by_graph.setdefault(name, {})[width] = (instructions, requests)
    for name, widths in by_graph.items():
        assert widths[2][0] <= widths[1][0], name
        assert widths[4][0] <= widths[2][0], name
        assert widths[4][1] <= widths[1][1], name
    benchmark.extra_info["widths"] = list(WIDTHS)
