"""Figure 16: traversal rate vs number of BFS groups on HW.

Paper shape: as more groups run (total instances = groups x group
size), GroupBy's advantage over random grouping *grows*, "because
better groups can be formed" from the larger source pool; random
grouping's rate stays roughly flat.
"""

import numpy as np

from repro import IBFS, IBFSConfig

from harness import emit, format_table, load_graph, pick_sources, run_once

GROUP_SIZE = 16
GROUP_COUNTS = (1, 2, 4, 8, 16)


def test_fig16_group_count_sweep(benchmark):
    graph = load_graph("HW")

    def experiment():
        rows = []
        for num_groups in GROUP_COUNTS:
            sources = pick_sources(graph, num_groups * GROUP_SIZE, seed=16)
            grouped = IBFS(
                graph, IBFSConfig(group_size=GROUP_SIZE, groupby=True)
            ).run(sources, store_depths=False)
            random = IBFS(
                graph, IBFSConfig(group_size=GROUP_SIZE, groupby=False, seed=5)
            ).run(sources, store_depths=False)
            rows.append(
                (
                    num_groups,
                    len(sources),
                    random.teps / 1e9,
                    grouped.teps / 1e9,
                    grouped.teps / random.teps,
                )
            )
        return rows

    rows = run_once(benchmark, experiment)
    table = format_table(
        "Figure 16 [HW]: TEPS vs number of groups (group size 16)",
        ["groups", "instances", "random GTEPS", "GroupBy GTEPS", "gain"],
        rows,
    )
    emit("fig16_groups", table)

    # Shape: GroupBy never loses, and its average gain with many groups
    # exceeds its gain with a single group (more material to choose from).
    gains = [r[4] for r in rows]
    assert min(gains) > 0.9
    assert np.mean(gains[2:]) >= gains[0] * 0.95
    benchmark.extra_info["gain_at_max_groups"] = round(gains[-1], 3)
