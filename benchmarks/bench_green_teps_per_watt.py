"""Extension: Green Graph500-style energy efficiency (TEPS/W).

The paper's generator suite comes from Graph500, whose Green list ranks
systems by traversed edges per second per watt.  iBFS's transaction
savings translate directly into energy savings, so the engine ladder of
figure 15 should reproduce in efficiency as well as speed.
"""

from repro.gpusim.config import KEPLER_K40
from repro.gpusim.energy import energy_report

from harness import emit, fig15_engines, format_table, load_graph, pick_sources, run_once

GRAPHS = ("FB", "KG0", "RD")
ENGINE_ORDER = ("sequential", "naive", "joint", "bitwise", "groupby")


def test_green_teps_per_watt(benchmark):
    def experiment():
        rows = []
        for name in GRAPHS:
            graph = load_graph(name)
            sources = pick_sources(graph)
            for label, engine in fig15_engines(graph).items():
                result = engine.run(sources, store_depths=False)
                report = energy_report(result, KEPLER_K40)
                rows.append(
                    (
                        name,
                        label,
                        report["total_joules"] * 1e3,
                        report["average_watts"],
                        report["teps_per_watt"] / 1e6,
                    )
                )
        return rows

    rows = run_once(benchmark, experiment)
    table = format_table(
        "Green Graph500 extension: energy efficiency per engine",
        ["graph", "engine", "mJ", "avg W", "MTEPS/W"],
        rows,
    )
    emit("green_teps_per_watt", table)

    # Efficiency ladder: the full iBFS pipeline beats sequential
    # execution on every graph.
    by_graph = {}
    for name, label, _, _, eff in rows:
        by_graph.setdefault(name, {})[label] = eff
    for name, engines in by_graph.items():
        assert engines["groupby"] > engines["sequential"], name
        assert engines["bitwise"] > engines["joint"], name
    benchmark.extra_info["graphs"] = list(GRAPHS)
