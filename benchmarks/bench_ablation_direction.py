"""Ablation: direction optimization — bottom-up on/off and alpha sweep.

Direction-optimizing BFS (section 2) underpins every engine; this
ablation quantifies how much the bottom-up switch saves on power-law
graphs and how sensitive the result is to the alpha threshold.
"""

from repro import IBFS, IBFSConfig
from repro.bfs.direction import DirectionPolicy

from harness import emit, format_table, load_graph, pick_sources, run_once

ALPHAS = (2.0, 8.0, 14.0, 32.0, 128.0)
GRAPHS = ("FB", "KG0", "RD")


def test_ablation_direction(benchmark):
    def experiment():
        rows = []
        for name in GRAPHS:
            graph = load_graph(name)
            sources = pick_sources(graph)
            config = IBFSConfig(group_size=32, groupby=False)
            td_only = IBFS(
                graph, config, policy=DirectionPolicy(allow_bottom_up=False)
            ).run(sources, store_depths=False)
            alpha_times = []
            for alpha in ALPHAS:
                result = IBFS(
                    graph, config, policy=DirectionPolicy(alpha=alpha)
                ).run(sources, store_depths=False)
                alpha_times.append(result.seconds * 1e3)
            rows.append((name, td_only.seconds * 1e3, *alpha_times))
        return rows

    rows = run_once(benchmark, experiment)
    table = format_table(
        "Ablation: direction optimization (ms, bitwise engine)",
        ["graph", "td-only", *(f"alpha={a:g}" for a in ALPHAS)],
        rows,
    )
    emit("ablation_direction", table)

    # Bottom-up must pay off at the default alpha on power-law graphs.
    for row in rows:
        name, td_only = row[0], row[1]
        default_alpha = row[1 + 1 + ALPHAS.index(14.0)]
        if name != "RD":
            assert default_alpha < td_only, name
    benchmark.extra_info["alphas"] = list(ALPHAS)
