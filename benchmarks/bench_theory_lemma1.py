"""Theory check: Lemma 1 (SD == expected joint-over-sequential speedup).

Section 5.1 proves that a group's sharing degree equals the expected
speedup of its joint execution, counting time in inspections.  This
benchmark measures both sides on GroupBy-formed and random groups of
every benchmark graph and reports the relative gap.
"""

import numpy as np

from repro.core.groupby import GroupByConfig, group_sources, random_groups
from repro.core.theory import verify_lemma1

from harness import ALL_GRAPHS, emit, format_table, load_graph, pick_sources, run_once

GROUP_SIZE = 16


def test_theory_lemma1(benchmark):
    def experiment():
        rows = []
        for name in ALL_GRAPHS:
            graph = load_graph(name)
            sources = pick_sources(graph, 64, seed=13)
            grouped = group_sources(graph, sources, GROUP_SIZE, GroupByConfig())
            random = random_groups(sources, GROUP_SIZE, seed=14)
            for kind, groups in (("groupby", grouped), ("random", random)):
                report = verify_lemma1(graph, groups[0])
                rows.append(
                    (
                        name,
                        kind,
                        round(report.sharing_degree, 2),
                        round(report.inspection_speedup, 2),
                        round(report.relative_gap, 3),
                    )
                )
        return rows

    rows = run_once(benchmark, experiment)
    table = format_table(
        "Lemma 1: sharing degree vs inspection-counted speedup "
        f"(first group of {GROUP_SIZE})",
        ["graph", "grouping", "SD", "speedup", "relative gap"],
        rows,
    )
    emit("theory_lemma1", table)

    gaps = [r[4] for r in rows]
    # The lemma holds in expectation; the measured gap must stay small
    # on average and bounded everywhere.
    assert float(np.mean(gaps)) < 0.25
    assert max(gaps) < 0.6
    benchmark.extra_info["mean_gap"] = round(float(np.mean(gaps)), 3)
