"""Figure 2: average frontier-sharing percentage between two BFS
instances, top-down vs bottom-up, per graph.

Paper shape: top-down levels share little (~4% average) while bottom-up
levels share heavily (up to 48.6%), because bottom-up frontiers are the
large unvisited sets.
"""

import numpy as np
import pytest

from repro.bfs.single import SingleBFS
from repro.core.sharing import pairwise_sharing

from harness import ALL_GRAPHS, emit, format_table, load_graph, pick_sources, run_once

NUM_PAIRS = 8


def _per_direction_sharing(graph, seed=1):
    """Mean pairwise sharing per direction over sampled instance pairs."""
    engine = SingleBFS(graph)
    sources = pick_sources(graph, 2 * NUM_PAIRS, seed=seed)
    runs = [engine.run(s) for s in sources]
    td, bu = [], []
    for a, b in zip(runs[::2], runs[1::2]):
        max_level = min(len(a.record.levels), len(b.record.levels))
        for level in range(1, max_level):
            dir_a = a.record.levels[level].direction
            dir_b = b.record.levels[level].direction
            if dir_a != dir_b:
                continue
            if dir_a == "td":
                fa = np.flatnonzero(a.depths == level)
                fb = np.flatnonzero(b.depths == level)
                td.append(pairwise_sharing(fa, fb))
            else:
                fa = np.flatnonzero((a.depths < 0) | (a.depths >= level))
                fb = np.flatnonzero((b.depths < 0) | (b.depths >= level))
                bu.append(pairwise_sharing(fa, fb))
    return (
        100 * float(np.mean(td)) if td else 0.0,
        100 * float(np.mean(bu)) if bu else 0.0,
    )


def test_fig02_frontier_sharing(benchmark):
    def experiment():
        rows = []
        for name in ALL_GRAPHS:
            td, bu = _per_direction_sharing(load_graph(name))
            rows.append((name, td, bu))
        return rows

    rows = run_once(benchmark, experiment)
    table = format_table(
        "Figure 2: average frontier sharing % between two BFS instances",
        ["graph", "top-down %", "bottom-up %"],
        rows,
    )
    emit("fig02_sharing", table)

    # Shape: bottom-up shares more than top-down on average, and by a
    # wide margin on the power-law graphs.
    td_mean = np.mean([r[1] for r in rows])
    bu_mean = np.mean([r[2] for r in rows])
    assert bu_mean > td_mean
    assert bu_mean > 2 * td_mean
    benchmark.extra_info["td_mean_pct"] = round(float(td_mean), 2)
    benchmark.extra_info["bu_mean_pct"] = round(float(bu_mean), 2)
