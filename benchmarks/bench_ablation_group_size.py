"""Ablation: group size N sweep.

Section 3 caps N by device memory; within that cap, larger groups
amortize frontier-queue generation and adjacency loads over more
instances, but laptop-scale graphs saturate the benefit early.  This
sweep records where the knee falls.
"""

from repro import IBFS, IBFSConfig

from harness import emit, format_table, load_graph, pick_sources, run_once

GROUP_SIZES = (1, 4, 16, 32, 64, 128)
GRAPHS = ("FB", "KG0", "RD")


def test_ablation_group_size(benchmark):
    def experiment():
        rows = []
        for name in GRAPHS:
            graph = load_graph(name)
            sources = pick_sources(graph)
            times = {}
            for n in GROUP_SIZES:
                engine = IBFS(graph, IBFSConfig(group_size=n, groupby=False))
                times[n] = engine.run(sources, store_depths=False).seconds
            rows.append((name, *(times[n] * 1e3 for n in GROUP_SIZES)))
        return rows

    rows = run_once(benchmark, experiment)
    table = format_table(
        "Ablation: group size sweep (ms, bitwise engine, random groups)",
        ["graph", *(f"N={n}" for n in GROUP_SIZES)],
        rows,
    )
    emit("ablation_group_size", table)

    # Grouping must help: running instances in groups of >= 16 beats
    # one-instance "groups" (which degenerate to sequential execution).
    for row in rows:
        name = row[0]
        times = dict(zip(GROUP_SIZES, row[1:]))
        assert times[16] < times[1], name
        assert times[64] < times[4], name
    benchmark.extra_info["group_sizes"] = list(GROUP_SIZES)
