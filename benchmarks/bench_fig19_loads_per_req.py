"""Figure 19: global load transactions per request, naive vs joint.

Paper shape: the joint status array coalesces the inspections of
contiguous threads into single transactions, reducing ~4 loads per
request to ~1; the naive private-array layout cannot coalesce across
instances.
"""

from repro import IBFS, IBFSConfig, NaiveConcurrentBFS

from harness import ALL_GRAPHS, emit, format_table, load_graph, pick_sources, run_once

GROUP_SIZE = 32


def test_fig19_loads_per_request(benchmark):
    def experiment():
        rows = []
        for name in ALL_GRAPHS:
            graph = load_graph(name)
            sources = pick_sources(graph)
            naive = NaiveConcurrentBFS(graph).run(sources, store_depths=False)
            joint = IBFS(
                graph,
                IBFSConfig(group_size=GROUP_SIZE, mode="joint", groupby=False),
            ).run(sources, store_depths=False)
            rows.append(
                (
                    name,
                    naive.counters.loads_per_request,
                    joint.counters.loads_per_request,
                )
            )
        return rows

    rows = run_once(benchmark, experiment)
    table = format_table(
        "Figure 19: global load transactions per request (naive vs joint)",
        ["graph", "naive", "joint"],
        rows,
    )
    emit("fig19_loads_per_request", table)

    for name, naive_lpr, joint_lpr in rows:
        assert joint_lpr < naive_lpr, name
    # Joint traversal approaches perfect coalescing (~1 per request).
    avg_joint = sum(r[2] for r in rows) / len(rows)
    assert avg_joint < 2.5
    benchmark.extra_info["avg_joint_lpr"] = round(avg_joint, 2)
    benchmark.extra_info["avg_naive_lpr"] = round(
        sum(r[1] for r in rows) / len(rows), 2
    )
