#!/usr/bin/env python
"""Repair-vs-recompute harness for the dynamic-graph layer.

For insert batches of increasing size (0.1%, 0.5%, 1% of |E|), prices
bringing a cached depth matrix up to date after the batch lands, two
ways:

* **repair** — fold the batch with :func:`repro.stream.apply_batch`
  and patch the cached matrix via
  :func:`repro.stream.repair_depth_matrix`;
* **recompute** — fold the batch and re-run the engine from scratch on
  the post-mutation graph.

Both paths are asserted bit-identical to a from-scratch traversal
before any number is trusted.  A second section runs the churn-capable
serving loop (:func:`repro.stream.run_churn_loop`) and reports how the
epoch machinery behaved end to end — rows repaired versus dropped
(staleness that would have been served without invalidation-by-keying)
and cache hit rate under churn.

Results land in ``BENCH_stream.json`` at the repo root (or
``--output``; ``BENCH_stream.quick.json`` in ``--quick`` mode).
``--check`` gates:

* every repair must be bit-identical to scratch (always enforced);
* repair must beat full recomputation on every batch at or below 1%
  of |E| by at least ``--min-speedup`` (default 1.0x — repair must
  simply win);
* the churn loop must drop zero rows on insert-only churn (every
  cached row survives every epoch swap via repair).

Usage::

    PYTHONPATH=src python benchmarks/bench_stream_churn.py          # full
    PYTHONPATH=src python benchmarks/bench_stream_churn.py --quick  # CI
    PYTHONPATH=src python benchmarks/bench_stream_churn.py --quick --check
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.engine import IBFS, IBFSConfig
from repro.graph.csr import VERTEX_DTYPE
from repro.graph.generators import rmat
from repro.service import ServingConfig, WorkloadConfig
from repro.stream import (
    ChurnConfig,
    DynamicBFSServer,
    MutationBatch,
    apply_batch,
    plan_repair,
    repair_depth_matrix,
    run_churn_loop,
)

BATCH_FRACTIONS = (0.001, 0.005, 0.01)

#: (scale, edge_factor, num_sources)
FULL_SHAPE = (13, 8, 32)
QUICK_SHAPE = (11, 8, 16)


def time_run(run, repeats):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = run()
        best = min(best, time.perf_counter() - start)
    return best, result


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller graph and fewer sources (CI smoke)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repeats per batch size")
    parser.add_argument("--output", type=Path, default=None,
                        help="result JSON path (default: BENCH_stream.json "
                             "at repo root; BENCH_stream.quick.json with "
                             "--quick)")
    parser.add_argument("--check", action="store_true",
                        help="fail unless repair is bit-identical AND "
                             "beats recomputation on every <=1%% insert "
                             "batch AND insert-only churn drops no rows")
    parser.add_argument("--min-speedup", type=float, default=1.0,
                        help="required recompute/repair wall ratio under "
                             "--check")
    args = parser.parse_args(argv)

    scale, edge_factor, num_sources = (
        QUICK_SHAPE if args.quick else FULL_SHAPE
    )
    repeats = args.repeats or (2 if args.quick else 3)
    root = Path(__file__).resolve().parent.parent
    output = args.output or (
        root / ("BENCH_stream.quick.json" if args.quick
                else "BENCH_stream.json")
    )

    graph = rmat(scale, edge_factor=edge_factor, seed=7)
    n, m = graph.num_vertices, graph.num_edges
    rng = np.random.default_rng(23)
    sources = sorted(
        rng.choice(n, size=num_sources, replace=False).tolist()
    )
    engine = IBFS(graph, IBFSConfig(group_size=num_sources))
    cached = engine.run_group(sources).depths

    print(
        f"graph rmat scale={scale} ef={edge_factor}: {n} vertices, "
        f"{m} edges; {num_sources} cached depth rows", flush=True,
    )

    results = []
    failures = []
    for fraction in BATCH_FRACTIONS:
        count = max(1, int(round(fraction * m)))
        batch = MutationBatch.make(
            n,
            inserts=(rng.integers(0, n, count, dtype=VERTEX_DTYPE),
                     rng.integers(0, n, count, dtype=VERTEX_DTYPE)),
        )
        new_graph = apply_batch(graph, batch)
        plan = plan_repair(batch, new_graph)

        scratch = IBFS(
            new_graph, IBFSConfig(group_size=num_sources)
        ).run_group(sources).depths

        repair_seconds, repaired = time_run(
            lambda: repair_depth_matrix(new_graph, batch, cached)[0],
            repeats,
        )
        if not np.array_equal(repaired, scratch):
            raise AssertionError(
                f"repair diverged from scratch at {fraction:.1%}"
            )

        recompute_seconds, _ = time_run(
            lambda: IBFS(
                new_graph, IBFSConfig(group_size=num_sources)
            ).run_group(sources).depths,
            repeats,
        )
        speedup = (
            recompute_seconds / repair_seconds
            if repair_seconds > 0 else float("inf")
        )
        entry = {
            "insert_fraction": fraction,
            "insert_edges": count,
            "plan_decision": plan.decision,
            "repair_seconds": repair_seconds,
            "recompute_seconds": recompute_seconds,
            "speedup": speedup,
            "bit_identical": True,
        }
        results.append(entry)
        print(
            f"[{fraction:.1%} = {count} edges] repair {repair_seconds:.4f}s"
            f"  recompute {recompute_seconds:.4f}s  "
            f"speedup {speedup:.2f}x  plan={plan.decision}",
            flush=True,
        )
        if speedup < args.min_speedup:
            failures.append(
                f"{fraction:.1%} batch: repair speedup {speedup:.2f}x "
                f"below required {args.min_speedup:.2f}x"
            )

    # End-to-end churn serving: insert-only churn must keep every
    # cached row hot (zero drops — the staleness-vs-repair-cost gate).
    churn_requests = 128 if args.quick else 512
    server = DynamicBFSServer(
        graph.copy(),  # the module-level graph stays frozen-free here
        ServingConfig(batch_size=8, cache_capacity=1024),
    )
    try:
        load, records = run_churn_loop(
            server,
            WorkloadConfig(num_requests=churn_requests, num_clients=16,
                           seed=5),
            ChurnConfig(mutate_every=max(16, churn_requests // 8),
                        inserts_per_batch=8, seed=11),
        )
        epochs = load.metrics["epochs"]
    finally:
        server.close()
    print(
        f"[churn] {load.completed} completed, "
        f"{epochs['published']} epochs, "
        f"{epochs['rows_repaired']} rows repaired, "
        f"{epochs['rows_dropped']} dropped, "
        f"hit rate {load.metrics['cache']['hit_rate']:.2f}",
        flush=True,
    )
    if epochs["rows_dropped"] != 0:
        failures.append(
            f"insert-only churn dropped {epochs['rows_dropped']} cached "
            "rows; repair should have kept them"
        )

    check = {
        "enforced": bool(args.check),
        "min_speedup": args.min_speedup,
        "failures": failures,
        "passed": not failures,
    }
    payload = {
        "benchmark": "stream_churn",
        "mode": "quick" if args.quick else "full",
        "repeats": repeats,
        "metric": "host wall-clock seconds per cache refresh "
                  "(best of repeats)",
        "graph": f"rmat scale={scale} edge_factor={edge_factor} seed=7",
        "num_sources": num_sources,
        "results": results,
        "churn": {
            "requests": churn_requests,
            "completed": load.completed,
            "throughput": load.throughput,
            "cache_hit_rate": load.metrics["cache"]["hit_rate"],
            "epochs": {
                k: v for k, v in epochs.items() if k != "history"
            },
        },
        "check": check,
    }
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {output}", flush=True)

    if args.check and failures:
        for failure in failures:
            print(f"CHECK FAILED: {failure}", file=sys.stderr, flush=True)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
