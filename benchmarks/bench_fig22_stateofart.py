"""Figure 22: comparison with the state of the art — MS-BFS, CPU-iBFS,
B40C, SpMM-BC, and GPU-iBFS on six graphs.

Paper shape: GPU-iBFS wins everywhere; CPU-iBFS beats MS-BFS (45%+ on
average); SpMM-BC sits between B40C and GPU-iBFS; GPU-iBFS ~2x over
CPU-iBFS and ~2x over SpMM-BC, ~19x over B40C.
"""

import pytest

from repro import B40C, CPUiBFS, IBFS, IBFSConfig, MSBFS, SpMMBC

from harness import emit, format_table, load_graph, pick_sources, run_once

GRAPHS = ("FB", "HW", "KG0", "LJ", "OR", "TW")
GROUP_SIZE = 32


@pytest.mark.parametrize("graph_name", GRAPHS)
def test_fig22_state_of_the_art(benchmark, graph_name):
    graph = load_graph(graph_name)
    sources = pick_sources(graph)

    def experiment():
        engines = {
            "ms-bfs": MSBFS(graph, group_size=GROUP_SIZE),
            "cpu-ibfs": CPUiBFS(graph, IBFSConfig(group_size=GROUP_SIZE)),
            "b40c": B40C(graph),
            "spmm-bc": SpMMBC(graph, group_size=GROUP_SIZE),
            "gpu-ibfs": IBFS(graph, IBFSConfig(group_size=GROUP_SIZE)),
        }
        return {
            label: engine.run(sources, store_depths=False)
            for label, engine in engines.items()
        }

    results = run_once(benchmark, experiment)
    order = ("ms-bfs", "cpu-ibfs", "b40c", "spmm-bc", "gpu-ibfs")
    rows = [
        (label, results[label].teps / 1e9, results[label].seconds * 1e3)
        for label in order
    ]
    table = format_table(
        f"Figure 22 [{graph_name}]: CPU and GPU implementations",
        ["system", "GTEPS", "ms"],
        rows,
    )
    emit(f"fig22_stateofart_{graph_name}", table)

    seconds = {label: results[label].seconds for label in order}
    # Shape assertions straight from the paper's narrative.
    assert seconds["gpu-ibfs"] == min(seconds.values())
    assert seconds["cpu-ibfs"] < seconds["ms-bfs"]
    assert seconds["spmm-bc"] < seconds["b40c"]
    assert seconds["gpu-ibfs"] < seconds["spmm-bc"]
    benchmark.extra_info["gpu_over_cpu"] = round(
        seconds["cpu-ibfs"] / seconds["gpu-ibfs"], 2
    )
    benchmark.extra_info["gpu_over_b40c"] = round(
        seconds["b40c"] / seconds["gpu-ibfs"], 2
    )
