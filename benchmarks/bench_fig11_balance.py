"""Figure 11: standard deviation of per-instance bottom-up inspection
counts, random grouping vs GroupBy.

Paper shape: GroupBy combines instances that find their bottom-up
parents at similar times, cutting the inspection-count stddev (by 13x
on average in the paper, 66x on TW) — the workload-balance effect.
"""

import numpy as np

from repro import IBFS, IBFSConfig

from harness import ALL_GRAPHS, emit, format_table, load_graph, pick_sources, run_once

GROUP_SIZE = 32


def _bu_inspection_std(result):
    """Mean within-group stddev of per-instance bottom-up inspections.

    A bitwise bottom-up scan runs until *every* instance in the group
    has found its parent, so the wasted work of a group is set by the
    spread of its members' inspection counts; GroupBy reduces exactly
    this within-group spread.  (The pooled across-all-instances stddev
    is grouping-invariant and would show nothing.)
    """
    stds = [
        float(np.std(group.bottom_up_inspections))
        for group in result.groups
        if group.bottom_up_inspections
    ]
    return float(np.mean(stds)) if stds else 0.0


def test_fig11_bottom_up_balance(benchmark):
    def experiment():
        rows = []
        for name in ALL_GRAPHS:
            graph = load_graph(name)
            sources = pick_sources(graph)
            random = IBFS(
                graph, IBFSConfig(group_size=GROUP_SIZE, groupby=False, seed=11)
            ).run(sources, store_depths=False)
            grouped = IBFS(
                graph, IBFSConfig(group_size=GROUP_SIZE, groupby=True)
            ).run(sources, store_depths=False)
            rows.append(
                (name, _bu_inspection_std(random), _bu_inspection_std(grouped))
            )
        return rows

    rows = run_once(benchmark, experiment)
    table = format_table(
        "Figure 11: stddev of bottom-up inspections per instance",
        ["graph", "random", "GroupBy"],
        rows,
    )
    emit("fig11_balance", table)

    # Shape: across the power-law suite GroupBy must not worsen balance
    # on average, and should improve it on most graphs.
    improved = sum(1 for r in rows if r[2] <= r[1] * 1.05)
    assert improved >= len(rows) // 2
    benchmark.extra_info["graphs_improved"] = improved
