#!/usr/bin/env python
"""Wall-clock TEPS harness for the kernels-backed engines.

Unlike the ``bench_fig*`` suite, which reports *simulated* metrics,
this harness measures real host wall time: each configuration runs the
live engine (built on :mod:`repro.kernels`) and a baseline on the same
graph and sources, takes the best of ``--repeats`` runs, and reports
traversed edges per second for both plus the speedup.  The simulated
counters of the two engines are asserted equal on every run, so a
speedup can never come from doing different work.

``--backend`` picks the comparison:

``numpy`` (default)
    live kernels engine vs the frozen pre-kernels reference engine
    (:mod:`repro.kernels.reference`) — the PR 2 measurement, written to
    ``BENCH_core.json``.
``native``
    live engine with the compiled backend (:mod:`repro.native`) vs the
    same engine pinned to the numpy kernels — written to
    ``BENCH_native.json``.  ``native.warmup()`` runs once before any
    timing so JIT/compile cost is excluded, and the run fails outright
    if native is slower than numpy on any configuration.

``--check <baseline.json>`` re-runs the measurement and fails (exit 1)
if any configuration's speedup dropped below half the committed value —
a >2x TEPS regression relative to the recorded baseline, expressed as a
ratio so the check is machine-independent.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernel_walltime.py          # full
    PYTHONPATH=src python benchmarks/bench_kernel_walltime.py --quick  # CI
    PYTHONPATH=src python benchmarks/bench_kernel_walltime.py --quick \
        --check BENCH_core.json
    PYTHONPATH=src python benchmarks/bench_kernel_walltime.py \
        --backend native --quick --check BENCH_native.json
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
import time
from pathlib import Path

import numpy as np

import repro.native as native
from repro.core.bitwise import BitwiseTraversal
from repro.core.joint import JointTraversal
from repro.graph.generators import rmat
from repro.kernels.reference import (
    ReferenceBitwiseTraversal,
    ReferenceJointTraversal,
)
from repro.obs import metrics as obs_metrics

SOURCE_SEED = 11

#: (name, scale, edge_factor, group_size, engine kind) per mode.  Low
#: edge factor keeps diameters high, so per-level fixed costs — exactly
#: what the kernels rewrite attacks — dominate the reference engine.
FULL_CONFIGS = [
    ("bitwise-rmat18-ef2-gs64", 18, 2, 64, "bitwise"),
    ("bitwise-rmat19-ef2-gs64", 19, 2, 64, "bitwise"),
    ("msbfs-rmat16-ef2-gs64", 16, 2, 64, "msbfs"),
    ("joint-rmat13-ef8-gs32", 13, 8, 32, "joint"),
]
QUICK_CONFIGS = [
    ("bitwise-rmat15-ef2-gs64", 15, 2, 64, "bitwise"),
    ("joint-rmat11-ef8-gs32", 11, 8, 32, "joint"),
]
# Full mode also runs the quick configs so the committed baseline
# carries entries --quick --check can match against in CI.
FULL_CONFIGS = QUICK_CONFIGS + FULL_CONFIGS

ENGINE_PAIRS = {
    "bitwise": (
        lambda g: BitwiseTraversal(g),
        lambda g: ReferenceBitwiseTraversal(g),
    ),
    "msbfs": (
        lambda g: BitwiseTraversal(
            g,
            early_termination=False,
            reset_per_level=True,
            thread_per_instance=True,
        ),
        lambda g: ReferenceBitwiseTraversal(
            g,
            early_termination=False,
            reset_per_level=True,
            thread_per_instance=True,
        ),
    ),
    "joint": (
        lambda g: JointTraversal(g),
        lambda g: ReferenceJointTraversal(g),
    ),
}


def time_engine(make_engine, graph, sources, repeats, ctx=None):
    """Best-of-``repeats`` wall time plus the run's traversed edges.

    ``ctx`` is an optional context-manager factory entered around every
    construction+run (the native harness pins the kernel backend with
    it); engine setup stays inside the timed region as before.
    """
    ctx = ctx or contextlib.nullcontext
    best = float("inf")
    edges = None
    counters = None
    for _ in range(repeats):
        with ctx():
            engine = make_engine(graph)
            start = time.perf_counter()
            _, record, _ = engine.run_group(sources)
            elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
        edges = record.counters.edges_traversed
        counters = record.counters.__dict__
    return best, edges, counters


def run_config(name, scale, edge_factor, group_size, kind, repeats,
               backend="numpy"):
    graph = rmat(scale, edge_factor=edge_factor, seed=3)
    rng = np.random.default_rng(SOURCE_SEED)
    sources = rng.integers(0, graph.num_vertices, size=group_size).tolist()
    make_after, make_before = ENGINE_PAIRS[kind]
    after_ctx = before_ctx = None
    if backend == "native":
        # Same live engine both sides; only the kernel backend differs.
        make_before = make_after
        before_ctx = lambda: native.force_backend("off")  # noqa: E731

    after_s, after_edges, after_counters = time_engine(
        make_after, graph, sources, repeats, after_ctx
    )
    before_s, before_edges, before_counters = time_engine(
        make_before, graph, sources, repeats, before_ctx
    )
    if after_counters != before_counters:
        raise AssertionError(
            f"{name}: kernels engine diverged from reference counters"
        )

    return {
        "name": name,
        "graph": f"rmat scale={scale} edge_factor={edge_factor} seed=3",
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "group_size": group_size,
        "engine": kind,
        "edges_traversed": after_edges,
        "before": {"seconds": before_s, "teps": before_edges / before_s},
        "after": {"seconds": after_s, "teps": after_edges / after_s},
        "speedup": before_s / after_s,
    }


def publish(results, hub=None):
    """Register the harness's measurements into the process-wide
    metrics hub (:mod:`repro.obs.metrics`), so the wall-clock numbers
    export next to the engines' own counters."""
    hub = hub if hub is not None else obs_metrics.get_hub()
    for entry in results:
        labels = {"config": entry["name"]}
        hub.gauge(
            "bench_kernel_speedup",
            "Kernels-engine speedup over the frozen reference",
            labels=labels,
        ).set(entry["speedup"])
        hub.gauge(
            "bench_kernel_teps",
            "Kernels-engine wall-clock TEPS",
            labels=labels,
        ).set(entry["after"]["teps"])
    return hub


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small graphs, fewer repeats (CI perf smoke)",
    )
    parser.add_argument(
        "--backend",
        choices=("numpy", "native"),
        default="numpy",
        help="baseline: 'numpy' times the kernels engine against the "
        "frozen reference; 'native' times the compiled backend against "
        "the numpy kernels (warm-up excluded)",
    )
    parser.add_argument(
        "--repeats", type=int, default=None, help="timing repeats per engine"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="result JSON path (default: BENCH_core.json at repo root; "
        "BENCH_core.quick.json in --quick mode)",
    )
    parser.add_argument(
        "--check",
        type=Path,
        default=None,
        help="committed baseline JSON; exit 1 if any config's measured "
        "speedup is below half its recorded speedup",
    )
    args = parser.parse_args(argv)

    configs = QUICK_CONFIGS if args.quick else FULL_CONFIGS
    repeats = args.repeats or (2 if args.quick else 3)
    root = Path(__file__).resolve().parent.parent
    stem = "BENCH_core" if args.backend == "numpy" else "BENCH_native"
    output = args.output or (
        root / (f"{stem}.quick.json" if args.quick else f"{stem}.json")
    )

    warmup_seconds = None
    if args.backend == "native":
        if not native.available():
            print(
                "error: --backend native but no native backend resolved "
                f"({native.disabled_reason()})",
                file=sys.stderr,
            )
            return 2
        warmup_seconds = native.warmup()
        print(
            f"native backend: {native.backend_name()} "
            f"(warm-up {warmup_seconds * 1e3:.1f} ms, excluded from timings)",
            flush=True,
        )

    results = []
    for cfg in configs:
        print(f"[{cfg[0]}] running ({repeats} repeats per engine)...", flush=True)
        entry = run_config(*cfg, repeats, backend=args.backend)
        results.append(entry)
        print(
            f"  before {entry['before']['seconds']:.3f}s "
            f"({entry['before']['teps'] / 1e6:.1f} MTEPS)  "
            f"after {entry['after']['seconds']:.3f}s "
            f"({entry['after']['teps'] / 1e6:.1f} MTEPS)  "
            f"speedup {entry['speedup']:.2f}x",
            flush=True,
        )

    payload = {
        "benchmark": "kernel_walltime",
        "mode": "quick" if args.quick else "full",
        "backend": args.backend,
        "repeats": repeats,
        "metric": "wall-clock TEPS (simulated-counter edges / host seconds)",
        "results": results,
    }
    if args.backend == "native":
        payload["native_backend"] = native.backend_name()
        payload["warmup_seconds"] = warmup_seconds
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {output}")
    publish(results)

    if args.backend == "native":
        slower = [r["name"] for r in results if r["speedup"] < 1.0]
        if slower:
            print(
                "REGRESSION: native slower than the numpy kernels on "
                + ", ".join(slower),
                file=sys.stderr,
            )
            return 1
        print("native gate passed: native >= numpy on every config")

    if args.check is not None:
        baseline = json.loads(args.check.read_text())
        recorded = {r["name"]: r["speedup"] for r in baseline["results"]}
        failed = False
        for entry in results:
            floor = recorded.get(entry["name"])
            if floor is None:
                continue
            if entry["speedup"] < floor / 2:
                print(
                    f"REGRESSION {entry['name']}: speedup "
                    f"{entry['speedup']:.2f}x < half of recorded "
                    f"{floor:.2f}x",
                    file=sys.stderr,
                )
                failed = True
        if failed:
            return 1
        print("perf check passed: no config below half its recorded speedup")
    return 0


if __name__ == "__main__":
    sys.exit(main())
