#!/usr/bin/env python
"""Wall-clock TEPS harness for the kernels-backed engines.

Unlike the ``bench_fig*`` suite, which reports *simulated* metrics,
this harness measures real host wall time: each configuration runs the
live engine (built on :mod:`repro.kernels`) and the frozen pre-kernels
reference engine (:mod:`repro.kernels.reference`) on the same graph and
sources, takes the best of ``--repeats`` runs, and reports traversed
edges per second for both plus the speedup.  The simulated counters of
the two engines are asserted equal on every run, so a speedup can never
come from doing different work.

Results are written to ``BENCH_core.json`` at the repo root (or
``--output``).  ``--check BENCH_core.json`` re-runs the measurement and
fails (exit 1) if any configuration's speedup dropped below half the
committed value — a >2x TEPS regression relative to the recorded
baseline, expressed as a ratio so the check is machine-independent.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernel_walltime.py          # full
    PYTHONPATH=src python benchmarks/bench_kernel_walltime.py --quick  # CI
    PYTHONPATH=src python benchmarks/bench_kernel_walltime.py --quick \
        --check BENCH_core.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.bitwise import BitwiseTraversal
from repro.core.joint import JointTraversal
from repro.graph.generators import rmat
from repro.kernels.reference import (
    ReferenceBitwiseTraversal,
    ReferenceJointTraversal,
)
from repro.obs import metrics as obs_metrics

SOURCE_SEED = 11

#: (name, scale, edge_factor, group_size, engine kind) per mode.  Low
#: edge factor keeps diameters high, so per-level fixed costs — exactly
#: what the kernels rewrite attacks — dominate the reference engine.
FULL_CONFIGS = [
    ("bitwise-rmat18-ef2-gs64", 18, 2, 64, "bitwise"),
    ("bitwise-rmat19-ef2-gs64", 19, 2, 64, "bitwise"),
    ("msbfs-rmat16-ef2-gs64", 16, 2, 64, "msbfs"),
    ("joint-rmat13-ef8-gs32", 13, 8, 32, "joint"),
]
QUICK_CONFIGS = [
    ("bitwise-rmat15-ef2-gs64", 15, 2, 64, "bitwise"),
    ("joint-rmat11-ef8-gs32", 11, 8, 32, "joint"),
]
# Full mode also runs the quick configs so the committed baseline
# carries entries --quick --check can match against in CI.
FULL_CONFIGS = QUICK_CONFIGS + FULL_CONFIGS

ENGINE_PAIRS = {
    "bitwise": (
        lambda g: BitwiseTraversal(g),
        lambda g: ReferenceBitwiseTraversal(g),
    ),
    "msbfs": (
        lambda g: BitwiseTraversal(
            g,
            early_termination=False,
            reset_per_level=True,
            thread_per_instance=True,
        ),
        lambda g: ReferenceBitwiseTraversal(
            g,
            early_termination=False,
            reset_per_level=True,
            thread_per_instance=True,
        ),
    ),
    "joint": (
        lambda g: JointTraversal(g),
        lambda g: ReferenceJointTraversal(g),
    ),
}


def time_engine(make_engine, graph, sources, repeats):
    """Best-of-``repeats`` wall time plus the run's traversed edges."""
    best = float("inf")
    edges = None
    counters = None
    for _ in range(repeats):
        engine = make_engine(graph)
        start = time.perf_counter()
        _, record, _ = engine.run_group(sources)
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
        edges = record.counters.edges_traversed
        counters = record.counters.__dict__
    return best, edges, counters


def run_config(name, scale, edge_factor, group_size, kind, repeats):
    graph = rmat(scale, edge_factor=edge_factor, seed=3)
    rng = np.random.default_rng(SOURCE_SEED)
    sources = rng.integers(0, graph.num_vertices, size=group_size).tolist()
    make_after, make_before = ENGINE_PAIRS[kind]

    after_s, after_edges, after_counters = time_engine(
        make_after, graph, sources, repeats
    )
    before_s, before_edges, before_counters = time_engine(
        make_before, graph, sources, repeats
    )
    if after_counters != before_counters:
        raise AssertionError(
            f"{name}: kernels engine diverged from reference counters"
        )

    return {
        "name": name,
        "graph": f"rmat scale={scale} edge_factor={edge_factor} seed=3",
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "group_size": group_size,
        "engine": kind,
        "edges_traversed": after_edges,
        "before": {"seconds": before_s, "teps": before_edges / before_s},
        "after": {"seconds": after_s, "teps": after_edges / after_s},
        "speedup": before_s / after_s,
    }


def publish(results, hub=None):
    """Register the harness's measurements into the process-wide
    metrics hub (:mod:`repro.obs.metrics`), so the wall-clock numbers
    export next to the engines' own counters."""
    hub = hub if hub is not None else obs_metrics.get_hub()
    for entry in results:
        labels = {"config": entry["name"]}
        hub.gauge(
            "bench_kernel_speedup",
            "Kernels-engine speedup over the frozen reference",
            labels=labels,
        ).set(entry["speedup"])
        hub.gauge(
            "bench_kernel_teps",
            "Kernels-engine wall-clock TEPS",
            labels=labels,
        ).set(entry["after"]["teps"])
    return hub


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small graphs, fewer repeats (CI perf smoke)",
    )
    parser.add_argument(
        "--repeats", type=int, default=None, help="timing repeats per engine"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="result JSON path (default: BENCH_core.json at repo root; "
        "BENCH_core.quick.json in --quick mode)",
    )
    parser.add_argument(
        "--check",
        type=Path,
        default=None,
        help="committed baseline JSON; exit 1 if any config's measured "
        "speedup is below half its recorded speedup",
    )
    args = parser.parse_args(argv)

    configs = QUICK_CONFIGS if args.quick else FULL_CONFIGS
    repeats = args.repeats or (2 if args.quick else 3)
    root = Path(__file__).resolve().parent.parent
    output = args.output or (
        root / ("BENCH_core.quick.json" if args.quick else "BENCH_core.json")
    )

    results = []
    for cfg in configs:
        print(f"[{cfg[0]}] running ({repeats} repeats per engine)...", flush=True)
        entry = run_config(*cfg, repeats)
        results.append(entry)
        print(
            f"  before {entry['before']['seconds']:.3f}s "
            f"({entry['before']['teps'] / 1e6:.1f} MTEPS)  "
            f"after {entry['after']['seconds']:.3f}s "
            f"({entry['after']['teps'] / 1e6:.1f} MTEPS)  "
            f"speedup {entry['speedup']:.2f}x",
            flush=True,
        )

    payload = {
        "benchmark": "kernel_walltime",
        "mode": "quick" if args.quick else "full",
        "repeats": repeats,
        "metric": "wall-clock TEPS (simulated-counter edges / host seconds)",
        "results": results,
    }
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {output}")
    publish(results)

    if args.check is not None:
        baseline = json.loads(args.check.read_text())
        recorded = {r["name"]: r["speedup"] for r in baseline["results"]}
        failed = False
        for entry in results:
            floor = recorded.get(entry["name"])
            if floor is None:
                continue
            if entry["speedup"] < floor / 2:
                print(
                    f"REGRESSION {entry['name']}: speedup "
                    f"{entry['speedup']:.2f}x < half of recorded "
                    f"{floor:.2f}x",
                    file=sys.stderr,
                )
                failed = True
        if failed:
            return 1
        print("perf check passed: no config below half its recorded speedup")
    return 0


if __name__ == "__main__":
    sys.exit(main())
