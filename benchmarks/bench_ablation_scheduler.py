"""Ablation: cluster scheduling policy — LPT vs round-robin.

Figure 17's scaling is bounded by workload imbalance.  This ablation
compares the cost-aware LPT assignment with the static round-robin an
MPI rank split gives, over the real per-group times of a GroupBy run.
"""

from repro import IBFS, IBFSConfig, KEPLER_K20, Cluster, Device
from repro.gpusim.cluster import schedule_lpt, schedule_round_robin

from harness import emit, format_table, load_graph, pick_sources, run_once

DEVICE_COUNTS = (8, 32, 112)
GRAPHS = ("FB", "TW")


def test_ablation_scheduler(benchmark):
    def experiment():
        rows = []
        for name in GRAPHS:
            graph = load_graph(name)
            sources = pick_sources(graph, 672, seed=17)
            engine = IBFS(
                graph,
                IBFSConfig(group_size=4, groupby=True),
                device=Device(KEPLER_K20),
            )
            durations = engine.run(sources, store_depths=False).group_times()
            for count in DEVICE_COUNTS:
                lpt = Cluster(count, KEPLER_K20, schedule_lpt).run(durations)
                rr = Cluster(count, KEPLER_K20, schedule_round_robin).run(
                    durations
                )
                rows.append(
                    (
                        name,
                        count,
                        lpt.makespan * 1e6,
                        rr.makespan * 1e6,
                        round(rr.makespan / lpt.makespan, 3),
                    )
                )
        return rows

    rows = run_once(benchmark, experiment)
    table = format_table(
        "Ablation: cluster scheduler (makespan in us)",
        ["graph", "gpus", "LPT", "round-robin", "rr/LPT"],
        rows,
    )
    emit("ablation_scheduler", table)

    # LPT never loses to round-robin.
    for name, count, lpt_t, rr_t, _ in rows:
        assert lpt_t <= rr_t * 1.001, (name, count)
    benchmark.extra_info["device_counts"] = list(DEVICE_COUNTS)
