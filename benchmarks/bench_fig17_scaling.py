"""Figure 17: iBFS scalability from 1 to 112 GPUs (K20 cluster).

Each GPU runs independent groups; no inter-GPU communication is needed,
so scaling is limited only by workload imbalance across devices.  Paper
shape: near-linear at small counts (1.9-1.97x on 2 GPUs, ~3.8x on 4),
an average of ~85x on 112 GPUs, with the uniform RD graph scaling best.
"""

import numpy as np
import pytest

from repro import IBFS, IBFSConfig, KEPLER_K20, Cluster, Device

from harness import emit, format_table, load_graph, pick_sources, run_once

GRAPHS = ("RD", "FB", "OR", "TW", "RM")
DEVICE_COUNTS = (1, 2, 4, 8, 16, 32, 64, 112)
#: Small groups so the source pool yields well over 112 work units —
#: the paper's APSP runs have millions of groups to balance.
GROUP_SIZE = 4
NUM_SOURCES = 672


def test_fig17_multi_gpu_scaling(benchmark):
    def experiment():
        curves = {}
        for name in GRAPHS:
            graph = load_graph(name)
            sources = pick_sources(graph, NUM_SOURCES, seed=17)
            engine = IBFS(
                graph,
                IBFSConfig(group_size=GROUP_SIZE, groupby=True),
                device=Device(KEPLER_K20),
            )
            result = engine.run(sources, store_depths=False)
            durations = result.group_times()
            curves[name] = Cluster(1, KEPLER_K20).speedup_curve(
                durations, DEVICE_COUNTS
            )
        return curves

    curves = run_once(benchmark, experiment)
    rows = []
    for i, count in enumerate(DEVICE_COUNTS):
        row = [count] + [round(curves[name][i], 1) for name in GRAPHS]
        row.append(round(float(np.mean([curves[n][i] for n in GRAPHS])), 1))
        rows.append(tuple(row))
    table = format_table(
        f"Figure 17: speedup vs GPU count (groups of {GROUP_SIZE}, "
        "LPT scheduling)",
        ["gpus", *GRAPHS, "average"],
        rows,
    )
    emit("fig17_scaling", table)

    for name in GRAPHS:
        assert curves[name][0] == pytest.approx(1.0)
        # Near-linear at 2 and 4 GPUs.
        assert curves[name][1] > 1.7
        assert curves[name][2] > 3.2
        # Monotone non-decreasing speedups.
        assert all(b >= a * 0.99 for a, b in zip(curves[name], curves[name][1:]))
    # RD (uniform workload) scales best at the top end, as in the paper.
    top = {name: curves[name][-1] for name in GRAPHS}
    assert top["RD"] == max(top.values())
    benchmark.extra_info["avg_speedup_112"] = round(
        float(np.mean([curves[n][-1] for n in GRAPHS])), 1
    )
