#!/usr/bin/env python
"""Scaling and wire-format harness for the partitioned engine.

Runs :class:`repro.dist.engine.PartitionedEngine` over 1/2/4 partitions
under both layouts against the serial :class:`repro.core.engine.IBFS`
baseline on the same graph and sources.  Every configuration's depth
matrix is asserted bit-identical to the serial engine before its
numbers are trusted — partitioning changes communication, never depths.

Two things are measured per configuration:

* real host wall seconds of the full multi-group run (the inline
  backend executes partitions sequentially, so this prices the
  partitioning *overhead*, not parallel speedup);
* exact exchange accounting — per-level wire bytes and messages under
  the forced ``dense``/``sparse`` formats and the ``auto`` policy.

Results land in ``BENCH_dist.json`` at the repo root (or ``--output``;
``BENCH_dist.quick.json`` in ``--quick`` mode).  ``--check`` gates:

* every configuration must be bit-identical (always enforced);
* the 2-partition 1d wall time must stay within ``--max-slowdown``
  (default 1.5x) of the 1-partition run — splitting the graph must not
  blow up the per-level constant factors;
* sparse must beat dense on low-frontier levels: the auto run's
  cheapest sparse level must cost fewer update bytes than the fixed
  dense broadcast, and auto must never price a level above both forced
  formats.

Usage::

    PYTHONPATH=src python benchmarks/bench_dist_scaling.py          # full
    PYTHONPATH=src python benchmarks/bench_dist_scaling.py --quick  # CI
    PYTHONPATH=src python benchmarks/bench_dist_scaling.py --quick --check
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.engine import IBFS, IBFSConfig
from repro.dist.engine import DistConfig, PartitionedEngine
from repro.graph.generators import rmat

SOURCE_SEED = 17

#: (scale, edge_factor, group_size, num_sources)
FULL_SHAPE = (13, 4, 8, 48)
QUICK_SHAPE = (11, 4, 8, 24)

PARTITION_CONFIGS = (
    (1, "1d"),
    (2, "1d"),
    (4, "1d"),
    (2, "2d"),
    (4, "2d"),
)


def time_run(run, repeats):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller graph and fewer sources (CI smoke)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repeats per configuration")
    parser.add_argument("--output", type=Path, default=None,
                        help="result JSON path (default: BENCH_dist.json "
                             "at repo root; BENCH_dist.quick.json with "
                             "--quick)")
    parser.add_argument("--check", action="store_true",
                        help="fail unless all configurations are "
                             "bit-identical, 2 partitions stay within "
                             "--max-slowdown of 1, and sparse beats dense "
                             "on low-frontier levels")
    parser.add_argument("--max-slowdown", type=float, default=1.5,
                        help="allowed 2-partition / 1-partition wall "
                             "ratio under --check")
    args = parser.parse_args(argv)

    scale, edge_factor, group_size, num_sources = (
        QUICK_SHAPE if args.quick else FULL_SHAPE
    )
    repeats = args.repeats or (2 if args.quick else 3)
    root = Path(__file__).resolve().parent.parent
    output = args.output or (
        root / ("BENCH_dist.quick.json" if args.quick else "BENCH_dist.json")
    )

    graph = rmat(scale, edge_factor=edge_factor, seed=3)
    rng = np.random.default_rng(SOURCE_SEED)
    sources = sorted(
        rng.choice(graph.num_vertices, size=num_sources, replace=False).tolist()
    )
    serial = IBFS(graph, IBFSConfig(group_size=group_size))

    print(
        f"graph rmat scale={scale} ef={edge_factor}: "
        f"{graph.num_vertices} vertices, {graph.num_edges} edges; "
        f"{num_sources} sources in groups of {group_size}",
        flush=True,
    )

    reference = serial.run(sources, store_depths=True)
    serial_seconds = time_run(
        lambda: serial.run(sources, store_depths=False), repeats
    )
    print(f"[serial] {serial_seconds:.3f}s", flush=True)

    results = []
    walls = {}
    for num_partitions, layout in PARTITION_CONFIGS:
        engine = PartitionedEngine(
            graph,
            DistConfig(
                num_partitions=num_partitions,
                layout=layout,
                group_size=group_size,
            ),
        )
        verify = engine.run(sources, store_depths=True)
        if not np.array_equal(verify.depths, reference.depths):
            raise AssertionError(
                f"{layout}x{num_partitions} depths diverged from serial"
            )
        seconds = time_run(
            lambda: engine.run(sources, store_depths=False), repeats
        )
        stats = engine.last_stats
        walls[(num_partitions, layout)] = seconds
        entry = {
            "partitions": num_partitions,
            "layout": layout,
            "seconds": seconds,
            "vs_serial": seconds / serial_seconds,
            "bit_identical": True,
            "exchange_bytes": stats.bytes_total,
            "exchange_messages": stats.messages_total,
            "formats": stats.formats(),
            "modeled_exchange_seconds": sum(
                t.exchange_seconds for t in stats.levels
            ),
        }
        results.append(entry)
        print(
            f"[{layout}x{num_partitions}] {seconds:.3f}s  "
            f"bytes {stats.bytes_total}  formats {stats.formats()}",
            flush=True,
        )

    # Wire-format study on the 2-partition 1d decomposition: one group,
    # each format forced, plus the auto policy's per-level choices.
    study_group = serial.make_groups(sources)[0]
    format_levels = {}
    for fmt in ("dense", "sparse", "auto"):
        engine = PartitionedEngine(
            graph,
            DistConfig(
                num_partitions=2, exchange=fmt, group_size=group_size
            ),
        )
        run = engine.run_group(study_group)
        if not np.array_equal(
            run.depths, serial.run_group(study_group).depths
        ):
            raise AssertionError(f"forced {fmt} depths diverged from serial")
        format_levels[fmt] = engine.last_stats.levels
    dense_fixed = PartitionedEngine(
        graph, DistConfig(num_partitions=2, group_size=group_size)
    ).partitions.dense_bytes_per_level()
    level_rows = []
    for dense, sparse, auto in zip(
        format_levels["dense"], format_levels["sparse"], format_levels["auto"]
    ):
        level_rows.append(
            {
                "level": dense.level,
                "frontier_edges": dense.frontier_edges,
                "dense_bytes": dense.update_bytes,
                "sparse_bytes": sparse.update_bytes,
                "auto_fmt": auto.fmt,
                "auto_bytes": auto.update_bytes,
            }
        )
        print(
            f"[level {dense.level}] frontier_edges={dense.frontier_edges}  "
            f"dense={dense.update_bytes}B sparse={sparse.update_bytes}B "
            f"auto={auto.fmt}",
            flush=True,
        )

    payload = {
        "benchmark": "dist_scaling",
        "mode": "quick" if args.quick else "full",
        "repeats": repeats,
        "metric": "host wall-clock seconds per full run (best of repeats)",
        "graph": f"rmat scale={scale} edge_factor={edge_factor} seed=3",
        "num_sources": num_sources,
        "group_size": group_size,
        "serial_seconds": serial_seconds,
        "results": results,
        "format_study": {
            "partitions": 2,
            "layout": "1d",
            "dense_bytes_per_level": dense_fixed,
            "levels": level_rows,
        },
    }

    failures = []
    if args.check:
        slowdown = walls[(2, "1d")] / walls[(1, "1d")]
        if slowdown > args.max_slowdown:
            failures.append(
                f"2-partition wall {slowdown:.2f}x single-partition "
                f"> {args.max_slowdown:.1f}x"
            )
        sparse_min = min(r["sparse_bytes"] for r in level_rows)
        if sparse_min >= dense_fixed:
            failures.append(
                f"sparse never beat dense: cheapest sparse level "
                f"{sparse_min}B >= dense broadcast {dense_fixed}B"
            )
        for row in level_rows:
            if row["auto_bytes"] > max(
                row["dense_bytes"], row["sparse_bytes"]
            ):
                failures.append(
                    f"auto paid {row['auto_bytes']}B on level "
                    f"{row['level']}, above both forced formats"
                )
        payload["check"] = {
            "max_slowdown": args.max_slowdown,
            "two_partition_slowdown": slowdown,
            "cheapest_sparse_bytes": sparse_min,
            "dense_bytes_per_level": dense_fixed,
            "passed": not failures,
            "failures": failures,
        }

    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {output}")

    if args.check:
        for failure in failures:
            print(f"CHECK FAILED: {failure}", file=sys.stderr)
        if failures:
            return 1
        print("dist scaling check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
