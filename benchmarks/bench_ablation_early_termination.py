"""Ablation: bottom-up early termination on vs off.

Early termination is the bitwise design's key behavioural edge over
MS-BFS (section 6): once a frontier's status word is all-ones the scan
stops.  This ablation isolates its contribution to both the physical
inspection count and the simulated runtime.
"""

from repro.core.bitwise import BitwiseTraversal
from repro.core.groupby import random_groups

from harness import ALL_GRAPHS, emit, format_table, load_graph, pick_sources, run_once

GROUP_SIZE = 32


def _run(graph, sources, early):
    engine = BitwiseTraversal(graph, early_termination=early)
    seconds = 0.0
    inspections = 0
    for group in random_groups(sources, GROUP_SIZE, seed=1):
        _, record, stats = engine.run_group(group)
        seconds += stats.seconds
        inspections += record.counters.bottom_up_inspections
    return seconds, inspections


def test_ablation_early_termination(benchmark):
    def experiment():
        rows = []
        for name in ALL_GRAPHS:
            graph = load_graph(name)
            sources = pick_sources(graph)
            on_s, on_insp = _run(graph, sources, early=True)
            off_s, off_insp = _run(graph, sources, early=False)
            rows.append(
                (
                    name,
                    on_insp,
                    off_insp,
                    round(off_insp / on_insp, 2) if on_insp else 0.0,
                    round(off_s / on_s, 2),
                )
            )
        return rows

    rows = run_once(benchmark, experiment)
    table = format_table(
        "Ablation: bottom-up early termination "
        "(bitwise engine, random groups of 32)",
        ["graph", "bu insp (on)", "bu insp (off)", "insp ratio", "time ratio"],
        rows,
    )
    emit("ablation_early_termination", table)

    # Early termination must reduce inspections on every graph and never
    # hurt runtime.
    for name, on_insp, off_insp, _, time_ratio in rows:
        assert on_insp <= off_insp, name
        assert time_ratio >= 0.95, name
    benchmark.extra_info["mean_insp_ratio"] = round(
        sum(r[3] for r in rows) / len(rows), 2
    )
