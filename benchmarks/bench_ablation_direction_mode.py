"""Ablation: per-instance vs per-group direction switching.

iBFS's single kernel lets each instance switch direction independently
(figure 5's mixed-direction level).  A simpler design votes once per
group.  This ablation quantifies what the per-instance flexibility is
worth: per-group voting forces stragglers into bottom-up early (extra
probes) or holds eager instances in top-down (extra inspections).
"""

from repro.core.bitwise import BitwiseTraversal
from repro.core.groupby import random_groups

from harness import emit, format_table, load_graph, pick_sources, run_once

GROUP_SIZE = 32
GRAPHS = ("FB", "KG0", "TW", "RD")


def _run(graph, sources, mode):
    engine = BitwiseTraversal(graph, direction_mode=mode)
    seconds = 0.0
    inspections = 0
    for group in random_groups(sources, GROUP_SIZE, seed=3):
        _, record, stats = engine.run_group(group)
        seconds += stats.seconds
        inspections += record.counters.inspections
    return seconds, inspections


def test_ablation_direction_mode(benchmark):
    def experiment():
        rows = []
        for name in GRAPHS:
            graph = load_graph(name)
            sources = pick_sources(graph)
            per_inst_s, per_inst_insp = _run(graph, sources, "per-instance")
            per_grp_s, per_grp_insp = _run(graph, sources, "per-group")
            rows.append(
                (
                    name,
                    per_inst_s * 1e3,
                    per_grp_s * 1e3,
                    round(per_grp_s / per_inst_s, 3),
                    per_inst_insp,
                    per_grp_insp,
                )
            )
        return rows

    rows = run_once(benchmark, experiment)
    table = format_table(
        "Ablation: direction switching granularity (bitwise engine)",
        ["graph", "per-inst ms", "per-grp ms", "grp/inst",
         "per-inst insp", "per-grp insp"],
        rows,
    )
    emit("ablation_direction_mode", table)

    # Both modes are valid; per-instance should never be dramatically
    # worse, and the two must stay within 2x of each other.
    for name, a, b, ratio, _, _ in rows:
        assert 0.5 < ratio < 2.0, name
    benchmark.extra_info["graphs"] = list(GRAPHS)
