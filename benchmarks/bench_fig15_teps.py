"""Figure 15: traversal rate of Sequential / Naive / Joint / Bitwise /
GroupBy across all 13 graphs.

Paper shape: Naive ~= Sequential (avg 1.05x); joint traversal ~1.4x
over sequential; the bitwise status array a further large factor; and
GroupBy up to ~2x more, for a combined speedup of up to 30x.  We assert
the ordering (the who-wins structure) and record the factors.
"""

import pytest

from harness import (
    ALL_GRAPHS,
    emit,
    fig15_engines,
    format_table,
    load_graph,
    pick_sources,
    run_once,
)

ENGINE_ORDER = ("sequential", "naive", "joint", "bitwise", "groupby")


@pytest.mark.parametrize("graph_name", ALL_GRAPHS)
def test_fig15_engine_comparison(benchmark, graph_name):
    graph = load_graph(graph_name)
    sources = pick_sources(graph)

    def experiment():
        results = {}
        for label, engine in fig15_engines(graph).items():
            results[label] = engine.run(sources, store_depths=False)
        return results

    results = run_once(benchmark, experiment)
    seq_seconds = results["sequential"].seconds
    rows = [
        (
            label,
            results[label].teps / 1e9,
            results[label].seconds * 1e3,
            seq_seconds / results[label].seconds,
            round(results[label].sharing_degree, 2),
        )
        for label in ENGINE_ORDER
    ]
    table = format_table(
        f"Figure 15 [{graph_name}]: engine comparison "
        f"({len(sources)} instances)",
        ["engine", "GTEPS", "ms", "speedup_vs_seq", "SD"],
        rows,
    )
    emit(f"fig15_teps_{graph_name}", table)

    # Shape assertions: the paper's ordering must hold.
    assert 0.7 < seq_seconds / results["naive"].seconds < 1.7
    assert results["joint"].seconds < seq_seconds
    assert results["bitwise"].seconds < results["joint"].seconds
    assert results["groupby"].seconds <= results["bitwise"].seconds * 1.10
    for label in ENGINE_ORDER:
        benchmark.extra_info[f"{label}_gteps"] = round(
            results[label].teps / 1e9, 3
        )
