"""Figure 6: sharing-degree trend by level for three groups on FB.

Paper shape (Theorem 1): a group with higher sharing at the early
levels keeps the higher expected sharing later — GroupBy's best group A
dominates a weaker GroupBy group B, which dominates a random group —
and SD peaks around the first bottom-up levels instead of growing
monotonically.
"""

import numpy as np

from repro.core.groupby import GroupByConfig, group_sources, random_groups
from repro.core.joint import JointTraversal

from harness import emit, format_table, load_graph, pick_sources, run_once

GROUP_SIZE = 32


def test_fig06_sd_trend(benchmark):
    graph = load_graph("FB")
    sources = pick_sources(graph, 256, seed=6)

    def experiment():
        groups = group_sources(graph, sources, GROUP_SIZE, GroupByConfig())
        full_groups = [g for g in groups if len(g) == GROUP_SIZE] or groups
        group_a = full_groups[0]
        group_b = full_groups[len(full_groups) // 2]
        group_random = random_groups(sources, GROUP_SIZE, seed=3)[0]
        engine = JointTraversal(graph)
        curves = {}
        for label, members in (
            ("group A", group_a),
            ("group B", group_b),
            ("random", group_random),
        ):
            _, _, stats = engine.run_group(members)
            curves[label] = stats.per_level_sharing
        return curves

    curves = run_once(benchmark, experiment)
    labels = ("group A", "group B", "random")
    max_len = max(len(c) for c in curves.values())
    rows = []
    for level in range(1, max_len):
        rows.append(
            (
                level,
                *(
                    round(curves[label][level], 2)
                    if level < len(curves[label])
                    else ""
                    for label in labels
                ),
            )
        )
    table = format_table(
        "Figure 6: sharing degree by level on FB (group size 32)",
        ["level", *labels],
        rows,
    )
    emit("fig06_sd_trend", table)

    # Shape: group A's early-level sharing dominates the random group's
    # (levels 1-3 are what Lemma 2 says predict the speedup).
    early_a = float(np.mean(curves["group A"][1:4]))
    early_rand = float(np.mean(curves["random"][1:4]))
    assert early_a >= early_rand
    benchmark.extra_info["early_sd_group_a"] = round(early_a, 2)
    benchmark.extra_info["early_sd_random"] = round(early_rand, 2)
