"""Figure 20: speedup of iBFS's bitwise design over the MS-BFS-style
bitwise baseline, with random grouping and with GroupBy.

The baseline reimplements the bitwise operation "as in [26]": statuses
reset each level, no early termination, thread-per-instance.  Paper
shape: ~40% speedup already with random groups, ~2.6x with GroupBy.
"""

import numpy as np

from repro import IBFS, IBFSConfig
from repro.core.bitwise import BitwiseTraversal
from repro.core.groupby import random_groups
from repro.gpusim.device import Device

from harness import ALL_GRAPHS, emit, format_table, load_graph, pick_sources, run_once

GROUP_SIZE = 32


def _msbfs_style_seconds(graph, sources):
    """The [26]-style bitwise baseline on the GPU device."""
    engine = BitwiseTraversal(
        graph,
        Device(),
        early_termination=False,
        reset_per_level=True,
        thread_per_instance=True,
    )
    total = 0.0
    for group in random_groups(sources, GROUP_SIZE, seed=20):
        _, record, stats = engine.run_group(group)
        total += stats.seconds
    return total


def test_fig20_bitwise_speedup(benchmark):
    def experiment():
        rows = []
        for name in ALL_GRAPHS:
            graph = load_graph(name)
            sources = pick_sources(graph)
            baseline = _msbfs_style_seconds(graph, sources)
            random = IBFS(
                graph, IBFSConfig(group_size=GROUP_SIZE, groupby=False, seed=20)
            ).run(sources, store_depths=False)
            grouped = IBFS(
                graph, IBFSConfig(group_size=GROUP_SIZE, groupby=True)
            ).run(sources, store_depths=False)
            rows.append(
                (name, baseline / random.seconds, baseline / grouped.seconds)
            )
        return rows

    rows = run_once(benchmark, experiment)
    table = format_table(
        "Figure 20: bitwise speedup over the [26]-style baseline",
        ["graph", "random grouping", "GroupBy"],
        rows,
    )
    emit("fig20_bitwise", table)

    random_mean = float(np.mean([r[1] for r in rows]))
    groupby_mean = float(np.mean([r[2] for r in rows]))
    # Shape: our bitwise design wins on average even with random groups,
    # and GroupBy extends the lead.
    assert random_mean > 1.0
    assert groupby_mean >= random_mean
    benchmark.extra_info["random_mean_speedup"] = round(random_mean, 2)
    benchmark.extra_info["groupby_mean_speedup"] = round(groupby_mean, 2)
