"""Figure 21: total global load transactions, joint (JSA) vs bitwise (BSA).

Paper shape: consolidating the statuses of up to 128 instances into a
single variable cuts total load transactions by ~40% across 1,024
instances.
"""

from repro import IBFS, IBFSConfig

from harness import ALL_GRAPHS, emit, format_table, load_graph, pick_sources, run_once

GROUP_SIZE = 32


def test_fig21_total_load_transactions(benchmark):
    def experiment():
        rows = []
        for name in ALL_GRAPHS:
            graph = load_graph(name)
            sources = pick_sources(graph)
            joint = IBFS(
                graph,
                IBFSConfig(group_size=GROUP_SIZE, mode="joint", groupby=False),
            ).run(sources, store_depths=False)
            bitwise = IBFS(
                graph,
                IBFSConfig(group_size=GROUP_SIZE, mode="bitwise", groupby=False),
            ).run(sources, store_depths=False)
            rows.append(
                (
                    name,
                    joint.counters.global_load_transactions / 1e6,
                    bitwise.counters.global_load_transactions / 1e6,
                )
            )
        return rows

    rows = run_once(benchmark, experiment)
    table = format_table(
        "Figure 21: total global load transactions (millions)",
        ["graph", "joint (JSA)", "bitwise (BSA)"],
        rows,
    )
    emit("fig21_total_loads", table)

    for name, joint_loads, bitwise_loads in rows:
        assert bitwise_loads < joint_loads, name
    reduction = 1 - sum(r[2] for r in rows) / sum(r[1] for r in rows)
    benchmark.extra_info["load_reduction_pct"] = round(100 * reduction, 1)
