"""The substrate registry: four ways to run one traversal.

Every substrate executes the same iBFS group traversal with
bit-identical depths and counters; what differs is *placement* — where
the work runs and what metrics it emits:

* ``serial`` — the in-process :class:`~repro.core.engine.IBFS` engine;
* ``executor`` — the :class:`~repro.exec.executor.GroupExecutor`
  worker-process pool over a shared-memory graph;
* ``partitioned`` — the :class:`~repro.dist.engine.PartitionedEngine`
  (1D/2D) for graphs too big for one device;
* ``stream`` — the epoch-swapping wrapper: an
  :class:`~repro.stream.epoch.EpochStore` plus any of the above as the
  per-epoch delegate.

All of them present one :class:`Substrate` surface (``run_group``,
``run``, ``effective_group_size``, ``metrics``, ``close``) plus
capability flags, and all construction/validation funnels through
:func:`make_substrate` — the scattered per-consumer ``ServiceError``
checks became capability checks here.  Epoch swap-on-mutate is the
:meth:`Substrate.on_epoch_published` hook: substrates whose
``supports_mutation`` flag is False raise a typed
:class:`~repro.errors.UnsupportedMutationError` instead of ever
serving a stale graph.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Type, TYPE_CHECKING

from repro.errors import (
    ExclusiveSubstrateError,
    SubstrateError,
    UnknownSubstrateError,
    UnsupportedMutationError,
)
from repro.graph.csr import CSRGraph
from repro.runtime.spec import SUBSTRATE_NAMES, SubstrateSpec

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.core.result import ConcurrentResult
    from repro.stream.epoch import Snapshot

#: Capability flag names, in the order the capability table renders.
CAPABILITY_FLAGS = (
    "supports_mutation",
    "supports_partitions",
    "supports_executor",
    "supports_replay",
)


class Substrate:
    """One execution substrate behind the uniform dispatch surface.

    Subclasses set :attr:`kind` and the capability flags as class
    attributes (instances may narrow them — a caller-owned executor
    loses ``supports_mutation``) and implement the traversal surface
    over their engine.  ``engine_key`` is the cache namespace batches
    served by this substrate are keyed under.
    """

    kind: str = "abstract"
    #: Can follow an epoch publication (:meth:`on_epoch_published`).
    supports_mutation: bool = False
    #: Splits the graph instead of replicating it.
    supports_partitions: bool = False
    #: Runs on a worker-process pool (wave dispatch available).
    supports_executor: bool = False
    #: Accepts recorded :class:`~repro.plan.types.RunPlan` replay.
    supports_replay: bool = True

    graph: CSRGraph
    engine_key: str

    # -- traversal surface ---------------------------------------------
    def run_group(
        self,
        group: Sequence[int],
        max_depth: Optional[int] = None,
        plan=None,
    ) -> "ConcurrentResult":
        raise NotImplementedError

    def run(
        self,
        sources: Sequence[int],
        max_depth: Optional[int] = None,
        store_depths: bool = True,
    ) -> "ConcurrentResult":
        raise NotImplementedError

    def make_groups(self, sources: Sequence[int]) -> List[List[int]]:
        raise NotImplementedError

    def effective_group_size(self) -> int:
        raise NotImplementedError

    def map_groups(self, specs: Sequence[tuple], return_errors: bool = False):
        """Concurrent wave dispatch; only executor-backed substrates
        provide it (guard with :attr:`supports_executor`)."""
        raise SubstrateError(
            f"substrate {self.kind!r} has supports_executor=False: "
            f"wave dispatch needs a worker pool"
        )

    # -- lifecycle ------------------------------------------------------
    def on_epoch_published(self, snapshot: "Snapshot") -> None:
        """Swap onto a newly published epoch's graph.

        The default is the fail-closed path: a substrate that cannot
        follow the swap refuses with a typed error naming the
        capability rather than silently serving the old graph.
        """
        raise UnsupportedMutationError(
            f"substrate {self.kind!r} has supports_mutation=False: "
            f"it cannot follow an epoch publication"
        )

    def close(self) -> None:
        """Release owned resources (pools, partitions, epochs)."""

    def __enter__(self) -> "Substrate":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- introspection --------------------------------------------------
    @property
    def last_stats(self):
        """Substrate-specific stats of the most recent run (or None)."""
        return None

    @property
    def partitioned_engine(self):
        """The PartitionedEngine when this placement partitions."""
        return None

    @property
    def executor(self):
        """The GroupExecutor when this placement pools workers."""
        return None

    @property
    def telemetry_kind(self) -> str:
        """The substrate name recorded on spans/metrics — aligned with
        :func:`repro.obs.analyze.detect_substrate`'s vocabulary."""
        return self.kind

    @classmethod
    def capabilities(cls) -> Dict[str, bool]:
        return {flag: bool(getattr(cls, flag)) for flag in CAPABILITY_FLAGS}

    def describe(self) -> dict:
        return {
            "kind": self.kind,
            "engine": getattr(self.engine, "name", None),
            "capabilities": {
                flag: bool(getattr(self, flag)) for flag in CAPABILITY_FLAGS
            },
        }

    def __repr__(self) -> str:
        return f"{type(self).__name__}(kind={self.kind!r})"


#: The registry: substrate name -> substrate class.
SUBSTRATES: Dict[str, Type[Substrate]] = {}


def register_substrate(cls: Type[Substrate]) -> Type[Substrate]:
    if cls.kind not in SUBSTRATE_NAMES:
        raise UnknownSubstrateError(
            f"substrate class {cls.__name__} registers unknown kind "
            f"{cls.kind!r}"
        )
    SUBSTRATES[cls.kind] = cls
    return cls


# ----------------------------------------------------------------------
@register_substrate
class SerialSubstrate(Substrate):
    """The in-process single-device engine — the bit-identity oracle."""

    kind = "serial"
    supports_mutation = True

    def __init__(
        self,
        graph: CSRGraph,
        spec: SubstrateSpec,
        engine_config=None,
        device=None,
        policy=None,
        planner=None,
    ) -> None:
        from repro.core.engine import IBFS

        self.graph = graph
        self.spec = spec
        self.engine = IBFS(
            graph, engine_config, device=device, policy=policy,
            planner=planner,
        )
        self._planner = planner
        self.engine_key = spec.engine_key(self.engine.config, planner)

    def run_group(self, group, max_depth=None, plan=None):
        return self.engine.run_group(group, max_depth=max_depth, plan=plan)

    def run(self, sources, max_depth=None, store_depths=True):
        return self.engine.run(
            sources, max_depth=max_depth, store_depths=store_depths
        )

    def make_groups(self, sources):
        return self.engine.make_groups(sources)

    def effective_group_size(self) -> int:
        return self.engine.effective_group_size()

    def on_epoch_published(self, snapshot: "Snapshot") -> None:
        from repro.core.engine import IBFS

        self.graph = snapshot.graph
        self.engine = IBFS(
            snapshot.graph,
            self.engine.config,
            device=self.engine.device,
            policy=self.engine.policy,
            planner=self._planner,
        )

    def metrics(self) -> dict:
        return {"kind": self.kind, "engine": self.engine.name}


# ----------------------------------------------------------------------
@register_substrate
class ExecutorSubstrate(Substrate):
    """The worker-process pool over a shared-memory graph replica.

    Owns its :class:`~repro.exec.executor.GroupExecutor` unless one is
    passed in; a caller-owned executor cannot be rebound across epochs
    (its other users would see the graph change under them), so the
    instance drops ``supports_mutation``.
    """

    kind = "executor"
    supports_executor = True
    supports_mutation = True

    def __init__(
        self,
        graph: CSRGraph,
        spec: SubstrateSpec,
        engine_config=None,
        device_config=None,
        policy=None,
        planner=None,
        executor=None,
        exec_config=None,
    ) -> None:
        self.graph = graph
        self.spec = spec
        self._planner = planner
        if executor is not None:
            self._executor = executor
            self._owned = False
            self.supports_mutation = False
        else:
            from repro.exec.executor import ExecConfig, GroupExecutor

            if exec_config is None:
                exec_config = ExecConfig(
                    num_workers=spec.workers or ExecConfig().num_workers,
                    scheduler=spec.scheduler,
                )
            self._executor = GroupExecutor(
                graph,
                engine_config,
                exec_config=exec_config,
                device_config=device_config,
                policy=policy,
                planner=planner,
            )
            self._owned = True
        self.engine_key = spec.engine_key(
            self._executor.engine.config, planner
        )

    @property
    def executor(self):
        return self._executor

    @property
    def engine(self):
        """The executor's local engine (grouping + in-process path)."""
        return self._executor.engine

    def run_group(self, group, max_depth=None, plan=None):
        return self._executor.run_group(
            group, max_depth=max_depth, plan=plan
        )

    def run(self, sources, max_depth=None, store_depths=True):
        return self._executor.run(
            sources, max_depth=max_depth, store_depths=store_depths
        )

    def make_groups(self, sources):
        return self._executor.engine.make_groups(sources)

    def effective_group_size(self) -> int:
        return self._executor.engine.effective_group_size()

    def map_groups(self, specs, return_errors: bool = False):
        return self._executor.map_groups(specs, return_errors=return_errors)

    def on_epoch_published(self, snapshot: "Snapshot") -> None:
        if not self._owned:
            raise UnsupportedMutationError(
                "caller-owned executor has supports_mutation=False: "
                "worker processes map one published graph for their "
                "lifetime, but epochs swap the graph under the server; "
                "let the substrate own its executor (workers=N in the "
                "SubstrateSpec) so it can republish and respawn"
            )
        self._executor.rebind_graph(snapshot.graph)
        self.graph = snapshot.graph

    def close(self) -> None:
        if self._owned:
            self._executor.close()

    @property
    def last_stats(self):
        return self._executor.last_stats

    def metrics(self) -> dict:
        payload = {
            "kind": self.kind,
            "backend": self._executor.backend,
            "owned": self._owned,
        }
        if self._executor.last_stats is not None:
            payload["last_run"] = self._executor.last_stats.to_dict()
        return payload


# ----------------------------------------------------------------------
@register_substrate
class PartitionedSubstrate(Substrate):
    """The 1D/2D partitioned engine for graphs too big for one device."""

    kind = "partitioned"
    supports_partitions = True
    supports_mutation = True

    def __init__(
        self,
        graph: CSRGraph,
        spec: SubstrateSpec,
        engine_config=None,
        planner=None,
        dist_config=None,
    ) -> None:
        from repro.core.engine import IBFSConfig
        from repro.dist.engine import DistConfig, PartitionedEngine

        self.graph = graph
        self.spec = spec
        engine_config = engine_config or IBFSConfig()
        if dist_config is None:
            dist_config = DistConfig(
                num_partitions=spec.partitions or DistConfig().num_partitions,
                layout=spec.layout,
                group_size=engine_config.group_size,
                groupby=engine_config.groupby,
                groupby_config=engine_config.groupby_config,
                seed=engine_config.seed,
            )
        self.engine = PartitionedEngine(graph, dist_config)
        self._engine_config = engine_config
        self._planner = planner
        # Partitioned plans carry exchange formats a whole-graph replay
        # would ignore; the suffix keeps the cache namespaces apart.
        self.engine_key = spec.engine_key(
            engine_config, planner, substrate_suffix=self.engine.name
        )

    @property
    def partitioned_engine(self):
        return self.engine

    def run_group(self, group, max_depth=None, plan=None):
        return self.engine.run_group(group, max_depth=max_depth, plan=plan)

    def run(self, sources, max_depth=None, store_depths=True):
        return self.engine.run(
            sources, max_depth=max_depth, store_depths=store_depths
        )

    def make_groups(self, sources):
        return self.engine.make_groups(sources)

    def effective_group_size(self) -> int:
        return self.engine.effective_group_size()

    def on_epoch_published(self, snapshot: "Snapshot") -> None:
        from repro.dist.engine import PartitionedEngine

        old_config = self.engine.config
        self.engine.close()
        self.engine = PartitionedEngine(snapshot.graph, old_config)
        self.graph = snapshot.graph

    def close(self) -> None:
        self.engine.close()

    @property
    def last_stats(self):
        return self.engine.last_stats

    def metrics(self) -> dict:
        payload = {"kind": self.kind, "engine": self.engine.name}
        stats = self.engine.last_stats
        if stats is not None:
            payload["last_run"] = {
                "layout": stats.layout,
                "num_partitions": stats.num_partitions,
                "bytes_total": stats.bytes_total,
                "messages_total": stats.messages_total,
            }
        return payload


# ----------------------------------------------------------------------
@register_substrate
class StreamSubstrate(Substrate):
    """The epoch-swapping wrapper: a mutable graph behind any delegate.

    Owns an :class:`~repro.stream.epoch.EpochStore` and one inner
    substrate built over the current epoch's graph; :meth:`publish`
    folds the overlay into a new epoch and routes the swap through the
    delegate's :meth:`on_epoch_published` hook — including the executor
    delegate, which republishes the new epoch's shm graph to a fresh
    worker pool instead of pinning the base epoch forever.
    """

    kind = "stream"
    supports_mutation = True

    def __init__(
        self,
        graph: CSRGraph,
        spec: SubstrateSpec,
        **kwargs,
    ) -> None:
        from repro.stream.epoch import EpochStore

        if kwargs.get("executor") is not None:
            raise UnsupportedMutationError(
                "caller-owned executor has supports_mutation=False: "
                "worker processes map one published graph for their "
                "lifetime, but epochs swap the graph under the server; "
                "pass workers=N in the SubstrateSpec so the stream "
                "substrate owns (and rebinds) its executor"
            )
        self.spec = spec
        self.epochs = EpochStore(graph, share=spec.share)
        self.graph = self.epochs.current.graph
        self.inner = make_substrate(spec.inner(), self.graph, **kwargs)
        if not self.inner.supports_mutation:
            raise UnsupportedMutationError(
                f"stream delegate {self.inner.kind!r} has "
                f"supports_mutation=False: it cannot follow epoch swaps"
            )
        # Epoch swaps re-namespace caches via graph_id alone; the
        # engine key is config-derived and stable across epochs.
        self.engine_key = self.inner.engine_key
        self.supports_partitions = self.inner.supports_partitions
        self.supports_executor = self.inner.supports_executor

    # -- mutation surface ----------------------------------------------
    @property
    def overlay(self):
        return self.epochs.overlay

    def publish(self) -> "Snapshot":
        """Fold pending mutations into a new epoch and swap the
        delegate onto it; a no-op (returning the current snapshot)
        when nothing is pending."""
        snap = self.epochs.publish()
        if snap.graph is not self.graph:
            self.on_epoch_published(snap)
        return snap

    def on_epoch_published(self, snapshot: "Snapshot") -> None:
        self.inner.on_epoch_published(snapshot)
        self.graph = snapshot.graph

    # -- delegation -----------------------------------------------------
    @property
    def engine(self):
        return self.inner.engine

    @property
    def partitioned_engine(self):
        return self.inner.partitioned_engine

    @property
    def executor(self):
        return self.inner.executor

    @property
    def last_stats(self):
        return self.inner.last_stats

    @property
    def telemetry_kind(self) -> str:
        # A stream placement over a non-serial delegate reports the
        # delegate (what trace attribution would detect from the span
        # tree); a serial delegate is the stream substrate proper.
        if self.inner.kind != "serial":
            return self.inner.telemetry_kind
        return self.kind

    def run_group(self, group, max_depth=None, plan=None):
        return self.inner.run_group(group, max_depth=max_depth, plan=plan)

    def run(self, sources, max_depth=None, store_depths=True):
        return self.inner.run(
            sources, max_depth=max_depth, store_depths=store_depths
        )

    def make_groups(self, sources):
        return self.inner.make_groups(sources)

    def effective_group_size(self) -> int:
        return self.inner.effective_group_size()

    def map_groups(self, specs, return_errors: bool = False):
        return self.inner.map_groups(specs, return_errors=return_errors)

    def close(self) -> None:
        self.inner.close()
        self.epochs.close()

    def metrics(self) -> dict:
        return {
            "kind": self.kind,
            "inner": self.inner.metrics(),
            "current_epoch": self.epochs.current_epoch,
            "reclaimed_epochs": self.epochs.reclaimed_epochs,
        }


# ----------------------------------------------------------------------
def make_substrate(
    spec: SubstrateSpec,
    graph: CSRGraph,
    engine_config=None,
    device=None,
    device_config=None,
    policy=None,
    planner=None,
    executor=None,
    exec_config=None,
    dist_config=None,
) -> Substrate:
    """Build the substrate a spec places the workload on.

    The one construction/validation funnel: capability violations — an
    executor handed to a partitioned placement, a caller-owned executor
    under an epoch-swapping placement — raise typed
    :class:`~repro.errors.SubstrateCapabilityError` subclasses here
    instead of ad-hoc ``ServiceError`` checks at every consumer.

    ``device`` (a :class:`~repro.gpusim.device.Device`) serves the
    in-process engines; ``device_config`` ships to worker processes.
    ``exec_config`` / ``dist_config`` override the spec-derived
    defaults for the executor / partitioned substrates.
    """
    cls = SUBSTRATES.get(spec.kind)
    if cls is None:
        raise UnknownSubstrateError(
            f"unknown substrate {spec.kind!r}; "
            f"expected one of {tuple(sorted(SUBSTRATES))}"
        )
    if executor is not None and not cls.supports_executor and cls.kind != "stream":
        if cls.supports_partitions:
            raise ExclusiveSubstrateError()
        raise SubstrateError(
            f"substrate {spec.kind!r} has supports_executor=False: "
            f"it cannot adopt a GroupExecutor"
        )
    if spec.kind == "serial":
        return SerialSubstrate(
            graph,
            spec,
            engine_config=engine_config,
            device=device,
            policy=policy,
            planner=planner,
        )
    if spec.kind == "executor":
        if device_config is None and device is not None:
            device_config = device.config
        return ExecutorSubstrate(
            graph,
            spec,
            engine_config=engine_config,
            device_config=device_config,
            policy=policy,
            planner=planner,
            executor=executor,
            exec_config=exec_config,
        )
    if spec.kind == "partitioned":
        return PartitionedSubstrate(
            graph,
            spec,
            engine_config=engine_config,
            planner=planner,
            dist_config=dist_config,
        )
    kwargs = dict(
        engine_config=engine_config,
        policy=policy,
        planner=planner,
    )
    inner_kind = spec.inner_kind
    if inner_kind == "serial":
        kwargs["device"] = device
    elif inner_kind == "executor":
        if device_config is None and device is not None:
            device_config = device.config
        kwargs["device_config"] = device_config
        kwargs["exec_config"] = exec_config
    elif inner_kind == "partitioned":
        kwargs["dist_config"] = dist_config
    if executor is not None:
        kwargs["executor"] = executor
    return StreamSubstrate(graph, spec, **kwargs)
