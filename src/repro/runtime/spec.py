"""Placement specs for the traversal substrates.

A :class:`SubstrateSpec` is the *placement decision*: which of the
four registered substrates runs a workload, and with what substrate
parameters (worker count, partition count and layout, epoch sharing).
Everything a consumer used to wire by hand — ``--workers`` vs
``--partitions`` vs ``--churn``, the executor/partitions mutual
exclusion, the partitioned cache-key suffix — derives from one spec.

Engine-key derivation lives here too: the spec owns the cache
namespace its substrate serves under, so the serving layer no longer
builds a throwaway engine just to fingerprint its configuration.
:func:`repro.service.cache.engine_cache_key` delegates to
:func:`engine_key` for back-compat.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, TYPE_CHECKING

from repro.errors import ExclusiveSubstrateError, SubstrateError, UnknownSubstrateError
from repro.plan.policy import Policy, planner_cache_name

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.core.engine import IBFSConfig

#: Registered substrate names, in registry order.  The registry itself
#: (name -> class) lives in :mod:`repro.runtime.substrates`; this tuple
#: is the static surface the spec and the CLI validate against.
SUBSTRATE_NAMES = ("serial", "executor", "partitioned", "stream")


def engine_key(
    config: "IBFSConfig",
    policy_name: Optional[str] = None,
    substrate_suffix: Optional[str] = None,
) -> str:
    """Stable fingerprint of an engine configuration.

    ``policy_name`` (the planner policy's name) is appended when given:
    two servers over the same config but different planner policies can
    produce different traversal schedules, so their cached plans — and,
    for policies that change results, depth rows — must not alias.
    ``substrate_suffix`` namespaces substrates whose recorded plans a
    whole-graph replay would misread (the partitioned engine's
    exchange formats).
    """
    key = (
        f"{config.mode}-n{config.group_size}"
        f"-gb{int(config.groupby)}-et{int(config.early_termination)}"
        f"-vw{config.vector_width}-s{config.seed}"
    )
    if policy_name is not None:
        key += f"-pol{policy_name}"
    if substrate_suffix is not None:
        key += f"+{substrate_suffix}"
    return key


@dataclass(frozen=True)
class SubstrateSpec:
    """One placement decision: which substrate, with what parameters.

    Attributes
    ----------
    kind:
        One of :data:`SUBSTRATE_NAMES`.  ``"stream"`` is the
        epoch-swapping wrapper; its delegate is chosen by the remaining
        fields (:attr:`inner_kind`).
    workers:
        Worker processes for the executor substrate (0 = the
        executor's default pool size when the kind demands one).
    scheduler:
        Executor dispatch policy (``steal`` / ``lpt`` / ``round_robin``).
    partitions:
        Partition count for the partitioned substrate (0 = the
        engine's default when the kind demands partitions).
    layout:
        Partition layout, ``"1d"`` or ``"2d"``.
    share:
        Stream substrate only: publish each epoch snapshot over POSIX
        shared memory.
    """

    kind: str = "serial"
    workers: int = 0
    scheduler: str = "steal"
    partitions: int = 0
    layout: str = "1d"
    share: bool = False

    def __post_init__(self) -> None:
        if self.kind not in SUBSTRATE_NAMES:
            raise UnknownSubstrateError(
                f"unknown substrate {self.kind!r}; "
                f"expected one of {SUBSTRATE_NAMES}"
            )
        if self.workers < 0:
            raise SubstrateError("workers must be non-negative")
        if self.partitions < 0:
            raise SubstrateError("partitions must be non-negative")
        if self.layout not in ("1d", "2d"):
            raise SubstrateError(
                f"unknown partition_layout {self.layout!r}; "
                f"expected '1d' or '2d'"
            )
        if self.workers > 0 and self.partitions > 0:
            raise ExclusiveSubstrateError()
        if self.kind == "executor" and self.partitions > 0:
            raise ExclusiveSubstrateError()
        if self.kind == "partitioned" and self.workers > 0:
            raise ExclusiveSubstrateError()

    # ------------------------------------------------------------------
    @classmethod
    def from_flags(
        cls,
        kind: Optional[str] = None,
        workers: int = 0,
        partitions: int = 0,
        layout: str = "1d",
        scheduler: str = "steal",
        churn: bool = False,
        share: bool = False,
    ) -> "SubstrateSpec":
        """Derive a spec from the legacy CLI/serving flags.

        ``--workers`` / ``--partitions`` / ``--churn`` remain aliases:
        when ``kind`` is not given explicitly, partitions select the
        partitioned substrate, workers the executor, churn wraps the
        result in the stream substrate, and the bare default is serial.
        An explicit ``kind`` wins (its parameters fall back to the
        substrate defaults when the matching flag is 0).
        """
        if kind is None:
            if churn:
                kind = "stream"
            elif partitions > 0:
                kind = "partitioned"
            elif workers > 0:
                kind = "executor"
            else:
                kind = "serial"
        elif churn and kind != "stream":
            # An explicit non-stream kind under churn still needs the
            # epoch wrapper; the requested kind becomes the delegate.
            if kind == "partitioned" and partitions == 0:
                partitions = 2
            if kind == "executor" and workers == 0:
                workers = 2
            kind = "stream"
        return cls(
            kind=kind,
            workers=workers,
            scheduler=scheduler,
            partitions=partitions,
            layout=layout,
            share=share,
        )

    # ------------------------------------------------------------------
    @property
    def inner_kind(self) -> str:
        """The stream substrate's delegate (what actually traverses)."""
        if self.partitions > 0:
            return "partitioned"
        if self.workers > 0:
            return "executor"
        return "serial"

    def inner(self) -> "SubstrateSpec":
        """The delegate spec a stream substrate builds per epoch."""
        return replace(self, kind=self.inner_kind, share=False)

    # ------------------------------------------------------------------
    def engine_key(
        self,
        config: "IBFSConfig",
        planner: Optional[Policy] = None,
        substrate_suffix: Optional[str] = None,
    ) -> str:
        """The cache namespace this placement serves under.

        Same derivation the serving layer used to perform from its
        inline engine — policy-name resolution comes from the plan
        layer (:func:`~repro.plan.policy.planner_cache_name`), and
        partitioned placements append their engine name so recorded
        plans carrying exchange formats never alias whole-graph ones.
        """
        return engine_key(
            config, planner_cache_name(planner), substrate_suffix
        )

    def describe(self) -> dict:
        payload = {"kind": self.kind}
        if self.kind in ("executor",) or (
            self.kind == "stream" and self.inner_kind == "executor"
        ):
            payload["workers"] = self.workers
            payload["scheduler"] = self.scheduler
        if self.kind in ("partitioned",) or (
            self.kind == "stream" and self.inner_kind == "partitioned"
        ):
            payload["partitions"] = self.partitions
            payload["layout"] = self.layout
        if self.kind == "stream":
            payload["inner"] = self.inner_kind
            payload["share"] = self.share
        return payload
