"""repro.runtime — the substrate registry behind every dispatch layer.

Four traversal substrates (serial, executor, partitioned, stream) sit
behind one :class:`Substrate` protocol with capability flags; one
:func:`make_substrate` factory owns construction, capability-driven
validation, and epoch swap-on-mutate.  The serving layer, the
distributed driver, the executor worker loop, and the CLI all resolve
their backend through this registry instead of wiring engines by hand.
"""

from repro.runtime.spec import SUBSTRATE_NAMES, SubstrateSpec, engine_key
from repro.runtime.substrates import (
    CAPABILITY_FLAGS,
    ExecutorSubstrate,
    PartitionedSubstrate,
    SerialSubstrate,
    StreamSubstrate,
    Substrate,
    SUBSTRATES,
    make_substrate,
)

__all__ = [
    "CAPABILITY_FLAGS",
    "ExecutorSubstrate",
    "PartitionedSubstrate",
    "SUBSTRATES",
    "SUBSTRATE_NAMES",
    "SerialSubstrate",
    "StreamSubstrate",
    "Substrate",
    "SubstrateSpec",
    "engine_key",
    "make_substrate",
]
