"""C-extension provider: ctypes bindings over the cached shared library.

Importing this module raises :class:`ImportError` when no C compiler
is available (or compilation fails); provider resolution in
:mod:`repro.native` treats that as "cext unavailable".  The binding
functions present exactly the raw interface of
:mod:`repro.native._pykernels` — caller-allocated outputs, sentinel
arrays instead of ``None`` — so the allocation layer above is
provider-agnostic.

All array arguments must be C-contiguous with the canonical dtypes
(int64 indices/counts, uint64 status words, int32 depths, bool
``done``/``found``); the ops layer in :mod:`repro.native` guarantees
this before calling down.
"""

from __future__ import annotations

import numpy as np

from repro.native import _csrc

name = "cext"

_lib = _csrc.load_library()
if _lib is None:
    raise ImportError(
        "repro.native C extension unavailable: no working C compiler "
        "or compilation failed"
    )


def _p(arr: np.ndarray) -> int:
    return arr.ctypes.data


def unique_targets(targets, flags, out):
    return _lib.repro_unique_targets(
        _p(targets), targets.shape[0], _p(flags), _p(out)
    )


def scatter_or(out, targets, words, word_index, mode):
    _lib.repro_scatter_or(
        _p(out),
        _p(targets),
        _p(words),
        _p(word_index),
        targets.shape[0],
        words.shape[0],
        out.shape[1],
        mode,
    )


def or_scan(
    indices,
    starts,
    ends,
    state,
    lane_mask,
    target,
    early_termination,
    base,
    dirty_pos,
    saved,
    src_mode,
    probes,
    acc,
    done,
    inspections,
):
    return _lib.repro_or_scan(
        _p(indices),
        _p(starts),
        _p(ends),
        starts.shape[0],
        _p(state),
        _p(lane_mask),
        _p(target),
        int(early_termination),
        _p(base),
        _p(dirty_pos),
        _p(saved),
        int(src_mode),
        state.shape[1],
        _p(probes),
        _p(acc),
        _p(done),
        _p(inspections),
    )


def coalesce(indices, element_bytes, txn_bytes, warp, out):
    _lib.repro_coalesce(
        _p(indices),
        indices.shape[0],
        int(element_bytes),
        int(txn_bytes),
        int(warp),
        _p(out),
    )


def round_coalesce(
    indices, starts, probes, element_bytes, txn_bytes, warp, live, out
):
    _lib.repro_round_coalesce(
        _p(indices),
        _p(starts),
        _p(probes),
        probes.shape[0],
        int(element_bytes),
        int(txn_bytes),
        int(warp),
        _p(live),
        _p(out),
    )


def depth_update(rows, diff, group_size, depths, add):
    _lib.repro_depth_update(
        _p(rows),
        _p(diff),
        rows.shape[0],
        diff.shape[1],
        int(group_size),
        _p(depths),
        depths.shape[1],
        depths.dtype.itemsize,
        int(add),
    )


def transpose_i32(src, dst):
    _lib.repro_transpose_i32(
        _p(src),
        src.shape[0],
        src.shape[1],
        src.dtype.itemsize,
        _p(dst),
    )


def round_major(indices, starts, probes, round_base, out):
    _lib.repro_round_major(
        _p(indices),
        _p(starts),
        _p(probes),
        probes.shape[0],
        round_base.shape[0],
        _p(round_base),
        _p(out),
    )


def hit_scan_depth(
    indices, starts, degrees, depths, inst, use_inst, level, probes, found
):
    return _lib.repro_hit_scan_depth(
        _p(indices),
        _p(starts),
        _p(degrees),
        starts.shape[0],
        _p(depths),
        depths.shape[1],
        _p(inst) if use_inst else None,
        int(level),
        _p(probes),
        _p(found),
    )


def per_bit_counts(words, out):
    hist = np.zeros(words.shape[1] * 8 * 256, dtype=np.int64)
    _lib.repro_per_bit_counts(
        _p(words), words.shape[0], words.shape[1], _p(hist), _p(out)
    )


def per_bit_weighted(words, weights, out):
    hist = np.zeros(words.shape[1] * 8 * 256, dtype=np.int64)
    _lib.repro_per_bit_weighted(
        _p(words),
        _p(weights),
        words.shape[0],
        words.shape[1],
        _p(hist),
        _p(out),
    )
