"""C source and build machinery for the compiled-kernel provider.

The C translation unit below implements the same primitives as
:mod:`repro.native._pykernels` — one scalar inner loop per kernel, the
shape a compiler turns into tight machine code.  It is compiled once
per source revision with the host C compiler into a shared library
cached under ``~/.cache/repro-native`` (or ``REPRO_NATIVE_CACHE``) and
bound through :mod:`ctypes`; if no compiler is available the provider
reports itself unavailable and the numpy kernels keep running.

Semantics are locked to the numpy kernel layer: every function is a
line-by-line restatement of the corresponding reformulation in
``repro/kernels`` (see the docstrings there), so simulated counters and
depth matrices stay bit-identical — the equivalence suite enforces it
against the frozen ``kernels/reference.py`` oracles.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
from pathlib import Path
from typing import Optional

C_SOURCE = r"""
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

/* ------------------------------------------------------------------ */
/* Sorted unique targets via a caller-owned flag array.                */
/*                                                                    */
/* ``flags`` must be all-zero on entry; the function clears every flag */
/* it sets before returning, so one zeroed buffer can be reused across */
/* calls without re-zeroing (the numpy layer caches one per size).     */
/* Output is emitted by sweeping the flag range in ascending order, so */
/* it comes out sorted without any comparison sort.                    */
/* ------------------------------------------------------------------ */
int64_t repro_unique_targets(const int64_t *targets, int64_t m,
                             uint8_t *flags, int64_t *out) {
    if (m == 0) return 0;
    int64_t lo = targets[0], hi = targets[0];
    for (int64_t i = 0; i < m; i++) {
        int64_t t = targets[i];
        flags[t] = 1;
        if (t < lo) lo = t;
        if (t > hi) hi = t;
    }
    int64_t count = 0;
    for (int64_t v = lo; v <= hi; v++) {
        if (flags[v]) {
            flags[v] = 0;
            out[count++] = v;
        }
    }
    return count;
}

/* ------------------------------------------------------------------ */
/* Fused scatter-OR: out[targets[i]] |= words[row(i)].                 */
/*                                                                    */
/* mode 0: row(i) = i            (one word row per target)            */
/* mode 1: row(i) = word_index[i]                                     */
/* mode 2: words row r covers the next word_index[r] targets (CSR     */
/*         edge-map: word_index is the frontier degree array)         */
/* ------------------------------------------------------------------ */
void repro_scatter_or(uint64_t *out, const int64_t *targets,
                      const uint64_t *words, const int64_t *word_index,
                      int64_t m, int64_t rows, int64_t lanes, int mode) {
    if (lanes == 1) {
        if (mode == 2) {
            int64_t i = 0;
            for (int64_t r = 0; r < rows; r++) {
                uint64_t w = words[r];
                for (int64_t k = 0; k < word_index[r]; k++, i++)
                    out[targets[i]] |= w;
            }
        } else if (mode == 1) {
            for (int64_t i = 0; i < m; i++)
                out[targets[i]] |= words[word_index[i]];
        } else {
            for (int64_t i = 0; i < m; i++)
                out[targets[i]] |= words[i];
        }
        return;
    }
    if (mode == 2) {
        int64_t i = 0;
        for (int64_t r = 0; r < rows; r++) {
            const uint64_t *w = words + r * lanes;
            for (int64_t k = 0; k < word_index[r]; k++, i++) {
                uint64_t *dst = out + targets[i] * lanes;
                for (int64_t l = 0; l < lanes; l++) dst[l] |= w[l];
            }
        }
        return;
    }
    for (int64_t i = 0; i < m; i++) {
        const uint64_t *w = words + (mode ? word_index[i] : i) * lanes;
        uint64_t *dst = out + targets[i] * lanes;
        for (int64_t l = 0; l < lanes; l++) dst[l] |= w[l];
    }
}

/* ------------------------------------------------------------------ */
/* BSA_k row fetch for the bottom-up scan.                             */
/*                                                                    */
/* src_mode 0: read ``base`` directly (live array when nothing is     */
/*             dirty, or a full per-level snapshot).                  */
/* src_mode 1: dirty-row patching — rows with dirty_pos[v] >= 0 read  */
/*             their pre-level value from the stash.                  */
/* ------------------------------------------------------------------ */
static inline const uint64_t *fetch_row(const uint64_t *base,
                                        const int64_t *dirty_pos,
                                        const uint64_t *saved,
                                        int src_mode, int64_t v,
                                        int64_t lanes) {
    if (src_mode == 1) {
        int64_t p = dirty_pos[v];
        if (p >= 0) return saved + p * lanes;
    }
    return base + v * lanes;
}

/* Per-instance pending tallies: for every tracked bit of ``mask``     */
/* unset in the before-word, the owning instance inspected this probe  */
/* (figure 11's balance attribution).  Incrementing one counter per    */
/* pending bit per probe is the scan's dominant cost on early levels   */
/* (most of 64 bits pending, every probe), so the hot loops bin the    */
/* pending *bytes* into 256-wide histograms — 8 increments per word    */
/* per probe regardless of popcount — and ``fold_pending`` expands     */
/* them into per-bit sums afterwards.  Integer sums are order-free,    */
/* so the result is bit-identical to the direct tally.                 */
/* The before-word changes only when a probe contributes new bits —    */
/* rare on scale-free graphs — so the scan batches runs of unchanged   */
/* ``pre`` and adds the run length once per histogram bin instead of   */
/* binning every probe.  Weighted sums are still order-free.           */
static inline void bin_pending_w(uint64_t pend, int64_t *hist,
                                 int64_t weight) {
    for (int bp = 0; bp < 8; bp++)
        hist[bp * 256 + (int)((pend >> (bp * 8)) & 0xFF)] += weight;
}

static void fold_pending(const int64_t *hist, int64_t lanes,
                         int64_t *insp) {
    for (int64_t l = 0; l < lanes; l++)
        for (int bp = 0; bp < 8; bp++) {
            const int64_t *h = hist + (l * 8 + bp) * 256;
            int64_t *dst = insp + l * 64 + bp * 8;
            for (int v = 1; v < 256; v++) {
                int64_t c = h[v];
                if (!c) continue;
                for (int b = 0; b < 8; b++)
                    if ((v >> b) & 1) dst[b] += c;
            }
        }
}

/* Fallback when the histogram buffer cannot be allocated. */
static inline void tally_pending_w(uint64_t pend, int64_t bit0,
                                   int64_t weight, int64_t *insp) {
    while (pend) {
        int b = __builtin_ctzll(pend);
        insp[bit0 + b] += weight;
        pend &= pend - 1;
    }
}

/* ------------------------------------------------------------------ */
/* Per-vertex bottom-up OR scan — the fused single-pass restatement of */
/* kernels/bottomup.bucketed_or_scan, with true per-vertex early       */
/* termination (break out of the neighbor loop on the first round      */
/* whose accumulated word reaches the target).                         */
/*                                                                    */
/* Outputs and tallies match the vectorized passes exactly:            */
/*   probes[i] = rounds executed; acc[i] = state|contributions at      */
/*   retirement; done[i] = reached the full target; inspections[b] +=  */
/*   one per (position, executed round) whose before-word has bit b    */
/*   unset (masked bits only).                                         */
/* ------------------------------------------------------------------ */
int64_t repro_or_scan(const int64_t *indices, const int64_t *starts,
                      const int64_t *ends, int64_t m,
                      const uint64_t *state, const uint64_t *lane_mask,
                      const uint64_t *target, int early_termination,
                      const uint64_t *base, const int64_t *dirty_pos,
                      const uint64_t *saved, int src_mode, int64_t lanes,
                      int64_t *probes, uint64_t *acc, uint8_t *done,
                      int64_t *inspections) {
    int64_t total = 0;
    int64_t *hist = calloc((size_t)(lanes * 8 * 256), sizeof(int64_t));
    if (lanes == 1) {
        uint64_t mask = lane_mask[0], tgt = target[0];
        for (int64_t i = 0; i < m; i++) {
            uint64_t pre = state[i];
            if (early_termination && pre == tgt) {
                done[i] = 1;
                continue;
            }
            int64_t deg = ends[i] - starts[i];
            if (deg == 0) continue;
            const int64_t *nb = indices + starts[i];
            /* ``pre`` (hence the pending word) only moves when a probe */
            /* contributes new bits, so rounds between changes share    */
            /* one weighted histogram update; the early-exit test also  */
            /* only needs to run on change (pre grows monotonically).   */
            uint64_t pend = mask & ~pre;
            int64_t runw = 0;
            int64_t r = 0;
            for (; r < deg; r++) {
                runw++;
                int64_t v = nb[r];
                int64_t p = (src_mode == 1) ? dirty_pos[v] : -1;
                uint64_t w = (p >= 0) ? saved[p] : base[v];
                uint64_t np = pre | (w & mask);
                if (np != pre) {
                    if (pend) {
                        if (hist) bin_pending_w(pend, hist, runw);
                        else tally_pending_w(pend, 0, runw, inspections);
                    }
                    runw = 0;
                    pre = np;
                    pend = mask & ~pre;
                    if (early_termination && pre == tgt) {
                        r++;
                        done[i] = 1;
                        break;
                    }
                }
            }
            if (runw && pend) {
                if (hist) bin_pending_w(pend, hist, runw);
                else tally_pending_w(pend, 0, runw, inspections);
            }
            probes[i] = r;
            total += r;
            acc[i] = pre;
        }
        if (hist) {
            fold_pending(hist, 1, inspections);
            free(hist);
        }
        return total;
    }
    uint64_t prebuf[64];
    for (int64_t i = 0; i < m; i++) {
        const uint64_t *st = state + i * lanes;
        int full = 1;
        for (int64_t l = 0; l < lanes; l++) {
            prebuf[l] = st[l];
            if (st[l] != target[l]) full = 0;
        }
        if (early_termination && full) {
            done[i] = 1;
            continue;
        }
        int64_t deg = ends[i] - starts[i];
        if (deg == 0) continue;
        const int64_t *nb = indices + starts[i];
        /* Same run batching as the single-lane loop: pending words are */
        /* recomputed (and flushed with the run length) only on change. */
        uint64_t pendbuf[64];
        for (int64_t l = 0; l < lanes; l++)
            pendbuf[l] = lane_mask[l] & ~prebuf[l];
        int64_t runw = 0;
        int64_t r = 0;
        for (; r < deg; r++) {
            runw++;
            const uint64_t *w = fetch_row(base, dirty_pos, saved, src_mode,
                                          nb[r], lanes);
            int moved = 0;
            full = 1;
            for (int64_t l = 0; l < lanes; l++) {
                uint64_t np = prebuf[l] | (w[l] & lane_mask[l]);
                if (np != prebuf[l]) {
                    moved = 1;
                    prebuf[l] = np;
                }
                if (prebuf[l] != target[l]) full = 0;
            }
            if (moved) {
                for (int64_t l = 0; l < lanes; l++) {
                    if (!pendbuf[l]) continue;
                    if (hist) bin_pending_w(pendbuf[l], hist + l * 8 * 256,
                                            runw);
                    else tally_pending_w(pendbuf[l], l * 64, runw,
                                         inspections);
                    pendbuf[l] = lane_mask[l] & ~prebuf[l];
                }
                runw = 0;
                if (early_termination && full) {
                    r++;
                    done[i] = 1;
                    break;
                }
            }
        }
        if (runw) {
            for (int64_t l = 0; l < lanes; l++) {
                if (!pendbuf[l]) continue;
                if (hist) bin_pending_w(pendbuf[l], hist + l * 8 * 256,
                                        runw);
                else tally_pending_w(pendbuf[l], l * 64, runw, inspections);
            }
        }
        probes[i] = r;
        total += r;
        uint64_t *dst = acc + i * lanes;
        for (int64_t l = 0; l < lanes; l++) dst[l] = prebuf[l];
    }
    if (hist) {
        fold_pending(hist, lanes, inspections);
        free(hist);
    }
    return total;
}

/* ------------------------------------------------------------------ */
/* Round-major probed-neighbor stream: all round-0 probes in position  */
/* order, then round 1, ... — a counting sort over rounds, replacing   */
/* the stable argsort in kernels/bottomup.round_major_probes.          */
/* ``round_base`` must hold max_rounds zeroed slots.                   */
/* ------------------------------------------------------------------ */
void repro_round_major(const int64_t *indices, const int64_t *starts,
                       const int64_t *probes, int64_t m,
                       int64_t max_rounds, int64_t *round_base,
                       int64_t *out) {
    for (int64_t i = 0; i < m; i++)
        for (int64_t r = 0; r < probes[i]; r++) round_base[r]++;
    int64_t running = 0;
    for (int64_t r = 0; r < max_rounds; r++) {
        int64_t c = round_base[r];
        round_base[r] = running;
        running += c;
    }
    for (int64_t i = 0; i < m; i++) {
        const int64_t *nb = indices + starts[i];
        for (int64_t r = 0; r < probes[i]; r++)
            out[round_base[r]++] = nb[r];
    }
}

/* ------------------------------------------------------------------ */
/* Warp-coalesced transaction counting (gpusim/memory.py): thread i    */
/* accesses element idx[i]; consecutive ``warp`` threads form one      */
/* request, and accesses landing in the same ``txn_bytes`` segment     */
/* coalesce.  Counts = distinct segment lines per warp (identical to   */
/* the sort-based numpy formulation; indices are non-negative, so C    */
/* truncating division equals floor division).  warp <= 64.            */
/*                                                                    */
/* Per warp, only *distinct* lines are kept in a small buffer scanned */
/* newest-first: adjacency/probe streams are run-heavy, so duplicates */
/* usually match immediately and each element costs O(distinct), not  */
/* O(warp log warp).                                                  */
/* ------------------------------------------------------------------ */
typedef struct {
    int64_t dbuf[64];
    int64_t nd;      /* distinct lines in the open warp */
    int64_t k;       /* threads consumed in the open warp */
    int64_t warp;
    int64_t txns;
    int64_t reqs;
} warp_acc;

static inline void warp_push(warp_acc *a, int64_t line) {
    if (a->k == a->warp) {
        a->txns += a->nd;
        a->reqs++;
        a->k = 0;
        a->nd = 0;
    }
    a->k++;
    for (int64_t j = a->nd - 1; j >= 0; j--)
        if (a->dbuf[j] == line) return;
    a->dbuf[a->nd++] = line;
}

static inline void warp_flush(warp_acc *a, int64_t *out) {
    if (a->k) {
        a->txns += a->nd;
        a->reqs++;
    }
    out[0] = a->txns;
    out[1] = a->reqs;
}

/* (idx * element_bytes) / txn_bytes is a per-element 64-bit division; */
/* when element_bytes divides txn_bytes into a power of two (8-byte    */
/* entries in 128-byte transactions — the only shapes the simulator    */
/* uses) the quotient is a shift of the non-negative index.  Returns   */
/* the shift, or -1 to keep the division.                              */
static inline int line_shift(int64_t element_bytes, int64_t txn_bytes) {
    if (element_bytes <= 0 || txn_bytes % element_bytes) return -1;
    int64_t d = txn_bytes / element_bytes;
    if (d & (d - 1)) return -1;
    return __builtin_ctzll((uint64_t)d);
}

void repro_coalesce(const int64_t *idx, int64_t m, int64_t element_bytes,
                    int64_t txn_bytes, int64_t warp, int64_t *out) {
    warp_acc acc = {{0}, 0, 0, warp, 0, 0};
    int shift = line_shift(element_bytes, txn_bytes);
    if (shift >= 0)
        for (int64_t i = 0; i < m; i++)
            warp_push(&acc, idx[i] >> shift);
    else
        for (int64_t i = 0; i < m; i++)
            warp_push(&acc, (idx[i] * element_bytes) / txn_bytes);
    warp_flush(&acc, out);
}

/* ------------------------------------------------------------------ */
/* Fused bottom-up probe pricing: the round-major probed-neighbor      */
/* stream (all round-0 probes in position order, then round 1, ...)    */
/* fed straight through the warp accumulator, without materializing    */
/* the stream.  ``live`` is caller-provided int64 scratch of size m.   */
/* Identical to repro_round_major + repro_coalesce over its output.    */
/* ------------------------------------------------------------------ */
void repro_round_coalesce(const int64_t *indices, const int64_t *starts,
                          const int64_t *probes, int64_t m,
                          int64_t element_bytes, int64_t txn_bytes,
                          int64_t warp, int64_t *live, int64_t *out) {
    warp_acc acc = {{0}, 0, 0, warp, 0, 0};
    int shift = line_shift(element_bytes, txn_bytes);
    int64_t nlive = 0;
    for (int64_t i = 0; i < m; i++)
        if (probes[i] > 0) live[nlive++] = i;
    int64_t r = 0;
    while (nlive) {
        int64_t w = 0;
        for (int64_t li = 0; li < nlive; li++) {
            int64_t i = live[li];
            int64_t v = indices[starts[i] + r];
            warp_push(&acc, shift >= 0 ? (v >> shift)
                                       : (v * element_bytes) / txn_bytes);
            if (probes[i] > r + 1) live[w++] = i;
        }
        nlive = w;
        r++;
    }
    warp_flush(&acc, out);
}

/* ------------------------------------------------------------------ */
/* Vertex-major depth write: for every set bit j of diff row i,        */
/* depths[rows[i], j] += add — the compiled form of the unpack /       */
/* multiply / fancy-add sequence in core/bitwise.py's depth            */
/* extraction.  elem_size selects the dtype rung of the narrow-depth   */
/* ladder; unsigned arithmetic stores the same two's-complement bytes  */
/* the numpy in-place add produces.                                    */
/* ------------------------------------------------------------------ */
void repro_depth_update(const int64_t *rows, const uint64_t *diff,
                        int64_t m, int64_t lanes, int64_t group_size,
                        void *depths, int64_t stride, int elem_size,
                        int64_t add) {
    for (int64_t i = 0; i < m; i++) {
        int64_t row = rows[i];
        for (int64_t l = 0; l < lanes; l++) {
            uint64_t w = diff[i * lanes + l];
            int64_t b0 = l * 64;
            while (w) {
                int b = __builtin_ctzll(w);
                int64_t j = b0 + b;
                if (j < group_size) {
                    if (elem_size == 1)
                        ((uint8_t *)depths)[row * stride + j] +=
                            (uint8_t)add;
                    else if (elem_size == 2)
                        ((uint16_t *)depths)[row * stride + j] +=
                            (uint16_t)add;
                    else
                        ((uint32_t *)depths)[row * stride + j] +=
                            (uint32_t)add;
                }
                w &= w - 1;
            }
        }
    }
}

/* ------------------------------------------------------------------ */
/* Tiled widening transpose: dst[g*n + v] = (int32)src[v*gs + g] for   */
/* the final (vertices, group) -> (group, vertices) depth              */
/* materialization.  elem_size selects the narrow-dtype rung; values   */
/* are signed (UNVISITED = -1), so the casts sign-extend.              */
/* ------------------------------------------------------------------ */
void repro_transpose_i32(const void *src, int64_t n, int64_t gs,
                         int elem_size, int32_t *dst) {
    const int64_t block = 64;
    for (int64_t v0 = 0; v0 < n; v0 += block) {
        int64_t v1 = v0 + block < n ? v0 + block : n;
        for (int64_t g = 0; g < gs; g++) {
            int32_t *out = dst + g * n;
            if (elem_size == 1) {
                const int8_t *in = (const int8_t *)src;
                for (int64_t v = v0; v < v1; v++)
                    out[v] = (int32_t)in[v * gs + g];
            } else if (elem_size == 2) {
                const int16_t *in = (const int16_t *)src;
                for (int64_t v = v0; v < v1; v++)
                    out[v] = (int32_t)in[v * gs + g];
            } else {
                const int32_t *in = (const int32_t *)src;
                for (int64_t v = v0; v < v1; v++)
                    out[v] = in[v * gs + g];
            }
        }
    }
}

/* ------------------------------------------------------------------ */
/* First-hit scan over an int32 depth table: probe in-neighbors until  */
/* one has 0 <= depth <= level (a visited parent from an earlier       */
/* level).  inst == NULL reads the table as a single row.              */
/* ------------------------------------------------------------------ */
int64_t repro_hit_scan_depth(const int64_t *indices, const int64_t *starts,
                             const int64_t *degrees, int64_t m,
                             const int32_t *depths, int64_t row_stride,
                             const int64_t *inst, int64_t level,
                             int64_t *probes, uint8_t *found) {
    int64_t total = 0;
    for (int64_t i = 0; i < m; i++) {
        const int32_t *row =
            depths + (inst ? inst[i] * row_stride : 0);
        const int64_t *nb = indices + starts[i];
        int64_t deg = degrees[i];
        int64_t r = 0;
        for (; r < deg; r++) {
            int32_t d = row[nb[r]];
            if (d >= 0 && d <= level) {
                r++;
                found[i] = 1;
                break;
            }
        }
        probes[i] = r;
        total += r;
    }
    return total;
}

/* ------------------------------------------------------------------ */
/* Packed-bit column sums: out[j] += number of rows with bit j set.    */
/* Byte-histogram formulation (one 256-bin histogram per byte          */
/* position), the same transformation kernels/bookkeeping uses.        */
/* ``hist`` must hold lanes*8*256 zeroed int64 slots.                  */
/* ------------------------------------------------------------------ */
void repro_per_bit_counts(const uint64_t *words, int64_t rows,
                          int64_t lanes, int64_t *hist, int64_t *out) {
    const uint8_t *bytes = (const uint8_t *)words;
    int64_t width = lanes * 8;
    for (int64_t i = 0; i < rows; i++) {
        const uint8_t *row = bytes + i * width;
        for (int64_t j = 0; j < width; j++) hist[j * 256 + row[j]]++;
    }
    for (int64_t j = 0; j < width; j++) {
        const int64_t *h = hist + j * 256;
        for (int b = 0; b < 8; b++) {
            int64_t acc = 0;
            for (int v = 0; v < 256; v++)
                if ((v >> b) & 1) acc += h[v];
            out[j * 8 + b] += acc;
        }
    }
}

/* Weighted variant: out[j] += sum of weights over rows with bit j     */
/* set.  Integer accumulation matches the numpy float64 path exactly   */
/* for any weight total below 2**53 (degree sums always are).          */
void repro_per_bit_weighted(const uint64_t *words, const int64_t *weights,
                            int64_t rows, int64_t lanes, int64_t *hist,
                            int64_t *out) {
    const uint8_t *bytes = (const uint8_t *)words;
    int64_t width = lanes * 8;
    for (int64_t i = 0; i < rows; i++) {
        const uint8_t *row = bytes + i * width;
        int64_t w = weights[i];
        for (int64_t j = 0; j < width; j++) hist[j * 256 + row[j]] += w;
    }
    for (int64_t j = 0; j < width; j++) {
        const int64_t *h = hist + j * 256;
        for (int b = 0; b < 8; b++) {
            int64_t acc = 0;
            for (int v = 0; v < 256; v++)
                if ((v >> b) & 1) acc += h[v];
            out[j * 8 + b] += acc;
        }
    }
}
"""

#: Bump when the C ABI changes so stale cached libraries are rebuilt.
_ABI_VERSION = 2


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        return Path(override)
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return Path(base) / "repro-native"


def _source_tag() -> str:
    digest = hashlib.sha256(
        f"{_ABI_VERSION}:{C_SOURCE}".encode()
    ).hexdigest()
    return digest[:16]


def _compiler() -> Optional[str]:
    for cc in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if not cc:
            continue
        try:
            subprocess.run(
                [cc, "--version"],
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
                check=True,
            )
            return cc
        except (OSError, subprocess.CalledProcessError):
            continue
    return None


def build_library(verbose: bool = False) -> Optional[Path]:
    """Compile (or reuse) the cached shared library; None on failure."""
    cache = _cache_dir()
    lib_path = cache / f"repro_native_{_source_tag()}.so"
    if lib_path.exists():
        return lib_path
    cc = _compiler()
    if cc is None:
        return None
    try:
        cache.mkdir(parents=True, exist_ok=True)
        with tempfile.TemporaryDirectory(dir=str(cache)) as tmp:
            src = Path(tmp) / "repro_native.c"
            src.write_text(C_SOURCE)
            tmp_lib = Path(tmp) / lib_path.name
            base_cmd = [cc, "-O3", "-shared", "-fPIC", "-std=c99"]
            for extra in (["-march=native"], []):
                cmd = base_cmd + extra + ["-o", str(tmp_lib), str(src)]
                proc = subprocess.run(
                    cmd,
                    stdout=subprocess.DEVNULL,
                    stderr=subprocess.PIPE,
                )
                if proc.returncode == 0:
                    break
            else:
                if verbose:
                    print(proc.stderr.decode(errors="replace"))
                return None
            # Atomic publish: another process may be building concurrently.
            os.replace(tmp_lib, lib_path)
    except OSError:
        return None
    return lib_path


def load_library() -> Optional[ctypes.CDLL]:
    """Build if needed, load, and declare prototypes; None on failure."""
    lib_path = build_library()
    if lib_path is None:
        return None
    try:
        lib = ctypes.CDLL(str(lib_path))
    except OSError:
        return None
    i64 = ctypes.c_int64
    p = ctypes.c_void_p
    lib.repro_unique_targets.restype = i64
    lib.repro_unique_targets.argtypes = [p, i64, p, p]
    lib.repro_scatter_or.restype = None
    lib.repro_scatter_or.argtypes = [p, p, p, p, i64, i64, i64, ctypes.c_int]
    lib.repro_or_scan.restype = i64
    lib.repro_or_scan.argtypes = [
        p, p, p, i64, p, p, p, ctypes.c_int,
        p, p, p, ctypes.c_int, i64, p, p, p, p,
    ]
    lib.repro_round_major.restype = None
    lib.repro_round_major.argtypes = [p, p, p, i64, i64, p, p]
    lib.repro_coalesce.restype = None
    lib.repro_coalesce.argtypes = [p, i64, i64, i64, i64, p]
    lib.repro_round_coalesce.restype = None
    lib.repro_round_coalesce.argtypes = [p, p, p, i64, i64, i64, i64, p, p]
    lib.repro_depth_update.restype = None
    lib.repro_depth_update.argtypes = [
        p, p, i64, i64, i64, p, i64, ctypes.c_int, i64,
    ]
    lib.repro_transpose_i32.restype = None
    lib.repro_transpose_i32.argtypes = [p, i64, i64, ctypes.c_int, p]
    lib.repro_hit_scan_depth.restype = i64
    lib.repro_hit_scan_depth.argtypes = [p, p, p, i64, p, i64, p, i64, p, p]
    lib.repro_per_bit_counts.restype = None
    lib.repro_per_bit_counts.argtypes = [p, i64, i64, p, p]
    lib.repro_per_bit_weighted.restype = None
    lib.repro_per_bit_weighted.argtypes = [p, p, i64, i64, p, p]
    return lib
