"""Numba provider: ``@njit(cache=True)`` over the Python kernels.

Importing this module raises :class:`ImportError` when Numba is not
installed; provider resolution in :mod:`repro.native` treats that as
"numba unavailable" and falls through to the C-extension provider.
The jitted functions share their source with the pure-Python provider
(:mod:`repro.native._pykernels`), so the equivalence suite that runs
against the ``python`` provider covers exactly the loops Numba
compiles.

``cache=True`` persists the compiled machine code next to the package
(or ``NUMBA_CACHE_DIR``), so warm-up cost is paid once per source
revision rather than once per process.
"""

from __future__ import annotations

import numba

from repro.native import _pykernels

name = "numba"

_JIT = numba.njit(cache=True, fastmath=False)

unique_targets = _JIT(_pykernels.unique_targets)
scatter_or = _JIT(_pykernels.scatter_or)
or_scan = _JIT(_pykernels.or_scan)
coalesce = _JIT(_pykernels.coalesce)
round_coalesce = _JIT(_pykernels.round_coalesce)
depth_update = _JIT(_pykernels.depth_update)
transpose_i32 = _JIT(_pykernels.transpose_i32)
round_major = _JIT(_pykernels.round_major)
hit_scan_depth = _JIT(_pykernels.hit_scan_depth)
per_bit_counts = _JIT(_pykernels.per_bit_counts)
per_bit_weighted = _JIT(_pykernels.per_bit_weighted)
