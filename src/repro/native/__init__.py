"""Optional compiled backend for the traversal hot loops.

``repro.native`` gives the hottest :mod:`repro.kernels` primitives —
the scatter-OR edge map, the bottom-up OR/hit scans, the round-major
probe stream, and the per-bit bookkeeping tallies — fused scalar-loop
implementations that run outside the interpreter, selected through the
planner's existing per-level dispatch point
(:data:`repro.plan.types.KERNEL_VARIANTS` gains ``"native"``).

Three interchangeable providers implement one raw interface:

``numba``
    :mod:`repro.native._numba` — ``@njit(cache=True)`` over the Python
    kernels; preferred when Numba is installed.
``cext``
    :mod:`repro.native._cext` — the same loops as a C translation unit
    compiled on demand with the host C compiler and bound via ctypes;
    the fallback when Numba is absent but a compiler exists.
``python``
    :mod:`repro.native._pykernels` — the uncompiled Numba source;
    never auto-selected (slower than numpy), but selectable for tests
    so the exact loops the JIT compiles are exercised everywhere.

Everything is *optional*: when no provider resolves (pure-python
install, no compiler) the numpy kernels keep running with zero
behavior change, and all variants are bit-identical in results and
simulated counters — only host wall-clock differs.

Environment knobs:

``REPRO_NATIVE=0``
    Disable the native backend entirely (``kernel="auto"`` resolves to
    the numpy variants; explicit ``kernel="native"`` plans fall back
    with a one-time warning).
``REPRO_NATIVE_BACKEND={numba,cext,python}``
    Force one provider instead of the ``numba`` → ``cext`` default
    resolution order.
``REPRO_NATIVE_CACHE=<dir>``
    Where the C provider caches its compiled shared library.
"""

from __future__ import annotations

import contextlib
import os
import time
import warnings
from typing import Dict, Optional, Tuple

import numpy as np

__all__ = [
    "NativeUnavailable",
    "available",
    "enabled",
    "backend_name",
    "disabled_reason",
    "refresh",
    "force_backend",
    "effective",
    "resolve_kernel",
    "warmup",
    "capability_report",
    "unique_targets",
    "scatter_or",
    "or_scan",
    "round_major_probes",
    "coalesced_transactions",
    "bottom_up_coalesced",
    "depth_update",
    "materialize_depths",
    "hit_scan_depth",
    "per_bit_counts",
    "per_bit_weighted",
]


class NativeUnavailable(RuntimeError):
    """Raised when a native op is invoked with no resolved provider."""


_BACKENDS = ("numba", "cext", "python")

#: Resolution state: ``_cache["provider"]`` is the resolved provider
#: module (or None), ``_cache["reason"]`` explains a None.
_cache: Dict[str, object] = {}
#: Loaded provider modules by name (independent of resolution).
_loaded: Dict[str, object] = {}
#: Test/bench override: None (resolve normally), ``"off"``, or a name.
_override: Optional[str] = None
#: Zeroed uint8 scratch for unique-target flags, keyed by vertex count.
#: Invariant: all-zero between calls (the kernels clear what they set).
_flag_cache: Dict[int, np.ndarray] = {}
_warm_seconds: Optional[float] = None
_warned_fallback = False

_EMPTY_I64 = np.empty(0, dtype=np.int64)
_EMPTY_U64 = np.empty((0, 1), dtype=np.uint64)


def _truthy(value: str) -> bool:
    return value.strip().lower() not in ("0", "false", "off", "no", "")


def _load_backend(name: str):
    if name in _loaded:
        return _loaded[name]
    if name == "numba":
        from repro.native import _numba as mod
    elif name == "cext":
        from repro.native import _cext as mod
    elif name == "python":
        from repro.native import _pykernels as mod
    else:
        raise ImportError(f"unknown native backend {name!r}")
    _loaded[name] = mod
    return mod


def _resolve():
    if "provider" in _cache:
        return _cache["provider"]
    provider = None
    reason = None
    env = os.environ.get("REPRO_NATIVE")
    if env is not None and not _truthy(env):
        reason = f"disabled via REPRO_NATIVE={env}"
    else:
        forced = os.environ.get("REPRO_NATIVE_BACKEND")
        order = (forced,) if forced else ("numba", "cext")
        errors = []
        for name in order:
            try:
                provider = _load_backend(name)
                break
            except ImportError as exc:
                errors.append(f"{name}: {exc}")
        if provider is None:
            reason = "no provider available ({})".format("; ".join(errors))
    _cache["provider"] = provider
    _cache["reason"] = reason
    return provider


def _provider():
    if _override is not None:
        if _override == "off":
            return None
        return _load_backend(_override)
    return _resolve()


def _require():
    provider = _provider()
    if provider is None:
        raise NativeUnavailable(
            disabled_reason() or "no native backend resolved"
        )
    return provider


def available() -> bool:
    """Whether a compiled provider resolved (env gates included)."""
    return _provider() is not None


#: ``enabled`` is the public name engines test; identical to
#: :func:`available` (the env escape hatch folds into resolution).
enabled = available


def backend_name() -> Optional[str]:
    """Resolved provider name (``numba``/``cext``/``python``) or None."""
    provider = _provider()
    return provider.name if provider is not None else None


def disabled_reason() -> Optional[str]:
    """Why no provider resolved (None when one did)."""
    if _override == "off":
        return "disabled via force_backend('off')"
    _resolve()
    return _cache.get("reason")  # type: ignore[return-value]


def refresh() -> None:
    """Drop the resolution cache (e.g. after changing REPRO_NATIVE)."""
    global _warned_fallback
    _cache.clear()
    _warned_fallback = False


@contextlib.contextmanager
def force_backend(name: Optional[str]):
    """Pin provider resolution for the enclosed block.

    ``name`` is a provider (``"numba"``/``"cext"``/``"python"``),
    ``"off"`` to disable the backend entirely (the numpy-only
    behavior), or None to restore normal resolution.  Used by the
    equivalence tests to run one suite per provider and by the
    benchmark harness to time the numpy side without uninstalling
    anything.
    """
    global _override
    if name is not None and name != "off" and name not in _BACKENDS:
        raise ValueError(f"unknown native backend {name!r}")
    previous = _override
    _override = name
    try:
        yield
    finally:
        _override = previous


def _supports_lanes(lanes: int) -> bool:
    # The C provider's scan prefix buffer is fixed at 64 lanes (4096
    # instances); wider groups fall back to the numpy kernels.
    provider = _provider()
    if provider is None:
        return False
    return provider.name != "cext" or lanes <= 64


def effective(kernel: str, lanes: int = 1) -> bool:
    """Whether this decision's ``kernel`` should run natively here.

    ``"auto"`` resolves to native-when-available; an explicit
    ``"native"`` that cannot run (plan recorded on a native host,
    replayed on a numpy-only install) falls back with a one-time
    warning — replay stays bit-identical because the variants are.
    """
    global _warned_fallback
    if kernel == "native":
        if _supports_lanes(lanes):
            return True
        if not _warned_fallback:
            _warned_fallback = True
            warnings.warn(
                "plan requested kernel='native' but no native backend is "
                "available ({}); falling back to the numpy kernels "
                "(results are bit-identical)".format(
                    disabled_reason() or "unsupported configuration"
                ),
                RuntimeWarning,
                stacklevel=2,
            )
        return False
    return kernel == "auto" and _supports_lanes(lanes)


def resolve_kernel(kernel: str = "auto", lanes: int = 1) -> str:
    """The variant name ``kernel`` executes as on this host."""
    if effective(kernel, lanes):
        return "native"
    if kernel in ("auto", "native"):
        return "flat" if lanes == 1 else "generic"
    return kernel


# ----------------------------------------------------------------------
# Array-level ops (callers must have checked ``effective``/``enabled``)
# ----------------------------------------------------------------------
def _contig(arr: np.ndarray, dtype) -> np.ndarray:
    return np.ascontiguousarray(arr, dtype=dtype)


def _rows2d(words: np.ndarray) -> np.ndarray:
    """``(rows, lanes)`` uint64 view (1-D inputs become one lane)."""
    words = _contig(words, np.uint64)
    return words.reshape(-1, 1) if words.ndim == 1 else words


def unique_targets(targets: np.ndarray, num_vertices: int) -> np.ndarray:
    """Sorted unique targets — ``np.unique`` via flags, no argsort."""
    provider = _require()
    targets = _contig(targets, np.int64)
    if targets.size == 0:
        return np.empty(0, dtype=np.int64)
    flags = _flag_cache.get(num_vertices)
    if flags is None:
        flags = np.zeros(num_vertices, dtype=np.uint8)
        _flag_cache[num_vertices] = flags
    out = np.empty(targets.size, dtype=np.int64)
    count = provider.unique_targets(targets, flags, out)
    return out[:count]


def scatter_or(
    out: np.ndarray,
    targets: np.ndarray,
    words: np.ndarray,
    word_index: Optional[np.ndarray] = None,
    repeats: Optional[np.ndarray] = None,
) -> None:
    """Fused in-place ``out[targets[i]] |= words[row(i)]``.

    ``repeats`` spreads word row ``r`` over the next ``repeats[r]``
    targets (the CSR edge-map, replacing a materialized ``np.repeat``);
    ``word_index`` maps pair ``i`` to word row ``word_index[i]``;
    with neither, pair ``i`` uses word row ``i``.
    """
    provider = _require()
    out2d = _rows2d(out)
    targets = _contig(targets, np.int64)
    words2d = _rows2d(words)
    if repeats is not None:
        index, mode = _contig(repeats, np.int64), 2
    elif word_index is not None:
        index, mode = _contig(word_index, np.int64), 1
    else:
        index, mode = _EMPTY_I64, 0
    provider.scatter_or(out2d, targets, words2d, index, mode)


def or_scan(
    indices: np.ndarray,
    starts: np.ndarray,
    ends: np.ndarray,
    state: np.ndarray,
    lane_mask: np.ndarray,
    target: np.ndarray,
    early_termination: bool,
    source: Tuple,
    inspections_out: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fused bottom-up OR scan; returns ``(probes, acc, done)``.

    ``source`` names the ``BSA_k`` fetch without a per-row callable:
    ``("direct", base)`` reads rows of ``base`` (the live array when
    nothing is dirty, or a full snapshot); ``("dirty", base,
    dirty_pos, saved[, rows])`` patches rows with ``dirty_pos[v] >= 0``
    from the stash — :meth:`LevelWorkspace.snapshot_source
    <repro.kernels.workspace.LevelWorkspace.snapshot_source>` builds
    both forms.  When the aligned ``rows`` list is present the stash is
    bulk-swapped into ``base`` around a direct-mode scan (and restored
    after); without it every probe gathers ``dirty_pos``.  Per-instance
    inspection tallies are added to ``inspections_out`` exactly as the
    numpy scan counts them.
    """
    provider = _require()
    state = _rows2d(state)
    lanes = state.shape[1]
    base = _rows2d(source[1])
    dirty_pos, saved, src_mode = _EMPTY_I64, _EMPTY_U64, 0
    swap_rows = swap_old = None
    if source[0] != "direct":
        if len(source) > 4:
            # Bulk-patch the stash into the live array for the scan's
            # duration: pre-level values occupy exactly the dirty rows,
            # so the scan runs in direct mode — one gather per probe
            # instead of the dependent dirty_pos + stash pair — and the
            # live values are restored afterwards.
            swap_rows = _contig(source[4], np.int64)
            swap_old = base[swap_rows].copy()
            base[swap_rows] = _rows2d(source[3])
        else:
            dirty_pos = _contig(source[2], np.int64)
            saved = _rows2d(source[3])
            src_mode = 1
    m = starts.shape[0]
    probes = np.zeros(m, dtype=np.int64)
    acc = np.zeros((m, lanes), dtype=np.uint64)
    done = np.zeros(m, dtype=bool)
    pending = np.zeros(lanes * 64, dtype=np.int64)
    try:
        provider.or_scan(
            _contig(indices, np.int64),
            _contig(starts, np.int64),
            _contig(ends, np.int64),
            state,
            _contig(lane_mask, np.uint64),
            _contig(target, np.uint64),
            1 if early_termination else 0,
            base,
            dirty_pos,
            saved,
            src_mode,
            probes,
            acc,
            done,
            pending,
        )
    finally:
        if swap_rows is not None:
            base[swap_rows] = swap_old
    np.add(
        inspections_out,
        pending[: inspections_out.size],
        out=inspections_out,
    )
    return probes, acc, done


def round_major_probes(
    indices: np.ndarray, starts: np.ndarray, probes: np.ndarray
) -> np.ndarray:
    """Round-major probed-neighbor stream (counting sort, no argsort)."""
    provider = _require()
    probes = _contig(probes, np.int64)
    total = int(probes.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    out = np.empty(total, dtype=np.int64)
    round_base = np.zeros(int(probes.max()), dtype=np.int64)
    provider.round_major(
        _contig(indices, np.int64),
        _contig(starts, np.int64),
        probes,
        round_base,
        out,
    )
    return out


def coalesced_transactions(
    element_indices: np.ndarray,
    element_bytes: int,
    transaction_bytes: int,
    warp_size: int,
) -> Tuple[int, int]:
    """Warp-coalesced ``(transactions, requests)`` for an access stream.

    The compiled restatement of
    :meth:`repro.gpusim.memory.MemoryModel.coalesced_transactions` —
    distinct ``transaction_bytes`` segments per ``warp_size`` thread
    group — counting the same values without materializing, padding,
    and sorting the per-warp line grid.  The C provider's warp buffer
    is fixed at 64 threads; callers gate on ``warp_size <= 64``.
    """
    provider = _require()
    indices = _contig(element_indices, np.int64)
    out = np.zeros(2, dtype=np.int64)
    provider.coalesce(
        indices, int(element_bytes), int(transaction_bytes),
        int(warp_size), out,
    )
    return int(out[0]), int(out[1])


def bottom_up_coalesced(
    indices: np.ndarray,
    starts: np.ndarray,
    probes: np.ndarray,
    element_bytes: int,
    transaction_bytes: int,
    warp_size: int,
) -> Tuple[int, int]:
    """Price the round-major probe stream without materializing it.

    ``(transactions, requests)`` identical to
    :func:`round_major_probes` followed by
    :func:`coalesced_transactions` on its output — the stream is
    generated round-by-round inside the kernel and fed straight
    through the warp accumulator.  ``warp_size == 1`` (the CPU model)
    short-circuits to one transaction per probe, matching
    :meth:`MemoryModel.coalesced_transactions
    <repro.gpusim.memory.MemoryModel.coalesced_transactions>`.
    """
    provider = _require()
    probes = _contig(probes, np.int64)
    total = int(probes.sum())
    if total == 0:
        return 0, 0
    if warp_size == 1:
        return total, total
    live = np.empty(probes.size, dtype=np.int64)
    out = np.zeros(2, dtype=np.int64)
    provider.round_coalesce(
        _contig(indices, np.int64),
        _contig(starts, np.int64),
        probes,
        int(element_bytes),
        int(transaction_bytes),
        int(warp_size),
        live,
        out,
    )
    return int(out[0]), int(out[1])


def depth_update(
    depths_vm: np.ndarray,
    changed: np.ndarray,
    diff: np.ndarray,
    value: int,
) -> None:
    """``depths_vm[changed[i], j] += value`` for each set bit j of diff.

    The depth-extraction write of ``core/bitwise.py`` without the
    materialized unpack/astype/multiply temporaries; ``depths_vm``
    stays on whatever rung of the narrow-dtype ladder it is on.
    """
    provider = _require()
    diff2d = _rows2d(diff)
    rows = _contig(changed, np.int64)
    provider.depth_update(
        rows, diff2d, int(depths_vm.shape[1]), depths_vm, int(value)
    )


def materialize_depths(depths_vm: np.ndarray) -> np.ndarray:
    """Widening ``(vertices, group) -> (group, vertices)`` transpose.

    The final depth materialization: returns a C-contiguous int32
    matrix with ``out[g, v] = depths_vm[v, g]``, sign-extending
    whatever rung of the narrow-dtype ladder ``depths_vm`` is on.
    """
    provider = _require()
    src = np.ascontiguousarray(depths_vm)
    out = np.empty((src.shape[1], src.shape[0]), dtype=np.int32)
    provider.transpose_i32(src, out)
    return out


def hit_scan_depth(
    indices: np.ndarray,
    starts: np.ndarray,
    degrees: np.ndarray,
    depths: np.ndarray,
    level: int,
    inst: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """First-hit scan against a depth table; ``(probes, found)``.

    A probe hits when the neighbor's depth satisfies ``0 <= depth <=
    level``.  ``depths`` is ``(group_size, n)`` with ``inst[i]``
    selecting position ``i``'s row, or 1-D for single-source tables.
    """
    provider = _require()
    depths = _contig(depths, np.int32)
    if depths.ndim == 1:
        depths = depths.reshape(1, -1)
    if inst is None:
        inst_arr, use_inst = _EMPTY_I64, 0
    else:
        inst_arr, use_inst = _contig(inst, np.int64), 1
    m = starts.shape[0]
    probes = np.zeros(m, dtype=np.int64)
    found = np.zeros(m, dtype=bool)
    provider.hit_scan_depth(
        _contig(indices, np.int64),
        _contig(starts, np.int64),
        _contig(degrees, np.int64),
        depths,
        inst_arr,
        use_inst,
        int(level),
        probes,
        found,
    )
    return probes, found


def per_bit_counts(words: np.ndarray, group_size: int) -> np.ndarray:
    """Column sums of the packed bit matrix (instance ``j`` → bit ``j``)."""
    provider = _require()
    if words.size == 0:
        return np.zeros(group_size, dtype=np.int64)
    words2d = _rows2d(words)
    out = np.zeros(words2d.shape[1] * 64, dtype=np.int64)
    provider.per_bit_counts(words2d, out)
    return out[:group_size]


def per_bit_weighted(
    words: np.ndarray, weights: np.ndarray, group_size: int
) -> np.ndarray:
    """Weighted column sums: ``out[j] = weights[bit j set].sum()``."""
    provider = _require()
    if words.size == 0:
        return np.zeros(group_size, dtype=np.int64)
    words2d = _rows2d(words)
    out = np.zeros(words2d.shape[1] * 64, dtype=np.int64)
    provider.per_bit_weighted(
        words2d, _contig(weights, np.int64), out
    )
    return out[:group_size]


# ----------------------------------------------------------------------
# Warm-up and capability reporting
# ----------------------------------------------------------------------
def warmup() -> float:
    """Exercise every native op once; returns (cached) elapsed seconds.

    For the Numba provider this triggers (or loads from cache) the JIT
    compilation of every kernel; for the C provider it compiles and
    loads the shared library.  Call once per process before timing
    anything — exec workers warm up on spawn, and the benchmark
    harness excludes this cost explicitly.  Idempotent; a no-op when
    no provider resolves.
    """
    global _warm_seconds
    if _provider() is None:
        return 0.0
    if _warm_seconds is not None:
        return _warm_seconds
    began = time.perf_counter()
    # A 4-vertex cycle: enough structure to touch every code path's
    # signature once (compilation is per-signature, not per-shape).
    indices = np.array([1, 3, 0, 2, 1, 3, 0, 2], dtype=np.int64)
    starts = np.array([0, 2, 4, 6], dtype=np.int64)
    ends = starts + 2
    degrees = np.full(4, 2, dtype=np.int64)
    bsa = np.zeros((4, 1), dtype=np.uint64)
    lane_mask = np.array([3], dtype=np.uint64)
    inspections = np.zeros(2, dtype=np.int64)
    uniq = unique_targets(indices, 4)
    scatter_or(bsa, indices, np.ones((4, 1), dtype=np.uint64), repeats=degrees)
    for source in (
        ("direct", bsa),
        ("dirty", bsa, np.full(4, -1, dtype=np.int64), bsa.copy()),
    ):
        for early_termination in (False, True):
            probes, _, _ = or_scan(
                indices, starts, ends, bsa.copy(), lane_mask, lane_mask,
                early_termination, source, inspections,
            )
    round_major_probes(indices, starts, probes)
    coalesced_transactions(indices, 8, 128, 2)
    bottom_up_coalesced(indices, starts, probes, 8, 128, 2)
    for dtype in (np.int8, np.int16, np.int32):
        depth_update(
            np.full((4, 2), -1, dtype=dtype),
            np.array([0, 2], dtype=np.int64),
            np.array([[1], [2]], dtype=np.uint64),
            3,
        )
        materialize_depths(np.full((4, 2), -1, dtype=dtype))
    depth_rows = np.zeros((2, 4), dtype=np.int32)
    hit_scan_depth(indices, starts, degrees, depth_rows, 0)
    hit_scan_depth(
        indices, starts, degrees, depth_rows, 0,
        inst=np.zeros(4, dtype=np.int64),
    )
    per_bit_counts(bsa, 2)
    per_bit_weighted(bsa, degrees, 2)
    del uniq
    _warm_seconds = time.perf_counter() - began
    return _warm_seconds


def capability_report() -> Dict[str, object]:
    """What the native backend resolved to on this host."""
    from repro.native import _csrc

    try:
        import numba  # noqa: F401

        numba_version: Optional[str] = getattr(
            numba, "__version__", "unknown"
        )
    except ImportError:
        numba_version = None
    provider = _provider()
    return {
        "enabled": provider is not None,
        "backend": provider.name if provider is not None else None,
        "reason": None if provider is not None else disabled_reason(),
        "numba": numba_version,
        "compiler": _csrc._compiler(),
        "auto_kernel": resolve_kernel("auto"),
        "warmup_seconds": _warm_seconds,
    }
