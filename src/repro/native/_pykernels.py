"""Scalar-loop kernels in the Numba ``nopython`` subset.

These functions are the compiled backend's *source of truth* in Python
form: :mod:`repro.native._numba` wraps every one of them in
``numba.njit(cache=True)`` when Numba is importable, and the
``python`` provider runs them as-is — slow, but exercising exactly the
loop structure the JIT compiles, which makes them the testable oracle
for both compiled providers (the C translation unit in
:mod:`repro.native._csrc` restates the same loops in C).

Constraints imposed by nopython mode, kept deliberately:

* signatures take arrays and ints only — optional inputs arrive as a
  mode flag plus a (possibly empty) sentinel array, never ``None``;
* status words are always 2-D ``(rows, lanes)`` uint64 — single-lane
  callers pass ``(rows, 1)`` views (same memory, no copies);
* bit iteration is a shift loop (no ``ctz`` intrinsic in the subset);
* outputs are caller-allocated and written in place, so the three
  providers share one allocation layer.

Semantics mirror the numpy kernel layer bit-for-bit; the authoritative
docstrings live in :mod:`repro.kernels.scatter`,
:mod:`repro.kernels.bottomup`, and :mod:`repro.kernels.bookkeeping`.
"""

from __future__ import annotations

import numpy as np

name = "python"

_ONE = np.uint64(1)
_ZERO = np.uint64(0)


def unique_targets(targets, flags, out):
    """Sorted unique values of ``targets`` into ``out``; returns count.

    ``flags`` (uint8, one slot per possible target) must be all-zero on
    entry; every flag set here is cleared before returning so the
    caller can cache one zeroed buffer across calls.
    """
    count = 0
    for i in range(targets.shape[0]):
        t = targets[i]
        if flags[t] == 0:
            flags[t] = 1
            out[count] = t
            count += 1
    for i in range(count):
        flags[out[i]] = 0
    out[:count].sort()
    return count


def scatter_or(out, targets, words, word_index, mode):
    """Fused ``out[targets[i]] |= words[row(i)]`` over uint64 rows.

    mode 0: ``row(i) = i`` — one word row per target.
    mode 1: ``row(i) = word_index[i]`` — compact word table.
    mode 2: word row ``r`` covers the next ``word_index[r]`` targets
            (the CSR edge-map: ``word_index`` is the frontier degree
            array, replacing the materialized ``np.repeat``).
    """
    lanes = out.shape[1]
    if mode == 2:
        i = 0
        for r in range(words.shape[0]):
            reps = word_index[r]
            for _ in range(reps):
                t = targets[i]
                for lane in range(lanes):
                    out[t, lane] |= words[r, lane]
                i += 1
        return
    for i in range(targets.shape[0]):
        r = word_index[i] if mode == 1 else i
        t = targets[i]
        for lane in range(lanes):
            out[t, lane] |= words[r, lane]


def or_scan(
    indices,
    starts,
    ends,
    state,
    lane_mask,
    target,
    early_termination,
    base,
    dirty_pos,
    saved,
    src_mode,
    probes,
    acc,
    done,
    inspections,
):
    """Per-position bottom-up OR scan with true per-vertex early exit.

    The fused restatement of the vectorized passes in
    :func:`repro.kernels.bottomup.bucketed_or_scan`: position ``i``
    accumulates ``pre |= fetch(nb_r) & lane_mask`` neighbor by
    neighbor, retiring on the first round whose prefix reaches
    ``target`` (when ``early_termination``) or after its whole list.
    ``src_mode`` selects the ``BSA_k`` fetch: 0 reads ``base`` rows
    directly (live array or full snapshot), 1 patches rows with
    ``dirty_pos[v] >= 0`` from the ``saved`` stash.

    Outputs match the numpy passes exactly: ``probes[i]`` rounds
    executed, ``acc[i]`` the full prefix at retirement (zeros for
    skipped positions), ``done[i]`` whether the target was reached, and
    ``inspections[b] += 1`` per (position, executed round) whose
    before-word has tracked bit ``b`` unset.  ``inspections`` must span
    the full ``lanes * 64`` bit width.  Returns total probes.
    """
    m = starts.shape[0]
    lanes = state.shape[1]
    pre = np.empty(lanes, dtype=np.uint64)
    total = 0
    for i in range(m):
        full = True
        for lane in range(lanes):
            pre[lane] = state[i, lane]
            if pre[lane] != target[lane]:
                full = False
        if early_termination != 0 and full:
            done[i] = True
            continue
        deg = ends[i] - starts[i]
        if deg == 0:
            continue
        s = starts[i]
        r = 0
        while r < deg:
            for lane in range(lanes):
                pend = lane_mask[lane] & ~pre[lane]
                b = lane * 64
                while pend != _ZERO:
                    if pend & _ONE != _ZERO:
                        inspections[b] += 1
                    pend >>= _ONE
                    b += 1
            v = indices[s + r]
            p = dirty_pos[v] if src_mode == 1 else -1
            full = True
            for lane in range(lanes):
                w = saved[p, lane] if p >= 0 else base[v, lane]
                pre[lane] |= w & lane_mask[lane]
                if pre[lane] != target[lane]:
                    full = False
            r += 1
            if early_termination != 0 and full:
                done[i] = True
                break
        probes[i] = r
        total += r
        for lane in range(lanes):
            acc[i, lane] = pre[lane]
    return total


def coalesce(indices, element_bytes, txn_bytes, warp, out):
    """Warp-coalesced transaction counting over an access stream.

    Thread ``i`` accesses element ``indices[i]``; consecutive ``warp``
    threads form one request, and accesses landing in the same
    ``txn_bytes`` segment coalesce into one transaction.  Writes
    ``out[0] = transactions``, ``out[1] = requests`` — identical to the
    sort-based counting in
    :meth:`repro.gpusim.memory.MemoryModel.coalesced_transactions`
    (indices are non-negative array offsets, so integer division
    matches numpy's floor division).
    """
    m = indices.shape[0]
    dbuf = np.empty(warp, dtype=np.int64)
    nd = 0
    k = 0
    txns = 0
    reqs = 0
    for i in range(m):
        line = (indices[i] * element_bytes) // txn_bytes
        if k == warp:
            txns += nd
            reqs += 1
            k = 0
            nd = 0
        k += 1
        seen = False
        for j in range(nd - 1, -1, -1):
            if dbuf[j] == line:
                seen = True
                break
        if not seen:
            dbuf[nd] = line
            nd += 1
    if k > 0:
        txns += nd
        reqs += 1
    out[0] = txns
    out[1] = reqs


def round_coalesce(
    indices, starts, probes, element_bytes, txn_bytes, warp, live, out
):
    """Fused bottom-up probe pricing without the materialized stream.

    Walks the round-major probed-neighbor stream — all round-0 probes
    in position order, then round 1, ... — feeding each address through
    the same warp-coalescing count as :func:`coalesce`.  ``live`` is
    int64 scratch of ``probes.shape[0]`` slots.  Identical to
    :func:`round_major` followed by :func:`coalesce` on its output.
    """
    m = probes.shape[0]
    dbuf = np.empty(warp, dtype=np.int64)
    nd = 0
    k = 0
    txns = 0
    reqs = 0
    nlive = 0
    for i in range(m):
        if probes[i] > 0:
            live[nlive] = i
            nlive += 1
    r = 0
    while nlive > 0:
        w = 0
        for li in range(nlive):
            i = live[li]
            line = (indices[starts[i] + r] * element_bytes) // txn_bytes
            if k == warp:
                txns += nd
                reqs += 1
                k = 0
                nd = 0
            k += 1
            seen = False
            for j in range(nd - 1, -1, -1):
                if dbuf[j] == line:
                    seen = True
                    break
            if not seen:
                dbuf[nd] = line
                nd += 1
            if probes[i] > r + 1:
                live[w] = i
                w += 1
        nlive = w
        r += 1
    if k > 0:
        txns += nd
        reqs += 1
    out[0] = txns
    out[1] = reqs


def depth_update(rows, diff, group_size, depths, add):
    """``depths[rows[i], j] += add`` for every set bit ``j`` of row i.

    The compiled form of the unpack / multiply / fancy-add depth
    extraction in ``core/bitwise.py``: newly set bits still hold the
    UNVISITED sentinel, so adding ``level + 2`` rewrites them to
    ``level + 1``.  ``depths`` keeps whatever rung of the narrow-dtype
    ladder the caller is on.
    """
    m = rows.shape[0]
    lanes = diff.shape[1]
    for i in range(m):
        row = rows[i]
        for lane in range(lanes):
            w = diff[i, lane]
            b = lane * 64
            while w != _ZERO:
                if w & _ONE != _ZERO and b < group_size:
                    depths[row, b] += add
                w >>= _ONE
                b += 1


def transpose_i32(src, dst):
    """``dst[g, v] = int32(src[v, g])`` — widening depth transpose.

    Tiled over vertex blocks so the strided reads stay cache-resident;
    the narrow signed dtypes sign-extend exactly (UNVISITED = -1).
    """
    n = src.shape[0]
    gs = src.shape[1]
    block = 64
    for v0 in range(0, n, block):
        v1 = min(v0 + block, n)
        for g in range(gs):
            for v in range(v0, v1):
                dst[g, v] = src[v, g]


def round_major(indices, starts, probes, round_base, out):
    """Round-major probed-neighbor stream via counting sort.

    Emits all round-0 probes in position order, then round 1, ... —
    the exact order :func:`repro.kernels.bottomup.round_major_probes`
    reconstructs with a stable argsort.  ``round_base`` must hold
    ``max(probes)`` zeroed int64 slots; ``out`` holds ``probes.sum()``.
    """
    m = probes.shape[0]
    for i in range(m):
        for r in range(probes[i]):
            round_base[r] += 1
    running = 0
    for r in range(round_base.shape[0]):
        c = round_base[r]
        round_base[r] = running
        running += c
    for i in range(m):
        s = starts[i]
        for r in range(probes[i]):
            out[round_base[r]] = indices[s + r]
            round_base[r] += 1


def hit_scan_depth(
    indices, starts, degrees, depths, inst, use_inst, level, probes, found
):
    """First-hit scan over an int32 depth table.

    Position ``i`` probes its neighbor list in order until one has
    ``0 <= depth <= level`` (a parent visited at an earlier level) —
    the depth-table specialization of
    :func:`repro.kernels.bottomup.bucketed_hit_scan`'s ``hit``
    callable.  ``use_inst == 0`` reads ``depths`` row 0 (single-source
    1-D tables arrive as ``(1, n)`` views); otherwise position ``i``
    reads row ``inst[i]``.  Returns total probes.
    """
    total = 0
    for i in range(starts.shape[0]):
        row = inst[i] if use_inst != 0 else 0
        s = starts[i]
        deg = degrees[i]
        r = 0
        while r < deg:
            d = depths[row, indices[s + r]]
            r += 1
            if d >= 0 and d <= level:
                found[i] = True
                break
        probes[i] = r
        total += r
    return total


def per_bit_counts(words, out):
    """``out[b] +=`` number of rows with bit ``b`` set (full bit width).

    A plain shift loop per word: bit-count sums are order-free, so any
    accumulation order is bit-identical to the byte-histogram
    formulation in :func:`repro.kernels.bookkeeping.per_bit_counts`.
    """
    rows = words.shape[0]
    lanes = words.shape[1]
    for i in range(rows):
        for lane in range(lanes):
            w = words[i, lane]
            b = lane * 64
            while w != _ZERO:
                if w & _ONE != _ZERO:
                    out[b] += 1
                w >>= _ONE
                b += 1


def per_bit_weighted(words, weights, out):
    """``out[b] +=`` sum of ``weights`` over rows with bit ``b`` set.

    Integer accumulation; identical to the numpy float64 path for any
    weight total below 2**53 (degree sums always are).
    """
    rows = words.shape[0]
    lanes = words.shape[1]
    for i in range(rows):
        wt = weights[i]
        for lane in range(lanes):
            w = words[i, lane]
            b = lane * 64
            while w != _ZERO:
                if w & _ONE != _ZERO:
                    out[b] += wt
                w >>= _ONE
                b += 1
