"""Sampling-controlled hot-path profiling hooks.

The engines' hot loops (per-level execution in
:mod:`repro.core.bitwise`, degree-bucketed scans in
:mod:`repro.kernels.bottomup`, group execution in
:mod:`repro.core.engine`) call :func:`span` at their natural
boundaries.  The call is designed to cost one module-global check when
profiling is off, and — when on — to honor a sampling interval so a
deep traversal does not drown the trace.

**Overhead budget: <= 5%.**  Instrumented call sites must keep a fully
enabled, sample-every-level profile within 5% of the uninstrumented
wall clock on the benchmark gate
(``benchmarks/bench_obs_overhead.py --check``, run in CI).  Anything
hotter than a per-level boundary (per-vertex, per-edge) must not call
into this module at all.

Profile spans land in the process-wide tracer
(:func:`repro.obs.tracing.get_tracer`), named ``profile.<site>`` so
exporters and the level-diff tool can select them.  Worker processes
inherit the sampling configuration through the executor
(:class:`repro.exec.worker` ships it with the engine spec).
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Dict

from repro.errors import ObservabilityError
from repro.obs import tracing

#: Documented ceiling on tracing-enabled slowdown, enforced by the
#: benchmark gate (see module docstring and docs/observability.md).
OVERHEAD_BUDGET = 0.05


@dataclass(frozen=True)
class ProfileConfig:
    """Profiling switch plus sampling interval.

    ``sample_every=n`` records every n-th span per site (the first hit
    always records, so shallow traversals still profile).
    """

    enabled: bool = False
    sample_every: int = 1

    def __post_init__(self) -> None:
        if self.sample_every <= 0:
            raise ObservabilityError("sample_every must be positive")


_config = ProfileConfig()
_site_hits: Dict[str, int] = {}
_NULL = nullcontext(None)


def configure(enabled: bool = True, sample_every: int = 1) -> ProfileConfig:
    """Install the process-wide profiling configuration."""
    global _config
    _config = ProfileConfig(enabled=enabled, sample_every=sample_every)
    _site_hits.clear()
    return _config


def set_config(config: ProfileConfig) -> ProfileConfig:
    global _config
    _config = config
    _site_hits.clear()
    return _config


def get_config() -> ProfileConfig:
    return _config


def disable() -> None:
    configure(enabled=False)


def enabled() -> bool:
    return _config.enabled


def span(site: str, **attrs):
    """A profile span for one hot-path site, or a no-op context.

    Returns a context manager either way; the disabled path is a single
    flag test plus a cached :func:`contextlib.nullcontext`.
    """
    config = _config
    if not config.enabled:
        return _NULL
    tracer = tracing.get_tracer()
    if not tracer.enabled:
        return _NULL
    if config.sample_every > 1:
        hits = _site_hits.get(site, 0)
        _site_hits[site] = hits + 1
        if hits % config.sample_every:
            return _NULL
    return tracer.span(f"profile.{site}", **attrs)
