"""Declarative SLOs: rolling-window burn rates over hub signals.

ROADMAP item 4 (service scale-out) needs a *control signal*: something
that watches the serving telemetry and says "the p99 is burning" early
enough to act on.  This module is that signal path:

* :class:`SLOSpec` — a declarative objective: reduce a named signal
  (``p99`` / ``mean`` / ``max`` / ...) over a rolling window of
  simulated seconds and compare it against a target.
* :class:`RollingWindow` — the sample store.  Windows are evaluated
  against the same simulated clock the servers run on, so burn rates
  are exactly reproducible; a brute-force oracle pins the eviction and
  reduction math in the hypothesis tests.
* :class:`SLOEngine` — observes signals, evaluates every spec, and
  emits **typed alert events on breach transitions only** (one
  ``breach`` when the burn crosses the threshold, one ``resolve`` when
  it comes back) so a seeded breach produces an exact, assertable
  event sequence.  Alerts and burn gauges are mirrored onto the
  :class:`~repro.obs.metrics.MetricsHub` (``slo_alerts_total``,
  ``slo_burn_rate``) — the hub records item 4's autoscaler will read.

The serving layers feed the engine live (`BFSServer` /
`DynamicBFSServer` observe wave latency, errors, queue depth, and
cache staleness as waves commit); ``repro slo`` replays the same
signals out of a recorded trace file via :func:`replay_trace`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ObservabilityError
from repro.obs.metrics import MetricsHub, percentile

#: Reductions a spec may apply to its windowed samples.
REDUCERS = ("p50", "p90", "p95", "p99", "mean", "max", "rate")

#: Signal names the serving layers feed (trace replay emits the same).
SIGNAL_WAVE_LATENCY = "wave_latency_seconds"
SIGNAL_ERROR_RATE = "wave_errors"
SIGNAL_QUEUE_DEPTH = "queue_depth"
SIGNAL_CACHE_STALENESS = "cache_staleness"


def reduce_samples(values: Sequence[float], reduce: str) -> float:
    """Apply one named reduction; 0.0 on an empty window.

    ``rate`` is the mean of 0/1 event samples — the error-rate
    reduction — and is listed separately from ``mean`` so specs read
    declaratively.
    """
    if reduce not in REDUCERS:
        raise ObservabilityError(f"unknown SLO reducer {reduce!r}")
    if not values:
        return 0.0
    if reduce in ("mean", "rate"):
        return sum(values) / len(values)
    if reduce == "max":
        return max(values)
    return percentile(values, float(reduce[1:]))


@dataclass(frozen=True)
class SLOSpec:
    """One declarative objective over one hub signal."""

    #: Stable identifier; labels alerts and hub metrics.
    name: str
    #: Signal the window collects (see ``SIGNAL_*`` constants).
    signal: str
    #: Target for the reduced value; burn = reduced / objective, so
    #: burn 1.0 means "exactly at objective" and >1.0 is out of budget.
    objective: float
    #: Reduction over the window (one of :data:`REDUCERS`).
    reduce: str = "p99"
    #: Rolling window length in (simulated) seconds.
    window_seconds: float = 60.0
    #: Burn rate at or above which the SLO is breached.
    burn_threshold: float = 1.0
    #: Windows smaller than this never breach (cold-start guard).
    min_samples: int = 1
    #: Free-form note rendered in reports.
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ObservabilityError("SLO spec needs a name")
        if self.objective <= 0:
            raise ObservabilityError(
                f"SLO {self.name}: objective must be positive"
            )
        if self.reduce not in REDUCERS:
            raise ObservabilityError(
                f"SLO {self.name}: unknown reducer {self.reduce!r}"
            )
        if self.window_seconds <= 0:
            raise ObservabilityError(
                f"SLO {self.name}: window_seconds must be positive"
            )
        if self.burn_threshold <= 0:
            raise ObservabilityError(
                f"SLO {self.name}: burn_threshold must be positive"
            )
        if self.min_samples < 1:
            raise ObservabilityError(
                f"SLO {self.name}: min_samples must be >= 1"
            )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "signal": self.signal,
            "objective": self.objective,
            "reduce": self.reduce,
            "window_seconds": self.window_seconds,
            "burn_threshold": self.burn_threshold,
            "min_samples": self.min_samples,
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SLOSpec":
        known = {
            "name", "signal", "objective", "reduce", "window_seconds",
            "burn_threshold", "min_samples", "description",
        }
        extra = set(payload) - known
        if extra:
            raise ObservabilityError(
                f"unknown SLO spec fields: {sorted(extra)}"
            )
        return cls(**payload)


def default_slos() -> List[SLOSpec]:
    """The four objectives the issue names, with serving-scale targets.

    Objectives are tuned to the simulated clock: a kron scale-7 wave
    costs ~1e-4 simulated seconds, so the latency target sits an order
    of magnitude above the healthy p99 and trips only under real
    regressions (or seeded breaches in tests).
    """
    return [
        SLOSpec(
            name="wave-p99-latency",
            signal=SIGNAL_WAVE_LATENCY,
            objective=5e-3,
            reduce="p99",
            window_seconds=60.0,
            description="p99 per-wave latency stays under 5ms simulated",
        ),
        SLOSpec(
            name="error-rate",
            signal=SIGNAL_ERROR_RATE,
            objective=0.01,
            reduce="rate",
            window_seconds=60.0,
            min_samples=5,
            description="under 1% of waves end in error",
        ),
        SLOSpec(
            name="queue-depth",
            signal=SIGNAL_QUEUE_DEPTH,
            objective=64.0,
            reduce="max",
            window_seconds=30.0,
            description="admission queue stays under 64 requests",
        ),
        SLOSpec(
            name="cache-staleness",
            signal=SIGNAL_CACHE_STALENESS,
            objective=0.5,
            reduce="mean",
            window_seconds=120.0,
            description=(
                "under half of cached rows are dropped (not repaired) "
                "per epoch swap"
            ),
        ),
    ]


def load_slo_specs(path: str) -> List[SLOSpec]:
    """Read specs from a JSON file: a list of spec objects, or an
    object with a ``"slos"`` list."""
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if isinstance(payload, dict):
        payload = payload.get("slos", [])
    if not isinstance(payload, list):
        raise ObservabilityError(
            f"SLO spec file {path!r} must hold a list of specs"
        )
    return [SLOSpec.from_dict(item) for item in payload]


class RollingWindow:
    """Time-ordered (timestamp, value) samples with lazy eviction.

    Samples older than ``window_seconds`` before the evaluation
    timestamp are dropped at read time, so the window is a pure
    function of (samples, now) — the property the hypothesis oracle
    checks.
    """

    def __init__(self, window_seconds: float) -> None:
        self.window_seconds = float(window_seconds)
        self._samples: List[Tuple[float, float]] = []

    def observe(self, timestamp: float, value: float) -> None:
        if self._samples and timestamp < self._samples[-1][0]:
            raise ObservabilityError(
                "rolling window samples must arrive in time order "
                f"({timestamp} after {self._samples[-1][0]})"
            )
        self._samples.append((float(timestamp), float(value)))

    def values(self, now: float) -> List[float]:
        """Samples with ``timestamp > now - window_seconds`` (evicting
        the expired prefix in place)."""
        cutoff = now - self.window_seconds
        drop = 0
        for ts, _ in self._samples:
            if ts <= cutoff:
                drop += 1
            else:
                break
        if drop:
            del self._samples[:drop]
        return [v for _, v in self._samples]

    def __len__(self) -> int:
        return len(self._samples)


@dataclass(frozen=True)
class SLOAlert:
    """One breach-state transition (the typed event the hub carries)."""

    kind: str  # "breach" | "resolve"
    slo: str
    signal: str
    time: float
    burn: float
    value: float
    objective: float

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "slo": self.slo,
            "signal": self.signal,
            "time": self.time,
            "burn": self.burn,
            "value": self.value,
            "objective": self.objective,
        }


@dataclass(frozen=True)
class SLOStatus:
    """One spec's state at an evaluation instant."""

    spec: SLOSpec
    value: float
    burn: float
    breached: bool
    samples: int

    def to_dict(self) -> dict:
        return {
            "name": self.spec.name,
            "signal": self.spec.signal,
            "reduce": self.spec.reduce,
            "objective": self.spec.objective,
            "value": self.value,
            "burn": self.burn,
            "breached": self.breached,
            "samples": self.samples,
        }


class SLOEngine:
    """Evaluates every spec against rolling windows; alerts on edges.

    One window per *signal* (specs sharing a signal share samples; the
    eviction horizon is the longest window among them, each spec reads
    its own suffix).  ``evaluate(now)`` recomputes every spec's burn
    and appends a :class:`SLOAlert` only when the breached bit flips —
    steady-state breaches stay silent, which is what makes "exactly N
    alert events" assertable.
    """

    def __init__(
        self,
        specs: Optional[Sequence[SLOSpec]] = None,
        hub: Optional[MetricsHub] = None,
    ) -> None:
        self.specs: List[SLOSpec] = list(
            default_slos() if specs is None else specs
        )
        names = [s.name for s in self.specs]
        if len(set(names)) != len(names):
            raise ObservabilityError("duplicate SLO spec names")
        self.hub = hub
        self._windows: Dict[str, RollingWindow] = {}
        for spec in self.specs:
            window = self._windows.get(spec.signal)
            horizon = spec.window_seconds
            if window is None:
                self._windows[spec.signal] = RollingWindow(horizon)
            elif horizon > window.window_seconds:
                window.window_seconds = horizon
        self._breached: Dict[str, bool] = {s.name: False for s in self.specs}
        self.alerts: List[SLOAlert] = []
        self._last_status: List[SLOStatus] = []

    @property
    def signals(self) -> Tuple[str, ...]:
        return tuple(sorted(self._windows))

    def observe(self, signal: str, value: float, timestamp: float) -> None:
        """Feed one sample; signals no spec watches are dropped."""
        window = self._windows.get(signal)
        if window is None:
            return
        window.observe(timestamp, value)

    def evaluate(self, now: float) -> List[SLOStatus]:
        """Recompute every spec at simulated time ``now``; record
        breach/resolve transitions as alerts (and on the hub)."""
        statuses: List[SLOStatus] = []
        for spec in self.specs:
            window = self._windows[spec.signal]
            # Shared windows keep the longest horizon; each spec
            # re-filters down to its own.
            raw = window.values(now)
            if spec.window_seconds < window.window_seconds:
                cutoff = now - spec.window_seconds
                pairs = window._samples[-len(raw):] if raw else []
                raw = [v for ts, v in pairs if ts > cutoff]
            value = reduce_samples(raw, spec.reduce)
            burn = value / spec.objective
            breached = (
                len(raw) >= spec.min_samples
                and burn >= spec.burn_threshold
            )
            if breached != self._breached[spec.name]:
                self._breached[spec.name] = breached
                alert = SLOAlert(
                    kind="breach" if breached else "resolve",
                    slo=spec.name,
                    signal=spec.signal,
                    time=now,
                    burn=burn,
                    value=value,
                    objective=spec.objective,
                )
                self.alerts.append(alert)
                self._emit_alert(alert)
            self._emit_burn(spec, burn)
            statuses.append(
                SLOStatus(
                    spec=spec,
                    value=value,
                    burn=burn,
                    breached=breached,
                    samples=len(raw),
                )
            )
        self._last_status = statuses
        return statuses

    def _emit_alert(self, alert: SLOAlert) -> None:
        if self.hub is None:
            return
        self.hub.counter(
            "slo_alerts_total",
            help="SLO breach-state transitions",
            labels={"slo": alert.slo, "kind": alert.kind},
        ).inc()

    def _emit_burn(self, spec: SLOSpec, burn: float) -> None:
        if self.hub is None:
            return
        self.hub.gauge(
            "slo_burn_rate",
            help="current burn rate (reduced value / objective)",
            labels={"slo": spec.name},
        ).set(burn)

    def snapshot(self) -> dict:
        """The ``"slo"`` section servers attach to metrics snapshots."""
        return {
            "specs": [s.to_dict() for s in self.specs],
            "status": [s.to_dict() for s in self._last_status],
            "alerts": [a.to_dict() for a in self.alerts],
        }


# ----------------------------------------------------------------------
# Trace replay
# ----------------------------------------------------------------------
def replay_trace(
    records: Iterable[dict],
    engine: SLOEngine,
) -> List[SLOStatus]:
    """Re-derive SLO signals from a recorded trace and run the engine.

    Wave spans (``serve.batch`` / ``serve.wave``) replay as latency,
    error, and queue-depth samples at their end timestamps;
    ``stream.mutate`` spans replay cache staleness from their repair
    attrs.  The engine evaluates after every sample, so the alert
    sequence matches what a live engine fed the same signals would
    have produced.  Returns the final status list.
    """
    events: List[Tuple[float, int, str, float]] = []
    seq = 0
    for record in records:
        if record.get("kind") != "span":
            continue
        name = record.get("name")
        end = record.get("end")
        start = record.get("start", 0.0)
        if end is None:
            continue
        duration = float(end) - float(start)
        attrs = record.get("attrs", {})
        if name in ("serve.batch", "serve.wave"):
            # Wave spans carry their *simulated* cost as an attr; span
            # start/end are wall clock, which the objectives are not
            # calibrated to.  Old traces without the attr fall back.
            sim = attrs.get("sim_seconds")
            latency = float(sim) if sim is not None else duration
            events.append((float(end), seq, SIGNAL_WAVE_LATENCY, latency))
            seq += 1
            failed = 1.0 if record.get("status") == "error" else 0.0
            events.append((float(end), seq, SIGNAL_ERROR_RATE, failed))
            seq += 1
            depth = attrs.get("queue_depth")
            if depth is not None:
                events.append(
                    (float(end), seq, SIGNAL_QUEUE_DEPTH, float(depth))
                )
                seq += 1
        elif name == "stream.mutate":
            staleness = attrs.get("cache_staleness")
            if staleness is not None:
                events.append(
                    (float(end), seq, SIGNAL_CACHE_STALENESS,
                     float(staleness))
                )
                seq += 1
    events.sort(key=lambda e: (e[0], e[1]))
    statuses: List[SLOStatus] = []
    for when, _, signal, value in events:
        engine.observe(signal, value, when)
        statuses = engine.evaluate(when)
    return statuses


# ----------------------------------------------------------------------
# Report rendering
# ----------------------------------------------------------------------
def render_slo_report(engine: SLOEngine) -> str:
    """Deterministic text for the ``repro slo`` verb."""
    lines: List[str] = ["slo report"]
    lines.append(
        f"  {'slo':<20}{'signal':<24}{'reduce':<8}"
        f"{'value':>12}{'objective':>12}{'burn':>8}{'state':>10}"
    )
    for status in engine._last_status:
        spec = status.spec
        state = "BREACHED" if status.breached else "ok"
        lines.append(
            f"  {spec.name:<20}{spec.signal:<24}{spec.reduce:<8}"
            f"{status.value:>12.6g}{spec.objective:>12.6g}"
            f"{status.burn:>8.3f}{state:>10}"
        )
    lines.append("")
    lines.append(f"alerts ({len(engine.alerts)})")
    for alert in engine.alerts:
        lines.append(
            f"  t={alert.time:.6f} {alert.kind:<8}{alert.slo:<20}"
            f"burn={alert.burn:.3f} value={alert.value:.6g}"
        )
    return "\n".join(lines) + "\n"
