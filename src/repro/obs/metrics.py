"""Process-wide metrics facade: counters, gauges, fixed-bucket histograms.

Before this module, every layer kept a private format: the serving
layer's :class:`~repro.service.metrics.MetricsRegistry` held plain
lists, the executor's :class:`~repro.exec.executor.ExecStats` a
dataclass of ints, and the kernels wall-clock harness ad-hoc dicts.
:class:`MetricsHub` is the one place they all register into, so a
single exporter (:mod:`repro.obs.export`) can render everything —
JSON-lines records or Prometheus text format — with identical
semantics.

Histograms use **fixed bucket boundaries** (shared constants below), so
two distributions recorded by different layers — serving latency and
executor task wall time, say — are directly comparable bucket by
bucket.  Each histogram also retains its raw observations (bounded by
``max_samples``), so percentile math is exact and shared: the
:func:`percentile` here is the one authoritative implementation;
:mod:`repro.service.metrics` re-exports it.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ObservabilityError

#: Default latency bucket upper bounds in seconds.  Spans simulated
#: microsecond kernels through real multi-second wall clocks; the last
#: bucket is always +Inf.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-7, 2.5e-7, 5e-7, 1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, math.inf,
)


def percentile(
    values: Sequence[float], q: float, presorted: bool = False
) -> float:
    """Linear-interpolation percentile (``q`` in [0, 100]); 0.0 if empty.

    Pass ``presorted=True`` when ``values`` is already in ascending
    order — callers that need several percentiles of the same reservoir
    sort it once instead of once per quantile.  ``values`` is never
    mutated either way.
    """
    if not values:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile out of range: {q}")
    ordered = values if presorted else sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    return float(ordered[low] * (1.0 - frac) + ordered[high] * frac)


class _Metric:
    """Base: name, help text, optional frozen labels."""

    type: str = "untyped"

    def __init__(self, name: str, help: str = "",
                 labels: Optional[Dict[str, str]] = None) -> None:
        self.name = name
        self.help = help
        self.labels = dict(labels or {})

    def record(self) -> dict:  # pragma: no cover - overridden
        raise NotImplementedError


class Counter(_Metric):
    """Monotonically increasing count."""

    type = "counter"

    def __init__(self, name: str, help: str = "",
                 labels: Optional[Dict[str, str]] = None) -> None:
        super().__init__(name, help, labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name} cannot decrease (inc {amount})"
            )
        self.value += amount

    def record(self) -> dict:
        return {
            "kind": "metric",
            "type": self.type,
            "name": self.name,
            "help": self.help,
            "labels": dict(self.labels),
            "value": self.value,
        }


class Gauge(_Metric):
    """Point-in-time value."""

    type = "gauge"

    def __init__(self, name: str, help: str = "",
                 labels: Optional[Dict[str, str]] = None) -> None:
        super().__init__(name, help, labels)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def record(self) -> dict:
        return {
            "kind": "metric",
            "type": self.type,
            "name": self.name,
            "help": self.help,
            "labels": dict(self.labels),
            "value": self.value,
        }


class Histogram(_Metric):
    """Fixed-boundary cumulative histogram with an exact reservoir.

    Bucket counts follow Prometheus semantics (each bucket counts
    observations ``<= le``; the last bound is always ``+Inf``).  The
    raw observations are additionally retained (up to ``max_samples``,
    unbounded by default) so :meth:`quantile` is exact — the serving
    layer's latency percentiles route through here and stay
    bit-identical to the pre-obs implementation.
    """

    type = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        labels: Optional[Dict[str, str]] = None,
        max_samples: Optional[int] = None,
    ) -> None:
        super().__init__(name, help, labels)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ObservabilityError(f"histogram {name} needs bucket bounds")
        if list(bounds) != sorted(bounds):
            raise ObservabilityError(
                f"histogram {name} bucket bounds must be ascending"
            )
        if bounds[-1] != math.inf:
            bounds = bounds + (math.inf,)
        self.bounds = bounds
        self.bucket_counts = [0] * len(bounds)
        self.sum = 0.0
        self.count = 0
        self.max_samples = max_samples
        self.samples: List[float] = []

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                break
        if self.max_samples is None or len(self.samples) < self.max_samples:
            self.samples.append(value)

    def cumulative_counts(self) -> List[int]:
        """Prometheus-style cumulative counts, one per bound."""
        total = 0
        out = []
        for c in self.bucket_counts:
            total += c
            out.append(total)
        return out

    def quantile(self, q: float) -> float:
        """Exact percentile (``q`` in [0, 100]) over retained samples."""
        return percentile(self.samples, q)

    def quantiles(self, qs: Sequence[float]) -> Dict[float, float]:
        """Several percentiles with one sort."""
        ordered = sorted(self.samples)
        return {q: percentile(ordered, q, presorted=True) for q in qs}

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    @property
    def max(self) -> float:
        return max(self.samples) if self.samples else 0.0

    def record(self) -> dict:
        return {
            "kind": "metric",
            "type": self.type,
            "name": self.name,
            "help": self.help,
            "labels": dict(self.labels),
            "sum": self.sum,
            "count": self.count,
            "bounds": ["+Inf" if b == math.inf else b for b in self.bounds],
            "cumulative_counts": self.cumulative_counts(),
        }


def _key(name: str, labels: Optional[Dict[str, str]]) -> Tuple:
    return (name, tuple(sorted((labels or {}).items())))


class MetricsHub:
    """Get-or-create registry of named metrics.

    Re-registering a name returns the existing instrument; registering
    the same name as a different type (or a histogram with different
    bounds) raises :class:`~repro.errors.ObservabilityError` — silent
    schema drift is exactly what this module exists to prevent.
    """

    def __init__(self) -> None:
        self._metrics: Dict[Tuple, _Metric] = {}

    def _get_or_create(self, cls, name, help, labels, **kwargs) -> _Metric:
        key = _key(name, labels)
        existing = self._metrics.get(key)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ObservabilityError(
                    f"metric {name!r} already registered as "
                    f"{existing.type}, not {cls.type}"
                )
            return existing
        metric = cls(name, help=help, labels=labels, **kwargs)
        self._metrics[key] = metric
        return metric

    def counter(self, name: str, help: str = "",
                labels: Optional[Dict[str, str]] = None) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "",
              labels: Optional[Dict[str, str]] = None) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        labels: Optional[Dict[str, str]] = None,
    ) -> Histogram:
        metric = self._get_or_create(
            Histogram, name, help, labels, buckets=buckets
        )
        wanted = tuple(float(b) for b in buckets)
        if wanted[-1] != math.inf:
            wanted = wanted + (math.inf,)
        if metric.bounds != wanted:
            raise ObservabilityError(
                f"histogram {name!r} already registered with different "
                f"bucket bounds"
            )
        return metric

    def register(self, metric: _Metric) -> _Metric:
        """Adopt an externally constructed metric (e.g. a registry's
        private histogram) so exporters see it."""
        key = _key(metric.name, metric.labels)
        existing = self._metrics.get(key)
        if existing is metric:
            return metric
        if existing is not None:
            raise ObservabilityError(
                f"metric {metric.name!r} already registered"
            )
        self._metrics[key] = metric
        return metric

    def __iter__(self):
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def get(self, name: str,
            labels: Optional[Dict[str, str]] = None) -> Optional[_Metric]:
        return self._metrics.get(_key(name, labels))

    def records(self) -> List[dict]:
        """All metrics as JSON-lines records (``kind: "metric"``)."""
        return [m.record() for m in self._metrics.values()]

    def clear(self) -> None:
        self._metrics.clear()


_hub = MetricsHub()


def get_hub() -> MetricsHub:
    """The process-wide hub every layer registers into."""
    return _hub


def set_hub(hub: Optional[MetricsHub]) -> MetricsHub:
    """Install a fresh hub (tests); ``None`` resets to a new empty one."""
    global _hub
    _hub = hub if hub is not None else MetricsHub()
    return _hub
