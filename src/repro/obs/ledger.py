"""A schema'd perf ledger over the ``BENCH_*.json`` zoo.

Eight benchmark harnesses grew eight ad-hoc result payloads: same
spirit (named configurations, numeric measurements, a mode and a
metric string), no shared shape, so nothing could diff one run against
another without bespoke parsing.  This module pins one schema —
``repro.bench-ledger/v1`` — and two operations over it:

* **conversion** — :meth:`Ledger.from_legacy` lifts any of the
  historical payloads into the schema mechanically: non-result
  top-level fields become ledger ``meta``, each result's numeric
  leaves (flattened by dotted path) become metric points, everything
  else becomes entry attrs.  :func:`load_ledger` sniffs the schema
  field, so ``repro bench-diff`` accepts old and new files alike.
* **diffing** — :func:`diff_ledgers` matches entries by name and
  metrics by key, classifies each delta against the metric's
  *direction* (seconds regress upward, TEPS regress downward), and
  flags changes beyond a tolerance — the regression gate CI runs via
  ``repro bench-diff`` (nonzero exit on any flagged metric).

Directions come from name heuristics (:func:`direction_for`) because
the legacy payloads never recorded them; ledger-native writers may
override per metric.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ObservabilityError

LEDGER_SCHEMA = "repro.bench-ledger/v1"

#: Metric directions.
LOWER_IS_BETTER = "lower"
HIGHER_IS_BETTER = "higher"

#: Name fragments marking a metric where bigger numbers are wins.
_HIGHER_TOKENS = (
    "teps", "speedup", "throughput", "hit_rate", "hits", "qps",
)


def direction_for(metric_name: str) -> str:
    """Heuristic direction for a metric name.

    Anything smelling of rate-of-work (TEPS, speedup, throughput)
    improves upward; everything else — seconds, overhead ratios,
    bytes, rounds, counts — improves downward, which is the right
    default for a benchmark ledger.
    """
    lowered = metric_name.lower()
    for token in _HIGHER_TOKENS:
        if token in lowered:
            return HIGHER_IS_BETTER
    return LOWER_IS_BETTER


@dataclass(frozen=True)
class MetricPoint:
    """One measured value with its improvement direction."""

    value: float
    direction: str = LOWER_IS_BETTER
    unit: str = ""

    def to_dict(self) -> dict:
        out = {"value": self.value, "direction": self.direction}
        if self.unit:
            out["unit"] = self.unit
        return out

    @classmethod
    def from_dict(cls, payload: dict) -> "MetricPoint":
        return cls(
            value=float(payload["value"]),
            direction=payload.get("direction", LOWER_IS_BETTER),
            unit=payload.get("unit", ""),
        )


@dataclass
class LedgerEntry:
    """One named benchmark configuration's measurements."""

    name: str
    metrics: Dict[str, MetricPoint] = field(default_factory=dict)
    attrs: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "metrics": {
                k: self.metrics[k].to_dict() for k in sorted(self.metrics)
            },
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "LedgerEntry":
        return cls(
            name=payload["name"],
            metrics={
                k: MetricPoint.from_dict(v)
                for k, v in payload.get("metrics", {}).items()
            },
            attrs=dict(payload.get("attrs", {})),
        )


@dataclass
class Ledger:
    """One benchmark run in the unified schema."""

    benchmark: str
    mode: str = ""
    meta: Dict[str, object] = field(default_factory=dict)
    entries: List[LedgerEntry] = field(default_factory=list)

    def entry(self, name: str) -> Optional[LedgerEntry]:
        for entry in self.entries:
            if entry.name == name:
                return entry
        return None

    def to_dict(self) -> dict:
        return {
            "schema": LEDGER_SCHEMA,
            "benchmark": self.benchmark,
            "mode": self.mode,
            "meta": dict(self.meta),
            "entries": [e.to_dict() for e in self.entries],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Ledger":
        schema = payload.get("schema")
        if schema != LEDGER_SCHEMA:
            raise ObservabilityError(
                f"not a bench ledger (schema={schema!r}); expected "
                f"{LEDGER_SCHEMA!r}"
            )
        names = [e.get("name") for e in payload.get("entries", [])]
        if len(set(names)) != len(names):
            raise ObservabilityError("ledger entry names must be unique")
        return cls(
            benchmark=payload.get("benchmark", ""),
            mode=payload.get("mode", ""),
            meta=dict(payload.get("meta", {})),
            entries=[
                LedgerEntry.from_dict(e)
                for e in payload.get("entries", [])
            ],
        )

    # ------------------------------------------------------------------
    # Legacy conversion
    # ------------------------------------------------------------------
    @classmethod
    def from_legacy(cls, payload: dict) -> "Ledger":
        """Lift a historical ``BENCH_*.json`` payload into the schema.

        Top-level fields other than ``results`` become ``meta``; each
        result's numeric leaves (ints and floats, flattened by dotted
        path; bools excluded) become metric points with heuristic
        directions, the rest entry attrs.  Entries without a ``name``
        are named from their first scalar discriminator (the stream
        bench keys results by ``insert_fraction``) or positionally.
        """
        results = payload.get("results", [])
        if not isinstance(results, list):
            raise ObservabilityError(
                "legacy payload has no results list to convert"
            )
        meta = {
            k: v for k, v in payload.items() if k != "results"
        }
        entries: List[LedgerEntry] = []
        used_names: Dict[str, int] = {}
        for index, result in enumerate(results):
            if not isinstance(result, dict):
                raise ObservabilityError(
                    f"legacy result #{index} is not an object"
                )
            name = result.get("name")
            if name is None:
                name = _synthesize_name(result, index)
            # De-duplicate defensively; diffing matches by name.
            bump = used_names.get(name)
            used_names[name] = (bump or 0) + 1
            if bump:
                name = f"{name}#{bump + 1}"
            metrics: Dict[str, MetricPoint] = {}
            attrs: Dict[str, object] = {}
            for key, value in _flatten(result):
                if key == "name":
                    continue
                if isinstance(value, bool) or not isinstance(
                    value, (int, float)
                ):
                    attrs[key] = value
                else:
                    metrics[key] = MetricPoint(
                        value=float(value),
                        direction=direction_for(key),
                    )
            entries.append(
                LedgerEntry(name=str(name), metrics=metrics, attrs=attrs)
            )
        return cls(
            benchmark=str(payload.get("benchmark", "unknown")),
            mode=str(payload.get("mode", "")),
            meta=meta,
            entries=entries,
        )


def _synthesize_name(result: dict, index: int) -> str:
    for key in ("insert_fraction", "config", "id", "label"):
        if key in result:
            return f"{key}={result[key]}"
    return f"entry-{index}"


def _flatten(payload: dict, prefix: str = "") -> List[Tuple[str, object]]:
    out: List[Tuple[str, object]] = []
    for key, value in payload.items():
        path = f"{prefix}{key}"
        if isinstance(value, dict):
            out.extend(_flatten(value, prefix=f"{path}."))
        elif isinstance(value, list):
            # Lists are opaque attrs; per-element metrics would explode
            # the namespace without being diffable run to run.
            out.append((path, value))
        else:
            out.append((path, value))
    return out


def load_ledger(path: str) -> Ledger:
    """Read a ledger file, converting legacy payloads transparently."""
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict):
        raise ObservabilityError(f"{path!r} is not a benchmark payload")
    if payload.get("schema") == LEDGER_SCHEMA:
        return Ledger.from_dict(payload)
    return Ledger.from_legacy(payload)


def save_ledger(ledger: Ledger, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(ledger.to_dict(), fh, indent=2)
        fh.write("\n")


# ----------------------------------------------------------------------
# Diffing
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MetricDelta:
    """One metric compared across two ledgers."""

    entry: str
    metric: str
    direction: str
    old: float
    new: float
    #: Signed fractional change, positive = metric went up.
    change: float
    #: True when the change moves in the bad direction past tolerance.
    regressed: bool
    #: True when the change moves in the good direction past tolerance.
    improved: bool


@dataclass
class LedgerDiff:
    """Full comparison of two ledgers."""

    deltas: List[MetricDelta]
    #: Entry names present in only one side.
    only_old: List[str]
    only_new: List[str]

    @property
    def regressions(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def improvements(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.improved]


def diff_ledgers(
    old: Ledger, new: Ledger, tolerance: float = 0.05
) -> LedgerDiff:
    """Compare matching entry/metric pairs; flag moves past tolerance.

    ``tolerance`` is a fractional band: a lower-is-better metric
    regresses when ``new > old * (1 + tolerance)`` and improves when
    ``new < old * (1 - tolerance)`` (mirrored for higher-is-better).
    A metric at old value 0 regresses on any bad-direction move
    beyond ``tolerance`` in absolute terms.
    """
    if tolerance < 0:
        raise ObservabilityError("tolerance must be non-negative")
    deltas: List[MetricDelta] = []
    old_names = [e.name for e in old.entries]
    new_names = [e.name for e in new.entries]
    for entry in old.entries:
        counterpart = new.entry(entry.name)
        if counterpart is None:
            continue
        for metric_name in sorted(entry.metrics):
            before = entry.metrics[metric_name]
            after = counterpart.metrics.get(metric_name)
            if after is None:
                continue
            direction = before.direction or direction_for(metric_name)
            change = (
                (after.value - before.value) / abs(before.value)
                if before.value != 0
                else after.value - before.value
            )
            if direction == HIGHER_IS_BETTER:
                regressed = change < -tolerance
                improved = change > tolerance
            else:
                regressed = change > tolerance
                improved = change < -tolerance
            deltas.append(
                MetricDelta(
                    entry=entry.name,
                    metric=metric_name,
                    direction=direction,
                    old=before.value,
                    new=after.value,
                    change=change,
                    regressed=regressed,
                    improved=improved,
                )
            )
    return LedgerDiff(
        deltas=deltas,
        only_old=[n for n in old_names if n not in new_names],
        only_new=[n for n in new_names if n not in old_names],
    )


def render_diff(
    diff: LedgerDiff, old_label: str = "old", new_label: str = "new"
) -> str:
    """Deterministic text for ``repro bench-diff``."""
    lines = [f"bench diff: {old_label} -> {new_label}"]
    lines.append(
        f"  {len(diff.deltas)} metrics compared, "
        f"{len(diff.regressions)} regressed, "
        f"{len(diff.improvements)} improved"
    )
    for name in diff.only_old:
        lines.append(f"  entry only in {old_label}: {name}")
    for name in diff.only_new:
        lines.append(f"  entry only in {new_label}: {name}")
    flagged = [d for d in diff.deltas if d.regressed or d.improved]
    if flagged:
        lines.append("")
        lines.append(
            f"  {'entry':<28}{'metric':<28}{'old':>12}{'new':>12}"
            f"{'change':>9}  flag"
        )
        for delta in flagged:
            flag = "REGRESSED" if delta.regressed else "improved"
            lines.append(
                f"  {delta.entry:<28}{delta.metric:<28}"
                f"{delta.old:>12.6g}{delta.new:>12.6g}"
                f"{delta.change:>+8.1%}  {flag}"
            )
    return "\n".join(lines) + "\n"
