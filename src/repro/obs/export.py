"""Exporters: JSON-lines traces, Prometheus text, gpusim adapters.

One file format carries everything a run produced: each line is a JSON
object tagged ``kind`` — ``"span"`` records from :mod:`.tracing`,
``"metric"`` records from :mod:`.metrics`.  ``repro run --trace
out.jsonl`` writes it; ``repro metrics-dump out.jsonl`` re-renders the
metric lines as Prometheus text format without re-running anything.

:func:`spans_from_level_rows` adapts the *simulated* per-level counter
timeline (:func:`repro.gpusim.trace.record_to_rows`) into the same span
schema, so a simulated timeline and a real wall-clock profile of the
same traversal can be loaded, diffed (:func:`pair_level_spans`), and
plotted by one tool — the reproduction's analogue of lining up
profiler counter timelines against kernel wall clocks (figures 18, 19,
21).
"""

from __future__ import annotations

import json
import math
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    TextIO,
    Tuple,
    Union,
)

from repro.errors import ObservabilityError
from repro.obs.metrics import MetricsHub
from repro.obs.tracing import Span, Tracer


# ----------------------------------------------------------------------
# JSON lines
# ----------------------------------------------------------------------
def trace_records(
    tracer: Optional[Tracer] = None, hub: Optional[MetricsHub] = None
) -> List[dict]:
    """Everything recorded so far, spans first, as JSONL-ready dicts."""
    records: List[dict] = []
    if tracer is not None:
        records.extend(tracer.export_dicts())
    if hub is not None:
        records.extend(hub.records())
    return records


def write_jsonl(path_or_file: Union[str, TextIO], records: Iterable[dict]) -> int:
    """Write records one JSON object per line; returns the line count."""
    count = 0

    def _write(fh: TextIO) -> int:
        n = 0
        for record in records:
            fh.write(json.dumps(record, sort_keys=True))
            fh.write("\n")
            n += 1
        return n

    if isinstance(path_or_file, str):
        with open(path_or_file, "w") as fh:
            count = _write(fh)
    else:
        count = _write(path_or_file)
    return count


def iter_jsonl(path: str) -> Iterator[dict]:
    """Stream a JSON-lines trace file one record at a time.

    Records are parsed lazily as the consumer iterates (blank lines
    ignored), so a long churn-loop trace never materializes as one
    list: ``trace-report`` and ``repro slo`` fold records as they
    arrive and hold only what they aggregate.
    """
    with open(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError as exc:
                raise ObservabilityError(
                    f"{path}:{lineno}: not valid JSON: {exc}"
                ) from exc


def read_jsonl(path: str) -> List[dict]:
    """Load a whole JSON-lines trace file (see :func:`iter_jsonl` for
    the incremental reader long traces should use)."""
    return list(iter_jsonl(path))


def spans_only(records: Iterable[dict]) -> List[dict]:
    return [r for r in records if r.get("kind") == "span"]


def metrics_only(records: Iterable[dict]) -> List[dict]:
    return [r for r in records if r.get("kind") == "metric"]


# ----------------------------------------------------------------------
# Prometheus text format
# ----------------------------------------------------------------------
def _fmt_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value) == int(value):
        return str(int(value))
    return repr(float(value))


def _fmt_labels(labels: Dict[str, str], extra: Optional[Dict[str, str]] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        f'{k}="{v}"' for k, v in sorted(merged.items())
    )
    return "{" + body + "}"


def render_prometheus(
    source: Union[MetricsHub, Iterable[dict]]
) -> str:
    """Render metrics as Prometheus text exposition format.

    ``source`` is either a live :class:`MetricsHub` or an iterable of
    records (e.g. the ``kind == "metric"`` lines of a trace file) —
    both render identically, which is what lets ``repro metrics-dump``
    reproduce a finished run's scrape page offline.
    """
    records = (
        source.records() if isinstance(source, MetricsHub)
        else metrics_only(source)
    )
    lines: List[str] = []
    seen_headers = set()
    for record in records:
        name = record["name"]
        mtype = record["type"]
        labels = record.get("labels", {})
        if name not in seen_headers:
            help_text = record.get("help", "")
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {mtype}")
            seen_headers.add(name)
        if mtype == "histogram":
            bounds = record["bounds"]
            cumulative = record["cumulative_counts"]
            for bound, count in zip(bounds, cumulative):
                le = "+Inf" if bound in ("+Inf", math.inf) else _fmt_value(bound)
                lines.append(
                    f"{name}_bucket{_fmt_labels(labels, {'le': le})} {count}"
                )
            lines.append(
                f"{name}_sum{_fmt_labels(labels)} {_fmt_value(record['sum'])}"
            )
            lines.append(
                f"{name}_count{_fmt_labels(labels)} {record['count']}"
            )
        else:
            lines.append(
                f"{name}{_fmt_labels(labels)} {_fmt_value(record['value'])}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# gpusim adapter
# ----------------------------------------------------------------------
def spans_from_level_rows(
    rows: Sequence[dict],
    trace_id: str = "trace-sim",
    process: str = "gpusim",
    parent_id: Optional[str] = None,
) -> List[dict]:
    """Simulated per-level trace rows as span records.

    ``rows`` is the output of :func:`repro.gpusim.trace.record_to_rows`
    (run it with a cost model so ``seconds`` is populated; rows priced
    ``None`` get zero-duration spans).  Levels are laid end to end on a
    simulated clock starting at 0.0 — the per-level counters land in
    ``attrs`` untouched, so a row survives the round trip through the
    span schema.
    """
    spans: List[dict] = []
    clock = 0.0
    for i, row in enumerate(rows):
        seconds = row.get("seconds") or 0.0
        attrs = {k: v for k, v in row.items() if k != "seconds"}
        span = Span(
            name="sim.level",
            trace_id=trace_id,
            span_id=f"{process}-{i + 1}",
            parent_id=parent_id,
            start=clock,
            end=clock + seconds,
            process=process,
            attrs=attrs,
        )
        clock += seconds
        spans.append(span.to_dict())
    return spans


def pair_level_spans(
    real: Iterable[dict], sim: Iterable[dict]
) -> List[Tuple[Optional[dict], Optional[dict]]]:
    """Align real profile level spans with simulated level spans.

    Matches on the ``depth`` attr: real spans are the profiler's
    ``profile.level`` spans, simulated spans come from
    :func:`spans_from_level_rows`.  Returns ``(real, sim)`` pairs in
    depth order with ``None`` for a side that has no span at that depth
    — the raw material for a wall-clock-vs-simulated diff.
    """
    def by_depth(records, name):
        out: Dict[int, dict] = {}
        for r in records:
            if r.get("kind") != "span" or r.get("name") != name:
                continue
            depth = r.get("attrs", {}).get("depth")
            if depth is not None and depth not in out:
                out[int(depth)] = r
        return out

    real_levels = by_depth(real, "profile.level")
    sim_levels = by_depth(sim, "sim.level")
    depths = sorted(set(real_levels) | set(sim_levels))
    return [(real_levels.get(d), sim_levels.get(d)) for d in depths]
