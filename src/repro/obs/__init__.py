"""repro.obs — the unified observability spine.

Four small modules replace the four private telemetry formats that grew
up in the service, exec, kernels, and gpusim layers:

* :mod:`repro.obs.tracing` — span API with explicit clocks and
  cross-process context propagation (executor -> worker and back);
* :mod:`repro.obs.metrics` — process-wide facade for counters, gauges,
  and fixed-bucket histograms, with the one authoritative percentile
  implementation;
* :mod:`repro.obs.export` — JSON-lines span/metric export, Prometheus
  text rendering, and the adapter that puts simulated gpusim counter
  timelines in the same span schema as real wall-clock profiles;
* :mod:`repro.obs.profile` — sampling-controlled hot-path hooks with a
  documented <= 5% overhead budget enforced by
  ``benchmarks/bench_obs_overhead.py``.

See ``docs/observability.md`` for the span schema, metric naming
conventions, and exporter formats.
"""

from repro.obs.export import (
    metrics_only,
    pair_level_spans,
    read_jsonl,
    render_prometheus,
    spans_from_level_rows,
    spans_only,
    trace_records,
    write_jsonl,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsHub,
    get_hub,
    percentile,
    set_hub,
)
from repro.obs.profile import (
    OVERHEAD_BUDGET,
    ProfileConfig,
    configure as configure_profiling,
    disable as disable_profiling,
    enabled as profiling_enabled,
    get_config as get_profile_config,
)
from repro.obs.tracing import (
    Span,
    SpanContext,
    Tracer,
    configure as configure_tracing,
    get_tracer,
    set_tracer,
    tracing_enabled,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsHub",
    "OVERHEAD_BUDGET",
    "ProfileConfig",
    "Span",
    "SpanContext",
    "Tracer",
    "configure_profiling",
    "configure_tracing",
    "disable_profiling",
    "get_hub",
    "get_profile_config",
    "get_tracer",
    "metrics_only",
    "pair_level_spans",
    "percentile",
    "profiling_enabled",
    "read_jsonl",
    "render_prometheus",
    "set_hub",
    "set_tracer",
    "spans_from_level_rows",
    "spans_only",
    "trace_records",
    "tracing_enabled",
    "write_jsonl",
]
