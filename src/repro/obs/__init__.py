"""repro.obs — the unified observability spine.

The recording modules replace the four private telemetry formats that
grew up in the service, exec, kernels, and gpusim layers:

* :mod:`repro.obs.tracing` — span API with explicit clocks and
  cross-process context propagation (executor -> worker and back);
* :mod:`repro.obs.metrics` — process-wide facade for counters, gauges,
  and fixed-bucket histograms, with the one authoritative percentile
  implementation;
* :mod:`repro.obs.export` — JSON-lines span/metric export, Prometheus
  text rendering, and the adapter that puts simulated gpusim counter
  timelines in the same span schema as real wall-clock profiles;
* :mod:`repro.obs.profile` — sampling-controlled hot-path hooks with a
  documented <= 5% overhead budget enforced by
  ``benchmarks/bench_obs_overhead.py``.

On top of them, the analysis modules turn the recorded signal into
decisions:

* :mod:`repro.obs.analyze` — span forests, deterministic critical-path
  and waterfall attribution per wave/level, substrate comparison
  (``repro trace-report``);
* :mod:`repro.obs.slo` — declarative SLO specs evaluated as
  rolling-window burn rates with typed breach/resolve alerts
  (``repro slo``);
* :mod:`repro.obs.ledger` — the ``repro.bench-ledger/v1`` schema over
  the ``BENCH_*.json`` files and the regression diff behind
  ``repro bench-diff``.

See ``docs/observability.md`` for the span schema, metric naming
conventions, exporter formats, and the analysis/SLO layers.
"""

from repro.obs.analyze import (
    SpanNode,
    WaveAttribution,
    aggregate_spans,
    analyze_waves,
    build_forest,
    compare_substrates,
    critical_path,
    level_waterfall,
    render_trace_report,
    wave_attribution,
)
from repro.obs.export import (
    iter_jsonl,
    metrics_only,
    pair_level_spans,
    read_jsonl,
    render_prometheus,
    spans_from_level_rows,
    spans_only,
    trace_records,
    write_jsonl,
)
from repro.obs.ledger import (
    LEDGER_SCHEMA,
    Ledger,
    LedgerEntry,
    MetricPoint,
    diff_ledgers,
    load_ledger,
    render_diff,
    save_ledger,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsHub,
    get_hub,
    percentile,
    set_hub,
)
from repro.obs.profile import (
    OVERHEAD_BUDGET,
    ProfileConfig,
    configure as configure_profiling,
    disable as disable_profiling,
    enabled as profiling_enabled,
    get_config as get_profile_config,
)
from repro.obs.slo import (
    SLOAlert,
    SLOEngine,
    SLOSpec,
    SLOStatus,
    default_slos,
    load_slo_specs,
    render_slo_report,
    replay_trace,
)
from repro.obs.tracing import (
    Span,
    SpanContext,
    Tracer,
    configure as configure_tracing,
    get_tracer,
    set_tracer,
    tracing_enabled,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "LEDGER_SCHEMA",
    "Ledger",
    "LedgerEntry",
    "MetricPoint",
    "MetricsHub",
    "OVERHEAD_BUDGET",
    "ProfileConfig",
    "SLOAlert",
    "SLOEngine",
    "SLOSpec",
    "SLOStatus",
    "Span",
    "SpanContext",
    "SpanNode",
    "Tracer",
    "WaveAttribution",
    "aggregate_spans",
    "analyze_waves",
    "build_forest",
    "compare_substrates",
    "configure_profiling",
    "configure_tracing",
    "critical_path",
    "default_slos",
    "diff_ledgers",
    "disable_profiling",
    "get_hub",
    "get_profile_config",
    "get_tracer",
    "iter_jsonl",
    "level_waterfall",
    "load_ledger",
    "load_slo_specs",
    "metrics_only",
    "pair_level_spans",
    "percentile",
    "profiling_enabled",
    "read_jsonl",
    "render_diff",
    "render_prometheus",
    "render_slo_report",
    "render_trace_report",
    "replay_trace",
    "save_ledger",
    "set_hub",
    "set_tracer",
    "spans_from_level_rows",
    "spans_only",
    "trace_records",
    "tracing_enabled",
    "wave_attribution",
    "write_jsonl",
]
