"""Lightweight span tracing with explicit clocks and cross-process context.

A :class:`Span` is one timed operation — a server batch launch, an
executor dispatch, a worker task, a traversal level.  Spans form a tree
through ``parent_id``, and the tree crosses process boundaries: the
executor ships a :data:`SpanContext` (``(trace_id, span_id)``) to a
worker inside the task message, the worker parents its spans onto it,
and ships the finished spans (as plain dicts) back with the reply,
where :meth:`Tracer.ingest` merges them into the parent's buffer.

Two properties keep the tracer honest in this repository:

* **explicit clocks** — a :class:`Tracer` takes any zero-argument
  ``clock`` callable; tests pass a fake clock and get bit-identical
  span timings, production uses :func:`time.perf_counter`.  Timestamps
  are *per-process monotonic* seconds: spans from different processes
  share a trace id and a parent chain, not a clock epoch (``process``
  tags which clock a span was measured on).
* **deterministic ids** — span ids are ``{process}-{sequence}``, so a
  trace is reproducible and worker ids cannot collide with parent ids.

The module-level tracer (:func:`get_tracer` / :func:`set_tracer`) is
what instrumented code records into; it defaults to a disabled tracer,
so uninstrumented runs pay one attribute check per span site.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import ObservabilityError

#: What crosses a process (or module) boundary: ``(trace_id, span_id)``.
SpanContext = Tuple[str, str]


@dataclass
class Span:
    """One timed operation in a trace tree."""

    name: str
    trace_id: str
    span_id: str
    parent_id: Optional[str]
    start: float
    end: Optional[float] = None
    #: Which process's monotonic clock measured this span.
    process: str = "main"
    attrs: Dict[str, object] = field(default_factory=dict)
    #: ``"ok"`` or ``"error"``.
    status: str = "ok"

    def annotate(self, **attrs) -> "Span":
        """Merge attributes discovered after the span opened (e.g. the
        planner decision a traversal level actually took)."""
        self.attrs.update(attrs)
        return self

    @property
    def duration(self) -> float:
        """Seconds between start and finish (0.0 while open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def context(self) -> SpanContext:
        return (self.trace_id, self.span_id)

    def to_dict(self) -> dict:
        """JSON-lines record (``kind: "span"``) for :mod:`repro.obs.export`."""
        return {
            "kind": "span",
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "process": self.process,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "status": self.status,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, record: dict) -> "Span":
        if record.get("kind", "span") != "span":
            raise ObservabilityError(
                f"not a span record: kind={record.get('kind')!r}"
            )
        return cls(
            name=record["name"],
            trace_id=record["trace_id"],
            span_id=record["span_id"],
            parent_id=record.get("parent_id"),
            start=record["start"],
            end=record.get("end"),
            process=record.get("process", "main"),
            attrs=dict(record.get("attrs", {})),
            status=record.get("status", "ok"),
        )


class Tracer:
    """Records spans against one explicit clock.

    Parameters
    ----------
    process:
        Tag naming the process/component whose clock measures the spans
        (``"cli"``, ``"server"``, ``"worker-1"``); also the id prefix.
    clock:
        Zero-argument callable returning monotonic seconds.  Defaults
        to :func:`time.perf_counter`; tests pass a fake.
    enabled:
        A disabled tracer records nothing and its :meth:`span` context
        manager yields ``None`` immediately.
    trace_id:
        Trace this tracer contributes to; defaults to
        ``"trace-{process}"``.  A worker tracer adopts the parent's.
    id_prefix:
        Span-id prefix; defaults to ``process``.  A respawned worker
        reuses its predecessor's process tag but must mint fresh ids —
        it passes a pid-qualified prefix here.
    """

    def __init__(
        self,
        process: str = "main",
        clock: Optional[Callable[[], float]] = None,
        enabled: bool = True,
        trace_id: Optional[str] = None,
        id_prefix: Optional[str] = None,
    ) -> None:
        self.process = process
        self.enabled = enabled
        self.trace_id = trace_id or f"trace-{process}"
        self._id_prefix = id_prefix or process
        self._clock = clock or time.perf_counter
        self._seq = 0
        #: Open spans entered via :meth:`span`, innermost last.
        self._stack: List[Span] = []
        #: Finished (and ingested) spans, in completion order.
        self.finished: List[Span] = []

    # ------------------------------------------------------------------
    def _new_id(self) -> str:
        self._seq += 1
        return f"{self._id_prefix}-{self._seq}"

    def now(self) -> float:
        return float(self._clock())

    def current_context(self) -> Optional[SpanContext]:
        """Context of the innermost open span (for propagation)."""
        if not self._stack:
            return None
        return self._stack[-1].context

    # ------------------------------------------------------------------
    def start_span(
        self,
        name: str,
        parent: Optional[SpanContext] = None,
        detached: bool = False,
        **attrs,
    ) -> Optional[Span]:
        """Open a span; ``None`` when the tracer is disabled.

        ``parent`` overrides the innermost open span as the parent (the
        cross-process case).  A ``detached`` span is not pushed onto the
        nesting stack — use it for overlapping operations (e.g. one
        dispatch span per busy worker) and close it explicitly with
        :meth:`finish_span`.
        """
        if not self.enabled:
            return None
        if parent is not None:
            trace_id, parent_id = parent
        else:
            trace_id = self.trace_id
            ctx = self.current_context()
            parent_id = ctx[1] if ctx else None
        span = Span(
            name=name,
            trace_id=trace_id,
            span_id=self._new_id(),
            parent_id=parent_id,
            start=self.now(),
            process=self.process,
            attrs=dict(attrs),
        )
        if not detached:
            self._stack.append(span)
        return span

    def finish_span(self, span: Optional[Span], status: Optional[str] = None) -> None:
        """Close a span and move it to the finished buffer."""
        if span is None or not self.enabled:
            return
        if status is not None:
            span.status = status
        if span.end is None:
            span.end = self.now()
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # out-of-order close: drop descendants
            while self._stack and self._stack[-1] is not span:
                self._stack.pop()
            self._stack.pop()
        self.finished.append(span)

    @contextmanager
    def span(self, name: str, parent: Optional[SpanContext] = None, **attrs):
        """Context manager form; yields the span (or ``None`` disabled)."""
        if not self.enabled:
            yield None
            return
        span = self.start_span(name, parent=parent, **attrs)
        try:
            yield span
        except BaseException:
            span.status = "error"
            raise
        finally:
            self.finish_span(span)

    # ------------------------------------------------------------------
    def ingest(self, records: Iterable[dict]) -> List[Span]:
        """Merge foreign finished spans (reply payloads) into this trace."""
        if not self.enabled:
            return []
        spans = [Span.from_dict(r) for r in records]
        self.finished.extend(spans)
        return spans

    def drain(self) -> List[Span]:
        """Pop and return all finished spans."""
        done, self.finished = self.finished, []
        return done

    def export_dicts(self) -> List[dict]:
        """Finished spans as JSON-lines records (buffer untouched)."""
        return [span.to_dict() for span in self.finished]


class _DisabledTracer(Tracer):
    """The default module tracer: permanently off."""

    def __init__(self) -> None:
        super().__init__(process="disabled", enabled=False)


_DISABLED = _DisabledTracer()
_tracer: Tracer = _DISABLED


def get_tracer() -> Tracer:
    """The process-wide tracer instrumented code records into."""
    return _tracer


def set_tracer(tracer: Optional[Tracer]) -> Tracer:
    """Install (or, with ``None``, remove) the process-wide tracer."""
    global _tracer
    _tracer = tracer if tracer is not None else _DISABLED
    return _tracer


def configure(
    process: str = "main",
    clock: Optional[Callable[[], float]] = None,
    trace_id: Optional[str] = None,
) -> Tracer:
    """Create and install an enabled process-wide tracer."""
    return set_tracer(
        Tracer(process=process, clock=clock, enabled=True, trace_id=trace_id)
    )


def tracing_enabled() -> bool:
    return _tracer.enabled
