"""Trace analytics: span forests, critical paths, waterfall attribution.

PR 4's obs spine *records* the raw signal — span trees across
processes, hub metrics, profile spans — but recording is not an
answer.  This module is the layer that answers with it: given the
JSONL records of a traced run (``repro run --trace``, ``repro serve
--trace``, or a live tracer's ``export_dicts()``), it computes where
the time went, deterministically.

Three attribution tools, one per question the paper's analysis asks:

* :func:`aggregate_spans` — *which sites dominate?*  Per-name call
  counts, total and self seconds (self = duration minus same-process
  child durations), the ``trace-report`` top table.
* :func:`critical_path` — *what sequence bounded this operation?*
  From any root span, repeatedly descend into the longest child
  (ties broken by start time then span id, so the path is unique and
  reproducible).  Each step is charged its duration minus the chosen
  child's, so the step seconds **telescope to exactly the root's
  duration**.
* :func:`wave_attribution` — *how does one serving wave decompose?*
  For every wave span (``serve.batch`` / ``serve.wave``), same-process
  subtree self-times are bucketed by category (batching, exec
  dispatch, exchange, kernel, ...).  Nested same-clock spans are
  sequential within their parent, so the buckets sum to the wave
  duration; known-overlapping detached spans (``exec.dispatch``,
  ``worker.task``) are reported in the waterfall rows but excluded
  from the additive buckets.

Determinism: every ordering in this module is total (seconds, then
start, then span id), so the same trace — and, under a deterministic
tracer clock, the same *run* — renders a byte-identical report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ObservabilityError

#: Wave roots: the serving layer's per-launch spans.
WAVE_NAMES = ("serve.batch", "serve.wave")

#: Detached spans that deliberately overlap their siblings (one per
#: busy worker); their durations do not add up inside a parent and are
#: excluded from additive attribution.
OVERLAPPING_NAMES = frozenset({"exec.dispatch", "worker.task"})

#: Ordered (prefix, category) rules; first match wins.  Categories are
#: the waterfall buckets: what a wave's time is attributed *as*.
_CATEGORY_RULES: Tuple[Tuple[str, str], ...] = (
    ("serve.wave", "batching"),
    ("serve.batch", "batching"),
    ("exec.dispatch", "dispatch"),
    ("worker.task", "dispatch"),
    ("exec.", "dispatch"),
    ("exchange.", "exchange"),
    ("dist.", "exchange"),
    ("distributed.", "exchange"),
    ("profile.kernels.", "kernel"),
    ("profile.level", "level"),
    ("profile.engine.", "engine"),
    ("stream.", "stream"),
    ("sim.", "sim"),
    ("run", "run"),
)


def categorize(name: str) -> str:
    """Attribution bucket for a span name (``"other"`` when unknown)."""
    for prefix, category in _CATEGORY_RULES:
        if name == prefix or name.startswith(prefix):
            return category
    return "other"


@dataclass
class SpanNode:
    """One span record linked into its trace tree."""

    record: dict
    children: List["SpanNode"] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.record["name"]

    @property
    def span_id(self) -> str:
        return self.record["span_id"]

    @property
    def process(self) -> str:
        return self.record.get("process", "main")

    @property
    def start(self) -> float:
        return float(self.record["start"])

    @property
    def duration(self) -> float:
        end = self.record.get("end")
        if end is None:
            return float(self.record.get("duration", 0.0))
        return float(end) - self.start

    @property
    def attrs(self) -> dict:
        return self.record.get("attrs", {})

    def walk(self) -> Iterable["SpanNode"]:
        """This node and every descendant, depth-first, deterministic."""
        yield self
        for child in self.children:
            yield from child.walk()

    def self_seconds(self) -> float:
        """Duration not covered by same-process, non-overlapping
        children (clamped at zero against cross-clock skew)."""
        covered = sum(
            c.duration
            for c in self.children
            if c.process == self.process and c.name not in OVERLAPPING_NAMES
        )
        return max(0.0, self.duration - covered)


def _sort_key(node: SpanNode) -> Tuple[float, str]:
    return (node.start, node.span_id)


def build_forest(records: Iterable[dict]) -> List[SpanNode]:
    """Link span records into trees; returns the roots.

    Non-span records are ignored, so the output of
    :func:`repro.obs.export.iter_jsonl` feeds straight in.  A span
    whose parent id is absent from the record set roots its own tree
    (the cross-process case where only one side was captured).
    Roots and children are both sorted by (start, span id), making
    the forest — and everything computed from it — deterministic.
    """
    nodes: Dict[str, SpanNode] = {}
    ordered: List[SpanNode] = []
    for record in records:
        if record.get("kind") != "span":
            continue
        node = SpanNode(record)
        if node.span_id in nodes:
            raise ObservabilityError(
                f"duplicate span id {node.span_id!r} in trace"
            )
        nodes[node.span_id] = node
        ordered.append(node)
    roots: List[SpanNode] = []
    for node in ordered:
        parent = nodes.get(node.record.get("parent_id") or "")
        if parent is None or parent is node:
            roots.append(node)
        else:
            parent.children.append(node)
    for node in ordered:
        node.children.sort(key=_sort_key)
    roots.sort(key=_sort_key)
    return roots


# ----------------------------------------------------------------------
# Aggregation (top spans)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SpanAggregate:
    """Per-name rollup across a whole trace."""

    name: str
    category: str
    count: int
    total_seconds: float
    self_seconds: float
    max_seconds: float

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0


def aggregate_spans(records: Iterable[dict]) -> List[SpanAggregate]:
    """Roll every span up by name, sorted by self seconds descending
    (ties by total, then name) — the ``trace-report`` top table."""
    forest = build_forest(records)
    totals: Dict[str, List[float]] = {}
    for root in forest:
        for node in root.walk():
            bucket = totals.setdefault(node.name, [0, 0.0, 0.0, 0.0])
            bucket[0] += 1
            bucket[1] += node.duration
            bucket[2] += node.self_seconds()
            bucket[3] = max(bucket[3], node.duration)
    out = [
        SpanAggregate(
            name=name,
            category=categorize(name),
            count=int(count),
            total_seconds=total,
            self_seconds=self_s,
            max_seconds=peak,
        )
        for name, (count, total, self_s, peak) in totals.items()
    ]
    out.sort(key=lambda a: (-a.self_seconds, -a.total_seconds, a.name))
    return out


# ----------------------------------------------------------------------
# Critical path
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CriticalStep:
    """One hop of a critical path: a span and its on-path charge."""

    name: str
    span_id: str
    category: str
    #: Seconds charged to this step: duration minus the chosen child's
    #: duration (the full duration at the leaf).  Steps telescope to
    #: the root duration exactly.
    step_seconds: float
    #: Nesting depth below the path root.
    depth: int
    attrs: dict = field(default_factory=dict)


def critical_path(root: SpanNode) -> List[CriticalStep]:
    """Longest-child chain from ``root``, deterministically.

    At each span the child with the greatest duration is followed
    (ties by earliest start, then span id).  The step charge is the
    span's duration minus the chosen child's, so
    ``sum(step_seconds) == root.duration`` up to the clamp against
    cross-clock skew (a child measured on another process's clock can
    nominally outlast its parent; such steps charge zero).
    """
    steps: List[CriticalStep] = []
    node = root
    depth = 0
    while True:
        if node.children:
            chosen = max(
                node.children,
                key=lambda c: (c.duration, -c.start),
            )
            # Resolve duration ties toward the earliest start / lowest
            # span id explicitly: max() keeps the first maximum, and
            # children are pre-sorted by (start, span_id).
            charge = max(0.0, node.duration - chosen.duration)
        else:
            chosen = None
            charge = node.duration
        steps.append(
            CriticalStep(
                name=node.name,
                span_id=node.span_id,
                category=categorize(node.name),
                step_seconds=charge,
                depth=depth,
                attrs=dict(node.attrs),
            )
        )
        if chosen is None:
            return steps
        node = chosen
        depth += 1


# ----------------------------------------------------------------------
# Wave attribution (waterfall)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WaterfallRow:
    """One span in a wave's waterfall, offset-relative to the wave."""

    name: str
    category: str
    offset: float
    seconds: float
    depth: int
    process: str
    overlapping: bool
    attrs: dict = field(default_factory=dict)


@dataclass(frozen=True)
class WaveAttribution:
    """One serving wave decomposed into additive category buckets."""

    span_id: str
    name: str
    substrate: str
    seconds: float
    #: category -> seconds; values sum to ``seconds`` (within clock
    #: skew clamping) because same-clock nested spans are sequential.
    components: Dict[str, float]
    rows: List[WaterfallRow]
    path: List[CriticalStep]
    attrs: dict = field(default_factory=dict)

    @property
    def component_total(self) -> float:
        return sum(self.components.values())


def detect_substrate(wave: SpanNode, trace_has_stream: bool) -> str:
    """Which execution substrate served this wave.

    The server stamps the registered substrate name
    (:data:`repro.runtime.SUBSTRATE_NAMES` vocabulary) on every
    ``serve.batch``/``serve.wave`` span, so a wave from the current
    serving layer answers from its own attribute.  Traces recorded
    before that attribute existed fall back to the structural
    heuristics: ``serve.wave`` only exists on the executor path; a
    subtree with dist/exchange spans ran partitioned; a trace that
    published epochs is the stream substrate; everything else is the
    serial engine.
    """
    explicit = wave.attrs.get("substrate")
    if explicit is not None:
        return str(explicit)
    if wave.name == "serve.wave":
        return "executor"
    for node in wave.walk():
        if node.name.startswith(("dist.", "exchange.")):
            return "partitioned"
    if trace_has_stream:
        return "stream"
    return "serial"


def _accumulate_components(
    node: SpanNode, wave_process: str, acc: Dict[str, float]
) -> None:
    self_s = node.self_seconds()
    if self_s > 0.0:
        key = categorize(node.name)
        acc[key] = acc.get(key, 0.0) + self_s
    for child in node.children:
        if child.process != wave_process:
            continue
        if child.name in OVERLAPPING_NAMES:
            continue
        _accumulate_components(child, wave_process, acc)


def wave_attribution(
    wave: SpanNode, trace_has_stream: bool = False
) -> WaveAttribution:
    """Decompose one wave span into category buckets + waterfall rows.

    The buckets come from same-process subtree self-times (overlapping
    detached spans excluded), so they are additive: their sum equals
    the wave's duration up to the zero-clamp on clock skew — the
    property the analysis tests pin at 1%.
    """
    components: Dict[str, float] = {}
    _accumulate_components(wave, wave.process, components)
    rows: List[WaterfallRow] = []
    for node in wave.walk():
        if node is wave:
            continue
        rows.append(
            WaterfallRow(
                name=node.name,
                category=categorize(node.name),
                offset=node.start - wave.start
                if node.process == wave.process else 0.0,
                seconds=node.duration,
                depth=_depth_below(wave, node),
                process=node.process,
                overlapping=node.name in OVERLAPPING_NAMES,
                attrs=dict(node.attrs),
            )
        )
    return WaveAttribution(
        span_id=wave.span_id,
        name=wave.name,
        substrate=detect_substrate(wave, trace_has_stream),
        seconds=wave.duration,
        components=dict(sorted(components.items())),
        rows=rows,
        path=critical_path(wave),
        attrs=dict(wave.attrs),
    )


def _depth_below(root: SpanNode, target: SpanNode) -> int:
    depth = 0
    # Walk in the same deterministic order used to emit rows; depth is
    # recovered positionally to avoid parent backlinks.
    stack = [(c, 1) for c in reversed(root.children)]
    while stack:
        node, d = stack.pop()
        if node is target:
            return d
        stack.extend((c, d + 1) for c in reversed(node.children))
    return depth


def analyze_waves(records: Sequence[dict]) -> List[WaveAttribution]:
    """Every serving wave in a record set, attribution attached, in
    deterministic (start, span id) order."""
    forest = build_forest(records)
    has_stream = any(
        node.name.startswith("stream.")
        for root in forest
        for node in root.walk()
    )
    waves: List[WaveAttribution] = []
    for root in forest:
        for node in root.walk():
            if node.name in WAVE_NAMES:
                waves.append(wave_attribution(node, has_stream))
    return waves


# ----------------------------------------------------------------------
# Per-level waterfall
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LevelRow:
    """One traversal level inside a wave (profile or exchange span)."""

    depth: int
    seconds: float
    kernel_seconds: float
    source: str  # "profile" or "exchange"
    attrs: dict = field(default_factory=dict)


def level_waterfall(wave: SpanNode) -> List[LevelRow]:
    """Per-level time rows under one wave, ordered by BFS depth.

    ``profile.level`` spans carry the serial/stream/executor level
    clock; ``exchange.level`` spans carry the partitioned one.  Kernel
    seconds are the summed ``profile.kernels.*`` children of each
    level span.
    """
    rows: List[LevelRow] = []
    for node in wave.walk():
        if node.name == "profile.level":
            depth = node.attrs.get("depth")
            kernel = sum(
                c.duration for c in node.children
                if c.name.startswith("profile.kernels.")
            )
            rows.append(
                LevelRow(
                    depth=int(depth) if depth is not None else -1,
                    seconds=node.duration,
                    kernel_seconds=kernel,
                    source="profile",
                    attrs=dict(node.attrs),
                )
            )
        elif node.name == "exchange.level":
            level = node.attrs.get("level")
            rows.append(
                LevelRow(
                    depth=int(level) if level is not None else -1,
                    seconds=node.duration,
                    kernel_seconds=0.0,
                    source="exchange",
                    attrs=dict(node.attrs),
                )
            )
    rows.sort(key=lambda r: (r.depth, r.source))
    return rows


# ----------------------------------------------------------------------
# Substrate comparison
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SubstrateSummary:
    """Aggregate wave behavior for one execution substrate."""

    substrate: str
    waves: int
    total_seconds: float
    components: Dict[str, float]

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.waves if self.waves else 0.0


def compare_substrates(
    waves: Sequence[WaveAttribution],
) -> List[SubstrateSummary]:
    """Roll wave attributions up per substrate, alphabetical order."""
    acc: Dict[str, Tuple[int, float, Dict[str, float]]] = {}
    for wave in waves:
        count, total, comps = acc.setdefault(
            wave.substrate, (0, 0.0, {})
        )
        for key, value in wave.components.items():
            comps[key] = comps.get(key, 0.0) + value
        acc[wave.substrate] = (count + 1, total + wave.seconds, comps)
    return [
        SubstrateSummary(
            substrate=name,
            waves=count,
            total_seconds=total,
            components=dict(sorted(comps.items())),
        )
        for name, (count, total, comps) in sorted(acc.items())
    ]


# ----------------------------------------------------------------------
# Report rendering
# ----------------------------------------------------------------------
def _fmt_s(seconds: float) -> str:
    return f"{seconds * 1e3:.3f}ms"


def _fmt_pct(part: float, whole: float) -> str:
    if whole <= 0:
        return "  0.0%"
    return f"{100.0 * part / whole:5.1f}%"


def render_trace_report(
    records: Sequence[dict],
    top: int = 12,
    max_waves: int = 8,
    max_levels: int = 12,
) -> str:
    """The ``repro trace-report`` text: top spans, per-wave waterfall
    + critical path, per-level rows, substrate comparison.

    Pure function of the record sequence — a deterministic trace file
    renders byte-identically on every call.
    """
    lines: List[str] = []
    spans = [r for r in records if r.get("kind") == "span"]
    metrics = [r for r in records if r.get("kind") == "metric"]
    processes = sorted({s.get("process", "main") for s in spans})
    lines.append("trace report")
    lines.append(
        f"  records   : {len(spans)} spans, {len(metrics)} metrics"
    )
    lines.append(f"  processes : {', '.join(processes) or '-'}")

    aggregates = aggregate_spans(spans)
    lines.append("")
    lines.append(f"top spans (by self time, top {top})")
    lines.append(
        f"  {'name':<30}{'category':<10}{'count':>6}"
        f"{'total':>12}{'self':>12}{'max':>12}"
    )
    for agg in aggregates[:top]:
        lines.append(
            f"  {agg.name:<30}{agg.category:<10}{agg.count:>6}"
            f"{_fmt_s(agg.total_seconds):>12}"
            f"{_fmt_s(agg.self_seconds):>12}"
            f"{_fmt_s(agg.max_seconds):>12}"
        )

    waves = analyze_waves(spans)
    lines.append("")
    lines.append(f"waves ({len(waves)} recorded, showing {min(len(waves), max_waves)})")
    for wave in waves[:max_waves]:
        lines.append(
            f"  [{wave.span_id}] {wave.name} substrate={wave.substrate} "
            f"duration={_fmt_s(wave.seconds)}"
        )
        for key, value in wave.components.items():
            lines.append(
                f"    {key:<10}{_fmt_s(value):>12}  "
                f"{_fmt_pct(value, wave.seconds)}"
            )
        covered = wave.component_total
        lines.append(
            f"    {'(sum)':<10}{_fmt_s(covered):>12}  "
            f"{_fmt_pct(covered, wave.seconds)}"
        )
        path_names = " > ".join(
            f"{s.name}[{_fmt_s(s.step_seconds)}]" for s in wave.path[:6]
        )
        lines.append(f"    critical : {path_names}")
        levels = _levels_for(spans, wave.span_id)
        for row in levels[:max_levels]:
            extra = ""
            if row.source == "exchange":
                nbytes = row.attrs.get("nbytes")
                fmt = row.attrs.get("fmt")
                extra = f"  fmt={fmt} bytes={nbytes}"
            elif row.kernel_seconds:
                extra = f"  kernel={_fmt_s(row.kernel_seconds)}"
            lines.append(
                f"    level {row.depth:>3}: {_fmt_s(row.seconds):>12}"
                f"{extra}"
            )

    summaries = compare_substrates(waves)
    lines.append("")
    lines.append("substrate comparison")
    lines.append(
        f"  {'substrate':<12}{'waves':>6}{'mean':>12}{'total':>12}"
        "  components"
    )
    for summary in summaries:
        comps = " ".join(
            f"{k}={_fmt_pct(v, summary.total_seconds).strip()}"
            for k, v in summary.components.items()
        )
        lines.append(
            f"  {summary.substrate:<12}{summary.waves:>6}"
            f"{_fmt_s(summary.mean_seconds):>12}"
            f"{_fmt_s(summary.total_seconds):>12}  {comps}"
        )
    return "\n".join(lines) + "\n"


def _levels_for(spans: Sequence[dict], wave_span_id: str) -> List[LevelRow]:
    for root in build_forest(spans):
        for node in root.walk():
            if node.span_id == wave_span_id:
                return level_waterfall(node)
    return []
