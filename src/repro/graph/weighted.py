"""Weighted graphs: CSR storage with per-edge weights.

Section 8 notes iBFS "can be easily configured to support conventional
top-down BFS and traverse weighted graphs", and the related-work
section positions iBFS against Dijkstra / Bellman-Ford /
Floyd-Warshall.  :class:`WeightedCSRGraph` carries a weight per
directed edge in CSR order so the SSSP engines in
:mod:`repro.bfs.sssp` can reuse all of the unweighted machinery.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.builders import from_edge_arrays
from repro.graph.csr import CSRGraph, VERTEX_DTYPE

#: dtype of edge weights.
WEIGHT_DTYPE = np.float64


class WeightedCSRGraph:
    """A directed graph in CSR form with one weight per edge.

    The topology lives in an embedded :class:`CSRGraph`; ``weights[i]``
    belongs to the edge stored at ``col_indices[i]``.  The reverse
    graph carries the same weights permuted consistently, so weighted
    bottom-up/pull traversals see identical edge costs.
    """

    __slots__ = ("graph", "weights", "_reverse")

    def __init__(self, graph: CSRGraph, weights: np.ndarray) -> None:
        weights = np.ascontiguousarray(weights, dtype=WEIGHT_DTYPE)
        if weights.shape != (graph.num_edges,):
            raise GraphError(
                f"need one weight per edge: {weights.shape} != "
                f"({graph.num_edges},)"
            )
        self.graph = graph
        self.weights = weights
        self._reverse: Optional["WeightedCSRGraph"] = None

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges

    def __repr__(self) -> str:
        return (
            f"WeightedCSRGraph(num_vertices={self.num_vertices}, "
            f"num_edges={self.num_edges})"
        )

    def neighbors(self, v: int) -> Tuple[np.ndarray, np.ndarray]:
        """Out-neighbors of ``v`` with their edge weights."""
        start = int(self.graph.row_offsets[v])
        stop = int(self.graph.row_offsets[v + 1])
        return self.graph.col_indices[start:stop], self.weights[start:stop]

    def has_negative_weights(self) -> bool:
        """True when any edge weight is negative (Dijkstra precondition)."""
        return bool(self.weights.size and self.weights.min() < 0)

    def has_negative_cycle_reachable_from(self, source: int) -> bool:
        """Bellman-Ford-style negative-cycle check from ``source``."""
        from repro.bfs.sssp import bellman_ford

        try:
            bellman_ford(self, source)
        except GraphError:
            return True
        return False

    # ------------------------------------------------------------------
    def reverse(self) -> "WeightedCSRGraph":
        """Transpose with weights carried along (cached)."""
        if self._reverse is None:
            rev = self.graph.reverse()
            sources, dests = self.graph.edge_array()
            order = np.argsort(dests, kind="stable")
            self._reverse = WeightedCSRGraph(rev, self.weights[order])
            self._reverse._reverse = self
        return self._reverse

    def unweighted(self) -> CSRGraph:
        """The underlying topology."""
        return self.graph


def from_weighted_edges(
    edges: Iterable[Tuple[int, int, float]],
    num_vertices: Optional[int] = None,
    undirected: bool = False,
) -> WeightedCSRGraph:
    """Build a :class:`WeightedCSRGraph` from ``(src, dst, weight)``
    triples (reverse edges reuse the same weight when ``undirected``)."""
    triples = list(edges)
    if triples:
        src = np.fromiter((e[0] for e in triples), dtype=VERTEX_DTYPE)
        dst = np.fromiter((e[1] for e in triples), dtype=VERTEX_DTYPE)
        weights = np.fromiter((e[2] for e in triples), dtype=WEIGHT_DTYPE)
    else:
        src = np.empty(0, dtype=VERTEX_DTYPE)
        dst = np.empty(0, dtype=VERTEX_DTYPE)
        weights = np.empty(0, dtype=WEIGHT_DTYPE)
    if undirected:
        src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
        weights = np.concatenate([weights, weights])
    graph = from_edge_arrays(src, dst, num_vertices=num_vertices)
    # from_edge_arrays stable-sorts by source; apply the same permutation.
    order = np.argsort(src, kind="stable")
    return WeightedCSRGraph(graph, weights[order])


def with_random_weights(
    graph: CSRGraph,
    low: float = 1.0,
    high: float = 10.0,
    seed: int = 0,
) -> WeightedCSRGraph:
    """Attach uniformly random weights in ``[low, high)`` to a topology."""
    if high < low:
        raise GraphError("high must be >= low")
    rng = np.random.default_rng(seed)
    weights = rng.uniform(low, high, size=graph.num_edges)
    return WeightedCSRGraph(graph, weights)


def with_unit_weights(graph: CSRGraph) -> WeightedCSRGraph:
    """Unit weights: shortest paths coincide with BFS depths."""
    return WeightedCSRGraph(graph, np.ones(graph.num_edges, dtype=WEIGHT_DTYPE))
