"""Structural graph statistics used by GroupBy analysis and the test suite."""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.graph.csr import CSRGraph, VERTEX_DTYPE


def degree_histogram(graph: CSRGraph) -> np.ndarray:
    """``hist[d]`` = number of vertices with outdegree ``d``."""
    degrees = graph.out_degrees()
    if degrees.size == 0:
        return np.zeros(1, dtype=np.int64)
    return np.bincount(degrees)


def degree_stats(graph: CSRGraph) -> Dict[str, float]:
    """Summary outdegree statistics (mean/max/median/stddev/skewness)."""
    degrees = graph.out_degrees().astype(np.float64)
    if degrees.size == 0:
        return {"mean": 0.0, "max": 0.0, "median": 0.0, "std": 0.0, "skew": 0.0}
    mean = float(degrees.mean())
    std = float(degrees.std())
    if std > 0:
        skew = float(((degrees - mean) ** 3).mean() / std**3)
    else:
        skew = 0.0
    return {
        "mean": mean,
        "max": float(degrees.max()),
        "median": float(np.median(degrees)),
        "std": std,
        "skew": skew,
    }


def gini_coefficient(graph: CSRGraph) -> float:
    """Gini coefficient of the outdegree distribution.

    Near 0 for uniform-degree graphs (RD) and large for power-law graphs;
    the benchmark suite uses it to verify each synthetic stand-in has the
    intended skew.
    """
    degrees = np.sort(graph.out_degrees().astype(np.float64))
    n = degrees.size
    total = degrees.sum()
    if n == 0 or total == 0:
        return 0.0
    index = np.arange(1, n + 1, dtype=np.float64)
    return float((2.0 * (index * degrees).sum()) / (n * total) - (n + 1.0) / n)


def connected_components(graph: CSRGraph) -> np.ndarray:
    """Weakly connected component label for every vertex.

    Implemented as repeated frontier expansion over the symmetrized
    adjacency; labels are the smallest vertex id in each component.
    """
    n = graph.num_vertices
    labels = -np.ones(n, dtype=VERTEX_DTYPE)
    rev = graph.reverse()
    for start in range(n):
        if labels[start] >= 0:
            continue
        labels[start] = start
        frontier = np.asarray([start], dtype=VERTEX_DTYPE)
        while frontier.size:
            neighbors = _all_neighbors(graph, rev, frontier)
            fresh = neighbors[labels[neighbors] < 0]
            fresh = np.unique(fresh)
            labels[fresh] = start
            frontier = fresh
    return labels


def _all_neighbors(
    graph: CSRGraph, rev: CSRGraph, frontier: np.ndarray
) -> np.ndarray:
    """Concatenated out- and in-neighbors of every frontier vertex."""
    parts = []
    for g in (graph, rev):
        starts = g.row_offsets[frontier]
        stops = g.row_offsets[frontier + 1]
        widths = stops - starts
        if widths.sum():
            idx = _expand_ranges(starts, widths)
            parts.append(g.col_indices[idx])
    if not parts:
        return np.empty(0, dtype=VERTEX_DTYPE)
    return np.concatenate(parts)


def _expand_ranges(starts: np.ndarray, widths: np.ndarray) -> np.ndarray:
    """Vectorized concatenation of ``range(starts[i], starts[i]+widths[i])``."""
    total = int(widths.sum())
    if total == 0:
        return np.empty(0, dtype=VERTEX_DTYPE)
    offsets = np.repeat(starts - _exclusive_cumsum(widths), widths)
    return offsets + np.arange(total, dtype=VERTEX_DTYPE)


def _exclusive_cumsum(values: np.ndarray) -> np.ndarray:
    out = np.zeros_like(values)
    np.cumsum(values[:-1], out=out[1:])
    return out


def largest_component(graph: CSRGraph) -> np.ndarray:
    """Vertex ids of the largest weakly connected component."""
    labels = connected_components(graph)
    if labels.size == 0:
        return np.empty(0, dtype=VERTEX_DTYPE)
    unique, counts = np.unique(labels, return_counts=True)
    biggest = unique[np.argmax(counts)]
    return np.flatnonzero(labels == biggest).astype(VERTEX_DTYPE)


def is_connected(graph: CSRGraph) -> bool:
    """True when the graph is weakly connected (or empty)."""
    if graph.num_vertices == 0:
        return True
    return bool(np.unique(connected_components(graph)).size == 1)


def approximate_diameter(graph: CSRGraph, num_probes: int = 4, seed: int = 0) -> int:
    """Lower bound on the diameter via double-sweep BFS probes."""
    from repro.bfs.reference import reference_bfs

    n = graph.num_vertices
    if n == 0:
        return 0
    rng = np.random.default_rng(seed)
    best = 0
    for _ in range(num_probes):
        start = int(rng.integers(0, n))
        depths = reference_bfs(graph, start)
        reached = depths >= 0
        if not reached.any():
            continue
        far = int(np.argmax(np.where(reached, depths, -1)))
        depths2 = reference_bfs(graph, far)
        best = max(best, int(depths2.max()))
    return best
