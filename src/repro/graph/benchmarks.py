"""Laptop-scale stand-ins for the paper's 13 benchmark graphs.

The paper evaluates on seven real social/web graphs (FB, TW, WK, LJ, OR,
FR, PK), the Hollywood graph (HW), three Graph500 Kronecker graphs
(KG0/KG1/KG2), an R-MAT graph (RM), and a uniform random graph (RD) —
up to 17 M vertices and 1 B edges.  Real traces are not redistributable
and GPU-scale sizes are out of reach here, so each name maps to a
deterministic synthetic graph whose *relative* density and degree skew
match the original (documented in DESIGN.md).  Power-law members use the
Graph500 Kronecker generator; RD uses the uniform generator; RM uses the
paper's R-MAT initiator.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

from repro.errors import GraphError
from repro.graph.csr import CSRGraph
from repro.graph.generators import (
    GRAPH500_ABC,
    RMAT_ABC,
    kronecker,
    uniform_random,
)


@dataclass(frozen=True)
class BenchmarkSpec:
    """Recipe for one named benchmark graph.

    Attributes
    ----------
    name:
        Two-letter paper name (FB, TW, ...).
    kind:
        ``"kronecker"``, ``"rmat"``, or ``"uniform"``.
    scale:
        log2 vertex count at ``scale_factor == 1``.
    edge_factor:
        Directed edges per vertex before symmetrization.
    description:
        What the original graph was.
    """

    name: str
    kind: str
    scale: int
    edge_factor: int
    description: str


#: The 13 paper benchmarks.  Scales are chosen so relative sizes mirror
#: Figure 14: KG2 is the largest, KG0 the densest, PK the smallest,
#: RD uniform-degree.  Absolute sizes are laptop-scale.
_SPECS: Dict[str, BenchmarkSpec] = {
    spec.name: spec
    for spec in (
        BenchmarkSpec("FB", "kronecker", 13, 12, "Facebook friendship graph"),
        BenchmarkSpec("FR", "kronecker", 13, 13, "Friendster social graph"),
        BenchmarkSpec("HW", "kronecker", 11, 28, "Hollywood actor graph"),
        BenchmarkSpec("KG0", "kronecker", 10, 64, "Graph500, high outdegree"),
        BenchmarkSpec("KG1", "kronecker", 12, 36, "Graph500, mid size"),
        BenchmarkSpec("KG2", "kronecker", 13, 32, "Graph500, largest"),
        BenchmarkSpec("LJ", "kronecker", 12, 14, "LiveJournal social graph"),
        BenchmarkSpec("OR", "kronecker", 11, 38, "Orkut social graph"),
        BenchmarkSpec("PK", "kronecker", 10, 9, "Pokec social graph"),
        BenchmarkSpec("RD", "uniform", 13, 8, "uniform-outdegree random graph"),
        BenchmarkSpec("RM", "rmat", 11, 32, "R-MAT (0.45, 0.15, 0.15)"),
        BenchmarkSpec("TW", "kronecker", 13, 6, "Twitter follower graph"),
        BenchmarkSpec("WK", "kronecker", 12, 6, "Wikipedia hyperlink graph"),
    )
}

#: Benchmark names in the order the paper's figures list them.
BENCHMARK_NAMES: Tuple[str, ...] = tuple(sorted(_SPECS))

_CACHE: Dict[Tuple[str, int, int], CSRGraph] = {}


def benchmark_spec(name: str) -> BenchmarkSpec:
    """Look up the :class:`BenchmarkSpec` for a paper graph name."""
    try:
        return _SPECS[name.upper()]
    except KeyError:
        raise GraphError(
            f"unknown benchmark {name!r}; expected one of {BENCHMARK_NAMES}"
        ) from None


def benchmark_graph(name: str, scale_delta: int = 0, seed: int = 7) -> CSRGraph:
    """Build (and cache) the named benchmark graph.

    Parameters
    ----------
    name:
        Paper graph name, case-insensitive (``"FB"``, ``"kg0"``, ...).
    scale_delta:
        Added to the spec's log2 vertex count; use negative values for
        faster tests and positive ones for bigger benchmark runs.
    seed:
        Generator seed (per-name offsets keep the graphs distinct).
    """
    spec = benchmark_spec(name)
    key = (spec.name, scale_delta, seed)
    if key not in _CACHE:
        _CACHE[key] = _build(spec, scale_delta, seed)
    return _CACHE[key]


def _build(spec: BenchmarkSpec, scale_delta: int, seed: int) -> CSRGraph:
    scale = spec.scale + scale_delta
    if scale < 4:
        raise GraphError(
            f"scale_delta={scale_delta} makes {spec.name} too small (scale {scale})"
        )
    # zlib.crc32 is process-stable; built-in str hashing is randomized
    # per interpreter run and would make the suite non-deterministic.
    name_code = zlib.crc32(spec.name.encode("ascii")) % 997
    graph_seed = seed * 1009 + name_code
    if spec.kind == "kronecker":
        return kronecker(
            scale, edge_factor=spec.edge_factor, abc=GRAPH500_ABC, seed=graph_seed
        )
    if spec.kind == "rmat":
        return kronecker(
            scale, edge_factor=spec.edge_factor, abc=RMAT_ABC, seed=graph_seed
        )
    if spec.kind == "uniform":
        return uniform_random(1 << scale, spec.edge_factor, seed=graph_seed)
    raise GraphError(f"unknown generator kind {spec.kind!r}")  # pragma: no cover


def benchmark_suite(
    scale_delta: int = 0, seed: int = 7
) -> Iterator[Tuple[str, CSRGraph]]:
    """Yield ``(name, graph)`` for every benchmark, in name order."""
    for name in BENCHMARK_NAMES:
        yield name, benchmark_graph(name, scale_delta=scale_delta, seed=seed)


def clear_cache() -> None:
    """Drop all cached benchmark graphs (mainly for tests)."""
    _CACHE.clear()
