"""Compressed Sparse Row graph storage.

The paper (section 8.1) stores every benchmark in CSR format, keeps the
edge sequence of the input, treats each undirected edge as two directed
edges, and additionally stores the *reversed* edges of directed graphs so
that bottom-up traversal can look up in-neighbors.  :class:`CSRGraph`
mirrors that layout: a forward CSR (``row_offsets`` / ``col_indices``)
and a lazily built reverse CSR over the same vertex set.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.errors import GraphError

#: dtype used for vertex ids and offsets; int64 matches the paper's uint64
#: runs while staying signed for safe arithmetic in numpy.
VERTEX_DTYPE = np.int64


class CSRGraph:
    """A directed graph in Compressed Sparse Row form.

    Parameters
    ----------
    row_offsets:
        Array of ``num_vertices + 1`` monotonically non-decreasing offsets
        into ``col_indices``; vertex ``v``'s out-neighbors are
        ``col_indices[row_offsets[v]:row_offsets[v + 1]]``.
    col_indices:
        Flat array of destination vertex ids, one per directed edge.
    validate:
        When true (the default) the constructor checks structural
        invariants and raises :class:`~repro.errors.GraphError` on
        violation.  Pass ``False`` only for arrays produced by trusted
        builders.
    """

    __slots__ = (
        "row_offsets",
        "col_indices",
        "_reverse",
        "_out_degrees",
        "_cache_id",
    )

    def __init__(
        self,
        row_offsets: np.ndarray,
        col_indices: np.ndarray,
        validate: bool = True,
    ) -> None:
        self.row_offsets = np.ascontiguousarray(row_offsets, dtype=VERTEX_DTYPE)
        self.col_indices = np.ascontiguousarray(col_indices, dtype=VERTEX_DTYPE)
        self._reverse: Optional["CSRGraph"] = None
        self._out_degrees: Optional[np.ndarray] = None
        #: Content fingerprint memo filled by the serving layer's
        #: ``graph_cache_id`` — the CSR arrays are treated as immutable,
        #: so hashing them more than once per graph is pure waste.
        self._cache_id: Optional[str] = None
        if validate:
            self._validate()

    def _validate(self) -> None:
        if self.row_offsets.ndim != 1 or self.col_indices.ndim != 1:
            raise GraphError("row_offsets and col_indices must be 1-D arrays")
        if self.row_offsets.size == 0:
            raise GraphError("row_offsets must contain at least one entry")
        if self.row_offsets[0] != 0:
            raise GraphError("row_offsets must start at 0")
        if self.row_offsets[-1] != self.col_indices.size:
            raise GraphError(
                "row_offsets must end at len(col_indices): "
                f"{self.row_offsets[-1]} != {self.col_indices.size}"
            )
        if np.any(np.diff(self.row_offsets) < 0):
            raise GraphError("row_offsets must be non-decreasing")
        if self.col_indices.size:
            lo = int(self.col_indices.min())
            hi = int(self.col_indices.max())
            if lo < 0 or hi >= self.num_vertices:
                raise GraphError(
                    f"edge endpoint out of range [0, {self.num_vertices}): "
                    f"saw min={lo}, max={hi}"
                )

    # ------------------------------------------------------------------
    # Basic shape
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices |V|."""
        return int(self.row_offsets.size - 1)

    @property
    def num_edges(self) -> int:
        """Number of directed edges |E| (multi-edges and self-loops count)."""
        return int(self.col_indices.size)

    @property
    def average_degree(self) -> float:
        """Mean outdegree |E| / |V| (0.0 for the empty graph)."""
        if self.num_vertices == 0:
            return 0.0
        return self.num_edges / self.num_vertices

    def __len__(self) -> int:
        return self.num_vertices

    def __repr__(self) -> str:
        return (
            f"CSRGraph(num_vertices={self.num_vertices}, "
            f"num_edges={self.num_edges})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return bool(
            np.array_equal(self.row_offsets, other.row_offsets)
            and np.array_equal(self.col_indices, other.col_indices)
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hashing only
        return id(self)

    # ------------------------------------------------------------------
    # Neighborhood access
    # ------------------------------------------------------------------
    def out_degree(self, v: int) -> int:
        """Outdegree of vertex ``v``."""
        self._check_vertex(v)
        return int(self.row_offsets[v + 1] - self.row_offsets[v])

    def out_degrees(self) -> np.ndarray:
        """Vector of outdegrees for every vertex (cached)."""
        if self._out_degrees is None:
            self._out_degrees = np.diff(self.row_offsets)
        return self._out_degrees

    def neighbors(self, v: int) -> np.ndarray:
        """Out-neighbors of ``v`` in input edge order (read-only view)."""
        self._check_vertex(v)
        return self.col_indices[self.row_offsets[v] : self.row_offsets[v + 1]]

    def in_degree(self, v: int) -> int:
        """Indegree of vertex ``v`` (builds the reverse CSR on first use)."""
        return self.reverse().out_degree(v)

    def in_neighbors(self, v: int) -> np.ndarray:
        """In-neighbors of ``v`` (builds the reverse CSR on first use)."""
        return self.reverse().neighbors(v)

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over directed edges as ``(src, dst)`` pairs."""
        for v in range(self.num_vertices):
            start = int(self.row_offsets[v])
            stop = int(self.row_offsets[v + 1])
            for idx in range(start, stop):
                yield v, int(self.col_indices[idx])

    def edge_array(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(sources, destinations)`` arrays of all directed edges."""
        sources = np.repeat(
            np.arange(self.num_vertices, dtype=VERTEX_DTYPE), self.out_degrees()
        )
        return sources, self.col_indices.copy()

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self.num_vertices:
            raise GraphError(
                f"vertex {v} out of range [0, {self.num_vertices})"
            )

    # ------------------------------------------------------------------
    # Reverse graph (for bottom-up traversal)
    # ------------------------------------------------------------------
    def reverse(self) -> "CSRGraph":
        """The transpose graph, built once and cached.

        The paper stores reversed edges alongside the forward CSR so that
        bottom-up traversal can scan in-neighbors; we materialize the same
        structure lazily.
        """
        if self._reverse is None:
            self._reverse = self._build_reverse()
            # The reverse of the reverse is this graph; share it to avoid
            # rebuilding when engines ping-pong between directions.
            self._reverse._reverse = self
        return self._reverse

    def _build_reverse(self) -> "CSRGraph":
        n = self.num_vertices
        in_degrees = np.bincount(self.col_indices, minlength=n).astype(VERTEX_DTYPE)
        rev_offsets = np.zeros(n + 1, dtype=VERTEX_DTYPE)
        np.cumsum(in_degrees, out=rev_offsets[1:])
        sources, dests = self.edge_array()
        order = np.argsort(dests, kind="stable")
        rev_indices = sources[order]
        return CSRGraph(rev_offsets, rev_indices, validate=False)

    # ------------------------------------------------------------------
    # Convenience predicates
    # ------------------------------------------------------------------
    def has_edge(self, src: int, dst: int) -> bool:
        """True when at least one directed edge ``src -> dst`` exists."""
        self._check_vertex(dst)
        return bool(np.any(self.neighbors(src) == dst))

    def is_symmetric(self) -> bool:
        """True when every edge has a matching reverse edge (with equal
        multiplicity), i.e. the graph is effectively undirected."""
        fwd_src, fwd_dst = self.edge_array()
        rev = self.reverse()
        rev_src, rev_dst = rev.edge_array()
        fwd = np.lexsort((fwd_dst, fwd_src))
        bwd = np.lexsort((rev_dst, rev_src))
        return bool(
            np.array_equal(fwd_src[fwd], rev_src[bwd])
            and np.array_equal(fwd_dst[fwd], rev_dst[bwd])
        )

    def memory_bytes(self, vertex_bytes: int = 8) -> int:
        """Approximate CSR storage footprint in bytes.

        Used by the group-size capacity rule ``N <= (M - S - |JFQ|)/|SA|``
        from section 3 of the paper.
        """
        return vertex_bytes * (self.row_offsets.size + self.col_indices.size)

    def copy(self) -> "CSRGraph":
        """Deep copy (does not copy the cached reverse graph).

        The copy is mutable and unfingerprinted even when this graph is
        :meth:`frozen <freeze>` — fresh arrays, fresh ``_cache_id``.
        """
        return CSRGraph(
            self.row_offsets.copy(), self.col_indices.copy(), validate=False
        )

    # ------------------------------------------------------------------
    # Immutability
    # ------------------------------------------------------------------
    def freeze(self) -> "CSRGraph":
        """Make the CSR arrays read-only; returns ``self``.

        Every consumer that fingerprints a graph (`graph_cache_id`, shm
        publication, epoch snapshots) keys caches by its content, so an
        in-place mutation after fingerprinting would silently serve
        stale cached depth rows.  Freezing turns that bug into an
        immediate ``ValueError`` at the mutation site.  The cached
        outdegree vector and an already-built reverse CSR are frozen
        too (bottom-up traversal reads them); derived caches built
        *after* the freeze stay writeable but are recomputed from the
        frozen arrays, so they cannot drift.
        """
        for arr in (self.row_offsets, self.col_indices, self._out_degrees):
            if arr is not None:
                arr.flags.writeable = False
        if self._reverse is not None and self._reverse.row_offsets.flags.writeable:
            self._reverse.freeze()
        return self

    @property
    def frozen(self) -> bool:
        """True once :meth:`freeze` has made the CSR arrays read-only."""
        return not self.col_indices.flags.writeable

    # ------------------------------------------------------------------
    # Serialization (worker handoff)
    # ------------------------------------------------------------------
    def to_arrays(self) -> dict:
        """The graph as plain arrays plus its derived caches.

        The payload carries the cached outdegree vector and content
        fingerprint (when present) so that :meth:`from_arrays` — and
        therefore pickling — never re-derives them.  The lazily built
        reverse CSR is deliberately excluded: it is O(|E|) to ship and
        cheap to rebuild only where actually needed.
        """
        return {
            "row_offsets": self.row_offsets,
            "col_indices": self.col_indices,
            "out_degrees": self._out_degrees,
            "cache_id": self._cache_id,
        }

    @classmethod
    def from_arrays(
        cls,
        row_offsets: np.ndarray,
        col_indices: np.ndarray,
        out_degrees: Optional[np.ndarray] = None,
        cache_id: Optional[str] = None,
    ) -> "CSRGraph":
        """Rebuild a graph from :meth:`to_arrays` output without
        re-validating or re-deriving the cached degree vector."""
        graph = cls(row_offsets, col_indices, validate=False)
        if out_degrees is not None:
            graph._out_degrees = np.asarray(out_degrees, dtype=VERTEX_DTYPE)
        graph._cache_id = cache_id
        if cache_id is not None:
            # A fingerprint promises immutable content; carry the
            # promise across pickling the same way graph_cache_id
            # establishes it.
            graph.freeze()
        return graph

    def __reduce__(self):
        return (
            CSRGraph.from_arrays,
            (
                self.row_offsets,
                self.col_indices,
                self._out_degrees,
                self._cache_id,
            ),
        )


def empty_graph(num_vertices: int = 0) -> CSRGraph:
    """A graph with ``num_vertices`` vertices and no edges."""
    if num_vertices < 0:
        raise GraphError("num_vertices must be non-negative")
    return CSRGraph(
        np.zeros(num_vertices + 1, dtype=VERTEX_DTYPE),
        np.empty(0, dtype=VERTEX_DTYPE),
        validate=False,
    )
