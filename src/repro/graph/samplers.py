"""Graph sampling built on traversal.

The paper motivates BFS with web crawling ("breadth-first crawling
yields high-quality pages") and cites incremental graph-sampling work;
these samplers are the standard traversal-based ways to extract a
representative subgraph:

* :func:`snowball_sample` — BFS crawl to a vertex budget (what a
  breadth-first web crawler collects);
* :func:`forest_fire_sample` — recursive probabilistic burning
  (Leskovec et al.), preserving community structure;
* :func:`random_walk_sample` — classic random-walk vertex collection
  with restarts.

All samplers return induced subgraphs via
:func:`repro.graph.builders.subgraph` and are deterministic given a
seed.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional

import numpy as np

from repro.errors import GraphError
from repro.graph.builders import subgraph
from repro.graph.csr import CSRGraph


def snowball_sample(
    graph: CSRGraph,
    budget: int,
    seed_vertex: Optional[int] = None,
    rng_seed: int = 0,
) -> CSRGraph:
    """Breadth-first crawl until ``budget`` vertices are collected.

    When the component of the seed is exhausted before the budget, the
    crawl restarts from a fresh unvisited vertex (as a crawler with a
    URL frontier would).
    """
    _check_budget(graph, budget)
    rng = np.random.default_rng(rng_seed)
    visited = np.zeros(graph.num_vertices, dtype=bool)
    order: List[int] = []
    queue: deque = deque()

    def enqueue(v: int) -> None:
        visited[v] = True
        order.append(v)
        queue.append(v)

    start = (
        int(seed_vertex)
        if seed_vertex is not None
        else int(rng.integers(graph.num_vertices))
    )
    _check_vertex(graph, start)
    enqueue(start)
    while len(order) < budget:
        if not queue:
            remaining = np.flatnonzero(~visited)
            if remaining.size == 0:
                break
            enqueue(int(rng.choice(remaining)))
            continue
        v = queue.popleft()
        for w in graph.neighbors(v):
            if len(order) >= budget:
                break
            if not visited[w]:
                enqueue(int(w))
    return subgraph(graph, order)


def forest_fire_sample(
    graph: CSRGraph,
    budget: int,
    forward_probability: float = 0.7,
    seed_vertex: Optional[int] = None,
    rng_seed: int = 0,
) -> CSRGraph:
    """Forest-fire sampling: burn a geometric number of neighbors.

    From each burning vertex, ``Geometric(1 - p)`` unvisited neighbors
    catch fire (p = ``forward_probability``); dead fires restart at a
    random unvisited vertex until the budget is met.
    """
    _check_budget(graph, budget)
    if not 0.0 <= forward_probability < 1.0:
        raise GraphError("forward_probability must lie in [0, 1)")
    rng = np.random.default_rng(rng_seed)
    visited = np.zeros(graph.num_vertices, dtype=bool)
    order: List[int] = []
    frontier: deque = deque()

    def ignite(v: int) -> None:
        visited[v] = True
        order.append(v)
        frontier.append(v)

    start = (
        int(seed_vertex)
        if seed_vertex is not None
        else int(rng.integers(graph.num_vertices))
    )
    _check_vertex(graph, start)
    ignite(start)
    while len(order) < budget:
        if not frontier:
            remaining = np.flatnonzero(~visited)
            if remaining.size == 0:
                break
            ignite(int(rng.choice(remaining)))
            continue
        v = frontier.popleft()
        # dict.fromkeys deduplicates parallel edges, keeping first-seen
        # order deterministic before the shuffle.
        fresh = [
            w
            for w in dict.fromkeys(int(w) for w in graph.neighbors(v))
            if not visited[w]
        ]
        if not fresh:
            continue
        burn = min(
            len(fresh), int(rng.geometric(1.0 - forward_probability))
        )
        rng.shuffle(fresh)
        for w in fresh[:burn]:
            if len(order) >= budget:
                break
            ignite(w)
    return subgraph(graph, order)


def random_walk_sample(
    graph: CSRGraph,
    budget: int,
    restart_probability: float = 0.15,
    seed_vertex: Optional[int] = None,
    rng_seed: int = 0,
    max_steps: Optional[int] = None,
) -> CSRGraph:
    """Random-walk vertex collection with restarts.

    The walk jumps back to its start with ``restart_probability`` each
    step (and always on dead ends); after ``max_steps`` without filling
    the budget it teleports to an unvisited vertex, guaranteeing
    termination on disconnected graphs.
    """
    _check_budget(graph, budget)
    if not 0.0 <= restart_probability <= 1.0:
        raise GraphError("restart_probability must lie in [0, 1]")
    rng = np.random.default_rng(rng_seed)
    if max_steps is None:
        max_steps = 50 * budget
    visited = np.zeros(graph.num_vertices, dtype=bool)
    order: List[int] = []

    def collect(v: int) -> None:
        if not visited[v]:
            visited[v] = True
            order.append(v)

    start = (
        int(seed_vertex)
        if seed_vertex is not None
        else int(rng.integers(graph.num_vertices))
    )
    _check_vertex(graph, start)
    collect(start)
    current = start
    steps_since_progress = 0
    while len(order) < budget:
        neighbors = graph.neighbors(current)
        if neighbors.size == 0 or rng.random() < restart_probability:
            current = start
        else:
            current = int(neighbors[rng.integers(neighbors.size)])
        before = len(order)
        collect(current)
        steps_since_progress = (
            0 if len(order) > before else steps_since_progress + 1
        )
        if steps_since_progress >= max_steps:
            remaining = np.flatnonzero(~visited)
            if remaining.size == 0:
                break
            start = int(rng.choice(remaining))
            collect(start)
            current = start
            steps_since_progress = 0
    return subgraph(graph, order)


def _check_budget(graph: CSRGraph, budget: int) -> None:
    if budget <= 0:
        raise GraphError("budget must be positive")
    if graph.num_vertices == 0:
        raise GraphError("cannot sample an empty graph")


def _check_vertex(graph: CSRGraph, v: int) -> None:
    if not 0 <= v < graph.num_vertices:
        raise GraphError(f"vertex {v} out of range [0, {graph.num_vertices})")
