"""Graph substrate: CSR storage, builders, generators, I/O, and benchmarks.

The iBFS paper stores every graph in Compressed Sparse Row (CSR) format
with reversed edges kept alongside to support bottom-up traversal; this
subpackage provides that storage plus the Graph500/R-MAT/uniform
generators used to produce the paper's synthetic benchmarks and
laptop-scale stand-ins for its real-world graphs.
"""

from repro.graph.csr import CSRGraph
from repro.graph.builders import (
    from_edges,
    from_adjacency,
    to_undirected,
    add_reverse_edges,
    relabel_random,
    simplify,
    subgraph,
)
from repro.graph.generators import (
    kronecker,
    rmat,
    uniform_random,
    erdos_renyi,
    small_world,
    scale_free,
    star,
    path,
    complete,
    grid_2d,
)
from repro.graph.io import (
    read_edge_list,
    write_edge_list,
    read_dimacs,
    write_dimacs,
    read_weighted_dimacs,
    write_weighted_dimacs,
    save_csr,
    load_csr,
)
from repro.graph.samplers import (
    snowball_sample,
    forest_fire_sample,
    random_walk_sample,
)
from repro.graph.weighted import (
    WeightedCSRGraph,
    from_weighted_edges,
    with_random_weights,
    with_unit_weights,
)
from repro.graph.properties import (
    degree_histogram,
    degree_stats,
    connected_components,
    largest_component,
    is_connected,
    approximate_diameter,
    gini_coefficient,
)
from repro.graph.benchmarks import BENCHMARK_NAMES, benchmark_graph, benchmark_suite

__all__ = [
    "CSRGraph",
    "from_edges",
    "from_adjacency",
    "to_undirected",
    "add_reverse_edges",
    "relabel_random",
    "simplify",
    "subgraph",
    "kronecker",
    "rmat",
    "uniform_random",
    "erdos_renyi",
    "small_world",
    "scale_free",
    "star",
    "path",
    "complete",
    "grid_2d",
    "snowball_sample",
    "forest_fire_sample",
    "random_walk_sample",
    "WeightedCSRGraph",
    "from_weighted_edges",
    "with_random_weights",
    "with_unit_weights",
    "read_edge_list",
    "write_edge_list",
    "read_dimacs",
    "write_dimacs",
    "read_weighted_dimacs",
    "write_weighted_dimacs",
    "save_csr",
    "load_csr",
    "degree_histogram",
    "degree_stats",
    "connected_components",
    "largest_component",
    "is_connected",
    "approximate_diameter",
    "gini_coefficient",
    "BENCHMARK_NAMES",
    "benchmark_graph",
    "benchmark_suite",
]
