"""Graph serialization: edge lists, DIMACS-style files, and binary CSR.

The paper's datasets arrive as edge lists (SNAP, Graph500 output) or
DIMACS generator output and are converted to CSR; these routines provide
the same round trips for this reproduction's synthetic suites.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Union

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.builders import from_edge_arrays
from repro.graph.csr import CSRGraph, VERTEX_DTYPE

PathLike = Union[str, os.PathLike]

_CSR_MAGIC = b"REPROCSR"


def read_edge_list(
    path: PathLike,
    comments: str = "#",
    undirected: bool = False,
) -> CSRGraph:
    """Read a whitespace-separated ``src dst`` edge-list file.

    Lines starting with ``comments`` are skipped, except that a
    ``# repro edge list: N vertices, ...`` header (as written by
    :func:`write_edge_list`) fixes the vertex count, so trailing
    isolated vertices survive the round trip.  Raises
    :class:`~repro.errors.GraphFormatError` on malformed lines.
    """
    src = []
    dst = []
    num_vertices = None
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith(comments):
                marker = "repro edge list:"
                if marker in stripped:
                    tail = stripped.split(marker, 1)[1].split()
                    if len(tail) >= 2 and tail[1].startswith("vert"):
                        num_vertices = int(tail[0])
                continue
            parts = stripped.split()
            if len(parts) < 2:
                raise GraphFormatError(
                    f"{path}:{lineno}: expected 'src dst', got {stripped!r}"
                )
            try:
                src.append(int(parts[0]))
                dst.append(int(parts[1]))
            except ValueError as exc:
                raise GraphFormatError(
                    f"{path}:{lineno}: non-integer vertex id in {stripped!r}"
                ) from exc
    return from_edge_arrays(
        np.asarray(src, dtype=VERTEX_DTYPE),
        np.asarray(dst, dtype=VERTEX_DTYPE),
        num_vertices=num_vertices,
        undirected=undirected,
    )


def write_edge_list(graph: CSRGraph, path: PathLike) -> None:
    """Write the graph as ``src dst`` lines with a size header comment."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(
            f"# repro edge list: {graph.num_vertices} vertices, "
            f"{graph.num_edges} edges\n"
        )
        src, dst = graph.edge_array()
        for s, d in zip(src.tolist(), dst.tolist()):
            handle.write(f"{s} {d}\n")


def read_dimacs(path: PathLike) -> CSRGraph:
    """Read a DIMACS graph file (``p sp n m`` header, ``a u v [w]`` arcs).

    DIMACS vertex ids are 1-based; they are shifted to 0-based.
    """
    num_vertices = None
    src = []
    dst = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("c"):
                continue
            parts = stripped.split()
            if parts[0] == "p":
                if len(parts) < 4:
                    raise GraphFormatError(
                        f"{path}:{lineno}: malformed problem line {stripped!r}"
                    )
                num_vertices = int(parts[2])
            elif parts[0] in ("a", "e"):
                if num_vertices is None:
                    raise GraphFormatError(
                        f"{path}:{lineno}: arc line before problem line"
                    )
                if len(parts) < 3:
                    raise GraphFormatError(
                        f"{path}:{lineno}: malformed arc line {stripped!r}"
                    )
                src.append(int(parts[1]) - 1)
                dst.append(int(parts[2]) - 1)
            else:
                raise GraphFormatError(
                    f"{path}:{lineno}: unrecognized line type {parts[0]!r}"
                )
    if num_vertices is None:
        raise GraphFormatError(f"{path}: missing problem line")
    return from_edge_arrays(
        np.asarray(src, dtype=VERTEX_DTYPE),
        np.asarray(dst, dtype=VERTEX_DTYPE),
        num_vertices=num_vertices,
    )


def write_dimacs(graph: CSRGraph, path: PathLike) -> None:
    """Write the graph as a DIMACS shortest-path file (1-based arcs)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("c repro DIMACS export\n")
        handle.write(f"p sp {graph.num_vertices} {graph.num_edges}\n")
        src, dst = graph.edge_array()
        for s, d in zip(src.tolist(), dst.tolist()):
            handle.write(f"a {s + 1} {d + 1}\n")


def read_weighted_dimacs(path: PathLike):
    """Read a DIMACS shortest-path file keeping the arc weights.

    Returns a :class:`~repro.graph.weighted.WeightedCSRGraph`; arcs
    without a weight field default to weight 1.
    """
    from repro.graph.weighted import from_weighted_edges

    num_vertices = None
    triples = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("c"):
                continue
            parts = stripped.split()
            if parts[0] == "p":
                if len(parts) < 4:
                    raise GraphFormatError(
                        f"{path}:{lineno}: malformed problem line {stripped!r}"
                    )
                num_vertices = int(parts[2])
            elif parts[0] in ("a", "e"):
                if num_vertices is None:
                    raise GraphFormatError(
                        f"{path}:{lineno}: arc line before problem line"
                    )
                if len(parts) < 3:
                    raise GraphFormatError(
                        f"{path}:{lineno}: malformed arc line {stripped!r}"
                    )
                weight = float(parts[3]) if len(parts) > 3 else 1.0
                triples.append((int(parts[1]) - 1, int(parts[2]) - 1, weight))
            else:
                raise GraphFormatError(
                    f"{path}:{lineno}: unrecognized line type {parts[0]!r}"
                )
    if num_vertices is None:
        raise GraphFormatError(f"{path}: missing problem line")
    return from_weighted_edges(triples, num_vertices=num_vertices)


def write_weighted_dimacs(wgraph, path: PathLike) -> None:
    """Write a weighted graph as DIMACS ``a u v w`` arcs (1-based)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("c repro weighted DIMACS export\n")
        handle.write(f"p sp {wgraph.num_vertices} {wgraph.num_edges}\n")
        src, dst = wgraph.graph.edge_array()
        for s, d, w in zip(src.tolist(), dst.tolist(), wgraph.weights.tolist()):
            handle.write(f"a {s + 1} {d + 1} {w:g}\n")


def save_csr(graph: CSRGraph, path: PathLike) -> None:
    """Save the CSR arrays in a compact binary container."""
    with open(path, "wb") as handle:
        handle.write(_CSR_MAGIC)
        np.save(handle, graph.row_offsets, allow_pickle=False)
        np.save(handle, graph.col_indices, allow_pickle=False)


def load_csr(path: PathLike) -> CSRGraph:
    """Load a graph previously written by :func:`save_csr`."""
    with open(path, "rb") as handle:
        magic = handle.read(len(_CSR_MAGIC))
        if magic != _CSR_MAGIC:
            raise GraphFormatError(f"{path}: not a repro CSR file")
        row_offsets = np.load(handle, allow_pickle=False)
        col_indices = np.load(handle, allow_pickle=False)
    return CSRGraph(row_offsets, col_indices)
