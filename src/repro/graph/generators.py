"""Synthetic graph generators used by the paper's evaluation.

The paper builds its synthetic benchmarks with the Graph500 Kronecker
generator (KG0/KG1/KG2, ``(A, B, C) = (0.57, 0.19, 0.19)``), an R-MAT
variant with ``(0.45, 0.15, 0.15)`` (RM), and a uniform-outdegree random
generator (RD).  All generators here are deterministic given a seed.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.builders import from_edge_arrays
from repro.graph.csr import CSRGraph, VERTEX_DTYPE

#: Graph500 default Kronecker initiator probabilities.
GRAPH500_ABC = (0.57, 0.19, 0.19)

#: DIMACS R-MAT initiator used for the paper's RM graph.
RMAT_ABC = (0.45, 0.15, 0.15)


def _kronecker_edges(
    scale: int,
    num_edges: int,
    a: float,
    b: float,
    c: float,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample ``num_edges`` edges of a 2^scale-vertex Kronecker graph.

    This is the Graph500 reference sampling loop: each of the ``scale``
    bits of (src, dst) is drawn independently from the 2x2 initiator
    matrix [[a, b], [c, d]] with d = 1 - a - b - c.
    """
    d = 1.0 - a - b - c
    if d < -1e-9 or min(a, b, c) < 0:
        raise GraphError(f"invalid initiator probabilities: {(a, b, c)}")
    src = np.zeros(num_edges, dtype=VERTEX_DTYPE)
    dst = np.zeros(num_edges, dtype=VERTEX_DTYPE)
    ab = a + b
    c_norm = c / max(c + d, 1e-300)
    for _ in range(scale):
        src <<= 1
        dst <<= 1
        ii_bit = rng.random(num_edges) > ab
        jj_bit = rng.random(num_edges) > np.where(ii_bit, c_norm, a / max(ab, 1e-300))
        src |= ii_bit.astype(VERTEX_DTYPE)
        dst |= jj_bit.astype(VERTEX_DTYPE)
    return src, dst


def kronecker(
    scale: int,
    edge_factor: int = 16,
    abc: Tuple[float, float, float] = GRAPH500_ABC,
    seed: int = 0,
    undirected: bool = True,
    permute: bool = True,
) -> CSRGraph:
    """Graph500-style Kronecker graph with ``2**scale`` vertices.

    Parameters
    ----------
    scale:
        log2 of the vertex count.
    edge_factor:
        Directed edges sampled per vertex (Graph500 default 16).
    abc:
        Initiator probabilities ``(A, B, C)``; ``D = 1 - A - B - C``.
    seed:
        RNG seed; the generator is fully deterministic given a seed.
    undirected:
        When true (Graph500 semantics) each sampled edge also contributes
        its reverse.
    permute:
        Randomly permute vertex ids, as Graph500 requires, so vertex id
        does not correlate with degree.
    """
    if scale < 0:
        raise GraphError("scale must be non-negative")
    n = 1 << scale
    m = n * edge_factor
    rng = np.random.default_rng(seed)
    src, dst = _kronecker_edges(scale, m, *abc, rng)
    if permute:
        perm = rng.permutation(n).astype(VERTEX_DTYPE)
        src, dst = perm[src], perm[dst]
    return from_edge_arrays(src, dst, num_vertices=n, undirected=undirected)


def rmat(
    scale: int,
    edge_factor: int = 16,
    abc: Tuple[float, float, float] = RMAT_ABC,
    seed: int = 0,
    undirected: bool = True,
) -> CSRGraph:
    """R-MAT graph with the paper's RM initiator ``(0.45, 0.15, 0.15)``."""
    return kronecker(
        scale, edge_factor=edge_factor, abc=abc, seed=seed, undirected=undirected
    )


def uniform_random(
    num_vertices: int,
    out_degree: int,
    seed: int = 0,
    undirected: bool = True,
) -> CSRGraph:
    """Uniform-outdegree random graph (the paper's RD benchmark).

    Every vertex gets exactly ``out_degree`` out-edges with uniformly
    random destinations, so the outdegree distribution is flat — the
    regime where the paper reports GroupBy gains are smallest.
    """
    if num_vertices <= 0:
        raise GraphError("num_vertices must be positive")
    if out_degree < 0:
        raise GraphError("out_degree must be non-negative")
    rng = np.random.default_rng(seed)
    src = np.repeat(
        np.arange(num_vertices, dtype=VERTEX_DTYPE), out_degree
    )
    dst = rng.integers(0, num_vertices, size=src.size, dtype=VERTEX_DTYPE)
    return from_edge_arrays(
        src, dst, num_vertices=num_vertices, undirected=undirected
    )


def erdos_renyi(
    num_vertices: int,
    edge_probability: float,
    seed: int = 0,
    undirected: bool = True,
) -> CSRGraph:
    """G(n, p) random graph (binomially distributed degrees)."""
    if not 0.0 <= edge_probability <= 1.0:
        raise GraphError("edge_probability must lie in [0, 1]")
    rng = np.random.default_rng(seed)
    expected = num_vertices * (num_vertices - 1) * edge_probability
    if expected > 5e7:
        raise GraphError("erdos_renyi parameters would materialize too many edges")
    num_draws = rng.binomial(num_vertices * (num_vertices - 1), edge_probability)
    src = rng.integers(0, num_vertices, size=num_draws, dtype=VERTEX_DTYPE)
    dst = rng.integers(0, num_vertices, size=num_draws, dtype=VERTEX_DTYPE)
    keep = src != dst
    return from_edge_arrays(
        src[keep], dst[keep], num_vertices=num_vertices, undirected=undirected
    )


def small_world(
    num_vertices: int,
    k: int = 4,
    rewire_probability: float = 0.1,
    seed: int = 0,
) -> CSRGraph:
    """Watts–Strogatz small-world graph (ring lattice with rewiring)."""
    if k % 2 or k <= 0:
        raise GraphError("k must be a positive even number")
    if num_vertices <= k:
        raise GraphError("num_vertices must exceed k")
    rng = np.random.default_rng(seed)
    base = np.arange(num_vertices, dtype=VERTEX_DTYPE)
    src_parts = []
    dst_parts = []
    for hop in range(1, k // 2 + 1):
        dst = (base + hop) % num_vertices
        rewire = rng.random(num_vertices) < rewire_probability
        dst = np.where(
            rewire,
            rng.integers(0, num_vertices, size=num_vertices, dtype=VERTEX_DTYPE),
            dst,
        )
        keep = dst != base
        src_parts.append(base[keep])
        dst_parts.append(dst[keep])
    return from_edge_arrays(
        np.concatenate(src_parts),
        np.concatenate(dst_parts),
        num_vertices=num_vertices,
        undirected=True,
    )


def scale_free(
    num_vertices: int,
    attach: int = 4,
    seed: int = 0,
) -> CSRGraph:
    """Barabási–Albert preferential-attachment graph.

    Produces the hub-dominated degree structure that GroupBy Rule 2
    exploits (many low-degree sources sharing a high-outdegree vertex).
    """
    if attach <= 0:
        raise GraphError("attach must be positive")
    if num_vertices <= attach:
        raise GraphError("num_vertices must exceed attach")
    rng = np.random.default_rng(seed)
    # Repeated-endpoint list implements preferential attachment in O(m).
    targets = list(range(attach))
    endpoint_pool = list(range(attach))
    src = []
    dst = []
    for v in range(attach, num_vertices):
        chosen = rng.choice(endpoint_pool, size=attach, replace=False)
        for t in chosen:
            src.append(v)
            dst.append(int(t))
        endpoint_pool.extend(int(t) for t in chosen)
        endpoint_pool.extend([v] * attach)
    return from_edge_arrays(
        np.asarray(src, dtype=VERTEX_DTYPE),
        np.asarray(dst, dtype=VERTEX_DTYPE),
        num_vertices=num_vertices,
        undirected=True,
    )


def star(num_leaves: int, center: int = 0) -> CSRGraph:
    """Star graph: ``num_leaves`` vertices all attached to one hub."""
    if num_leaves < 0:
        raise GraphError("num_leaves must be non-negative")
    n = num_leaves + 1
    leaves = np.asarray(
        [v for v in range(n) if v != center], dtype=VERTEX_DTYPE
    )
    centers = np.full(num_leaves, center, dtype=VERTEX_DTYPE)
    return from_edge_arrays(centers, leaves, num_vertices=n, undirected=True)


def path(num_vertices: int) -> CSRGraph:
    """Path graph 0 - 1 - ... - (n-1); worst case for level count."""
    if num_vertices <= 0:
        raise GraphError("num_vertices must be positive")
    src = np.arange(num_vertices - 1, dtype=VERTEX_DTYPE)
    return from_edge_arrays(
        src, src + 1, num_vertices=num_vertices, undirected=True
    )


def grid_2d(rows: int, cols: int) -> CSRGraph:
    """2-D grid (4-neighborhood), the road-network-like regime.

    Section 9 contrasts iBFS's small-world target graphs with the road
    networks PHAST [61] handles: grids have large diameter and flat
    degrees, so direction optimization and frontier sharing behave very
    differently here — useful for boundary tests.
    """
    if rows <= 0 or cols <= 0:
        raise GraphError("rows and cols must be positive")
    idx = np.arange(rows * cols, dtype=VERTEX_DTYPE).reshape(rows, cols)
    src_parts = []
    dst_parts = []
    if cols > 1:
        src_parts.append(idx[:, :-1].ravel())
        dst_parts.append(idx[:, 1:].ravel())
    if rows > 1:
        src_parts.append(idx[:-1, :].ravel())
        dst_parts.append(idx[1:, :].ravel())
    if not src_parts:
        return from_edge_arrays(
            np.empty(0, dtype=VERTEX_DTYPE),
            np.empty(0, dtype=VERTEX_DTYPE),
            num_vertices=rows * cols,
        )
    return from_edge_arrays(
        np.concatenate(src_parts),
        np.concatenate(dst_parts),
        num_vertices=rows * cols,
        undirected=True,
    )


def complete(num_vertices: int) -> CSRGraph:
    """Complete graph K_n (every depth is 0 or 1)."""
    if num_vertices <= 0:
        raise GraphError("num_vertices must be positive")
    src, dst = np.meshgrid(
        np.arange(num_vertices, dtype=VERTEX_DTYPE),
        np.arange(num_vertices, dtype=VERTEX_DTYPE),
        indexing="ij",
    )
    mask = src != dst
    return from_edge_arrays(
        src[mask].ravel(), dst[mask].ravel(), num_vertices=num_vertices
    )
