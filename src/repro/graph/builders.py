"""Builders converting edge lists and adjacency structures into CSR.

These preserve input edge order within each source vertex, as the paper
does when translating edge-list datasets into CSR ("we translate them
into CSR while preserving the edge sequence").
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph, VERTEX_DTYPE


def from_edges(
    edges: Iterable[Tuple[int, int]],
    num_vertices: Optional[int] = None,
    undirected: bool = False,
) -> CSRGraph:
    """Build a :class:`CSRGraph` from an iterable of ``(src, dst)`` pairs.

    Parameters
    ----------
    edges:
        Directed edge pairs.  Multi-edges and self-loops are kept, matching
        the paper's TEPS definition ("counting any multiple edges and
        self-loops").
    num_vertices:
        Total vertex count; inferred as ``max id + 1`` when omitted.
    undirected:
        When true every pair also contributes the reversed edge, mirroring
        "for undirected graphs, each edge is considered as two directed
        edges".
    """
    edge_list = list(edges)
    if edge_list:
        src = np.fromiter((e[0] for e in edge_list), dtype=VERTEX_DTYPE)
        dst = np.fromiter((e[1] for e in edge_list), dtype=VERTEX_DTYPE)
    else:
        src = np.empty(0, dtype=VERTEX_DTYPE)
        dst = np.empty(0, dtype=VERTEX_DTYPE)
    return from_edge_arrays(src, dst, num_vertices=num_vertices, undirected=undirected)


def from_edge_arrays(
    src: np.ndarray,
    dst: np.ndarray,
    num_vertices: Optional[int] = None,
    undirected: bool = False,
) -> CSRGraph:
    """Build a :class:`CSRGraph` from parallel source/destination arrays."""
    src = np.asarray(src, dtype=VERTEX_DTYPE)
    dst = np.asarray(dst, dtype=VERTEX_DTYPE)
    if src.shape != dst.shape or src.ndim != 1:
        raise GraphError("src and dst must be 1-D arrays of equal length")
    if src.size and (src.min() < 0 or dst.min() < 0):
        raise GraphError("vertex ids must be non-negative")
    if undirected:
        src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
    if num_vertices is None:
        num_vertices = int(max(src.max(), dst.max()) + 1) if src.size else 0
    elif src.size and max(int(src.max()), int(dst.max())) >= num_vertices:
        raise GraphError(
            f"edge endpoint exceeds num_vertices={num_vertices}"
        )

    degrees = np.bincount(src, minlength=num_vertices).astype(VERTEX_DTYPE)
    offsets = np.zeros(num_vertices + 1, dtype=VERTEX_DTYPE)
    np.cumsum(degrees, out=offsets[1:])
    order = np.argsort(src, kind="stable")
    return CSRGraph(offsets, dst[order], validate=False)


def from_adjacency(adjacency: Sequence[Sequence[int]]) -> CSRGraph:
    """Build a :class:`CSRGraph` from a list of per-vertex neighbor lists."""
    degrees = np.fromiter(
        (len(neighbors) for neighbors in adjacency),
        dtype=VERTEX_DTYPE,
        count=len(adjacency),
    )
    offsets = np.zeros(len(adjacency) + 1, dtype=VERTEX_DTYPE)
    np.cumsum(degrees, out=offsets[1:])
    if offsets[-1]:
        flat = np.concatenate(
            [np.asarray(n, dtype=VERTEX_DTYPE) for n in adjacency if len(n)]
        )
    else:
        flat = np.empty(0, dtype=VERTEX_DTYPE)
    return CSRGraph(offsets, flat)


def to_undirected(graph: CSRGraph) -> CSRGraph:
    """Symmetrize ``graph``: every directed edge gains its reverse."""
    src, dst = graph.edge_array()
    return from_edge_arrays(
        np.concatenate([src, dst]),
        np.concatenate([dst, src]),
        num_vertices=graph.num_vertices,
    )


def add_reverse_edges(graph: CSRGraph) -> CSRGraph:
    """Alias of :func:`to_undirected`, named after the paper's directed-graph
    preprocessing ("we also store the reversed edges to support the
    bottom-up traversal")."""
    return to_undirected(graph)


def relabel_random(graph: CSRGraph, seed: int = 0) -> CSRGraph:
    """Apply a random vertex-id permutation, preserving structure.

    Useful in tests: BFS depth multisets must be invariant under
    relabeling.
    """
    rng = np.random.default_rng(seed)
    perm = rng.permutation(graph.num_vertices).astype(VERTEX_DTYPE)
    src, dst = graph.edge_array()
    return from_edge_arrays(perm[src], perm[dst], num_vertices=graph.num_vertices)


def simplify(graph: CSRGraph, remove_self_loops: bool = True) -> CSRGraph:
    """Collapse parallel edges (and by default drop self-loops).

    BFS depths are unaffected by multiplicity, but path-counting
    algorithms (betweenness, sigma) follow the simple-graph convention;
    use this before comparing against tools that collapse multi-edges.
    """
    src, dst = graph.edge_array()
    if remove_self_loops:
        keep = src != dst
        src, dst = src[keep], dst[keep]
    if src.size:
        pairs = np.unique(np.stack([src, dst], axis=1), axis=0)
        src, dst = pairs[:, 0], pairs[:, 1]
    return from_edge_arrays(src, dst, num_vertices=graph.num_vertices)


def subgraph(graph: CSRGraph, vertices: Sequence[int]) -> CSRGraph:
    """Induced subgraph on ``vertices``, relabeled to ``0..len(vertices)-1``
    in the given order."""
    keep = np.asarray(vertices, dtype=VERTEX_DTYPE)
    if keep.size != np.unique(keep).size:
        raise GraphError("subgraph vertex list contains duplicates")
    mapping = -np.ones(graph.num_vertices, dtype=VERTEX_DTYPE)
    mapping[keep] = np.arange(keep.size, dtype=VERTEX_DTYPE)
    src, dst = graph.edge_array()
    mask = (mapping[src] >= 0) & (mapping[dst] >= 0)
    return from_edge_arrays(
        mapping[src[mask]], mapping[dst[mask]], num_vertices=int(keep.size)
    )
