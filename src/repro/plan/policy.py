"""Pluggable per-level traversal policies.

A :class:`Policy` is a reusable, picklable description of how traversal
decisions are made; :meth:`Policy.session` instantiates the per-run
state machine (:class:`PolicySession`) that actually emits
:class:`~repro.plan.types.LevelDecision` objects:

* :class:`HeuristicPolicy` — today's behavior, consolidated: the
  Beamer alpha/beta state machine per instance (or one per-group vote),
  with fixed kernel/vector-width/snapshot choices.  Bit-identical to
  the pre-planner engines; the equivalence suite pins it against
  :mod:`repro.kernels.reference`.
* :class:`FixedPolicy` — constant decisions, optionally switching
  direction at a fixed level.  The baselines reduce to presets over
  this (B40C and SpMM-BC are ``FixedPolicy(direction="td")``).
* :class:`RecordedPolicy` — replays a :class:`~repro.plan.types.RunPlan`
  verbatim, skipping heuristic evaluation entirely
  (``wants_stats = False``, so engines do not even materialize the
  per-level statistics).

:class:`DirectionPolicy` — the original Beamer state machine from
``repro.bfs.direction`` — lives here now as the heuristic's step
function and as the legacy engine-constructor API (every engine still
accepts one and wraps it into an equivalent :class:`HeuristicPolicy`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, List, Optional

from repro.errors import TraversalError
from repro.plan.types import (
    KERNEL_VARIANTS,
    SNAPSHOT_STRATEGIES,
    VECTOR_WIDTHS,
    Direction,
    LevelDecision,
    LevelStats,
    RunPlan,
)

DIRECTION_MODES = ("per-instance", "per-group")


@dataclass
class DirectionPolicy:
    """Per-instance direction state machine (Beamer-style, as used by
    Enterprise).

    "BFS typically starts the traversal in top-down and switches to
    bottom-up in a later stage" (section 2).  The standard switch rule
    compares the work remaining in each direction: go bottom-up when
    the frontier's out-edge count exceeds ``1/alpha`` of the unexplored
    edge count, and return to top-down when the frontier shrinks below
    ``|V| / beta`` vertices.

    Parameters
    ----------
    alpha:
        Top-down -> bottom-up threshold (Beamer's default 14); must be
        positive — zero or negative values would make the switch rule
        vacuous or inverted.
    beta:
        Bottom-up -> top-down threshold (Beamer's default 24); must be
        positive for the same reason.
    allow_bottom_up:
        Disable to model top-down-only systems (B40C, SpMM-BC).
    sticky:
        When true (the paper's GPU setting) an instance that switched to
        bottom-up never switches back; the bitwise status array requires
        monotone visited bits, which a return to top-down would not
        break, but Enterprise-style GPU BFS stays bottom-up once the
        frontier covers the graph's dense core.
    """

    alpha: float = 14.0
    beta: float = 24.0
    allow_bottom_up: bool = True
    sticky: bool = True

    def __post_init__(self) -> None:
        if not self.alpha > 0:
            raise TraversalError(
                f"alpha must be positive; got {self.alpha!r} "
                f"(alpha <= 0 disables or inverts the top-down switch rule)"
            )
        if not self.beta > 0:
            raise TraversalError(
                f"beta must be positive; got {self.beta!r} "
                f"(beta <= 0 disables or inverts the bottom-up switch rule)"
            )

    def initial(self) -> Direction:
        return Direction.TOP_DOWN

    def next_direction(
        self,
        current: Direction,
        frontier_edges: int,
        unexplored_edges: int,
        frontier_vertices: int,
        num_vertices: int,
    ) -> Direction:
        """Direction for the next level given this level's outcome."""
        if not self.allow_bottom_up:
            return Direction.TOP_DOWN
        if current is Direction.TOP_DOWN:
            if frontier_edges * self.alpha > unexplored_edges and frontier_edges > 0:
                return Direction.BOTTOM_UP
            return Direction.TOP_DOWN
        if self.sticky:
            return Direction.BOTTOM_UP
        if frontier_vertices * self.beta < num_vertices:
            return Direction.TOP_DOWN
        return Direction.BOTTOM_UP


class PolicySession:
    """Per-run decision state machine produced by :meth:`Policy.session`.

    The engine asks :meth:`initial` for the first executed level's
    decision and :meth:`next` — with the previous level's observed
    :class:`~repro.plan.types.LevelStats` — for each subsequent one.
    Sessions with ``wants_stats = False`` (replay) receive ``None``
    instead of stats, and engines skip materializing them.
    """

    #: Whether :meth:`next` consumes observed level statistics.
    wants_stats: bool = True

    def initial(self) -> LevelDecision:
        raise NotImplementedError

    def next(self, stats: Optional[LevelStats]) -> LevelDecision:
        raise NotImplementedError


class Policy:
    """Base of every planner policy.

    Subclasses are value-comparable dataclasses (so plans and engine
    specs pickle across the exec task protocol) exposing
    :attr:`allow_bottom_up` — whether an engine must build the reverse
    CSR up front — and :meth:`session`.
    """

    name: ClassVar[str] = "policy"
    allow_bottom_up: bool = True

    def session(
        self, group_size: int, num_vertices: int, total_edges: int
    ) -> PolicySession:
        raise NotImplementedError


def _validate_knobs(kernel: str, vector_width: int, snapshot: str) -> None:
    if kernel not in KERNEL_VARIANTS:
        raise TraversalError(
            f"kernel must be one of {KERNEL_VARIANTS}; got {kernel!r}"
        )
    if vector_width not in VECTOR_WIDTHS:
        raise TraversalError(
            f"vector_width must be one of {VECTOR_WIDTHS}; got {vector_width}"
        )
    if snapshot not in SNAPSHOT_STRATEGIES:
        raise TraversalError(
            f"snapshot must be one of {SNAPSHOT_STRATEGIES}; got {snapshot!r}"
        )


@dataclass(frozen=True)
class HeuristicPolicy(Policy):
    """The consolidated pre-planner heuristics, bit-identical.

    Direction follows the Beamer state machine (:class:`DirectionPolicy`)
    either per instance (iBFS's mixed-direction kernel) or by one
    per-group vote over mean frontier statistics — exactly the two code
    paths :class:`~repro.core.bitwise.BitwiseTraversal` used to fork
    internally.  Kernel variant, vector width, snapshot strategy, and
    early termination are the constants the engines used to hard-code.
    """

    name: ClassVar[str] = "heuristic"

    alpha: float = 14.0
    beta: float = 24.0
    allow_bottom_up: bool = True
    sticky: bool = True
    direction_mode: str = "per-instance"
    early_termination: bool = True
    vector_width: int = 1
    kernel: str = "auto"
    snapshot: str = "dirty"

    def __post_init__(self) -> None:
        # Reuse DirectionPolicy's alpha/beta validation verbatim.
        DirectionPolicy(
            self.alpha, self.beta, self.allow_bottom_up, self.sticky
        )
        if self.direction_mode not in DIRECTION_MODES:
            raise TraversalError(
                f"direction_mode must be one of {DIRECTION_MODES}; "
                f"got {self.direction_mode!r}"
            )
        _validate_knobs(self.kernel, self.vector_width, self.snapshot)

    @classmethod
    def from_direction_policy(
        cls,
        policy: DirectionPolicy,
        direction_mode: str = "per-instance",
        early_termination: bool = True,
        vector_width: int = 1,
        kernel: str = "auto",
        snapshot: str = "dirty",
    ) -> "HeuristicPolicy":
        """Wrap a legacy :class:`DirectionPolicy` plus the engine
        constructor knobs into the equivalent planner policy."""
        return cls(
            alpha=policy.alpha,
            beta=policy.beta,
            allow_bottom_up=policy.allow_bottom_up,
            sticky=policy.sticky,
            direction_mode=direction_mode,
            early_termination=early_termination,
            vector_width=vector_width,
            kernel=kernel,
            snapshot=snapshot,
        )

    def session(
        self, group_size: int, num_vertices: int, total_edges: int
    ) -> PolicySession:
        return _HeuristicSession(self, group_size, num_vertices)


class _HeuristicSession(PolicySession):
    """Beamer state per instance, stepped exactly like the old loops."""

    def __init__(
        self, policy: HeuristicPolicy, group_size: int, num_vertices: int
    ) -> None:
        self._policy = policy
        self._step = DirectionPolicy(
            alpha=policy.alpha,
            beta=policy.beta,
            allow_bottom_up=policy.allow_bottom_up,
            sticky=policy.sticky,
        )
        self._group_size = group_size
        self._num_vertices = num_vertices
        self._directions: List[Direction] = [self._step.initial()] * group_size

    def _decision(self) -> LevelDecision:
        p = self._policy
        return LevelDecision(
            directions=tuple(self._directions),
            kernel=p.kernel,
            vector_width=p.vector_width,
            snapshot=p.snapshot,
            early_termination=p.early_termination,
        )

    def initial(self) -> LevelDecision:
        return self._decision()

    def next(self, stats: Optional[LevelStats]) -> LevelDecision:
        assert stats is not None
        step = self._step
        n = self._num_vertices
        if self._policy.direction_mode == "per-instance":
            for j in range(self._group_size):
                if not stats.active[j]:
                    continue
                self._directions[j] = step.next_direction(
                    self._directions[j],
                    int(stats.frontier_edges[j]),
                    int(stats.unexplored_edges[j]),
                    int(stats.frontier_vertices[j]),
                    n,
                )
            return self._decision()
        # Per-group: one vote on aggregate statistics; every live
        # instance follows it (the "still" per-instance Direction state
        # machine sees the mean instance).
        survivors = [j for j in range(self._group_size) if stats.active[j]]
        if survivors:
            live = len(survivors)
            group_frontier_edges = sum(
                int(stats.frontier_edges[j]) for j in survivors
            )
            group_unexplored = sum(
                int(stats.unexplored_edges[j]) for j in survivors
            )
            group_frontier_count = sum(
                int(stats.frontier_vertices[j]) for j in survivors
            )
            voted = step.next_direction(
                self._directions[survivors[0]],
                group_frontier_edges // live,
                group_unexplored // live,
                group_frontier_count // live,
                n,
            )
            for j in survivors:
                self._directions[j] = voted
        return self._decision()


@dataclass(frozen=True)
class FixedPolicy(Policy):
    """Constant decisions, optionally switching direction at one level.

    ``direction`` is every instance's direction from level 0;
    ``switch_level`` (when given) flips all instances from top-down to
    bottom-up at that depth, modeling systems with a static rather than
    observed switch point.  B40C and SpMM-BC are
    ``FixedPolicy(direction="td")``.
    """

    name: ClassVar[str] = "fixed"

    direction: str = "td"
    switch_level: Optional[int] = None
    early_termination: bool = True
    vector_width: int = 1
    kernel: str = "auto"
    snapshot: str = "dirty"

    def __post_init__(self) -> None:
        if self.direction not in ("td", "bu"):
            raise TraversalError(
                f"direction must be 'td' or 'bu'; got {self.direction!r}"
            )
        if self.switch_level is not None:
            if self.direction != "td":
                raise TraversalError(
                    "switch_level only applies to direction='td'"
                )
            if self.switch_level <= 0:
                raise TraversalError("switch_level must be positive")
        _validate_knobs(self.kernel, self.vector_width, self.snapshot)

    @property
    def allow_bottom_up(self) -> bool:  # type: ignore[override]
        return self.direction == "bu" or self.switch_level is not None

    def session(
        self, group_size: int, num_vertices: int, total_edges: int
    ) -> PolicySession:
        return _FixedSession(self, group_size)


class _FixedSession(PolicySession):
    wants_stats = False

    def __init__(self, policy: FixedPolicy, group_size: int) -> None:
        self._policy = policy
        self._group_size = group_size
        self._level = 0

    def _decision(self) -> LevelDecision:
        p = self._policy
        direction = Direction(p.direction)
        if p.switch_level is not None and self._level >= p.switch_level:
            direction = Direction.BOTTOM_UP
        return LevelDecision(
            directions=(direction,) * self._group_size,
            kernel=p.kernel,
            vector_width=p.vector_width,
            snapshot=p.snapshot,
            early_termination=p.early_termination,
        )

    def initial(self) -> LevelDecision:
        decision = self._decision()
        self._level += 1
        return decision

    def next(self, stats: Optional[LevelStats]) -> LevelDecision:
        decision = self._decision()
        self._level += 1
        return decision


class RecordedPolicy(Policy):
    """Replay a recorded :class:`~repro.plan.types.RunPlan` verbatim.

    The session pops the recorded decisions in order — no heuristic is
    evaluated and no level statistics are materialized.  A replay that
    runs past the recorded horizon (e.g. a larger ``max_depth`` than
    the recording) repeats the final decision; directions only affect
    cost, never correctness, so this is always safe.
    """

    name: ClassVar[str] = "recorded"

    def __init__(self, plan: RunPlan) -> None:
        if len(plan) == 0:
            raise TraversalError("cannot replay an empty RunPlan")
        self.plan = plan
        # A replayed run re-records the same plan it executes; keeping
        # the originating policy's name makes the re-recorded plan
        # compare equal to the original.
        self.name = plan.policy

    @property
    def allow_bottom_up(self) -> bool:  # type: ignore[override]
        return self.plan.needs_bottom_up

    def session(
        self, group_size: int, num_vertices: int, total_edges: int
    ) -> PolicySession:
        if self.plan.group_size != group_size:
            raise TraversalError(
                f"recorded plan is for group size {self.plan.group_size}, "
                f"not {group_size}"
            )
        return _RecordedSession(self.plan)


class _RecordedSession(PolicySession):
    wants_stats = False

    def __init__(self, plan: RunPlan) -> None:
        self._decisions = plan.decisions
        self._next = 0

    def _pop(self) -> LevelDecision:
        if self._next < len(self._decisions):
            decision = self._decisions[self._next]
            self._next += 1
            return decision
        return self._decisions[-1]

    def initial(self) -> LevelDecision:
        return self._pop()

    def next(self, stats: Optional[LevelStats]) -> LevelDecision:
        return self._pop()


def planner_cache_name(planner: Optional[Policy]) -> str:
    """The policy name an engine records into its cache key.

    ``None`` resolves exactly as the engines do: the legacy
    :class:`DirectionPolicy` knobs wrap into a :class:`HeuristicPolicy`,
    so the default planner's cache name is ``"heuristic"``.  Cache-key
    derivation (:meth:`repro.runtime.SubstrateSpec.engine_key`) uses
    this instead of constructing a throwaway engine.
    """
    return planner.name if planner is not None else HeuristicPolicy.name
