"""Cost-model-driven per-level policy.

:class:`AdaptivePolicy` replaces the fixed alpha/beta thresholds with a
direct work estimate in the spirit of the gpusim cost model: each level
it compares the edges a top-down expansion would touch (the frontier's
out-degree sum) against the inspections a bottom-up scan is expected to
perform (unvisited vertices times the expected probes before an early
hit), and directs each live instance down the cheaper side.  It also
picks the vector width and kernel variant from the group's lane count
and switches the workspace to full snapshots on dense levels, where a
dirty-row stash would touch most rows anyway.

All its choices affect *cost only* — depths and the simulated traversal
counters that depend on direction differ from :class:`HeuristicPolicy`
exactly as two different alpha/beta settings would, but every policy
produces correct depths.  ``benchmarks/bench_plan_policies.py``
quantifies the difference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, List, Optional

import repro.native as native
from repro.errors import TraversalError
from repro.plan.policy import Policy, PolicySession
from repro.plan.types import Direction, LevelDecision, LevelStats


@dataclass(frozen=True)
class AdaptivePolicy(Policy):
    """Pick direction/kernel/width per level from observed frontier stats.

    Parameters
    ----------
    probe_discount:
        Expected fraction of a bottom-up vertex's parent list inspected
        before early termination hits (section 6 reports most lookups
        stop within the first few parents on power-law graphs).
    margin:
        Bottom-up must beat top-down by this factor before switching —
        a hysteresis band so borderline levels don't flap.
    snapshot_threshold:
        Switch the workspace to full snapshots when the level's frontier
        covers at least this fraction of the graph's vertices.
    allow_bottom_up:
        Disable to restrict the model to top-down costs.
    early_termination:
        Arm bottom-up early termination (the probe discount assumes it).
    """

    name: ClassVar[str] = "adaptive"

    probe_discount: float = 0.15
    margin: float = 1.25
    snapshot_threshold: float = 0.20
    allow_bottom_up: bool = True
    early_termination: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.probe_discount <= 1.0:
            raise TraversalError(
                f"probe_discount must be in (0, 1]; got {self.probe_discount}"
            )
        if self.margin < 1.0:
            raise TraversalError(
                f"margin must be >= 1.0; got {self.margin}"
            )
        if not 0.0 < self.snapshot_threshold <= 1.0:
            raise TraversalError(
                "snapshot_threshold must be in (0, 1]; "
                f"got {self.snapshot_threshold}"
            )

    @classmethod
    def for_device(cls, device) -> "AdaptivePolicy":
        """Tune the probe discount to a device's memory/compute balance.

        Wider memory buses amortize the bottom-up scan's scattered
        loads better, so high-bandwidth parts get a deeper discount.
        """
        bandwidth = float(getattr(device, "mem_bandwidth_gbps", 320.0))
        discount = 0.25 - min(bandwidth, 1000.0) / 8000.0
        return cls(probe_discount=max(0.05, min(0.25, discount)))

    def session(
        self, group_size: int, num_vertices: int, total_edges: int
    ) -> PolicySession:
        return _AdaptiveSession(self, group_size, num_vertices, total_edges)


class _AdaptiveSession(PolicySession):
    def __init__(
        self,
        policy: AdaptivePolicy,
        group_size: int,
        num_vertices: int,
        total_edges: int,
    ) -> None:
        self._policy = policy
        self._group_size = group_size
        self._n = max(1, num_vertices)
        self._avg_degree = total_edges / self._n
        # Lanes = status words per group; one 64-bit word per 64 sources.
        lanes = (group_size + 63) // 64
        if lanes >= 4:
            self._vector_width = 4
        elif lanes >= 2:
            self._vector_width = 2
        else:
            self._vector_width = 1
        # Resolve "auto" now so the recorded plan names the variant the
        # host actually ran: the compiled backend when it loads, else
        # the flat single-lane specialization / generic numpy passes.
        self._kernel = native.resolve_kernel("auto", lanes)
        self._directions: List[Direction] = [Direction.TOP_DOWN] * group_size
        self._snapshot = "dirty"

    def _decision(self) -> LevelDecision:
        return LevelDecision(
            directions=tuple(self._directions),
            kernel=self._kernel,
            vector_width=self._vector_width,
            snapshot=self._snapshot,
            early_termination=self._policy.early_termination,
        )

    def initial(self) -> LevelDecision:
        return self._decision()

    def next(self, stats: Optional[LevelStats]) -> LevelDecision:
        assert stats is not None
        p = self._policy
        n = self._n
        dense = 0
        live = 0
        for j in range(self._group_size):
            if not stats.active[j]:
                continue
            live += 1
            frontier_vertices = int(stats.frontier_vertices[j])
            if frontier_vertices >= p.snapshot_threshold * n:
                dense += 1
            if not p.allow_bottom_up:
                self._directions[j] = Direction.TOP_DOWN
                continue
            # Top-down cost: expand every frontier out-edge.
            td_cost = float(stats.frontier_edges[j])
            # Bottom-up cost: every unvisited vertex probes its parent
            # list until it hits a frontier member.  The expected probe
            # count shrinks as the frontier covers more of the graph.
            unvisited = max(0, n - int(stats.visited_vertices[j]))
            frontier_fraction = max(frontier_vertices / n, 1.0 / n)
            probes = min(self._avg_degree, 1.0 / frontier_fraction)
            bu_cost = unvisited * probes * p.probe_discount
            if td_cost > bu_cost * p.margin and td_cost > 0:
                self._directions[j] = Direction.BOTTOM_UP
            elif bu_cost > td_cost * p.margin:
                self._directions[j] = Direction.TOP_DOWN
            # Within the hysteresis band: keep the current direction.
        self._snapshot = "full" if live and dense * 2 >= live else "dirty"
        return self._decision()
