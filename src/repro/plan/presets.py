"""Named policy presets for the CLI and the baseline systems.

The baselines are, under the planner, nothing but policy choices over
the shared traversal loop:

* B40C and SpMM-BC traverse top-down only → ``FixedPolicy("td")``;
* MS-BFS keeps the direction heuristic but has no early termination →
  ``HeuristicPolicy(early_termination=False)``;
* CPU-iBFS is the full heuristic stack → ``HeuristicPolicy()``.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import TraversalError
from repro.plan.adaptive import AdaptivePolicy
from repro.plan.policy import FixedPolicy, HeuristicPolicy, Policy

#: Names accepted by ``--policy`` on ``repro run`` / ``repro serve`` /
#: ``repro plan``.
POLICY_NAMES = ("heuristic", "adaptive", "td-only", "no-early-termination")


def make_policy(
    name: str, device=None, kernel: Optional[str] = None
) -> Policy:
    """Build a policy from its CLI name.

    ``kernel`` overrides the policy's kernel-variant knob (``--kernel``
    on the CLI); the adaptive policy resolves the variant itself per
    session, so an explicit override there is rejected.
    """
    if name == "adaptive":
        if kernel is not None:
            raise TraversalError(
                "the adaptive policy resolves the kernel variant itself; "
                "--kernel only applies to the fixed/heuristic policies"
            )
        if device is not None:
            return AdaptivePolicy.for_device(device)
        return AdaptivePolicy()
    knobs = {} if kernel is None else {"kernel": kernel}
    if name == "heuristic":
        return HeuristicPolicy(**knobs)
    if name == "td-only":
        return FixedPolicy(direction="td", **knobs)
    if name == "no-early-termination":
        return HeuristicPolicy(early_termination=False, **knobs)
    raise TraversalError(
        f"unknown policy {name!r}; expected one of {POLICY_NAMES}"
    )


def b40c_policy() -> FixedPolicy:
    """B40C: top-down-only, no status-array tricks."""
    return FixedPolicy(direction="td")


def spmm_bc_policy() -> FixedPolicy:
    """SpMM-style batched BFS: top-down-only frontier products."""
    return FixedPolicy(direction="td")


def msbfs_policy() -> HeuristicPolicy:
    """MS-BFS: direction-switching but no bottom-up early termination."""
    return HeuristicPolicy(early_termination=False)


def cpu_ibfs_policy(
    alpha: Optional[float] = None, beta: Optional[float] = None
) -> HeuristicPolicy:
    """CPU port of the full iBFS heuristic stack."""
    kwargs = {}
    if alpha is not None:
        kwargs["alpha"] = alpha
    if beta is not None:
        kwargs["beta"] = beta
    return HeuristicPolicy(**kwargs)
