"""repro.plan — the unified per-level traversal planner.

One layer owns every per-level choice the engines used to scatter:
traversal direction, bottom-up kernel variant, vector load width,
workspace snapshot strategy, and early termination.  Policies produce
typed :class:`LevelDecision` objects; engines execute them and record
the sequence as a :class:`RunPlan`, which replays bit-identically via
:class:`RecordedPolicy`.
"""

from repro.plan.adaptive import AdaptivePolicy
from repro.plan.policy import (
    DIRECTION_MODES,
    DirectionPolicy,
    FixedPolicy,
    HeuristicPolicy,
    Policy,
    PolicySession,
    RecordedPolicy,
    planner_cache_name,
)
from repro.plan.presets import POLICY_NAMES, make_policy
from repro.plan.types import (
    EXCHANGE_FORMATS,
    KERNEL_VARIANTS,
    SNAPSHOT_STRATEGIES,
    VECTOR_WIDTHS,
    Direction,
    LevelDecision,
    LevelStats,
    RunPlan,
)

__all__ = [
    "AdaptivePolicy",
    "DIRECTION_MODES",
    "Direction",
    "DirectionPolicy",
    "EXCHANGE_FORMATS",
    "FixedPolicy",
    "HeuristicPolicy",
    "KERNEL_VARIANTS",
    "LevelDecision",
    "LevelStats",
    "POLICY_NAMES",
    "Policy",
    "PolicySession",
    "RecordedPolicy",
    "RunPlan",
    "SNAPSHOT_STRATEGIES",
    "VECTOR_WIDTHS",
    "make_policy",
    "planner_cache_name",
]
