"""Typed per-level traversal decisions and recorded run plans.

The planner layer (:mod:`repro.plan`) owns every choice the paper makes
*per level*: traversal direction (section 2's top-down/bottom-up
switch), the bottom-up scan kernel variant, the vector load width
(section 6's ``long``/``long2``/``long4``), the workspace snapshot
strategy, and whether bottom-up early termination is armed.  One level
of one group executes exactly one :class:`LevelDecision`; the sequence
of decisions a run actually executed is its :class:`RunPlan`.

A :class:`RunPlan` is a first-class artifact:

* engines attach it to their :class:`~repro.core.result.GroupStats`;
* it replays bit-identically (same depths, same simulated counters)
  through :class:`~repro.plan.policy.RecordedPolicy`, skipping the
  heuristic evaluation that produced it;
* it pickles across the exec task protocol and JSON-round-trips for
  the ``repro plan`` CLI verb and the service-layer plan cache.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

from repro.errors import TraversalError

#: Bottom-up scan kernel variants (:func:`repro.kernels.bottomup.bucketed_or_scan`):
#: ``"auto"`` picks the compiled backend when one is available
#: (:mod:`repro.native`), else the flat single-lane specialization when
#: it applies; ``"flat"`` requests the flat numpy passes explicitly,
#: ``"generic"`` forces the row-wise multi-lane numpy passes, and
#: ``"native"`` requests the compiled backend (falling back to the
#: numpy variants with a one-time warning when no backend resolves, so
#: plans recorded on native hosts replay anywhere).  All variants are
#: bit-identical in results and simulated counters; they differ in host
#: execution only.
KERNEL_VARIANTS = ("auto", "flat", "generic", "native")

#: Workspace snapshot strategies for ``BSA_k`` bookkeeping:
#: ``"dirty"`` keeps the dirty-row stash (:class:`~repro.kernels.workspace.LevelWorkspace`),
#: ``"full"`` copies the whole status array each level
#: (:class:`~repro.kernels.workspace.FullSnapshotWorkspace`).  Both
#: produce identical frontiers and counters.
SNAPSHOT_STRATEGIES = ("dirty", "full")

#: CUDA vector data types of section 6 (long/long2/long4).
VECTOR_WIDTHS = (1, 2, 4)

#: Frontier-exchange wire formats for the partitioned distributed
#: engine (:mod:`repro.dist`): ``"dense"`` ships one status bitmap word
#: per destination-range vertex, ``"sparse"`` ships ``(vertex, mask)``
#: pairs for touched vertices only, and ``"auto"`` lets the exchange
#: policy pick per level — the communication counterpart of the
#: top-down/bottom-up direction switch.  Single-process engines ignore
#: the field (like ``snapshot``, it never changes depths or simulated
#: traversal counters).
EXCHANGE_FORMATS = ("auto", "dense", "sparse")


class Direction(enum.Enum):
    """Traversal direction of one BFS level."""

    TOP_DOWN = "td"
    BOTTOM_UP = "bu"


@dataclass(frozen=True)
class LevelDecision:
    """Everything the engines need to execute one level of one group.

    Attributes
    ----------
    directions:
        Per-instance traversal direction, index-aligned with the
        group's sources.  Engines intersect this with their own
        active-instance bookkeeping, so entries of completed instances
        are carried along but never executed.
    kernel:
        Bottom-up scan kernel variant (one of :data:`KERNEL_VARIANTS`).
    vector_width:
        Status words fetched per load instruction (1, 2, or 4).
    snapshot:
        ``BSA_k`` bookkeeping strategy (one of
        :data:`SNAPSHOT_STRATEGIES`); a host-side choice with no effect
        on simulated counters.
    early_termination:
        Arm bottom-up early termination for this level.
    exchange:
        Frontier-exchange wire format for this level (one of
        :data:`EXCHANGE_FORMATS`); consumed by the partitioned
        distributed engine, ignored by single-process engines.  Plans
        recorded by :class:`repro.dist.engine.PartitionedEngine` hold
        the *resolved* format (never ``"auto"``) so replay re-sends
        exactly the recorded bytes.
    """

    directions: Tuple[Direction, ...]
    kernel: str = "auto"
    vector_width: int = 1
    snapshot: str = "dirty"
    early_termination: bool = True
    exchange: str = "auto"

    def __post_init__(self) -> None:
        if not self.directions:
            raise TraversalError("a LevelDecision needs at least one instance")
        for d in self.directions:
            if not isinstance(d, Direction):
                raise TraversalError(
                    f"directions must be Direction members; got {d!r}"
                )
        if self.kernel not in KERNEL_VARIANTS:
            raise TraversalError(
                f"kernel must be one of {KERNEL_VARIANTS}; got {self.kernel!r}"
            )
        if self.vector_width not in VECTOR_WIDTHS:
            raise TraversalError(
                f"vector_width must be one of {VECTOR_WIDTHS}; "
                f"got {self.vector_width}"
            )
        if self.snapshot not in SNAPSHOT_STRATEGIES:
            raise TraversalError(
                f"snapshot must be one of {SNAPSHOT_STRATEGIES}; "
                f"got {self.snapshot!r}"
            )
        if self.exchange not in EXCHANGE_FORMATS:
            raise TraversalError(
                f"exchange must be one of {EXCHANGE_FORMATS}; "
                f"got {self.exchange!r}"
            )

    @property
    def num_instances(self) -> int:
        return len(self.directions)

    @property
    def top_down(self) -> int:
        """Instances directed top-down this level."""
        return sum(1 for d in self.directions if d is Direction.TOP_DOWN)

    @property
    def bottom_up(self) -> int:
        """Instances directed bottom-up this level."""
        return sum(1 for d in self.directions if d is Direction.BOTTOM_UP)

    def to_dict(self) -> Dict:
        return {
            "directions": [d.value for d in self.directions],
            "kernel": self.kernel,
            "vector_width": self.vector_width,
            "snapshot": self.snapshot,
            "early_termination": self.early_termination,
            "exchange": self.exchange,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "LevelDecision":
        try:
            directions = tuple(
                Direction(v) for v in payload["directions"]
            )
        except (KeyError, ValueError) as exc:
            raise TraversalError(f"malformed LevelDecision payload: {exc}")
        # Reject unknown kernels here with the constructor's exact typed
        # error rather than relying on __post_init__ alone: the payload
        # path is how plans from *newer* hosts arrive, so drift between
        # the two validations would let an unknown variant slip into a
        # decision some engines then dispatch on.
        kernel = payload.get("kernel", "auto")
        if kernel not in KERNEL_VARIANTS:
            raise TraversalError(
                f"kernel must be one of {KERNEL_VARIANTS}; got {kernel!r}"
            )
        return cls(
            directions=directions,
            kernel=kernel,
            vector_width=int(payload.get("vector_width", 1)),
            snapshot=payload.get("snapshot", "dirty"),
            early_termination=bool(payload.get("early_termination", True)),
            exchange=payload.get("exchange", "auto"),
        )


@dataclass
class LevelStats:
    """Observed outcome of one executed level, fed back to the policy.

    All per-instance sequences are index-aligned with the group.  The
    values are exactly what the pre-planner engines handed their
    :class:`~repro.plan.policy.DirectionPolicy`: the *new* frontier's
    vertex count and out-degree sum, the remaining unexplored out-degree
    mass, plus the cumulative visited-vertex count the adaptive cost
    model needs.  ``active`` is the post-level liveness mask (an
    instance retires when its frontier empties).
    """

    level: int
    num_vertices: int
    total_edges: int
    frontier_vertices: "Tuple[int, ...]"
    frontier_edges: "Tuple[int, ...]"
    unexplored_edges: "Tuple[int, ...]"
    visited_vertices: "Tuple[int, ...]"
    active: "Tuple[bool, ...]"


@dataclass
class RunPlan:
    """The decision log of one group's traversal, level by level.

    ``decisions[k]`` is the decision level ``k`` executed; the list
    covers exactly the executed levels (a replay that runs past the
    recorded horizon repeats the final decision).  Plans are
    value-comparable, picklable, and JSON-round-trippable.
    """

    policy: str
    engine: str
    group_size: int
    decisions: List[LevelDecision] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.decisions)

    def __iter__(self) -> Iterator[LevelDecision]:
        return iter(self.decisions)

    def append(self, decision: LevelDecision) -> None:
        if decision.num_instances != self.group_size:
            raise TraversalError(
                f"decision for {decision.num_instances} instances appended "
                f"to a plan of group size {self.group_size}"
            )
        self.decisions.append(decision)

    @property
    def needs_bottom_up(self) -> bool:
        """Whether any recorded level directs any instance bottom-up."""
        return any(d.bottom_up > 0 for d in self.decisions)

    def to_dict(self) -> Dict:
        return {
            "policy": self.policy,
            "engine": self.engine,
            "group_size": self.group_size,
            "decisions": [d.to_dict() for d in self.decisions],
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "RunPlan":
        try:
            plan = cls(
                policy=str(payload["policy"]),
                engine=str(payload["engine"]),
                group_size=int(payload["group_size"]),
            )
            for entry in payload.get("decisions", []):
                plan.append(LevelDecision.from_dict(entry))
        except KeyError as exc:
            raise TraversalError(f"malformed RunPlan payload: missing {exc}")
        return plan

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "RunPlan":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise TraversalError(f"malformed RunPlan JSON: {exc}")
        return cls.from_dict(payload)
