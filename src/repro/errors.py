"""Exception hierarchy for the repro package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch one type to handle all
library-level failures while letting programming errors propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Raised when a graph is structurally invalid or malformed."""


class GraphFormatError(GraphError):
    """Raised when graph input/output data cannot be parsed or written."""


class SimulationError(ReproError):
    """Raised when the GPU simulator is misconfigured or misused."""


class CapacityError(SimulationError):
    """Raised when a workload exceeds the simulated device's resources."""


class TraversalError(ReproError):
    """Raised when a BFS engine receives invalid sources or options."""


class GroupingError(ReproError):
    """Raised when GroupBy receives invalid parameters or source sets."""


class ServiceError(ReproError):
    """Base class for errors raised by the online serving layer."""


class SubstrateError(ServiceError):
    """Base class for errors raised by the runtime substrate registry
    (:mod:`repro.runtime`): unknown substrate names, capability
    violations, and invalid placement specs."""


class UnknownSubstrateError(SubstrateError):
    """Raised when a :class:`~repro.runtime.SubstrateSpec` names a
    substrate that is not in the registry."""


class SubstrateCapabilityError(SubstrateError):
    """Raised when a placement spec asks a substrate for something its
    capability flags rule out (``supports_mutation``,
    ``supports_partitions``, ``supports_executor``,
    ``supports_replay``)."""


class ExclusiveSubstrateError(SubstrateCapabilityError):
    """The executor/partitions mutual exclusion, as a typed capability
    error.  Kept as a :class:`ServiceError` subclass carrying the exact
    pre-registry message for back-compat with callers matching on it."""

    MESSAGE = (
        "executor and partitions are mutually exclusive: "
        "executor workers replicate the whole graph, which is "
        "exactly what partitioned dispatch avoids"
    )

    def __init__(self, message: str = "") -> None:
        super().__init__(message or self.MESSAGE)


class UnsupportedMutationError(SubstrateCapabilityError):
    """Raised when an epoch publication reaches a substrate whose
    ``supports_mutation`` capability is False — never a silent stale
    read."""


class QueueFullError(ServiceError):
    """Raised when admission control sheds a request because the bounded
    pending queue is at capacity (backpressure)."""


class RequestTimeoutError(ServiceError):
    """Raised when a request exceeds its per-request timeout before a
    result could be produced."""


class RequestFailedError(ServiceError):
    """Raised when a request ultimately fails after exhausting its
    retry budget."""


class ObservabilityError(ReproError):
    """Raised when the observability spine (:mod:`repro.obs`) is
    misused: metric type conflicts, malformed span records, or invalid
    exporter input."""


class TraceSchemaError(SimulationError):
    """Raised when a per-level trace row does not match the published
    ``TRACE_FIELDS`` schema — the exporter fails closed instead of
    silently emitting drifted columns."""


class ExecutorError(ServiceError):
    """Base class for errors raised by the multi-process execution
    backend (:mod:`repro.exec`)."""


class WorkerCrashError(ExecutorError):
    """Raised when a worker process died (non-zero exit or kill) while
    executing a task and the retry budget is exhausted."""


class WorkerTimeoutError(ExecutorError):
    """Raised when a task exceeded the executor's wall-clock task
    timeout and the retry budget is exhausted."""


class StreamError(ReproError):
    """Raised by the dynamic-graph layer (:mod:`repro.stream`): invalid
    mutation batches, misuse of epoch snapshots (pinning a reclaimed
    epoch, mutating a published graph), or repair preconditions not met
    (repairing across a delete batch)."""
