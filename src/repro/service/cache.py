"""LRU result cache for served traversals.

Power-law graphs concentrate queries on hot vertices the same way they
concentrate edges on hubs, so an online BFS service sees heavily
repeated sources.  A depth row fully determines every answer the
service can give about a source (reached count, target depth,
closeness), so the cache stores depth rows keyed by
``(graph_id, source, engine_key, max_depth)`` and every request kind is
served from the same entry.

``graph_id`` fingerprints the CSR arrays (so two servers on different
graphs never alias) and ``engine_key`` fingerprints the engine
configuration, per the serving-layer contract.
"""

from __future__ import annotations

import zlib
from collections import OrderedDict
from typing import Hashable, Optional, Tuple

import numpy as np

from repro.errors import ServiceError
from repro.graph.csr import CSRGraph
from repro.core.engine import IBFSConfig


def graph_cache_id(graph: CSRGraph) -> str:
    """Stable content fingerprint of a CSR graph.

    Memoized on the graph object: CSR arrays are immutable by contract,
    so the CRC pass over both arrays runs at most once per graph no
    matter how many servers or caches fingerprint it.
    """
    memo = getattr(graph, "_cache_id", None)
    if memo is not None:
        return memo
    crc = zlib.crc32(graph.row_offsets.tobytes())
    crc = zlib.crc32(graph.col_indices.tobytes(), crc)
    cache_id = f"csr-{graph.num_vertices}-{graph.num_edges}-{crc:08x}"
    try:
        graph._cache_id = cache_id
    except AttributeError:
        pass
    return cache_id


def engine_cache_key(config: IBFSConfig) -> str:
    """Stable fingerprint of the engine configuration."""
    return (
        f"{config.mode}-n{config.group_size}"
        f"-gb{int(config.groupby)}-et{int(config.early_termination)}"
        f"-vw{config.vector_width}-s{config.seed}"
    )


class ResultCache:
    """Bounded LRU mapping cache keys to depth rows.

    ``capacity`` counts entries; 0 disables caching entirely (every
    lookup misses, every store is dropped) so the unbatched baseline
    can run cache-free through the same code path.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ServiceError("cache capacity must be non-negative")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, np.ndarray]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def key(
        graph_id: str, source: int, engine_key: str, max_depth: Optional[int]
    ) -> Tuple[str, int, str, Optional[int]]:
        return (graph_id, int(source), engine_key, max_depth)

    def get(self, key: Hashable) -> Optional[np.ndarray]:
        """Depth row for ``key``, refreshing recency; ``None`` on miss."""
        row = self._entries.get(key)
        if row is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return row

    def put(self, key: Hashable, depth_row: np.ndarray) -> None:
        """Insert (or refresh) an entry, evicting the LRU on overflow."""
        if self.capacity == 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = depth_row
            return
        self._entries[key] = depth_row
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()

    @property
    def hit_rate(self) -> float:
        """Hits / lookups, 0.0 before any lookup."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        return {
            "capacity": self.capacity,
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }
