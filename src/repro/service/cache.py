"""LRU caches for served traversals: depth rows and traversal plans.

Power-law graphs concentrate queries on hot vertices the same way they
concentrate edges on hubs, so an online BFS service sees heavily
repeated sources.  Two caches exploit that, both bounded LRUs over the
same machinery:

* :class:`ResultCache` stores depth rows keyed by
  ``(graph_id, source, engine_key, max_depth)``.  A depth row fully
  determines every answer the service can give about a source (reached
  count, target depth, closeness), so every request kind is served from
  the same entry.
* :class:`PlanCache` stores recorded :class:`~repro.plan.types.RunPlan`
  objects keyed by ``(graph_id, group_signature, engine_key,
  max_depth)``.  A repeated *batch* (same group of sources on the same
  graph under the same engine) replays its plan instead of re-running
  the planner heuristics at every level — the traversal itself is
  bit-identical either way.

``graph_id`` fingerprints the CSR arrays (so two servers on different
graphs never alias) and ``engine_key`` fingerprints the engine
configuration plus the planner policy, per the serving-layer contract.
"""

from __future__ import annotations

import zlib
from collections import OrderedDict
from typing import Callable, Hashable, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ServiceError
from repro.graph.csr import CSRGraph
from repro.core.engine import IBFSConfig
from repro.plan.types import RunPlan


def graph_cache_id(graph: CSRGraph) -> str:
    """Stable content fingerprint of a CSR graph.

    Memoized on the graph object: CSR arrays are immutable by contract,
    so the CRC pass over both arrays runs at most once per graph no
    matter how many servers or caches fingerprint it.
    """
    memo = getattr(graph, "_cache_id", None)
    if memo is not None:
        return memo
    crc = zlib.crc32(graph.row_offsets.tobytes())
    crc = zlib.crc32(graph.col_indices.tobytes(), crc)
    cache_id = f"csr-{graph.num_vertices}-{graph.num_edges}-{crc:08x}"
    try:
        graph._cache_id = cache_id
    except AttributeError:
        pass
    # The fingerprint is memoized forever, so the arrays must never
    # change again: freeze them so an in-place mutation raises at the
    # mutation site instead of silently serving stale cached depth rows
    # keyed by the old content.
    freeze = getattr(graph, "freeze", None)
    if freeze is not None:
        freeze()
    return cache_id


def engine_cache_key(
    config: IBFSConfig, policy_name: Optional[str] = None
) -> str:
    """Stable fingerprint of the engine configuration.

    Back-compat delegate: key derivation moved next to the placement
    spec (:func:`repro.runtime.spec.engine_key`), which also owns the
    substrate-suffix namespacing partitioned placements need.
    """
    from repro.runtime.spec import engine_key

    return engine_key(config, policy_name)


class LRUCache:
    """Bounded LRU mapping hashable keys to cached values.

    ``capacity`` counts entries; 0 disables caching entirely (every
    lookup misses, every store is dropped) so an unbatched or
    plan-cache-free baseline can run through the same code path.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ServiceError("cache capacity must be non-negative")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: Entries dropped by :meth:`purge` (epoch re-fingerprinting),
        #: counted separately from capacity evictions.
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable):
        """Value for ``key``, refreshing recency; ``None`` on miss."""
        value = self._entries.get(key)
        if value is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value) -> None:
        """Insert (or refresh) an entry, evicting the LRU on overflow."""
        if self.capacity == 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = value
            return
        self._entries[key] = value
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()

    def items(self) -> list:
        """``(key, value)`` pairs in LRU order (oldest first), without
        touching recency — used by the epoch layer to migrate entries
        across a re-fingerprint while preserving eviction order."""
        return list(self._entries.items())

    def purge(self, predicate: Callable[[Hashable], bool]) -> int:
        """Drop every entry whose key satisfies ``predicate``.

        Returns the number of entries dropped; the count also
        accumulates into :attr:`invalidations` so cache statistics
        distinguish epoch invalidation from capacity eviction.
        """
        doomed = [key for key in self._entries if predicate(key)]
        for key in doomed:
            del self._entries[key]
        self.invalidations += len(doomed)
        return len(doomed)

    @property
    def hit_rate(self) -> float:
        """Hits / lookups, 0.0 before any lookup."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        return {
            "capacity": self.capacity,
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
        }


class ResultCache(LRUCache):
    """LRU of depth rows keyed per source."""

    @staticmethod
    def key(
        graph_id: str, source: int, engine_key: str, max_depth: Optional[int]
    ) -> Tuple[str, int, str, Optional[int]]:
        return (graph_id, int(source), engine_key, max_depth)

    def get(self, key: Hashable) -> Optional[np.ndarray]:
        """Depth row for ``key``, refreshing recency; ``None`` on miss."""
        return super().get(key)

    def put(self, key: Hashable, depth_row: np.ndarray) -> None:
        super().put(key, depth_row)


class PlanCache(LRUCache):
    """LRU of recorded traversal plans keyed per batch.

    The group *signature* is the ordered tuple of sources: the planner's
    per-instance decisions are positional, so the same sources in a
    different order are a different plan.
    """

    @staticmethod
    def key(
        graph_id: str,
        sources: Sequence[int],
        engine_key: str,
        max_depth: Optional[int],
    ) -> Tuple[str, Tuple[int, ...], str, Optional[int]]:
        return (
            graph_id,
            tuple(int(s) for s in sources),
            engine_key,
            max_depth,
        )

    def get(self, key: Hashable) -> Optional[RunPlan]:
        """Recorded plan for ``key``; ``None`` on miss."""
        return super().get(key)

    def put(self, key: Hashable, plan: RunPlan) -> None:
        super().put(key, plan)
